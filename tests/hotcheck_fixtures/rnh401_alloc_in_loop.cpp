// Fixture for RNH401: heap allocation inside hot loops, and — for strict
// functions — anywhere in the body. Line numbers are pinned by the test.
#include <cstddef>
#include <memory>
#include <vector>

namespace fixture {

int driver(std::size_t rounds) {
  int total = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<int> perRound(r + 1);  // line 12: RNH401 (loop of driver)
    auto owned = std::make_unique<int>(3);  // line 13: RNH401
    total += perRound.empty() ? *owned : perRound.back();
  }
  std::vector<int> hoisted(rounds);  // outside the loop: clean for a driver
  return total + static_cast<int>(hoisted.size());
}

int leaf(int x) {
  std::vector<int> local(4, x);  // line 21: RNH401 (strict body)
  return local.back() + *new int(x);  // line 22: RNH401 (operator new)
}

}  // namespace fixture
