// Fixture for RNH405: string formatting on a hot path.
#include <string>

namespace fixture {

std::string label(int id) {
  return "node-" + std::to_string(id);  // line 7: RNH405
}

}  // namespace fixture
