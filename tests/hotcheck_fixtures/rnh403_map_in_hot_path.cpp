// Fixture for RNH403: per-message operations on associative containers in a
// hot function. The map is declared outside the hot function to mimic the
// member-map case; flat-vector indexing must stay clean.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<std::uint64_t, int> table;
std::vector<int> flat;

int lookup(std::uint64_t key) {
  auto it = table.find(key);  // line 14: RNH403
  if (it != table.end()) return it->second;
  table[key] = 1;  // line 16: RNH403
  return flat[static_cast<std::size_t>(key)];  // flat indexing: clean
}

}  // namespace fixture
