// Fixture for RNH402: hot-function parameters passing containers by value.
// The by-reference and by-pointer overloads must stay clean.
#include <string>
#include <vector>

namespace fixture {

int by_value(std::vector<int> payload,  // line 8: RNH402
             std::string tag) {         // line 9: RNH402
  return static_cast<int>(payload.size() + tag.size());
}

int by_ref(const std::vector<int>& payload, const std::string* tag) {
  return static_cast<int>(payload.size()) + (tag != nullptr ? 1 : 0);
}

}  // namespace fixture
