// Fixture for RNH404: a loop growing a vector with no prior reserve/resize.
// The reserved twin — including a reserve inside an outer loop ahead of an
// inner push loop — must stay clean.
#include <cstddef>
#include <vector>

namespace fixture {

std::vector<int> unreserved(std::size_t n) {
  std::vector<int> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));  // line 12: RNH404
  }
  return out;
}

std::vector<int> reserved(std::size_t n) {
  std::vector<int> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));  // clean: reserve precedes the loop
  }
  for (std::size_t outer = 0; outer < n; ++outer) {
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<int>(i + outer));  // clean: reserved above
    }
  }
  return out;
}

}  // namespace fixture
