// Fixture for the suppression syntax: a reasoned allow() silences its rule
// on the annotated line; a marker without a reason is malformed (RNH490).
#include <string>

namespace fixture {

std::string tagged(int id) {
  // reconfnet-hotcheck: allow(RNH405) label built once per topology change
  return "node-" + std::to_string(id);  // suppressed
}

std::string untagged(int id) {
  // reconfnet-hotcheck: allow(RNH405)
  return "node-" + std::to_string(id);  // line 14: RNH405 stays, 13: RNH490
}

}  // namespace fixture
