// Fixture: a well-behaved hot function — buffers hoisted and reserved,
// no associative containers, no formatting. Must produce zero findings.
#include <cstddef>
#include <vector>

namespace fixture {

class Engine {
 public:
  void pump(const std::vector<int>& in) {
    scratch_.clear();
    scratch_.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      scratch_.push_back(in[i] * 2);
    }
    total_ = 0;
    for (const int value : scratch_) total_ += value;
  }

 private:
  std::vector<int> scratch_;
  long total_ = 0;
};

}  // namespace fixture
