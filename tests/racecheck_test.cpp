// Tests for reconfnet_racecheck (tools/racecheck/): one test per RNR rule
// id, driven by the fixtures in tests/racecheck_fixtures/, plus coverage for
// the concurrency.toml parser, spawn-site discovery (free / member / N-th
// argument / context-index forms), suppressions (including stale detection)
// and spec-drift legs. The fixtures directory is excluded from every
// repo-wide tool walk, so the deliberate violations never reach the real
// gate; the tests feed them to the Driver under synthetic paths.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "toolcheck_util.hpp"
#include "tools/racecheck/racecheck.hpp"

namespace rc = reconfnet::racecheck;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(RECONFNET_RACECHECK_FIXTURES,
                                                 name);
}

/// A spec with one free-call spawn family (`parallel_for`, shard index =
/// last lambda parameter) sanctioned inside drive() of `file`, with `slots`
/// as the only declared per-shard slot.
rc::Spec drive_spec(const std::string& file) {
  rc::Spec spec;
  rc::SpawnSpec spawn;
  spawn.name = "pfor";
  spawn.callee = "parallel_for";
  spawn.arg = "last";
  spawn.index = "param";
  spec.spawns.push_back(spawn);
  rc::RegionSpec region;
  region.name = "fixture";
  region.file = file;
  region.function = "drive";
  region.spawn = "pfor";
  region.slots = {"slots"};
  region.line = 1;
  spec.regions.push_back(region);
  return spec;
}

rc::Driver::Result run_fixture(const std::string& fixture,
                               const std::string& as_path, rc::Spec spec) {
  rc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

// --- spec parser ------------------------------------------------------------

TEST(RacecheckSpec, ParsesSpawnsRegionsSharedAndAllow) {
  const std::string text = R"(
[options]
roots = ["src/", "bench/"]

[shared]
readonly_types = ["Config"]
globals = ["epoch_counter"]

[[spawn]]
name = "pfor"
callee = "parallel_for"
index = "param"

[[spawn]]
name = "runner"
callee = "run"
receiver = "TrialRunner"
arg = "2"
index = "context"

[[region]]
name = "fanout"
file = "src/runtime/trial_runner.hpp"
function = "run"
spawn = "pfor"
slots = ["slots"]
readonly = ["config"]

[[region]]
file_prefix = "bench/"
spawn = "runner"

[allow]
RNR590 = ["tools/racecheck/"]
)";
  rc::Spec spec;
  std::string error;
  ASSERT_TRUE(rc::parse_spec(text, spec, error)) << error;
  EXPECT_EQ(spec.roots, (std::vector<std::string>{"src/", "bench/"}));
  EXPECT_EQ(spec.readonly_types, (std::vector<std::string>{"Config"}));
  EXPECT_EQ(spec.globals, (std::vector<std::string>{"epoch_counter"}));
  ASSERT_EQ(spec.spawns.size(), 2u);
  EXPECT_EQ(spec.spawns[0].name, "pfor");
  EXPECT_EQ(spec.spawns[0].index, "param");
  EXPECT_EQ(spec.spawns[1].receiver, "TrialRunner");
  EXPECT_EQ(spec.spawns[1].arg, "2");
  ASSERT_EQ(spec.regions.size(), 2u);
  EXPECT_EQ(spec.regions[0].slots, (std::vector<std::string>{"slots"}));
  EXPECT_EQ(spec.regions[0].readonly, (std::vector<std::string>{"config"}));
  EXPECT_EQ(spec.regions[1].name, "bench/");  // defaulted from the prefix
  ASSERT_EQ(spec.allow.count("RNR590"), 1u);
}

TEST(RacecheckSpec, RejectsBadShapes) {
  rc::Spec spec;
  std::string error;
  EXPECT_FALSE(rc::parse_spec(
      "[[spawn]]\nname = \"x\"\ncallee = \"f\"\nindex = \"bogus\"\n", spec,
      error));
  EXPECT_FALSE(rc::parse_spec("[[spawn]]\nname = \"x\"\n", spec, error));
  // Region with both file and file_prefix.
  EXPECT_FALSE(rc::parse_spec(
      "[[spawn]]\nname = \"x\"\ncallee = \"f\"\n"
      "[[region]]\nfile = \"a.cpp\"\nfunction = \"g\"\n"
      "file_prefix = \"src/\"\nspawn = \"x\"\n",
      spec, error));
  // Region referencing an unknown spawn family.
  EXPECT_FALSE(rc::parse_spec(
      "[[region]]\nfile_prefix = \"src/\"\nspawn = \"ghost\"\n", spec,
      error));
  // Duplicate spawn names.
  EXPECT_FALSE(rc::parse_spec(
      "[[spawn]]\nname = \"x\"\ncallee = \"f\"\n"
      "[[spawn]]\nname = \"x\"\ncallee = \"g\"\n",
      spec, error));
}

// --- per-rule fixtures ------------------------------------------------------

TEST(Racecheck, CleanRegionHasNoFindings) {
  const auto result = run_fixture("clean_region.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_TRUE(result.findings.empty())
      << result.findings.front().rule << " at line "
      << result.findings.front().line;
  EXPECT_EQ(result.sites_checked, 1u);
  EXPECT_EQ(result.lambdas_checked, 1u);
}

TEST(Racecheck, Rnr501FlagsRefCaptureAndSharedMutation) {
  const auto result = run_fixture("rnr501_ref_capture.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR501"),
            (std::vector<std::size_t>{13, 14}));
}

TEST(Racecheck, Rnr502FlagsUnsplitRng) {
  const auto result = run_fixture("rnr502_unsplit_rng.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR502"),
            (std::vector<std::size_t>{13, 14}));
}

TEST(Racecheck, Rnr503FlagsWrongIndexWrites) {
  const auto result = run_fixture("rnr503_wrong_index.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR503"),
            (std::vector<std::size_t>{12, 13}));
}

TEST(Racecheck, Rnr504FlagsCompletionOrderMerge) {
  const auto result = run_fixture("rnr504_completion_order.cpp",
                                  "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR504"), (std::vector<std::size_t>{12}));
}

TEST(Racecheck, Rnr505FlagsAdHocSyncOutsideRuntime) {
  const auto result = run_fixture("rnr505_adhoc_mutex.cpp",
                                  "src/sim/fixture_sync.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR505"),
            (std::vector<std::size_t>{9, 14}));
}

TEST(Racecheck, Rnr505IgnoresRuntimeDirectory) {
  rc::Driver driver(drive_spec("src/fixture.cpp"), "spec.toml");
  driver.add_file("src/runtime/fixture_sync.cpp",
                  read_fixture("rnr505_adhoc_mutex.cpp"));
  driver.set_partial(true);
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNR505").empty());
}

TEST(Racecheck, Rnr506FlagsGlobalStateDirectAndOneLevelDeep) {
  const auto result = run_fixture("rnr506_global_state.cpp",
                                  "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR506"),
            (std::vector<std::size_t>{16, 17}));
}

// --- drift (RNR510) ---------------------------------------------------------

TEST(Racecheck, Rnr510FlagsUndeclaredSite) {
  const auto result = run_fixture("rnr510_undeclared_site.cpp",
                                  "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR510"), (std::vector<std::size_t>{18}));
}

TEST(Racecheck, Rnr510FlagsMissingRegionFile) {
  rc::Spec spec = drive_spec("src/ghost.cpp");
  rc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/fixture.cpp", read_fixture("clean_region.cpp"));
  const auto result = driver.run();
  // The clean file's site is undeclared AND the declared region is dead.
  ASSERT_EQ(lines_of(result, "RNR510").size(), 2u);
  bool spec_anchored = false;
  for (const auto& finding : result.findings) {
    if (finding.file == "spec.toml") spec_anchored = true;
  }
  EXPECT_TRUE(spec_anchored);
}

TEST(Racecheck, Rnr510FlagsRegionWhoseFunctionIsGone) {
  rc::Spec spec = drive_spec("src/fixture.cpp");
  spec.regions[0].function = "vanished";
  const auto result =
      run_fixture("clean_region.cpp", "src/fixture.cpp", std::move(spec));
  ASSERT_FALSE(lines_of(result, "RNR510").empty());
}

TEST(Racecheck, PartialRunsSkipDeadRegionChecks) {
  rc::Spec spec = drive_spec("src/ghost.cpp");
  rc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/other.cpp", "int x = 0;\n");
  driver.set_partial(true);
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
}

// --- member / argument / context spawn forms --------------------------------

TEST(Racecheck, MemberSpawnWithContextIndex) {
  const std::string content = R"(
void drive(Runner& runner, std::size_t trials) {
  std::vector<double> slots(trials);
  runner.run(trials, [&](TrialContext& trial) {
    slots[trial.index] = trial.rng.uniform();
    slots[0] = 1.0;
  });
}
)";
  rc::Spec spec;
  rc::SpawnSpec spawn;
  spawn.name = "runner";
  spawn.callee = "run";
  spawn.receiver = "Runner";
  spawn.index = "context";
  spec.spawns.push_back(spawn);
  rc::RegionSpec region;
  region.name = "fanout";
  region.file = "src/fixture.cpp";
  region.function = "drive";
  region.spawn = "runner";
  region.slots = {"slots"};
  spec.regions.push_back(region);
  rc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/fixture.cpp", content);
  driver.set_partial(true);
  const auto result = driver.run();
  // slots[trial.index] is the sanctioned slot write; slots[0] is not.
  EXPECT_EQ(lines_of(result, "RNR503"), (std::vector<std::size_t>{6}));
  EXPECT_TRUE(lines_of(result, "RNR501").empty());
}

TEST(Racecheck, NumberedArgumentSelectsTheParallelCallable) {
  const std::string content = R"(
void drive(std::size_t n) {
  std::vector<int> merged;
  sweep(n, [&](std::size_t i) { merged.push_back(static_cast<int>(i)); },
        [&](std::size_t i) { return i; });
}
)";
  rc::Spec spec;
  rc::SpawnSpec spawn;
  spawn.name = "sweep";
  spawn.callee = "sweep";
  spawn.arg = "2";
  spawn.index = "param";
  spec.spawns.push_back(spawn);
  rc::RegionSpec region;
  region.name = "sweeps";
  region.file_prefix = "src/";
  region.spawn = "sweep";
  spec.regions.push_back(region);
  rc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/fixture.cpp", content);
  driver.set_partial(true);
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNR504"), (std::vector<std::size_t>{4}));
}

// --- suppressions -----------------------------------------------------------

TEST(Racecheck, InlineAllowSuppressesAndRecordsTheFinding) {
  const auto result = run_fixture("suppressions.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_TRUE(lines_of(result, "RNR501").empty());
  EXPECT_EQ(result.suppressed, 1u);
  ASSERT_EQ(result.suppressed_findings.size(), 1u);
  EXPECT_EQ(result.suppressed_findings[0].rule, "RNR501");
  EXPECT_EQ(result.suppressed_findings[0].line, 15u);
}

TEST(Racecheck, StaleSuppressionIsReported) {
  const auto result = run_fixture("suppressions.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0].rule, "RNR503");
  EXPECT_EQ(result.stale[0].line, 16u);
  EXPECT_EQ(result.stale[0].file, "src/fixture.cpp");
}

TEST(Racecheck, Rnr590FlagsMalformedSuppressions) {
  const auto result = run_fixture("rnr590_malformed.cpp", "src/fixture.cpp",
                                  drive_spec("src/fixture.cpp"));
  EXPECT_EQ(lines_of(result, "RNR590").size(), 3u);
}

TEST(Racecheck, AllowCarveOutDisablesARulePerPath) {
  rc::Spec spec = drive_spec("src/fixture.cpp");
  spec.allow["RNR590"] = {"src/"};
  const auto result =
      run_fixture("rnr590_malformed.cpp", "src/fixture.cpp", std::move(spec));
  EXPECT_TRUE(lines_of(result, "RNR590").empty());
}

// --- the real spec against the real tree ------------------------------------
// (The ctest entry racecheck_test runs the CLI against the repository; this
// just pins that the shipped spec parses.)

TEST(Racecheck, ShippedSpecParses) {
  const std::string text = reconfnet::toolcheck::read_fixture_file(
      RECONFNET_RACECHECK_SPEC_DIR, "concurrency.toml");
  rc::Spec spec;
  std::string error;
  ASSERT_TRUE(rc::parse_spec(text, spec, error)) << error;
  EXPECT_GE(spec.spawns.size(), 5u);
  EXPECT_GE(spec.regions.size(), 6u);
}

}  // namespace
