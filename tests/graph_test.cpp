#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "graph/kary_hypercube.hpp"
#include "graph/spectral.hpp"
#include "support/rng.hpp"

namespace reconfnet::graph {
namespace {

TEST(HamiltonCycle, IsSingleCycle) {
  support::Rng rng(1);
  const auto succ = random_hamilton_cycle(50, rng);
  std::size_t v = 0;
  std::set<std::size_t> visited;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(visited.insert(v).second);
    v = succ[v];
  }
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(visited.size(), 50u);
}

TEST(HGraph, RandomHasRequestedShape) {
  support::Rng rng(2);
  const auto g = HGraph::random(100, 8, rng);
  EXPECT_EQ(g.size(), 100u);
  EXPECT_EQ(g.degree(), 8);
  EXPECT_EQ(g.num_cycles(), 4);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 8u);
  }
}

TEST(HGraph, SuccPredAreInverse) {
  support::Rng rng(3);
  const auto g = HGraph::random(64, 8, rng);
  for (int c = 0; c < g.num_cycles(); ++c) {
    for (std::size_t v = 0; v < g.size(); ++v) {
      EXPECT_EQ(g.pred(c, g.succ(c, v)), v);
      EXPECT_EQ(g.succ(c, g.pred(c, v)), v);
    }
  }
}

TEST(HGraph, PortsEnumerateSuccAndPred) {
  support::Rng rng(4);
  const auto g = HGraph::random(32, 4, rng);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.neighbor(v, 0), g.succ(0, v));
    EXPECT_EQ(g.neighbor(v, 1), g.pred(0, v));
    EXPECT_EQ(g.neighbor(v, 2), g.succ(1, v));
    EXPECT_EQ(g.neighbor(v, 3), g.pred(1, v));
  }
}

TEST(HGraph, IsConnected) {
  support::Rng rng(5);
  const auto g = HGraph::random(200, 8, rng);
  EXPECT_TRUE(is_connected(
      g.size(), [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : g.neighbors(v)) f(w);
      }));
}

TEST(HGraph, RejectsInvalidInput) {
  EXPECT_THROW(HGraph(2, {{1, 0}}), std::invalid_argument);
  support::Rng rng(6);
  EXPECT_THROW(HGraph::random(10, 3, rng), std::invalid_argument);  // odd
  EXPECT_THROW(HGraph::random(10, 0, rng), std::invalid_argument);
  // Two 2-cycles instead of one 4-cycle.
  EXPECT_THROW(HGraph(4, {{1, 0, 3, 2}}), std::invalid_argument);
  // Wrong size table.
  EXPECT_THROW(HGraph(4, {{1, 2, 0}}), std::invalid_argument);
}

TEST(HGraph, DeterministicGivenSeed) {
  support::Rng rng1(7), rng2(7);
  const auto a = HGraph::random(40, 4, rng1);
  const auto b = HGraph::random(40, 4, rng2);
  for (std::size_t v = 0; v < 40; ++v) {
    EXPECT_EQ(a.succ(0, v), b.succ(0, v));
    EXPECT_EQ(a.succ(1, v), b.succ(1, v));
  }
}

TEST(Spectral, RandomHGraphIsExpander) {
  // Corollary 1: |lambda_2| <= 2 sqrt(d) w.h.p. for random H-graphs.
  support::Rng rng(8);
  const int d = 8;
  const auto g = HGraph::random(512, d, rng);
  const double lambda2 = second_eigenvalue_estimate(g, rng, 300);
  EXPECT_LT(lambda2, 2.0 * std::sqrt(static_cast<double>(d)) + 0.5);
  EXPECT_GT(lambda2, 0.0);
}

TEST(Spectral, SingleCycleIsNotAnExpander) {
  // A single Hamilton cycle (d = 2) has lambda_2 = 2 cos(2 pi / n) -> 2,
  // i.e. nearly equal to the degree: no spectral gap.
  support::Rng rng(9);
  const auto g = HGraph::random(256, 2, rng);
  const double lambda2 = second_eigenvalue_estimate(g, rng, 500);
  EXPECT_GT(lambda2, 1.9);
}

TEST(Hypercube, FlipMatchesPaperDefinition) {
  Hypercube h(4);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h.flip(0b0000, 1), 0b0001u);
  EXPECT_EQ(h.flip(0b0000, 4), 0b1000u);
  EXPECT_EQ(h.flip(0b1010, 2), 0b1000u);
  EXPECT_THROW((void)h.flip(0, 0), std::invalid_argument);
  EXPECT_THROW((void)h.flip(0, 5), std::invalid_argument);
}

TEST(Hypercube, NeighborsDifferInOneCoordinate) {
  Hypercube h(5);
  const auto nbrs = h.neighbors(0b10110);
  EXPECT_EQ(nbrs.size(), 5u);
  for (auto w : nbrs) {
    EXPECT_EQ(Hypercube::distance(0b10110, w), 1);
  }
  // All distinct.
  std::set<std::uint64_t> unique(nbrs.begin(), nbrs.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Hypercube, DistanceIsHamming) {
  EXPECT_EQ(Hypercube::distance(0b0000, 0b1111), 4);
  EXPECT_EQ(Hypercube::distance(0b1010, 0b1010), 0);
}

TEST(Hypercube, IsConnected) {
  Hypercube h(6);
  EXPECT_TRUE(is_connected(
      static_cast<std::size_t>(h.size()),
      [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : h.neighbors(v)) f(static_cast<std::size_t>(w));
      }));
}

TEST(KaryHypercube, ShapeMatchesDefinition1) {
  KaryHypercube g(4, 3);
  EXPECT_EQ(g.size(), 64u);
  EXPECT_EQ(g.degree(), (4 - 1) * 3);
  for (std::uint64_t v = 0; v < g.size(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_EQ(nbrs.size(), static_cast<std::size_t>(g.degree()));
    for (auto w : nbrs) EXPECT_EQ(g.distance(v, w), 1);
  }
}

TEST(KaryHypercube, EncodeDecodeRoundTrip) {
  KaryHypercube g(3, 4);
  for (std::uint64_t v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.encode(g.coordinates(v)), v);
  }
}

TEST(KaryHypercube, WithDigitReplacesCoordinate) {
  KaryHypercube g(5, 3);
  const std::uint64_t v = g.encode({1, 2, 3});
  EXPECT_EQ(g.with_digit(v, 1, 4), g.encode({1, 4, 3}));
  EXPECT_EQ(g.digit(g.with_digit(v, 0, 0), 0), 0);
  EXPECT_THROW((void)g.with_digit(v, 0, 5), std::invalid_argument);
}

TEST(KaryHypercube, DiameterIsDimension) {
  KaryHypercube g(3, 3);
  EXPECT_EQ(g.distance(g.encode({0, 0, 0}), g.encode({2, 2, 2})), 3);
}

TEST(KaryHypercube, RejectsInvalidParameters) {
  EXPECT_THROW(KaryHypercube(1, 3), std::invalid_argument);
  EXPECT_THROW(KaryHypercube(2, 0), std::invalid_argument);
  EXPECT_THROW(KaryHypercube(2, 63), std::invalid_argument);
}

TEST(Connectivity, DetectsDisconnectedDenseGraph) {
  // Two components: {0,1}, {2,3}.
  auto visit = [](std::size_t v, const std::function<void(std::size_t)>& f) {
    if (v == 0) f(1);
    if (v == 2) f(3);
  };
  EXPECT_FALSE(is_connected(4, visit));
  EXPECT_EQ(count_components(4, visit), 2u);
}

TEST(Connectivity, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(
      0, [](std::size_t, const std::function<void(std::size_t)>&) {}));
}

TEST(Connectivity, IdGraphBasics) {
  const std::vector<sim::NodeId> nodes{10, 20, 30};
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges{{10, 20},
                                                               {20, 30}};
  EXPECT_TRUE(is_connected(nodes, edges));
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> partial{{10, 20}};
  EXPECT_FALSE(is_connected(nodes, partial));
}

TEST(Connectivity, IgnoresEdgesToUnknownNodes) {
  const std::vector<sim::NodeId> nodes{1, 2};
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges{{1, 99},
                                                               {99, 2}};
  EXPECT_FALSE(is_connected(nodes, edges));  // 99 is not a member
}

TEST(Connectivity, ExcludingBlockedNodes) {
  // Path 1-2-3; blocking 2 disconnects it.
  const std::vector<sim::NodeId> nodes{1, 2, 3};
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges{{1, 2}, {2, 3}};
  const std::unordered_set<sim::NodeId> none;
  const std::unordered_set<sim::NodeId> middle{2};
  const std::unordered_set<sim::NodeId> endpoint{1};
  EXPECT_TRUE(is_connected_excluding(nodes, edges, none));
  EXPECT_FALSE(is_connected_excluding(nodes, edges, middle));
  EXPECT_EQ(count_components_excluding(nodes, edges, middle), 2u);
  // Blocking an endpoint keeps the rest connected.
  EXPECT_TRUE(is_connected_excluding(nodes, edges, endpoint));
}

TEST(Connectivity, ExcludingBlockedSetMatchesRawSetOverload) {
  const std::vector<sim::NodeId> nodes{1, 2, 3};
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges{{1, 2}, {2, 3}};
  EXPECT_TRUE(is_connected_excluding(nodes, edges, sim::BlockedSet()));
  EXPECT_FALSE(is_connected_excluding(nodes, edges, sim::BlockedSet({2})));
  EXPECT_TRUE(is_connected_excluding(nodes, edges, sim::BlockedSet({1})));
}

TEST(Connectivity, AllNodesExcludedCountsAsConnected) {
  const std::vector<sim::NodeId> nodes{1, 2};
  const std::unordered_set<sim::NodeId> all{1, 2};
  EXPECT_TRUE(is_connected_excluding(nodes, {}, all));
}

}  // namespace
}  // namespace reconfnet::graph
