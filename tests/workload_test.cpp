// Tests for the deterministic workload engine (src/workload/, DESIGN.md §12):
// key distributions, arrival processes, the shared percentile accumulator,
// request tracking and conservation, hot-key mitigation, the driver against
// all three Section 7 app adapters, and the determinism contract (same seed
// => identical report; --jobs invariance via TrialRunner).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "runtime/trial_runner.hpp"
#include "support/percentiles.hpp"
#include "support/rng.hpp"
#include "workload/adapters.hpp"
#include "workload/arrival.hpp"
#include "workload/driver.hpp"
#include "workload/hot_key.hpp"
#include "workload/key_dist.hpp"
#include "workload/tracker.hpp"

namespace reconfnet::workload {
namespace {

// --- KeyDist ----------------------------------------------------------------

TEST(KeyDist, UniformDrawsStayInKeyspace) {
  KeyDistConfig config;
  config.keyspace = 100;
  config.theta = 0.0;
  KeyDist dist(config);
  support::Rng rng(1);
  std::vector<std::uint64_t> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto key = dist.next(rng);
    ASSERT_LT(key, 100u);
    ++counts[key];
  }
  // Every key hit, none wildly over-represented (mean 500).
  for (const auto count : counts) {
    EXPECT_GT(count, 300u);
    EXPECT_LT(count, 700u);
  }
}

TEST(KeyDist, ZipfianMatchesExpectedFractions) {
  KeyDistConfig config;
  config.keyspace = 1000;
  config.theta = 0.99;
  config.scramble = false;  // rank r -> key r, to read the shape directly
  KeyDist dist(config);
  support::Rng rng(2);
  const int draws = 200000;
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < draws; ++i) ++counts[dist.next(rng)];
  for (const std::uint64_t rank : {0u, 1u, 10u}) {
    const double expected = dist.expected_fraction(rank);
    const double observed =
        static_cast<double>(counts[rank]) / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.2 * expected + 0.001)
        << "rank " << rank;
  }
  // Popularity is monotone in rank.
  EXPECT_GT(dist.expected_fraction(0), dist.expected_fraction(1));
  EXPECT_GT(dist.expected_fraction(1), dist.expected_fraction(100));
}

TEST(KeyDist, ThetaAtLeastOneIsExact) {
  KeyDistConfig config;
  config.keyspace = 500;
  config.theta = 1.2;  // the Gray-formula approximation breaks down here
  config.scramble = false;
  KeyDist dist(config);
  support::Rng rng(3);
  std::vector<std::uint64_t> counts(500, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto key = dist.next(rng);
    ASSERT_LT(key, 500u);
    ++counts[key];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[200]);
}

TEST(KeyDist, ScrambleIsAPermutation) {
  KeyDistConfig config;
  config.keyspace = 4096;
  config.theta = 0.99;
  KeyDist dist(config);
  std::set<std::uint64_t> keys;
  for (std::uint64_t rank = 0; rank < config.keyspace; ++rank) {
    const auto key = dist.key_of_rank(rank);
    ASSERT_LT(key, config.keyspace);
    keys.insert(key);
  }
  EXPECT_EQ(keys.size(), config.keyspace);
}

TEST(KeyDist, RejectsDegenerateConfigs) {
  EXPECT_THROW(KeyDist(KeyDistConfig{0, 0.0, true}), std::invalid_argument);
  EXPECT_THROW(KeyDist(KeyDistConfig{10, -0.5, true}), std::invalid_argument);
}

// --- ArrivalProcess ---------------------------------------------------------

TEST(Arrival, FixedRateIsExactAndConsumesNoRandomness) {
  ArrivalProcess arrivals(ArrivalConfig{2.5, false});
  support::Rng rng(4);
  support::Rng untouched(4);
  std::uint64_t total = 0;
  for (int round = 0; round < 1000; ++round) total += arrivals.next(rng);
  EXPECT_EQ(total, 2500u);
  // The fixed-rate accumulator must not have advanced the stream.
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(Arrival, PoissonMeanMatchesRate) {
  ArrivalProcess arrivals(ArrivalConfig{7.3, true});
  support::Rng rng(5);
  std::uint64_t total = 0;
  const int rounds = 20000;
  for (int round = 0; round < rounds; ++round) total += arrivals.next(rng);
  const double mean = static_cast<double>(total) / rounds;
  EXPECT_NEAR(mean, 7.3, 0.2);
}

TEST(Arrival, PoissonLargeRateDoesNotUnderflow) {
  // exp(-1000) underflows a double; the chunked draw must still work.
  ArrivalProcess arrivals(ArrivalConfig{1000.0, true});
  support::Rng rng(6);
  std::uint64_t total = 0;
  const int rounds = 200;
  for (int round = 0; round < rounds; ++round) total += arrivals.next(rng);
  const double mean = static_cast<double>(total) / rounds;
  EXPECT_NEAR(mean, 1000.0, 30.0);
}

// --- Percentiles ------------------------------------------------------------

/// Brute-force reference: smallest value whose cumulative count reaches
/// ceil(q * n) over the multiset.
std::uint64_t reference_percentile(std::vector<std::uint64_t> values,
                                   double q) {
  std::sort(values.begin(), values.end());
  const auto need = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(values.size()))));
  return values[need - 1];
}

TEST(Percentiles, ExactAgainstSortedReference) {
  support::Rng rng(7);
  std::vector<std::uint64_t> values;
  support::Percentiles acc(1023);
  for (int i = 0; i < 10000; ++i) {
    const auto value = rng.below(1000);
    values.push_back(value);
    acc.add(value);
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(acc.percentile(q), reference_percentile(values, q)) << q;
  }
  EXPECT_EQ(acc.count(), 10000u);
  EXPECT_EQ(acc.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(acc.max(), *std::max_element(values.begin(), values.end()));
}

TEST(Percentiles, MergeEqualsUnion) {
  support::Rng rng(8);
  support::Percentiles a(255);
  support::Percentiles b(255);
  support::Percentiles whole(255);
  for (int i = 0; i < 5000; ++i) {
    const auto value = rng.below(300);  // includes overflow traffic
    (i % 2 == 0 ? a : b).add(value);
    whole.add(value);
  }
  a.merge(b);
  for (const double q : {0.1, 0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.percentile(q), whole.percentile(q)) << q;
  }
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.overflow(), whole.overflow());
}

TEST(Percentiles, OverflowClampsToMaxValue) {
  support::Percentiles acc(10);
  acc.add(3);
  acc.add(500);
  EXPECT_EQ(acc.overflow(), 1u);
  EXPECT_EQ(acc.percentile(1.0), 10u);  // clamped report
  EXPECT_EQ(acc.max(), 500u);           // true max still visible
}

TEST(Percentiles, MergeRejectsMismatchedShapes) {
  support::Percentiles a(10);
  support::Percentiles b(20);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Percentiles, SortedHelperInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(support::percentile_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(support::percentile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(support::percentile_sorted(sorted, 1.0), 4.0);
}

// --- RequestTracker ---------------------------------------------------------

TEST(RequestTracker, TracksLatencyAndConservation) {
  RequestTracker tracker(63, 8);
  const auto a = tracker.issue(10);
  const auto b = tracker.issue(10);
  const auto c = tracker.issue(11);
  EXPECT_EQ(tracker.in_flight(), 3u);
  tracker.complete(a, 15);  // latency 5
  tracker.complete(b, 12);  // latency 2
  tracker.fail(c, 20);
  EXPECT_EQ(tracker.issued(), 3u);
  EXPECT_EQ(tracker.completed(), 2u);
  EXPECT_EQ(tracker.failed(), 1u);
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_TRUE(tracker.conserved());
  EXPECT_EQ(tracker.latency().count(), 2u);
  EXPECT_EQ(tracker.latency().max(), 5u);
}

TEST(RequestTracker, RecyclesSlots) {
  RequestTracker tracker(63, 4);
  const auto a = tracker.issue(1);
  tracker.complete(a, 2);
  const auto b = tracker.issue(3);
  EXPECT_EQ(a, b);  // free list reuses the slot
  EXPECT_EQ(tracker.issue_round(b), 3);
}

// --- Audit check ------------------------------------------------------------

TEST(WorkloadAudit, ConservationCheckFiresOnLeak) {
  EXPECT_TRUE(audit::check_request_conservation(10, 6, 2, 2).empty());
  const auto violations = audit::check_request_conservation(10, 6, 2, 1);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "workload.conservation");
}

// --- HotKeyMitigator --------------------------------------------------------

MitigationConfig basic_mitigation() {
  MitigationConfig config;
  config.enabled = true;
  config.top_k = 4;
  config.replicate_threshold = 3;
  config.cache_slots = 0;  // isolate the replica path
  return config;
}

TEST(HotKey, ObserveTriggersOnceAtThreshold) {
  HotKeyMitigator mitigator(basic_mitigation(), 8);
  EXPECT_FALSE(mitigator.observe(42));
  EXPECT_FALSE(mitigator.observe(42));
  EXPECT_TRUE(mitigator.observe(42));   // third observation crosses
  EXPECT_FALSE(mitigator.observe(42));  // but only fires once
}

TEST(HotKey, FloodReachesEveryGroupWithoutFaults) {
  HotKeyMitigator mitigator(basic_mitigation(), 8);
  mitigator.replicate(42, 777, /*home_group=*/3, /*round=*/10);
  EXPECT_EQ(mitigator.flood_rounds(), 3);
  EXPECT_EQ(mitigator.stats().replications, 1u);
  EXPECT_EQ(mitigator.stats().replica_messages, 7u);  // 2^3 - 1
  EXPECT_EQ(mitigator.stats().replica_drops, 0u);
  std::uint64_t value = 0;
  // Not yet active before round + flood_rounds.
  EXPECT_FALSE(mitigator.serve_cached(42, 0, 10, value));
  for (std::uint64_t group = 0; group < 8; ++group) {
    value = 0;
    EXPECT_TRUE(mitigator.serve_cached(42, group, 13, value)) << group;
    EXPECT_EQ(value, 777u);
  }
  EXPECT_FALSE(mitigator.serve_cached(43, 0, 13, value));  // other keys miss
}

TEST(HotKey, StarFallbackForNonPowerOfTwoGroups) {
  HotKeyMitigator mitigator(basic_mitigation(), 6);
  mitigator.replicate(1, 5, 2, 0);
  EXPECT_EQ(mitigator.flood_rounds(), 1);
  EXPECT_EQ(mitigator.stats().replica_messages, 5u);
  std::uint64_t value = 0;
  for (std::uint64_t group = 0; group < 6; ++group) {
    EXPECT_TRUE(mitigator.serve_cached(1, group, 2, value)) << group;
  }
}

TEST(HotKey, WriteThroughRefreshUpdatesValue) {
  HotKeyMitigator mitigator(basic_mitigation(), 8);
  mitigator.replicate(42, 1, 0, 0);
  mitigator.on_write(42, 2, 5);
  std::uint64_t value = 0;
  ASSERT_TRUE(mitigator.serve_cached(42, 5, 10, value));
  EXPECT_EQ(value, 2u);
  EXPECT_EQ(mitigator.stats().replications, 2u);
}

TEST(HotKey, CacheRespectsTtl) {
  MitigationConfig config = basic_mitigation();
  config.cache_slots = 2;
  config.cache_ttl = 5;
  HotKeyMitigator mitigator(config, 4);
  mitigator.fill_cache(9, 99, /*entry_group=*/1, /*round=*/10);
  std::uint64_t value = 0;
  EXPECT_TRUE(mitigator.serve_cached(9, 1, 14, value));  // expires at 15
  EXPECT_EQ(value, 99u);
  EXPECT_FALSE(mitigator.serve_cached(9, 1, 15, value));  // TTL elapsed
  EXPECT_FALSE(mitigator.serve_cached(9, 2, 12, value));  // other group's cache
}

TEST(HotKey, LossyFloodLeavesHoles) {
  fault::FaultInjector injector(fault::FaultPlan{}.with_loss(0.9),
                                support::Rng(11));
  HotKeyMitigator mitigator(basic_mitigation(), 16);
  mitigator.set_fault_hook(&injector);
  mitigator.replicate(7, 70, 0, 0);
  EXPECT_GT(mitigator.stats().replica_drops, 0u);
  std::uint64_t value = 0;
  std::size_t holes = 0;
  for (std::uint64_t group = 0; group < 16; ++group) {
    if (!mitigator.serve_cached(7, group, 100, value)) ++holes;
  }
  EXPECT_GT(holes, 0u);
  EXPECT_LT(holes, 16u);  // the home group always has it
}

// --- WorkloadDriver with the app adapters -----------------------------------

DhtAdapterConfig small_dht() {
  DhtAdapterConfig config;
  config.size = 256;
  config.prefill_keys = 1000;
  config.seed = 21;
  return config;
}

TEST(WorkloadDriver, DhtServesPrefilledReads) {
  DhtAdapter adapter(small_dht());
  // Direct adapter check: a routed read returns the deposited value.
  support::Rng rng(1);
  const auto outcome =
      adapter.serve(Op{false, 17, 0}, adapter.home_group(Op{false, 17, 0}),
                    {}, rng);
  ASSERT_TRUE(outcome.ok);
  ASSERT_TRUE(outcome.found);
  EXPECT_EQ(outcome.value, DhtAdapter::prefill_value(17));

  DriverConfig config;
  config.rounds = 64;
  config.write_fraction = 0.1;
  config.keys.keyspace = 1000;
  config.arrivals.rate = 4.0;
  support::Rng master(100);
  const auto report = run_workload(config, adapter, master);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);  // nothing blocked, nothing lost
  EXPECT_EQ(report.issued, report.completed + report.failed + report.in_flight);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_GE(report.p99, report.p50);
}

TEST(WorkloadDriver, DriverPassesConservationAuditEveryRound) {
  DhtAdapter adapter(small_dht());
  DriverConfig config;
  config.rounds = 32;
  config.keys.keyspace = 1000;
  config.arrivals.rate = 8.0;
  config.epoch_every = 10;
  config.blocked_fraction = 0.1;
  config.audit = true;
  const audit::ScopedEnable audit_on;
  support::Rng master(101);
  const auto report = run_workload(config, adapter, master);  // must not throw
  EXPECT_GT(report.issued, 0u);
}

TEST(WorkloadDriver, OverloadRaisesTailLatency) {
  DriverConfig config;
  config.rounds = 96;
  config.write_fraction = 0.0;
  config.keys.keyspace = 1000;
  config.per_group_capacity = 2;

  config.arrivals.rate = 2.0;  // far below capacity
  DhtAdapter calm_adapter(small_dht());
  support::Rng calm_master(102);
  const auto calm = run_workload(config, calm_adapter, calm_master);

  config.arrivals.rate = 64.0;  // beyond aggregate capacity
  DhtAdapter hot_adapter(small_dht());
  support::Rng hot_master(102);
  const auto overloaded = run_workload(config, hot_adapter, hot_master);

  EXPECT_GT(overloaded.p99, calm.p99);
  EXPECT_GT(overloaded.in_flight, calm.in_flight);
  EXPECT_GT(overloaded.max_queue, calm.max_queue);
}

TEST(WorkloadDriver, EpochsStallServiceAndSpikeTail) {
  DriverConfig config;
  config.rounds = 60;
  config.keys.keyspace = 1000;
  config.arrivals.rate = 4.0;
  config.epoch_every = 20;
  DhtAdapter adapter(small_dht());
  support::Rng master(103);
  const auto report = run_workload(config, adapter, master);
  EXPECT_GE(report.epochs_run, 2u);
  EXPECT_GT(report.epoch_rounds, 0u);
  EXPECT_GT(report.rounds, 60u);  // virtual clock includes epoch rounds
  // Requests issued during an epoch wait at least until it ends.
  EXPECT_GT(report.max_latency, report.p50);
}

TEST(WorkloadDriver, MitigationCutsTailUnderSkew) {
  DriverConfig config;
  config.rounds = 128;
  config.write_fraction = 0.0;
  config.keys.keyspace = 1000;
  config.keys.theta = 1.1;
  config.arrivals.rate = 24.0;
  config.per_group_capacity = 2;

  DhtAdapter plain_adapter(small_dht());
  support::Rng plain_master(104);
  const auto plain = run_workload(config, plain_adapter, plain_master);

  config.mitigation.enabled = true;
  config.mitigation.top_k = 8;
  config.mitigation.replicate_threshold = 16;
  config.mitigation.cache_slots = 4;
  config.mitigation.cache_ttl = 16;
  DhtAdapter mitigated_adapter(small_dht());
  support::Rng mitigated_master(104);
  const auto mitigated = run_workload(config, mitigated_adapter,
                                      mitigated_master);

  EXPECT_GT(mitigated.mitigation.replications, 0u);
  EXPECT_GT(mitigated.mitigation.replica_hits + mitigated.mitigation.cache_hits,
            0u);
  EXPECT_LT(mitigated.p999, plain.p999);
  EXPECT_GT(mitigated.completed, plain.completed);
}

TEST(WorkloadDriver, FaultsCauseRetriesButConservationHolds) {
  DriverConfig config;
  config.rounds = 64;
  config.keys.keyspace = 1000;
  config.arrivals.rate = 4.0;
  config.max_attempts = 2;
  config.faults = fault::FaultPlan{}.with_loss(0.5);
  DhtAdapter adapter(small_dht());
  support::Rng master(105);
  const auto report = run_workload(config, adapter, master);
  EXPECT_GT(report.fault_lost_legs, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.failed, 0u);
  EXPECT_EQ(report.issued, report.completed + report.failed + report.in_flight);
}

TEST(WorkloadDriver, PubSubPublishThenFetchRoundTrips) {
  PubSubAdapterConfig adapter_config;
  adapter_config.size = 256;
  adapter_config.topics = 16;
  adapter_config.seed = 22;
  PubSubAdapter adapter(adapter_config);
  support::Rng rng(2);
  const auto published = adapter.serve(Op{true, 3, 777}, 0, {}, rng);
  ASSERT_TRUE(published.ok);
  const auto fetched = adapter.serve(Op{false, 3, 0}, 0, {}, rng);
  ASSERT_TRUE(fetched.ok);
  EXPECT_TRUE(fetched.found);
  EXPECT_EQ(fetched.value, 777u);

  DriverConfig config;
  config.rounds = 32;
  config.write_fraction = 0.5;
  config.keys.keyspace = 64;
  config.arrivals.rate = 2.0;
  support::Rng master(106);
  const auto report = run_workload(config, adapter, master);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.issued, report.completed + report.failed + report.in_flight);
}

TEST(WorkloadDriver, AnonymizerDeliversUserTraffic) {
  AnonymAdapterConfig adapter_config;
  adapter_config.size = 256;
  adapter_config.seed = 23;
  AnonymAdapter adapter(adapter_config);
  DriverConfig config;
  config.rounds = 32;
  config.keys.keyspace = 4096;
  config.arrivals.rate = 4.0;
  support::Rng master(107);
  const auto report = run_workload(config, adapter, master);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.issued, report.completed + report.failed + report.in_flight);
}

// --- Determinism ------------------------------------------------------------

DriverConfig nasty_driver_config() {
  DriverConfig config;
  config.rounds = 48;
  config.write_fraction = 0.2;
  config.keys.keyspace = 500;
  config.keys.theta = 0.99;
  config.arrivals.rate = 6.0;
  config.arrivals.poisson = true;
  config.epoch_every = 16;
  config.blocked_fraction = 0.05;
  config.faults = fault::FaultPlan{}.with_loss(0.1).with_delay(0.1, 2);
  config.mitigation.enabled = true;
  config.mitigation.replicate_threshold = 8;
  return config;
}

std::vector<double> report_fingerprint(const WorkloadReport& report) {
  return {static_cast<double>(report.issued),
          static_cast<double>(report.completed),
          static_cast<double>(report.failed),
          static_cast<double>(report.in_flight),
          static_cast<double>(report.retries),
          static_cast<double>(report.fault_lost_legs),
          static_cast<double>(report.rounds),
          static_cast<double>(report.epoch_rounds),
          static_cast<double>(report.max_queue),
          static_cast<double>(report.p50),
          static_cast<double>(report.p99),
          static_cast<double>(report.p999),
          report.mean_latency,
          static_cast<double>(report.mitigation.cache_hits),
          static_cast<double>(report.mitigation.replica_hits),
          static_cast<double>(report.mitigation.replications),
          static_cast<double>(report.mitigation.replica_bits)};
}

TEST(WorkloadDeterminism, SameSeedSameReport) {
  const auto config = nasty_driver_config();
  DhtAdapterConfig dht = small_dht();
  DhtAdapter adapter_a(dht);
  DhtAdapter adapter_b(dht);
  support::Rng master_a(0xABCD);
  support::Rng master_b(0xABCD);
  const auto a = run_workload(config, adapter_a, master_a);
  const auto b = run_workload(config, adapter_b, master_b);
  EXPECT_EQ(report_fingerprint(a), report_fingerprint(b));
}

TEST(WorkloadDeterminism, JobsDoNotChangeResults) {
  // The same 4-trial grid through 1 worker and 4 workers must agree on every
  // metric, percentiles included (the --jobs contract of the W benches).
  const auto run_grid = [](std::size_t jobs) {
    runtime::TrialRunner runner(0xFEED, jobs);
    return runner.run(4, [](runtime::TrialContext& trial) {
      DhtAdapterConfig dht;
      dht.size = 128;
      dht.prefill_keys = 200;
      dht.seed = 31 + trial.index;
      DhtAdapter adapter(dht);
      DriverConfig config;
      config.rounds = 24;
      config.keys.keyspace = 200;
      config.keys.theta = 0.99;
      config.arrivals.rate = 4.0;
      config.mitigation.enabled = true;
      config.mitigation.replicate_threshold = 8;
      WorkloadDriver driver(config, &adapter);
      return report_fingerprint(driver.run(trial.rng));
    });
  };
  EXPECT_EQ(run_grid(1), run_grid(4));
}

}  // namespace
}  // namespace reconfnet::workload
