// Integration tests: long multi-epoch scenarios that exercise several
// subsystems together, the way a deployment would.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "apps/anonym/anonymizer.hpp"
#include "apps/dht/kary_overlay.hpp"
#include "apps/dht/robust_store.hpp"
#include "apps/pubsub/pubsub.hpp"
#include "churn/overlay.hpp"
#include "combined/overlay.hpp"
#include "dos/overlay.hpp"
#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "support/rng.hpp"

namespace reconfnet {
namespace {

TEST(Integration, TwentyEpochChurnMarathon) {
  // A long-lived swarm: 20 epochs (~400 rounds) of sustained churn with
  // alternating adversary styles. Connectivity must hold at every epoch and
  // the membership algebra must stay exact.
  churn::ChurnOverlay::Config config;
  config.initial_size = 200;
  config.sampling.c = 2.0;
  config.seed = 91;
  churn::ChurnOverlay overlay(config);

  support::Rng rng(92);
  adversary::UniformChurn uniform(0.015, 1.0, 2.0, rng.split(1));
  adversary::SegmentChurn segment(0.015, 2.0, rng.split(2));
  adversary::BurstChurn burst(0.25, 2.0, 5, rng.split(3));

  std::unordered_set<sim::NodeId> departed;
  int retries = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    std::unordered_set<sim::NodeId> before(overlay.members().begin(),
                                           overlay.members().end());
    adversary::ChurnAdversary* adversary =
        epoch % 3 == 0
            ? static_cast<adversary::ChurnAdversary*>(&uniform)
            : epoch % 3 == 1
                  ? static_cast<adversary::ChurnAdversary*>(&segment)
                  : static_cast<adversary::ChurnAdversary*>(&burst);
    if (epoch % 3 == 1) segment.set_order(overlay.cycle_order(0));
    const auto report = overlay.run_epoch(*adversary);
    retries += report.success ? 0 : 1;
    ASSERT_TRUE(report.connected) << "epoch " << epoch;
    // Monotonic membership across the whole marathon.
    for (sim::NodeId id : overlay.members()) {
      ASSERT_FALSE(departed.contains(id)) << "id " << id << " resurrected";
    }
    for (sim::NodeId id : before) {
      std::unordered_set<sim::NodeId> now(overlay.members().begin(),
                                          overlay.members().end());
      if (!now.contains(id)) departed.insert(id);
    }
  }
  EXPECT_LE(retries, 4);
  EXPECT_GT(departed.size(), 100u);  // substantial turnover happened
  EXPECT_GE(overlay.members().size(), 20u);  // shrunk but alive and connected
}

TEST(Integration, DosOverlayLongSiegeWithRetargeting) {
  // Ten epochs under an isolation attacker that re-reads the freshest
  // permitted snapshot every round; lateness equals two epoch lengths.
  dos::DosOverlay::Config config;
  config.size = 1024;
  config.group_c = 2.0;
  config.seed = 93;
  dos::DosOverlay overlay(config);
  support::Rng rng(94);
  adversary::IsolationDos adversary(rng);
  dos::DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.blocked_fraction = 0.3;
  attack.lateness = 40;
  std::size_t disconnected = 0;
  int reorganized = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto report = overlay.run_epoch(attack);
    disconnected += report.disconnected_rounds;
    reorganized += report.reorganized ? 1 : 0;
  }
  EXPECT_EQ(disconnected, 0u);
  EXPECT_GE(reorganized, 8);
}

TEST(Integration, EstimationBootstrapsTheChurnOverlay) {
  // Full pipeline without any oracle: estimate the size distributively,
  // then run reconfiguration epochs using the estimated k.
  support::Rng rng(95);
  const std::size_t n = 256;
  const auto g = graph::HGraph::random(n, 8, rng);
  estimate::SizeEstimationConfig est_config;
  est_config.slots = 32;
  est_config.margin = 2.0;
  const auto estimation = estimate::estimate_size(g, est_config, rng);
  ASSERT_TRUE(estimation.converged);

  churn::ChurnOverlay::Config config;
  config.initial_size = n;
  config.sampling.c = 2.0;
  // Feed the protocol-derived bound through the oracle's slack parameter:
  // slack = estimated k - oracle's own k.
  const auto oracle = sampling::SizeEstimate::from_true_size(n);
  config.size_estimate_slack =
      estimation.loglog_upper[0] - oracle.loglog_upper();
  config.seed = 96;
  churn::ChurnOverlay overlay(config);
  support::Rng churn_rng(97);
  adversary::UniformChurn churn(0.02, 1.0, 2.0, churn_rng);
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(churn);
    ASSERT_TRUE(report.connected);
  }
}

TEST(Integration, DhtServesWorkloadAcrossManyReconfigurations) {
  // A store that keeps serving while the overlay reorganizes five times,
  // with fresh blocking each phase. No record may ever be lost.
  apps::KaryGroupedOverlay::Config config;
  config.size = 512;
  config.arity = 4;
  config.group_c = 2.0;
  config.seed = 98;
  apps::KaryGroupedOverlay overlay(config);
  apps::RobustStore store(&overlay);
  support::Rng rng(99);

  std::uint64_t next_key = 0;
  for (int phase = 0; phase < 5; ++phase) {
    const std::size_t pipeline =
        static_cast<std::size_t>(overlay.cube().dimension()) + 2;
    std::vector<sim::BlockedSet> blocked(pipeline);
    for (auto& set : blocked) {
      for (sim::NodeId node = 0; node < 512; ++node) {
        if (rng.bernoulli(0.25)) set.insert(node);
      }
    }
    // Write a fresh batch...
    std::vector<apps::RobustStore::Request> writes;
    for (int i = 0; i < 40; ++i) {
      writes.push_back({true, next_key, next_key * 2});
      ++next_key;
    }
    const auto wrote = store.execute(writes, blocked, rng);
    EXPECT_EQ(wrote.write_ok, 40u) << "phase " << phase;
    // ...reconfigure...
    const auto epoch = store.reconfigure({});
    ASSERT_TRUE(epoch.success) << epoch.failure_reason;
    // ...and read EVERYTHING ever written through fresh blocking.
    std::vector<apps::RobustStore::Request> reads;
    for (std::uint64_t key = 0; key < next_key; ++key) {
      reads.push_back({false, key, 0});
    }
    const auto read = store.execute(reads, blocked, rng);
    EXPECT_EQ(read.read_ok, next_key) << "phase " << phase;
  }
  EXPECT_EQ(store.record_count(), 200u);
}

TEST(Integration, AnonymizerAcrossGenerationsUnderSiege) {
  // The relay fleet reorganizes repeatedly while serving message batches;
  // delivery never collapses and reorganizations keep succeeding.
  dos::DosOverlay::Config config;
  config.size = 512;
  config.group_c = 2.0;
  config.seed = 100;
  dos::DosOverlay overlay(config);
  support::Rng attacker_rng(101), rng(102);
  adversary::RandomDos attacker(attacker_rng);
  dos::DosOverlay::Attack attack;
  attack.adversary = &attacker;
  attack.blocked_fraction = 0.3;
  attack.lateness = 64;

  std::size_t total = 0;
  std::size_t delivered = 0;
  for (int generation = 0; generation < 6; ++generation) {
    const auto epoch = overlay.run_epoch(attack);
    EXPECT_TRUE(epoch.success) << epoch.failure_reason;
    std::vector<sim::BlockedSet> blocked(apps::kAnonymizerPipelineRounds);
    for (auto& set : blocked) {
      for (sim::NodeId node = 0; node < 512; ++node) {
        if (rng.bernoulli(0.3)) set.insert(node);
      }
    }
    std::vector<apps::AnonymousRequest> requests(40);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      requests[i] = {5000 + total + i, 6000 + total + i};
    }
    const auto report = apps::route_anonymous_batch(overlay.groups(),
                                                    requests, blocked, rng);
    total += report.requests;
    delivered += report.delivered;
  }
  EXPECT_GT(delivered, total * 95 / 100);
}

TEST(Integration, CombinedOverlayFullLifecycle) {
  // Grow from 512 to ~1.5x, crash some nodes, shrink back under blocking —
  // dimensions adapt, membership stays monotonic, connectivity holds.
  combined::CombinedOverlay::Config config;
  config.initial_size = 512;
  config.group_c = 2.0;
  config.seed = 103;
  combined::CombinedOverlay overlay(config);
  support::Rng rng(104);
  adversary::RandomDos dos_adversary(rng.split(1));
  combined::CombinedOverlay::Attack attack;
  attack.adversary = &dos_adversary;
  attack.blocked_fraction = 0.2;
  attack.lateness = 60;

  // Growth phase.
  adversary::UniformChurn grow(0.01, 3.0, 8.0, rng.split(2));
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(grow, attack);
    EXPECT_EQ(report.disconnected_rounds, 0u);
    EXPECT_LE(report.max_dimension - report.min_dimension, 2);
  }
  const std::size_t peak = overlay.size();
  EXPECT_GT(peak, 512u);

  // Crash 5% of the survivors.
  const auto members = overlay.members();
  for (std::size_t i = 0; i < members.size() / 20; ++i) {
    overlay.crash(members[i * 20]);
  }

  // Shrink phase.
  adversary::UniformChurn shrink(0.005, 0.0, 2.0, rng.split(3));
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(shrink, attack);
    EXPECT_EQ(report.disconnected_rounds, 0u);
    EXPECT_LE(report.max_dimension - report.min_dimension, 2);
  }
  EXPECT_LT(overlay.size(), peak);
  EXPECT_TRUE(overlay.crashed().empty());
}

}  // namespace
}  // namespace reconfnet
