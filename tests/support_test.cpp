#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/args.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace reconfnet::support {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7), parent2(7);
  Rng childa = parent1.split(3);
  Rng childb = parent2.split(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(childa.next(), childb.next());

  Rng parent3(7);
  Rng other = parent3.split(4);
  Rng parent4(7);
  Rng same_index = parent4.split(3);
  EXPECT_NE(other.next(), same_index.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsUniformChiSquare) {
  Rng rng(123);
  constexpr std::size_t kBuckets = 16;
  constexpr std::size_t kDraws = 160000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.coin();
  EXPECT_NEAR(static_cast<double>(heads) / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(33);
  const auto perm = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 257u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, PermutationLooksUniformAtFirstPosition) {
  Rng rng(77);
  constexpr std::size_t kSize = 8;
  std::vector<std::uint64_t> counts(kSize, 0);
  for (int i = 0; i < 16000; ++i) ++counts[rng.permutation(kSize)[0]];
  EXPECT_GT(chi_square_uniform(counts).p_value, 1e-4);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> values{1, 2, 3, 4, 5};
  const auto s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, SummarizeEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, RegularizedGammaQKnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(regularized_gamma_q(1.0, 2.0), std::exp(-2.0), 1e-10);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_q(0.5, 1.0), std::erfc(1.0), 1e-10);
  // Chi-square with 2 dof: Q(1, s/2); median ~1.386 -> 0.5.
  EXPECT_NEAR(regularized_gamma_q(1.0, 1.386 / 2.0 * 2.0 / 2.0), 0.5, 1e-3);
}

TEST(Stats, ChiSquareDetectsSkew) {
  const std::vector<std::uint64_t> skewed{1000, 10, 10, 10};
  EXPECT_LT(chi_square_uniform(skewed).p_value, 1e-6);
}

TEST(Stats, ChiSquareAcceptsUniform) {
  const std::vector<std::uint64_t> flat{1000, 1010, 990, 1001};
  EXPECT_GT(chi_square_uniform(flat).p_value, 0.05);
}

TEST(Stats, ChiSquareValidatesInput) {
  EXPECT_THROW(chi_square_uniform(std::vector<std::uint64_t>{5}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_uniform(std::vector<std::uint64_t>{0, 0}),
               std::invalid_argument);
}

TEST(Stats, TvDistance) {
  EXPECT_DOUBLE_EQ(
      tv_distance_from_uniform(std::vector<std::uint64_t>{10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(
      tv_distance_from_uniform(std::vector<std::uint64_t>{10, 0}), 0.5);
  EXPECT_DOUBLE_EQ(
      tv_distance_from_uniform(std::vector<std::uint64_t>{4, 0, 0, 0}), 0.75);
}

TEST(Stats, ChernoffBoundsMatchLemma1) {
  // Upper: exp(-min(d^2,d) mu / 3).
  EXPECT_NEAR(chernoff_upper_bound(30.0, 0.5), std::exp(-0.25 * 30.0 / 3.0),
              1e-12);
  EXPECT_NEAR(chernoff_upper_bound(30.0, 2.0), std::exp(-2.0 * 30.0 / 3.0),
              1e-12);
  // Lower: exp(-d^2 mu / 2).
  EXPECT_NEAR(chernoff_lower_bound(30.0, 0.5), std::exp(-0.25 * 30.0 / 2.0),
              1e-12);
  // Bounds are probabilities.
  EXPECT_LE(chernoff_upper_bound(100.0, 1.0), 1.0);
  EXPECT_GE(chernoff_upper_bound(100.0, 1.0), 0.0);
}

TEST(Stats, HistogramTracksCounts) {
  Histogram h;
  for (int v : {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}) h.add(v);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 9);
  EXPECT_EQ(h.at(5), 3u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_NEAR(h.mean(), 44.0 / 11.0, 1e-12);
  const auto values = h.values();
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(Stats, HistogramMerge) {
  Histogram a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.at(2), 2u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"n", "value"});
  t.add_row({"1", "10.5"});
  t.add_row({"1000", "2.25"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{-5}), "-5");
  EXPECT_EQ(Table::num(std::uint64_t{7}), "7");
}

TEST(Table, ToCsvQuotesSpecialCells) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"comma,inside", "say \"hi\""});
  t.add_row({"multi\nline", "trailing"});
  std::ostringstream out;
  t.to_csv(out);
  EXPECT_EQ(out.str(),
            "name,value\n"
            "plain,1\n"
            "\"comma,inside\",\"say \"\"hi\"\"\"\n"
            "\"multi\nline\",trailing\n");
}

TEST(Table, ToCsvEmitsHeaderOnlyForEmptyTable) {
  Table t({"a", "b"});
  std::ostringstream out;
  t.to_csv(out);
  EXPECT_EQ(out.str(), "a,b\n");
}

// --- Args -------------------------------------------------------------------

/// Builds an Args from a literal argv (argv[0] = program, argv[1] = command,
/// parsing starts at index 2 like the bench/sim binaries).
Args make_args(const std::vector<const char*>& tail,
               const std::vector<std::string>& switches = {},
               const std::vector<std::string>& optional_value = {}) {
  std::vector<const char*> argv{"prog", "cmd"};
  argv.insert(argv.end(), tail.begin(), tail.end());
  return Args(static_cast<int>(argv.size()), argv.data(), 2, switches,
              optional_value);
}

TEST(Args, ParsesTypedValuesAndFallbacks) {
  const auto args = make_args({"--n", "256", "--rate", "2.5", "--name", "x"});
  EXPECT_EQ(args.get_size("n", 1), 256u);
  EXPECT_EQ(args.get_u64("n", 1), 256u);
  EXPECT_EQ(args.get_int("n", 1), 256);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_EQ(args.get_size("missing", 77), 77u);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, SwitchesTakeNoValue) {
  const auto args = make_args({"--static", "--n", "64"}, {"static"});
  EXPECT_TRUE(args.has("static"));
  EXPECT_EQ(args.get_size("n", 1), 64u);
}

TEST(Args, OptionalValueFlagConsumesOnlyNonFlagToken) {
  const auto with_value =
      make_args({"--json", "out.json", "--n", "8"}, {}, {"json"});
  EXPECT_EQ(with_value.get_string("json", "?"), "out.json");
  EXPECT_EQ(with_value.get_size("n", 1), 8u);
  const auto without_value = make_args({"--json", "--n", "8"}, {}, {"json"});
  EXPECT_TRUE(without_value.has("json"));
  EXPECT_EQ(without_value.get_string("json", "?"), "");
  EXPECT_EQ(without_value.get_size("n", 1), 8u);
}

TEST(Args, RejectsMalformedNumbersNamingTheFlag) {
  const auto args = make_args({"--n", "12abc", "--rate", "fast", "--neg",
                               "-3", "--big",
                               "99999999999999999999999999999"});
  try {
    (void)args.get_size("n", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--n"), std::string::npos);
  }
  EXPECT_THROW((void)args.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_size("neg", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_u64("big", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("big", 0), std::invalid_argument);
  EXPECT_EQ(args.get_int("neg", 0), -3);
}

TEST(Args, RejectsNonFlagTokensAndMissingValues) {
  EXPECT_THROW(make_args({"stray"}), std::invalid_argument);
  EXPECT_THROW(make_args({"--n"}), std::invalid_argument);
}

}  // namespace
}  // namespace reconfnet::support
