#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {
namespace {

std::vector<sim::NodeId> make_members(std::size_t n) {
  std::vector<sim::NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = i;
  return members;
}

TEST(UniformChurn, RespectsTurnoverAndGrowth) {
  support::Rng rng(1);
  UniformChurn churn(0.1, 1.0, 2.0, rng);
  sim::IdAllocator ids(1000);
  const auto members = make_members(100);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  EXPECT_EQ(batch.leaves.size(), 10u);
  EXPECT_EQ(batch.joins.size(), 10u);
}

TEST(UniformChurn, JoinsSponsoredBySurvivors) {
  support::Rng rng(2);
  UniformChurn churn(0.3, 1.0, 4.0, rng);
  sim::IdAllocator ids(1000);
  const auto members = make_members(50);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  const std::unordered_set<sim::NodeId> leaves(batch.leaves.begin(),
                                               batch.leaves.end());
  for (const auto& [fresh, sponsor] : batch.joins) {
    EXPECT_GE(fresh, 1000u);  // allocated, never reused
    EXPECT_LT(sponsor, 50u);
    EXPECT_FALSE(leaves.contains(sponsor));
  }
}

TEST(UniformChurn, RespectsSponsorCap) {
  support::Rng rng(3);
  const double rate = 2.0;
  UniformChurn churn(0.5, 1.0, rate, rng);
  sim::IdAllocator ids(1000);
  const auto members = make_members(40);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  std::unordered_map<sim::NodeId, int> per_sponsor;
  for (const auto& [fresh, sponsor] : batch.joins) ++per_sponsor[sponsor];
  for (const auto& [sponsor, count] : per_sponsor) EXPECT_LE(count, 2);
}

TEST(UniformChurn, DoesNotTargetDepartingNodes) {
  support::Rng rng(4);
  UniformChurn churn(0.5, 1.0, 2.0, rng);
  sim::IdAllocator ids(1000);
  const auto members = make_members(20);
  const std::vector<sim::NodeId> departing{0, 1, 2, 3, 4};
  ChurnView view{0, members, departing};
  const auto batch = churn.next(view, ids);
  const std::unordered_set<sim::NodeId> dep(departing.begin(),
                                            departing.end());
  for (auto node : batch.leaves) EXPECT_FALSE(dep.contains(node));
  for (const auto& [fresh, sponsor] : batch.joins) {
    EXPECT_FALSE(dep.contains(sponsor));
  }
}

TEST(UniformChurn, NeverRemovesEveryNode) {
  support::Rng rng(5);
  UniformChurn churn(1.0, 1.0, 100.0, rng);
  sim::IdAllocator ids(1000);
  const auto members = make_members(10);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  EXPECT_LT(batch.leaves.size(), members.size());
}

TEST(UniformChurn, InvalidRateThrows) {
  support::Rng rng(6);
  EXPECT_THROW(UniformChurn(0.1, 1.0, 0.5, rng), std::invalid_argument);
}

TEST(SegmentChurn, RemovesContiguousRunOfGivenOrder) {
  support::Rng rng(7);
  SegmentChurn churn(0.2, 2.0, rng);
  const auto members = make_members(30);
  churn.set_order(members);  // order = 0,1,...,29 around the cycle
  sim::IdAllocator ids(1000);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  ASSERT_EQ(batch.leaves.size(), 6u);
  // Leaves form a contiguous run mod 30.
  std::vector<sim::NodeId> sorted = batch.leaves;
  std::sort(sorted.begin(), sorted.end());
  bool contiguous = true;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1] + 1) contiguous = false;
  }
  // A run may wrap around the cycle boundary; then it splits into a prefix
  // and a suffix of the sorted order.
  if (!contiguous) {
    std::size_t breaks = 0;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] != sorted[i - 1] + 1) ++breaks;
    }
    EXPECT_EQ(breaks, 1u);
    EXPECT_EQ(sorted.front(), 0u);
    EXPECT_EQ(sorted.back(), 29u);
  }
}

TEST(SegmentChurn, MatchesJoinsToLeaves) {
  support::Rng rng(8);
  SegmentChurn churn(0.25, 4.0, rng);
  const auto members = make_members(40);
  churn.set_order(members);
  sim::IdAllocator ids(1000);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  EXPECT_EQ(batch.joins.size(), batch.leaves.size());
}

TEST(SponsorFloodChurn, FloodsSingleSponsor) {
  support::Rng rng(9);
  SponsorFloodChurn churn(0.2, 3.0, rng);
  const auto members = make_members(50);
  sim::IdAllocator ids(1000);
  ChurnView view{0, members, {}};
  const auto batch = churn.next(view, ids);
  ASSERT_FALSE(batch.joins.empty());
  EXPECT_LE(batch.joins.size(), 3u);  // ceil(rate) cap
  const sim::NodeId sponsor = batch.joins.front().second;
  for (const auto& [fresh, s] : batch.joins) EXPECT_EQ(s, sponsor);
}

TEST(BurstChurn, QuietBetweenBursts) {
  support::Rng rng(10);
  BurstChurn churn(0.2, 2.0, 3, rng);
  const auto members = make_members(30);
  sim::IdAllocator ids(1000);
  ChurnView view{0, members, {}};
  EXPECT_TRUE(churn.next(view, ids).leaves.empty());
  EXPECT_TRUE(churn.next(view, ids).leaves.empty());
  EXPECT_FALSE(churn.next(view, ids).leaves.empty());
  EXPECT_TRUE(churn.next(view, ids).leaves.empty());
}

sim::TopologySnapshot ring_snapshot(std::size_t n) {
  sim::TopologySnapshot snap;
  snap.round = 0;
  for (std::size_t i = 0; i < n; ++i) snap.nodes.push_back(i);
  for (std::size_t i = 0; i < n; ++i) {
    snap.edges.emplace_back(i, (i + 1) % n);
  }
  return snap;
}

// Tests hand adversaries a view directly (lateness 0: the trivial contract),
// standing in for the harness serve site.
sim::StaleSnapshotView stale(const sim::TopologySnapshot& snap) {
  return sim::StaleSnapshotView(&snap, snap.round, 0);
}

TEST(RandomDos, RespectsBudgetAndNodeSet) {
  support::Rng rng(11);
  RandomDos dos(rng);
  const auto snap = ring_snapshot(20);
  const auto blocked = dos.choose(stale(snap), {}, 7, 0);
  EXPECT_EQ(blocked.size(), 7u);
  for (auto node : blocked.sorted_ids()) EXPECT_LT(node, 20u);
}

TEST(RandomDos, NoSnapshotBlocksNothing) {
  support::Rng rng(12);
  RandomDos dos(rng);
  EXPECT_EQ(dos.choose(sim::StaleSnapshotView{}, {}, 10, 0).size(), 0u);
}

TEST(IsolationDos, IsolatesANonBlockedVictim) {
  support::Rng rng(13);
  IsolationDos dos(rng);
  const auto snap = ring_snapshot(20);
  // Budget 2 = exactly one victim's two ring neighbors.
  const auto blocked = dos.choose(stale(snap), {}, 2, 0);
  EXPECT_EQ(blocked.size(), 2u);
  // Some NON-blocked node has both its ring neighbors blocked: isolated.
  bool isolated = false;
  for (sim::NodeId v = 0; v < 20; ++v) {
    if (blocked.contains(v)) continue;
    const auto prev = (v + 19) % 20;
    const auto next = (v + 1) % 20;
    if (blocked.contains(prev) && blocked.contains(next)) isolated = true;
  }
  EXPECT_TRUE(isolated);
}

TEST(IsolationDos, SpendsFullBudget) {
  support::Rng rng(14);
  IsolationDos dos(rng);
  const auto snap = ring_snapshot(30);
  EXPECT_EQ(dos.choose(stale(snap), {}, 10, 0).size(), 10u);
}

TEST(GroupWipeDos, WipesCliquesInSnapshot) {
  // Two 4-cliques joined by one edge; budget 4 should kill one clique.
  sim::TopologySnapshot snap;
  snap.round = 0;
  for (sim::NodeId v = 0; v < 8; ++v) snap.nodes.push_back(v);
  for (sim::NodeId a = 0; a < 4; ++a) {
    for (sim::NodeId b = a + 1; b < 4; ++b) snap.edges.emplace_back(a, b);
  }
  for (sim::NodeId a = 4; a < 8; ++a) {
    for (sim::NodeId b = a + 1; b < 8; ++b) snap.edges.emplace_back(a, b);
  }
  snap.edges.emplace_back(0, 4);
  support::Rng rng(15);
  GroupWipeDos dos(rng);
  const auto blocked = dos.choose(stale(snap), {}, 4, 0);
  EXPECT_EQ(blocked.size(), 4u);
  // All four blocked nodes belong to the same clique.
  std::size_t low = 0, high = 0;
  for (auto v : blocked.sorted_ids()) (v < 4 ? low : high) += 1;
  EXPECT_TRUE(low == 4 || high == 4 ||
              // 0 and 4 have an extra neighbor, so the clique including them
              // may be rejected under a tight budget; accept 3+1 splits that
              // still wipe 3 of 4 members.
              low >= 3 || high >= 3);
}

TEST(StickyRandomDos, HoldsBlockedSet) {
  support::Rng rng(16);
  StickyRandomDos dos(rng, 3);
  const auto snap = ring_snapshot(40);
  const auto first = dos.choose(stale(snap), {}, 10, 0);
  const auto second = dos.choose(stale(snap), {}, 10, 1);
  EXPECT_EQ(first.sorted_ids(), second.sorted_ids());
}

// Two disjoint 4-cliques: the unambiguous apparent-group partition
// {0,1,2,3} / {4,5,6,7}.
sim::TopologySnapshot two_cliques_snapshot(sim::Round round) {
  sim::TopologySnapshot snap;
  snap.round = round;
  for (sim::NodeId v = 0; v < 8; ++v) snap.nodes.push_back(v);
  for (sim::NodeId a = 0; a < 4; ++a) {
    for (sim::NodeId b = a + 1; b < 4; ++b) snap.edges.emplace_back(a, b);
  }
  for (sim::NodeId a = 4; a < 8; ++a) {
    for (sim::NodeId b = a + 1; b < 8; ++b) snap.edges.emplace_back(a, b);
  }
  return snap;
}

// The same eight nodes regrouped across the old boundary: neither original
// clique survives as a majority anywhere.
sim::TopologySnapshot regrouped_cliques_snapshot(sim::Round round) {
  sim::TopologySnapshot snap;
  snap.round = round;
  for (sim::NodeId v = 0; v < 8; ++v) snap.nodes.push_back(v);
  const std::vector<std::vector<sim::NodeId>> cliques{{0, 1, 4, 5},
                                                      {2, 3, 6, 7}};
  for (const auto& clique : cliques) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        snap.edges.emplace_back(clique[i], clique[j]);
      }
    }
  }
  return snap;
}

TEST(AdaptiveDos, WipesApparentGroupsWhilePersistenceHolds) {
  AdaptiveDos dos(support::Rng(20));
  EXPECT_DOUBLE_EQ(dos.persistence(), 1.0);
  // Initial persistence 1.0: the whole budget goes to whole-group wipes,
  // smallest group first with ties broken on the lowest member id.
  const auto snap_a = two_cliques_snapshot(0);
  const auto first = dos.choose(stale(snap_a), {}, 4, 10);
  EXPECT_EQ(first.sorted_ids(), (std::vector<sim::NodeId>{0, 1, 2, 3}));
  // The next snapshot shows the same partition: the attacked group
  // persisted, so the belief (and the strategy) holds.
  const auto snap_b = two_cliques_snapshot(5);
  const auto second = dos.choose(stale(snap_b), {}, 4, 15);
  EXPECT_EQ(second.sorted_ids(), (std::vector<sim::NodeId>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(dos.persistence(), 1.0);
}

TEST(AdaptiveDos, PersistenceDecaysWhenReconfigurationDissolvesGroups) {
  AdaptiveDos dos(support::Rng(20));
  const auto snap_a = two_cliques_snapshot(0);
  (void)dos.choose(stale(snap_a), {}, 4, 10);
  // Reconfiguration regrouped the nodes: no current group holds a strict
  // majority of the attacked one, so the persistence belief halves and the
  // budget shifts from group wipes to random pressure.
  const auto snap_c = regrouped_cliques_snapshot(10);
  const auto plan = dos.choose(stale(snap_c), {}, 4, 20);
  EXPECT_DOUBLE_EQ(dos.persistence(), 0.5);
  EXPECT_EQ(plan.size(), 4u);  // budget still fully spent
  for (auto node : plan.sorted_ids()) EXPECT_LT(node, 8u);
}

TEST(AdaptiveDos, EmptyViewFallsBackToRandomOverUniverse) {
  AdaptiveDos dos(support::Rng(21));
  const auto universe = make_members(30);
  const auto blocked =
      dos.choose(sim::StaleSnapshotView{}, universe, 5, 0);
  EXPECT_EQ(blocked.size(), 5u);
  for (auto node : blocked.sorted_ids()) EXPECT_LT(node, 30u);
}

TEST(AdaptiveDos, LeakProbeOutputIsFunctionOfViewAndOwnState) {
  // Replay probe: two identically-seeded adversaries fed the same view
  // CONTENTS through distinct snapshot objects must produce identical plans
  // step for step. A divergence would mean the output depends on something
  // beyond (stale view, universe, budget, own state) — object identity,
  // hidden globals, live overlay state: exactly the covert channels
  // reconfnet_oraclecheck bans statically and RECONFNET_ORACLEAUDIT checks
  // dynamically.
  AdaptiveDos a(support::Rng(22));
  AdaptiveDos b(support::Rng(22));
  for (int step = 0; step < 6; ++step) {
    const auto round = static_cast<sim::Round>(5 * step);
    const auto snap_a = two_cliques_snapshot(round);
    auto snap_b = two_cliques_snapshot(round);
    snap_b.nodes.reserve(64);  // same observable content, different object
    const auto view_a = stale(snap_a);
    const auto view_b = stale(snap_b);
    const auto plan_a = a.choose(view_a, {}, 3, 100 + step);
    const auto plan_b = b.choose(view_b, {}, 3, 100 + step);
    EXPECT_EQ(plan_a.sorted_ids(), plan_b.sorted_ids()) << "step " << step;
    // The access log proves the reads went through the audited view.
    EXPECT_GT(view_a.reads(), 0u);
    EXPECT_EQ(view_a.reads(), view_b.reads());
  }
}

}  // namespace
}  // namespace reconfnet::adversary
