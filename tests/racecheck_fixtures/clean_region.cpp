// Fixture: the canonical PR-2 pattern — every shared write goes through
// slots[i], randomness is derived from the shard index, nothing else is
// touched. Must produce zero findings.
#include <cstddef>
#include <vector>

namespace fixture {

struct Pool {};
void parallel_for(Pool& pool, std::size_t count, int fn);

void drive(Pool& pool, std::size_t count) {
  std::vector<double> slots(count);
  const double scale = 2.0;
  parallel_for(pool, count, [&](std::size_t i) {
    Rng stream(master.split(i));
    slots[i] = scale * stream.uniform();
  });
}

}  // namespace fixture
