// Fixture: RNR510 (site leg) — a parallel dispatch site in a function with
// no [[region]] entry covering it. The spec used by the test declares a
// region for drive() only; rogue() is the drift.
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count) {
  std::vector<int> slots(count);
  parallel_for(pool, count, [&](std::size_t i) {
    slots[i] = static_cast<int>(i);
  });
}

void rogue(Pool& pool, std::size_t count) {
  std::vector<int> cells(count);
  parallel_for(pool, count, [&](std::size_t i) {
    cells[i] = static_cast<int>(i);
  });
}

}  // namespace fixture
