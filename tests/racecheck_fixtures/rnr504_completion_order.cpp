// Fixture: RNR504 — completion-order merging: the body grows a shared
// container instead of writing a preallocated slot, so element order is
// whatever the scheduler produced.
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count) {
  std::vector<int> merged;
  parallel_for(pool, count, [&](std::size_t i) {
    merged.push_back(static_cast<int>(i));
  });
}

}  // namespace fixture
