// Fixture: RNR502 — randomness that is not derived from the shard index.
// `shared_rng` is a shared generator consumed from every shard (draw order
// becomes schedule-dependent); `fixed` is a body-constructed Rng with a
// constant seed (every shard draws the same stream).
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count, support::Rng& shared_rng) {
  std::vector<double> slots(count);
  parallel_for(pool, count, [&](std::size_t i) {
    Rng fixed(12345);
    slots[i] = shared_rng.uniform() + fixed.uniform();
  });
}

}  // namespace fixture
