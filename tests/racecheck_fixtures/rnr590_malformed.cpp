// Fixture: RNR590 — suppression comments that do not parse: a missing rule
// id, a truncated allow(, and a rule id outside the tool's RNR namespace.
#include <cstddef>

namespace fixture {

// reconfnet-racecheck: allow() forgot the rule id
int a = 0;

// reconfnet-racecheck: allow(RNR501 missing close paren
int b = 0;

// reconfnet-racecheck: allow(RNL101) wrong tool's rule id
int c = 0;

}  // namespace fixture
