// Fixture: RNR506 — a parallel body reaching known-global mutable state:
// directly (the g_epoch assignment and read) and through a same-file helper
// (bump(), caught by the one-level call-graph walk).
#include <cstddef>
#include <vector>

namespace fixture {

int g_epoch = 0;

void bump() { ++g_epoch; }

void drive(Pool& pool, std::size_t count) {
  std::vector<int> slots(count);
  parallel_for(pool, count, [&](std::size_t i) {
    bump();
    slots[i] = g_epoch;
  });
}

}  // namespace fixture
