// Fixture: inline suppression behaviour. The first region body carries a
// reasoned allow that silences its RNR501; the final comment covers a line
// the rule never fires on, so it shows up in the --stale-suppressions
// report instead.
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count) {
  std::vector<int> slots(count);
  long total = 0;
  parallel_for(pool, count, [&](std::size_t i) {
    // reconfnet-racecheck: allow(RNR501) fixture: documented reduction
    total += static_cast<long>(i);
    // reconfnet-racecheck: allow(RNR503) nothing here violates RNR503
    slots[i] = static_cast<int>(i);
  });
}

}  // namespace fixture
