// Fixture: RNR505 — ad-hoc synchronization introduced outside src/runtime/.
// Fed to the driver under a src/sim/ path; both the mutex member and the
// lock_guard use fire.
#include <mutex>

namespace fixture {

struct Cache {
  std::mutex lock;
  int value = 0;
};

int read_cache(Cache& cache) {
  std::lock_guard<std::mutex> guard(cache.lock);
  return cache.value;
}

}  // namespace fixture
