// Fixture: RNR503 — container mutation indexed by something other than the
// shard index: a neighbouring slot (i + 1) and a fixed cell (0). Both make
// the result depend on task completion order.
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count) {
  std::vector<int> slots(count + 1);
  parallel_for(pool, count, [&](std::size_t i) {
    slots[i + 1] = static_cast<int>(i);
    slots[0] = static_cast<int>(i);
  });
}

}  // namespace fixture
