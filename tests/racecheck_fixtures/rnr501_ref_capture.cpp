// Fixture: RNR501 — a parallel body that captures mutable enclosing state
// by reference and mutates it. `slots` is the declared per-shard slot and
// stays legal; `total` is the violation (both the explicit capture and the
// compound-assignment write fire).
#include <cstddef>
#include <vector>

namespace fixture {

void drive(Pool& pool, std::size_t count) {
  std::vector<int> slots(count);
  long total = 0;
  parallel_for(pool, count, [&total, &slots](std::size_t i) {
    total += static_cast<long>(i);
    slots[i] = static_cast<int>(i);
  });
}

}  // namespace fixture
