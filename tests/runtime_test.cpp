// Tests for the parallel experiment runtime (src/runtime/): the thread pool,
// the deterministic trial runner, the JSON writer/parser, and the structured
// results layer. The load-bearing property is the determinism contract —
// TrialRunner output is a pure function of (master_seed, trial_index), so a
// --jobs 8 run must reproduce a --jobs 1 run byte for byte (modulo the
// "timing" section of a results file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/json.hpp"
#include "runtime/results.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trial_runner.hpp"
#include "support/rng.hpp"

namespace reconfnet::runtime {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      const std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
}

TEST(ThreadPool, WaitIdleThenReuse) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 20 * (round + 1));
  }
}

// --- parallel_for -----------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom at 17");
                   }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> counter{0};
  parallel_for(pool, 8, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ParallelFor, ReportsLowestFailingIndex) {
  ThreadPool pool(4);
  try {
    parallel_for(pool, 64, [](std::size_t i) {
      if (i == 5 || i == 60) {
        throw std::runtime_error("fail " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "fail 5");
  }
}

// --- TrialRunner determinism ------------------------------------------------

TEST(TrialRunner, TrialRngIsPureFunctionOfSeedAndIndex) {
  auto a = TrialRunner::trial_rng(42, 7);
  auto b = TrialRunner::trial_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  auto c = TrialRunner::trial_rng(42, 8);
  auto d = TrialRunner::trial_rng(43, 7);
  auto fresh = TrialRunner::trial_rng(42, 7);
  EXPECT_NE(fresh.next(), c.next());
  EXPECT_NE(TrialRunner::trial_rng(42, 7).next(), d.next());
}

TEST(TrialRunner, ResultsArriveInSubmissionOrder) {
  TrialRunner runner(1, 8);
  const auto results = runner.run(
      100, [](TrialContext& trial) { return trial.index; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

TEST(TrialRunner, ParallelEqualsSerial) {
  const auto run_with = [](std::size_t jobs) {
    TrialRunner runner(0xBE5C0FFEE, jobs);
    return runner.run(32, [](TrialContext& trial) {
      // Consume a trial-dependent amount of randomness so any cross-trial
      // RNG sharing would show up as divergence.
      std::uint64_t acc = 0;
      const std::size_t draws = 10 + trial.index % 7;
      for (std::size_t i = 0; i < draws; ++i) acc ^= trial.rng.next();
      return acc;
    });
  };
  const auto serial = run_with(1);
  const auto parallel_result = run_with(8);
  EXPECT_EQ(serial, parallel_result);
}

TEST(TrialRunner, ExceptionInTrialPropagates) {
  TrialRunner runner(1, 4);
  EXPECT_THROW(runner.run(16,
                          [](TrialContext& trial) -> int {
                            if (trial.index == 3) {
                              throw std::runtime_error("trial failed");
                            }
                            return 0;
                          }),
               std::runtime_error);
}

// --- Json writer/parser -----------------------------------------------------

TEST(Json, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(Json::escape("plain"), "plain");
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Json::escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(Json, DumpCompactAndPretty) {
  Json doc = Json::object();
  doc["name"] = "x";
  doc["values"] = Json::array();
  doc["values"].push_back(1);
  doc["values"].push_back(2.5);
  EXPECT_EQ(doc.dump(-1), R"({"name":"x","values":[1,2.5]})");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find("\n  \"name\": \"x\""), std::string::npos);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mid"] = 3;
  EXPECT_EQ(doc.dump(-1), R"({"zebra":1,"alpha":2,"mid":3})");
}

TEST(Json, RoundTripThroughParser) {
  Json doc = Json::object();
  doc["string"] = "quote \" backslash \\ newline \n done";
  doc["int"] = std::int64_t{-42};
  doc["uint"] = std::uint64_t{18446744073709551615ull};
  doc["double"] = 0.1;
  doc["bool"] = true;
  doc["null"] = Json();
  doc["nested"] = Json::object();
  doc["nested"]["arr"] = Json::array();
  doc["nested"]["arr"].push_back(Json::object());
  const std::string text = doc.dump(2);
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.dump(2), text);
  EXPECT_EQ(parsed.find("string")->as_string(),
            "quote \" backslash \\ newline \n done");
  EXPECT_EQ(parsed.find("uint")->as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed.find("double")->as_double(), 0.1);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("'single'"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(Json, ParseHandlesUnicodeEscapes) {
  const Json parsed = Json::parse("\"a\\u00e9b\"");
  EXPECT_EQ(parsed.as_string(),
            "a\xc3\xa9"
            "b");
}

TEST(Json, EraseRemovesMember) {
  Json doc = Json::object();
  doc["keep"] = 1;
  doc["drop"] = 2;
  doc.erase("drop");
  EXPECT_EQ(doc.find("drop"), nullptr);
  EXPECT_NE(doc.find("keep"), nullptr);
}

// --- BenchResults -----------------------------------------------------------

Json results_fixture(std::size_t jobs, double wall) {
  BenchResults results("unit_test", "title", "claim");
  results.set_meta("seed", Json(std::uint64_t{7}));
  support::Table table({"a", "b"});
  table.add_row({"1", "x,y \"quoted\""});
  results.add_table("t", table);
  const std::vector<double> series{1.0, 2.0, 3.0, 4.0};
  results.add_metric("g", "m", series);
  results.add_note("a note");
  results.set_exit_code(0);
  results.set_timing(jobs, wall);
  return Json::parse(results.to_json().dump(2));
}

TEST(BenchResults, SchemaShape) {
  const Json doc = results_fixture(1, 0.5);
  EXPECT_EQ(doc.find("schema")->as_string(), "reconfnet-bench-v1");
  EXPECT_EQ(doc.find("experiment")->as_string(), "unit_test");
  EXPECT_EQ(doc.find("meta")->find("seed")->as_uint(), 7u);
  const Json& metric = doc.find("metrics")->at(0);
  EXPECT_EQ(metric.find("name")->as_string(), "m");
  EXPECT_EQ(metric.find("values")->size(), 4u);
  EXPECT_DOUBLE_EQ(metric.find("summary")->find("mean")->as_double(), 2.5);
  const Json& table = doc.find("tables")->at(0);
  EXPECT_EQ(table.find("header")->at(1).as_string(), "b");
  EXPECT_EQ(doc.find("timing")->find("jobs")->as_uint(), 1u);
}

TEST(BenchResults, OnlyTimingDiffersAcrossJobCounts) {
  Json serial = results_fixture(1, 0.25);
  Json parallel_doc = results_fixture(8, 99.0);
  EXPECT_NE(serial.dump(2), parallel_doc.dump(2));
  serial.erase("timing");
  parallel_doc.erase("timing");
  EXPECT_EQ(serial.dump(2), parallel_doc.dump(2));
}

}  // namespace
}  // namespace reconfnet::runtime
