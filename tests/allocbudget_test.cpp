// Dynamic half of the hot-path allocation contract (the static half is
// reconfnet_hotcheck; see tools/hotcheck/hotcheck.hpp). The budgets live in
// tools/hotcheck/hotpaths.toml as [[budget]] entries, so the numbers the
// checker's spec declares are the numbers this binary enforces at runtime —
// editing a budget without keeping this suite green is caught in CI.
//
// This is the only binary that links reconfnet_alloccount (the counting
// operator new/delete replacement, src/support/alloc_counter.cpp); every
// other target keeps the toolchain allocator.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <cstring>

#include "adversary/churn.hpp"
#include "churn/overlay.hpp"
#include "tools/hotcheck/hotcheck.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/alloc_counter.hpp"
#include "support/rng.hpp"
#include "transport/udp.hpp"
#include "transport/wire.hpp"
#include "workload/adapters.hpp"
#include "workload/driver.hpp"

namespace reconfnet {
namespace {

// --- spec access ------------------------------------------------------------

const hotcheck::Spec& spec() {
  static const hotcheck::Spec kSpec = [] {
    std::ifstream in(RECONFNET_HOTPATHS_TOML, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot read " << RECONFNET_HOTPATHS_TOML;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    hotcheck::Spec parsed;
    std::string error;
    EXPECT_TRUE(hotcheck::parse_spec(buffer.str(), parsed, error)) << error;
    return parsed;
  }();
  return kSpec;
}

/// Fetches one integer key of one named [[budget]] entry; fails the test if
/// either is missing (budget drift must be loud, not silently unbounded).
std::uint64_t budget_value(const std::string& budget_name,
                           const std::string& key) {
  for (const hotcheck::BudgetSpec& budget : spec().budgets) {
    if (budget.name != budget_name) continue;
    auto it = budget.values.find(key);
    if (it == budget.values.end()) break;
    return std::stoull(it->second);
  }
  ADD_FAILURE() << "hotpaths.toml lacks budget " << budget_name << "." << key;
  return 0;
}

// --- harness sanity ---------------------------------------------------------

// Guards the link contract: if reconfnet_alloccount ever falls out of this
// binary, every budget below would pass vacuously on zero deltas.
TEST(AllocCounter, CountsAForcedAllocation) {
  ASSERT_TRUE(support::alloc_counting_available());
  support::AllocCounter scope;
  std::vector<int>* spill = new std::vector<int>(1024, 7);
  const support::AllocTotals mid = scope.delta();
  EXPECT_GE(mid.allocations, 2u);  // the vector object and its buffer
  EXPECT_GE(mid.bytes, 1024u * sizeof(int));
  delete spill;
  const support::AllocTotals done = scope.delta();
  EXPECT_GE(done.deallocations, 2u);
}

// --- bus steady state -------------------------------------------------------

struct PingPayload {
  std::uint64_t token = 0;
};

/// Deterministic steady-state traffic: every node sends one message to its
/// ring successor each round. After warmup every inbox and the outbox have
/// seen their peak occupancy, so a well-behaved bus recycles every buffer.
TEST(AllocBudget, BusSteadyStateRoundsAreAllocationFree) {
  ASSERT_TRUE(support::alloc_counting_available());
  const std::uint64_t n = budget_value("bus.steady_state", "n");
  const std::uint64_t warmup = budget_value("bus.steady_state", "warmup_rounds");
  const std::uint64_t rounds = budget_value("bus.steady_state", "rounds");
  const std::uint64_t budget =
      budget_value("bus.steady_state", "allocs_per_round");

  sim::Bus<PingPayload> bus;
  auto drive_round = [&](std::uint64_t round) {
    for (std::uint64_t v = 0; v < n; ++v) {
      // Touch the inbox first, as a protocol round would.
      (void)bus.inbox(static_cast<sim::NodeId>(v)).size();
      bus.send(static_cast<sim::NodeId>(v),
               static_cast<sim::NodeId>((v + 1) % n),
               PingPayload{round * n + v}, 64);
    }
    bus.step();
  };

  for (std::uint64_t r = 0; r < warmup; ++r) drive_round(r);

  support::AllocCounter scope;
  for (std::uint64_t r = 0; r < rounds; ++r) drive_round(warmup + r);
  const support::AllocTotals used = scope.delta();
  std::cout << "[ measured ] bus.steady_state: " << used.allocations
            << " allocations over " << rounds << " rounds (budget "
            << budget << "/round)\n";
  EXPECT_LE(used.allocations, budget * rounds)
      << "steady-state Bus rounds allocated " << used.allocations << " times ("
      << used.bytes << " bytes) over " << rounds << " rounds";
}

// --- churn overlay steady epoch ---------------------------------------------

/// A full overlay epoch at n=1024 with a zero-rate adversary: reconfiguration
/// runs (sampling, placement, rebuild) but membership is steady. The budget
/// bounds allocations per communication round; it is headroom over the
/// measured figure, not a tight pin — see EXPERIMENTS.md M2 for the numbers.
TEST(AllocBudget, ChurnOverlaySteadyEpochStaysUnderBudget) {
  ASSERT_TRUE(support::alloc_counting_available());
  const std::uint64_t n = budget_value("churn.steady_epoch", "n");
  const std::uint64_t warmup_epochs =
      budget_value("churn.steady_epoch", "warmup_epochs");
  const std::uint64_t epochs = budget_value("churn.steady_epoch", "epochs");
  const std::uint64_t budget =
      budget_value("churn.steady_epoch", "allocs_per_round");

  churn::ChurnOverlay::Config config;
  config.initial_size = static_cast<std::size_t>(n);
  config.seed = 0xB07C;
  churn::ChurnOverlay overlay(config);
  adversary::UniformChurn no_churn(0.0, 0.0, 1.0, support::Rng(7));

  for (std::uint64_t e = 0; e < warmup_epochs; ++e) {
    const auto report = overlay.run_epoch(no_churn);
    ASSERT_TRUE(report.success) << report.failure_reason;
  }

  support::AllocCounter scope;
  std::uint64_t measured_rounds = 0;
  for (std::uint64_t e = 0; e < epochs; ++e) {
    const auto report = overlay.run_epoch(no_churn);
    ASSERT_TRUE(report.success) << report.failure_reason;
    measured_rounds += static_cast<std::uint64_t>(report.rounds);
  }
  ASSERT_GT(measured_rounds, 0u);
  const support::AllocTotals used = scope.delta();
  const std::uint64_t per_round = used.allocations / measured_rounds;
  std::cout << "[ measured ] churn.steady_epoch: " << per_round
            << " allocations/round over " << measured_rounds
            << " rounds (budget " << budget << "/round)\n";
  EXPECT_LE(per_round, budget)
      << "steady epochs allocated " << used.allocations << " times over "
      << measured_rounds << " rounds (" << per_round << "/round, budget "
      << budget << ")";
}

// --- transport heartbeat receive path ---------------------------------------

/// The per-datagram hot path of the live backend (udp-datagram-leaves
/// hotpath): heartbeats decode into recycled scratch and only touch the flat
/// liveness table, so once the scratch buffers have grown to steady size a
/// heartbeat datagram must allocate nothing. on_datagram is socket-free by
/// design, so the test feeds it raw crafted datagrams.
TEST(AllocBudget, TransportHeartbeatReceivePathIsAllocationFree) {
  ASSERT_TRUE(support::alloc_counting_available());
  const std::uint64_t nodes = budget_value("transport.receive_packet", "nodes");
  const std::uint64_t warmup =
      budget_value("transport.receive_packet", "warmup_packets");
  const std::uint64_t packets =
      budget_value("transport.receive_packet", "packets");
  const std::uint64_t budget =
      budget_value("transport.receive_packet", "allocs_per_packet");
  ASSERT_GE(nodes, 2u);

  transport::UdpConfig config;
  config.self = 0;
  config.nodes = static_cast<int>(nodes);
  transport::UdpTransport udp(config);  // never opened: no socket involved

  // One heartbeat per iteration, rotating over the peers; encode runs inside
  // the measured window too, so the codec's recycled buffers are pinned
  // along with the receive path.
  transport::Message msg;
  msg.kind = transport::MsgKind::kHeartbeat;
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> datagram;
  auto feed = [&](std::uint64_t packet) {
    msg.round = static_cast<sim::Round>(packet);
    transport::encode(msg, body);
    datagram.resize(transport::kLinkHeaderBytes + body.size());
    transport::LinkHeader header;
    header.op = transport::LinkOp::kUnreliable;
    header.from = static_cast<sim::NodeId>(1 + packet % (nodes - 1));
    transport::encode_link_header(header, datagram.data());
    std::memcpy(datagram.data() + transport::kLinkHeaderBytes, body.data(),
                body.size());
    EXPECT_TRUE(udp.on_datagram(datagram, static_cast<std::int64_t>(packet)));
  };

  for (std::uint64_t p = 0; p < warmup; ++p) feed(p);

  support::AllocCounter scope;
  for (std::uint64_t p = 0; p < packets; ++p) feed(warmup + p);
  const support::AllocTotals used = scope.delta();
  std::cout << "[ measured ] transport.receive_packet: " << used.allocations
            << " allocations over " << packets << " heartbeats (budget "
            << budget << "/packet)\n";
  EXPECT_LE(used.allocations, budget * packets)
      << "warm heartbeat datagrams allocated " << used.allocations
      << " times (" << used.bytes << " bytes) over " << packets << " packets";
  EXPECT_EQ(udp.counters().heartbeats_received, warmup + packets);
  EXPECT_EQ(udp.counters().decode_failures, 0u);
}

// --- workload steady state --------------------------------------------------

/// Allocations of one full workload run at the given round count (setup
/// included); the steady-state figure is the difference between two run
/// lengths, which cancels the identical construction/reset costs.
std::uint64_t workload_run_allocations(std::uint64_t total_rounds,
                                       std::uint64_t n, std::uint64_t keyspace,
                                       double rate) {
  workload::DhtAdapterConfig adapter_config;
  adapter_config.size = static_cast<std::size_t>(n);
  adapter_config.prefill_keys = keyspace;
  adapter_config.seed = 0xA110C;
  workload::DhtAdapter adapter(adapter_config);
  workload::DriverConfig config;
  config.rounds = static_cast<std::size_t>(total_rounds);
  config.write_fraction = 0.0;  // reads only: shard writes may rehash
  config.keys.keyspace = keyspace;
  config.arrivals.rate = rate;
  config.audit = false;
  workload::WorkloadDriver driver(config, &adapter);
  support::Rng master(0xA110C);
  support::AllocCounter scope;
  const auto report = driver.run(master);
  EXPECT_GT(report.completed, 0u);
  return scope.delta().allocations;
}

/// The per-request serving path (workload-driver-rounds, workload-tracker-
/// leaves, workload-keydist-leaves hotpaths): once the queue, tracker pool
/// and histogram have warmed up, extending a run by more serving rounds must
/// allocate nothing — the budget pins the marginal cost at zero.
TEST(AllocBudget, WorkloadSteadyRequestRoundsAreAllocationFree) {
  ASSERT_TRUE(support::alloc_counting_available());
  const std::uint64_t n = budget_value("workload.steady_request", "n");
  const std::uint64_t keyspace =
      budget_value("workload.steady_request", "keyspace");
  const std::uint64_t warmup =
      budget_value("workload.steady_request", "warmup_rounds");
  const std::uint64_t rounds = budget_value("workload.steady_request", "rounds");
  const auto rate = static_cast<double>(
      budget_value("workload.steady_request", "requests_per_round"));
  const std::uint64_t budget =
      budget_value("workload.steady_request", "allocs_per_round");

  const std::uint64_t base = workload_run_allocations(warmup, n, keyspace, rate);
  const std::uint64_t full =
      workload_run_allocations(warmup + rounds, n, keyspace, rate);
  ASSERT_GE(full, base);  // both runs share an identical setup prefix
  const std::uint64_t marginal = full - base;
  std::cout << "[ measured ] workload.steady_request: " << marginal
            << " allocations over " << rounds << " extra rounds (budget "
            << budget << "/round)\n";
  EXPECT_LE(marginal, budget * rounds)
      << "extending a workload run by " << rounds << " rounds allocated "
      << marginal << " times";
}

}  // namespace
}  // namespace reconfnet
