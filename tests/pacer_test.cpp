// RoundPacer state-machine coverage in isolation: a FakeClock and hand-fed
// frame observations, no sockets (DESIGN.md §15). The scenarios mirror what
// the live runtime must survive: stragglers inside and past the resync
// horizon, silent peers marching through suspect to evicted, and a whole
// group going dark (the protocol's epoch-abort trigger).
#include <gtest/gtest.h>

#include <vector>

#include "transport/clock.hpp"
#include "transport/pacer.hpp"

namespace reconfnet::transport {
namespace {

PacerConfig tight_config() {
  PacerConfig config;
  config.round_budget_us = 1'000;
  config.startup_grace_us = 0;
  config.resync_horizon = 4;
  config.suspect_after = 2;
  config.evict_after = 4;
  return config;
}

std::vector<sim::NodeId> ids(std::initializer_list<sim::NodeId> list) {
  return {list};
}

TEST(Pacer, EarlyAdvanceOncePeersCaughtUp) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  const auto peers = ids({1, 2});
  pacer.set_peers(peers);

  EXPECT_FALSE(pacer.tick(clock.now_us()).advance);
  pacer.note_frame(1, 0);
  EXPECT_FALSE(pacer.tick(clock.now_us()).advance);
  pacer.note_frame(2, 0);

  const auto tick = pacer.tick(clock.now_us());
  EXPECT_TRUE(tick.advance);
  EXPECT_FALSE(tick.resync);
  EXPECT_EQ(tick.next_round, 1);
  EXPECT_EQ(pacer.counters().early_advances, 1u);
}

TEST(Pacer, DeadlineAdvanceWithoutQuorum) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1}));

  EXPECT_FALSE(pacer.tick(clock.now_us()).advance);
  clock.advance_us(999);
  EXPECT_FALSE(pacer.tick(clock.now_us()).advance);
  clock.advance_us(1);
  const auto tick = pacer.tick(clock.now_us());
  EXPECT_TRUE(tick.advance);
  EXPECT_EQ(tick.next_round, 1);
  EXPECT_EQ(pacer.counters().deadline_advances, 1u);
}

TEST(Pacer, EarlyAdvanceGatedOffWhileSendsUnsettled) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1}));
  pacer.note_frame(1, 0);

  // Quorum is there, but our own sends are not acked: no early advance.
  EXPECT_FALSE(pacer.tick(clock.now_us(), /*early_ok=*/false).advance);
  // The deadline still fires — liveness beats the delivery barrier.
  clock.advance_us(1'000);
  const auto tick = pacer.tick(clock.now_us(), /*early_ok=*/false);
  EXPECT_TRUE(tick.advance);
  EXPECT_EQ(pacer.counters().deadline_advances, 1u);
  EXPECT_EQ(pacer.counters().early_advances, 0u);
}

TEST(Pacer, StartupGraceStretchesRoundZeroOnly) {
  auto config = tight_config();
  config.startup_grace_us = 10'000;
  FakeClock clock;
  RoundPacer pacer(config, clock.now_us());
  pacer.set_peers(ids({1}));

  clock.advance_us(5'000);  // past the budget, inside the grace
  EXPECT_FALSE(pacer.tick(clock.now_us()).advance);
  clock.advance_us(6'000);
  EXPECT_TRUE(pacer.tick(clock.now_us()).advance);
  pacer.begin_round(1, clock.now_us());
  clock.advance_us(1'000);  // round 1 gets the plain budget
  EXPECT_TRUE(pacer.tick(clock.now_us()).advance);
}

TEST(Pacer, StragglerWithinHorizonAdvancesNormally) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1}));

  // The peer is ahead of us, but within the horizon: normal single-step
  // advance (it satisfies the quorum trivially), no resync jump.
  pacer.note_frame(1, 3);
  const auto tick = pacer.tick(clock.now_us());
  EXPECT_TRUE(tick.advance);
  EXPECT_FALSE(tick.resync);
  EXPECT_EQ(tick.next_round, 1);
  EXPECT_EQ(pacer.counters().resyncs, 0u);
}

TEST(Pacer, StragglerPastHorizonResyncs) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2}));

  pacer.note_frame(1, 9);  // 9 > 0 + horizon(4): we are far behind
  const auto tick = pacer.tick(clock.now_us());
  EXPECT_TRUE(tick.advance);
  EXPECT_TRUE(tick.resync);
  EXPECT_EQ(tick.next_round, 9);
  EXPECT_EQ(pacer.counters().resyncs, 1u);
}

TEST(Pacer, StaleGhostNeitherRejoinsNorResyncs) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2}));
  pacer.note_frame(2, 0);

  // Evict peer 1 by letting it miss evict_after deadlines. Charging starts
  // at round 1: at round 0 nobody has completed anything yet, so silence is
  // not a miss.
  for (int round = 0; round < 5; ++round) {
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance);
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  ASSERT_TRUE(pacer.evicted(1));

  // A straggling duplicate announcing an old round (< round - 1) is not
  // evidence of life NOW: the peer stays evicted, contributes nothing to
  // the quorum, and cannot drag us anywhere.
  pacer.note_frame(1, 2);
  EXPECT_TRUE(pacer.evicted(1));
  const auto tick = pacer.tick(clock.now_us());
  EXPECT_FALSE(tick.resync);
  EXPECT_EQ(pacer.counters().rejoins, 0u);
}

TEST(Pacer, EvictedPeerRejoinsOnCurrentAnnouncement) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2}));
  pacer.note_frame(2, 0);

  for (int round = 0; round < 5; ++round) {
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance);
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  ASSERT_TRUE(pacer.evicted(1));  // now in round 5

  // The peer was starved, not dead: a completion announcement for a current
  // round undoes the eviction (crashed nodes can never produce one), and
  // the rejoined peer counts toward the quorum again.
  pacer.note_frame(1, 4);
  EXPECT_FALSE(pacer.evicted(1));
  EXPECT_FALSE(pacer.suspected(1));
  EXPECT_EQ(pacer.counters().rejoins, 1u);

  pacer.note_frame(1, 5);
  pacer.note_frame(2, 5);
  const auto tick = pacer.tick(clock.now_us());
  EXPECT_TRUE(tick.advance);
  EXPECT_FALSE(tick.resync);
}

TEST(Pacer, SilentPeerSuspectedThenEvicted) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2}));

  // Misses accrue from round 1 on (round 0 has no completed round to be
  // behind of), so suspect_after = 2 trips after round 2's deadline and
  // evict_after = 4 after round 4's.
  for (int round = 0; round < 5; ++round) {
    pacer.note_frame(2, round);  // peer 2 keeps up, peer 1 stays silent
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance) << "round " << round;
    ASSERT_EQ(tick.next_round, round + 1);
    if (round + 1 == 3) {
      EXPECT_TRUE(pacer.suspected(1));  // suspect_after = 2
      EXPECT_FALSE(pacer.evicted(1));
    }
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  EXPECT_TRUE(pacer.evicted(1));
  EXPECT_FALSE(pacer.evicted(2));
  EXPECT_EQ(pacer.evicted_peers(), ids({1}));
  EXPECT_EQ(pacer.counters().evictions, 1u);

  // With the silent peer gone, the live peer alone forms the quorum.
  pacer.note_frame(2, 5);
  EXPECT_TRUE(pacer.tick(clock.now_us()).advance);
  EXPECT_GE(pacer.counters().early_advances, 1u);
}

TEST(Pacer, CatchUpClearsTheMissStreak) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1}));

  // Two misses (rounds 1 and 2) -> suspected; then the peer catches up and
  // the streak resets at the next boundary instead of accumulating toward
  // eviction.
  for (int round = 0; round < 3; ++round) {
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance);
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  ASSERT_TRUE(pacer.suspected(1));

  pacer.note_frame(1, 3);
  const auto tick = pacer.tick(clock.now_us());
  ASSERT_TRUE(tick.advance);
  pacer.begin_round(tick.next_round, clock.now_us());
  EXPECT_FALSE(pacer.suspected(1));
  EXPECT_FALSE(pacer.evicted(1));
}

TEST(Pacer, GroupSilenceNeedsEveryTrackedMemberEvicted) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2, 3}));
  pacer.note_frame(3, 0);

  for (int round = 0; round < 5; ++round) {
    pacer.note_frame(3, round);
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance);
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  ASSERT_TRUE(pacer.evicted(1));
  ASSERT_TRUE(pacer.evicted(2));

  const auto dead_group = ids({1, 2});
  const auto mixed_group = ids({2, 3});
  const auto untracked_group = ids({7, 8});
  EXPECT_TRUE(pacer.group_silent(dead_group));
  EXPECT_FALSE(pacer.group_silent(mixed_group));
  // A group we track nobody of must never read as silent.
  EXPECT_FALSE(pacer.group_silent(untracked_group));
}

TEST(Pacer, SetPeersKeepsLivenessOfRetainedPeers) {
  FakeClock clock;
  RoundPacer pacer(tight_config(), clock.now_us());
  pacer.set_peers(ids({1, 2}));

  for (int round = 0; round < 5; ++round) {
    pacer.note_frame(2, round);
    clock.advance_us(1'000);
    const auto tick = pacer.tick(clock.now_us());
    ASSERT_TRUE(tick.advance);
    pacer.begin_round(tick.next_round, clock.now_us());
  }
  ASSERT_TRUE(pacer.evicted(1));

  // Reconfiguration swaps peer 2 for peer 5; peer 1's eviction survives.
  pacer.set_peers(ids({1, 5}));
  EXPECT_TRUE(pacer.evicted(1));
  EXPECT_FALSE(pacer.evicted(5));
}

}  // namespace
}  // namespace reconfnet::transport
