// Tests for reconfnet_protocheck (tools/protocheck/): one test per RNP rule
// id, driven by the fixtures in tests/protocheck_fixtures/, plus coverage for
// the protocol.toml parser, the suppression syntax, partial runs, and the
// SARIF export. Each fixture carries a deliberately seeded regression (orphan
// message, wrong bits formula, pointer-bearing payload, phase violation, ...)
// that the matching test pins to exact finding lines. The fixtures directory
// is excluded from both repo-wide tool walks, so the violations never reach
// the real gates; the tests feed them to the Driver under synthetic paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/protocheck/protocheck.hpp"
#include "toolcheck_util.hpp"

namespace pc = reconfnet::protocheck;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(
      RECONFNET_PROTOCHECK_FIXTURES, name);
}

/// A [[message]] entry whose senders and receivers are exactly `file`.
pc::MessageSpec message(const std::string& name, const std::string& file,
                        const std::vector<std::string>& bits,
                        std::size_t line = 1) {
  pc::MessageSpec msg;
  msg.name = name;
  msg.file = file;
  msg.subsystem = "fixture";
  msg.senders = {file};
  msg.receivers = {file};
  msg.bits = bits;
  msg.line = line;
  return msg;
}

pc::Driver::Result run_fixture(const std::string& fixture,
                               const std::string& as_path, pc::Spec spec) {
  pc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

using Lines = std::vector<std::size_t>;

// ---------------------------------------------------------------------------
// Spec parser

TEST(ProtocheckSpec, ParsesFullSpec) {
  const std::string toml =
      "[options]\n"
      "roots = [\"src/\", \"bench/\"]\n"
      "\n"
      "[[message]]\n"
      "name = \"PingMsg\"\n"
      "file = \"src/a.cpp\"\n"
      "subsystem = \"fixture\"\n"
      "senders = [\"src/a.cpp\", \"src/b.cpp\"]\n"
      "receivers = [\"src/\"]\n"
      "bits = [\"kBits\", \"kBits + 1\"]\n"
      "\n"
      "[[constant]]\n"
      "name = \"fixture.bits\"\n"
      "file = \"src/a.cpp\"\n"
      "code = \"const int kBits = 8\"\n"
      "note = \"documentation only\"\n"
      "\n"
      "[allow]\n"
      "RNP307 = [\"src/legacy/\"]\n";
  pc::Spec spec;
  std::string error;
  ASSERT_TRUE(pc::parse_spec(toml, spec, error)) << error;
  EXPECT_EQ(spec.roots, (std::vector<std::string>{"src/", "bench/"}));
  ASSERT_EQ(spec.messages.size(), 1u);
  EXPECT_EQ(spec.messages[0].name, "PingMsg");
  EXPECT_EQ(spec.messages[0].file, "src/a.cpp");
  EXPECT_EQ(spec.messages[0].subsystem, "fixture");
  EXPECT_EQ(spec.messages[0].senders,
            (std::vector<std::string>{"src/a.cpp", "src/b.cpp"}));
  EXPECT_EQ(spec.messages[0].receivers, (std::vector<std::string>{"src/"}));
  EXPECT_EQ(spec.messages[0].bits,
            (std::vector<std::string>{"kBits", "kBits + 1"}));
  EXPECT_EQ(spec.messages[0].line, 4u);
  ASSERT_EQ(spec.constants.size(), 1u);
  EXPECT_EQ(spec.constants[0].name, "fixture.bits");
  EXPECT_EQ(spec.constants[0].code, "const int kBits = 8");
  EXPECT_EQ(spec.constants[0].line, 12u);
  ASSERT_EQ(spec.allow.count("RNP307"), 1u);
  EXPECT_EQ(spec.allow.at("RNP307"),
            (std::vector<std::string>{"src/legacy/"}));
}

TEST(ProtocheckSpec, RealProtocolTomlParses) {
  std::ifstream in(RECONFNET_PROTOCHECK_SPEC);
  ASSERT_TRUE(in) << "cannot open " << RECONFNET_PROTOCHECK_SPEC;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  pc::Spec spec;
  std::string error;
  ASSERT_TRUE(pc::parse_spec(buffer.str(), spec, error)) << error;
  EXPECT_EQ(spec.roots, (std::vector<std::string>{"src/"}));
  EXPECT_GE(spec.messages.size(), 9u);
  EXPECT_GE(spec.constants.size(), 14u);
  for (const pc::MessageSpec& msg : spec.messages) {
    EXPECT_FALSE(msg.subsystem.empty()) << msg.name;
  }
}

TEST(ProtocheckSpec, RejectsMalformedInput) {
  pc::Spec spec;
  std::string error;

  EXPECT_FALSE(pc::parse_spec("[bogus]\nx = \"y\"\n", spec, error));
  EXPECT_NE(error.find("unknown section"), std::string::npos) << error;

  EXPECT_FALSE(pc::parse_spec("[[message]]\ncolor = \"red\"\n", spec, error));
  EXPECT_NE(error.find("unknown message key"), std::string::npos) << error;

  EXPECT_FALSE(pc::parse_spec("[[message]]\nname = \"M\"\n", spec, error));
  EXPECT_NE(error.find("needs name, file, subsystem"), std::string::npos)
      << error;

  // bits must be an array, name must be a string.
  EXPECT_FALSE(
      pc::parse_spec("[[message]]\nbits = \"kBits\"\n", spec, error));
  EXPECT_NE(error.find("needs an array"), std::string::npos) << error;
  EXPECT_FALSE(
      pc::parse_spec("[[message]]\nname = [\"M\"]\n", spec, error));
  EXPECT_NE(error.find("needs a string"), std::string::npos) << error;

  EXPECT_FALSE(
      pc::parse_spec("[[constant]]\ncode = [\"int x\"]\n", spec, error));
  EXPECT_NE(error.find("needs a string"), std::string::npos) << error;

  EXPECT_FALSE(pc::parse_spec("[options]\ncolor = \"red\"\n", spec, error));
  EXPECT_NE(error.find("unknown option"), std::string::npos) << error;

  EXPECT_FALSE(pc::parse_spec("[allow]\nRNP307 = \"src/\"\n", spec, error));
  EXPECT_NE(error.find("bad allow array"), std::string::npos) << error;

  // The TOML subset keeps arrays on one line.
  EXPECT_FALSE(pc::parse_spec(
      "[[message]]\nbits = [\"a\",\n\"b\"]\n", spec, error));
  EXPECT_FALSE(error.empty());
}

TEST(ProtocheckSpec, RejectsDuplicateMessages) {
  const std::string toml =
      "[[message]]\n"
      "name = \"M\"\nfile = \"src/a.cpp\"\nsubsystem = \"x\"\n"
      "senders = [\"src/\"]\nreceivers = [\"src/\"]\nbits = [\"b\"]\n"
      "[[message]]\n"
      "name = \"M\"\nfile = \"src/a.cpp\"\nsubsystem = \"x\"\n"
      "senders = [\"src/\"]\nreceivers = [\"src/\"]\nbits = [\"b\"]\n";
  pc::Spec spec;
  std::string error;
  EXPECT_FALSE(pc::parse_spec(toml, spec, error));
  EXPECT_NE(error.find("duplicate message"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Rules

TEST(ProtocheckRules, CleanProtocolShapeHasNoFindings) {
  pc::Spec spec;
  spec.messages.push_back(
      message("PingMsg", "src/fx/clean.cpp", {"kPingBits"}));
  const auto result =
      run_fixture("clean_protocol.cpp", "src/fx/clean.cpp", spec);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 0u);
  EXPECT_EQ(result.files_checked, 1u);
}

TEST(ProtocheckRules, Rnp301FlagsSpecUnknownMessage) {
  const auto result = run_fixture("rnp301_unknown_message.cpp",
                                  "src/fx/stray.cpp", pc::Spec{});
  EXPECT_EQ(lines_of(result, "RNP301"), (Lines{9}));
  EXPECT_EQ(result.findings.size(), 1u);
}

TEST(ProtocheckRules, Rnp302And303FlagOrphanSpecMessages) {
  // The spec entry is parsed from TOML so the findings anchor to its line.
  const std::string toml =
      "[[message]]\n"
      "name = \"OrphanMsg\"\nfile = \"src/fx/orphan.cpp\"\n"
      "subsystem = \"fixture\"\n"
      "senders = [\"src/fx/orphan.cpp\"]\n"
      "receivers = [\"src/fx/orphan.cpp\"]\n"
      "bits = [\"kOrphanBits\"]\n";
  pc::Spec spec;
  std::string error;
  ASSERT_TRUE(pc::parse_spec(toml, spec, error)) << error;
  pc::Driver driver(spec, "spec.toml");
  driver.add_file("src/fx/orphan.cpp",
                  read_fixture("rnp302_orphan_message.cpp"));
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNP302"), (Lines{1}));
  EXPECT_EQ(lines_of(result, "RNP303"), (Lines{1}));
  for (const auto& finding : result.findings) {
    EXPECT_EQ(finding.file, "spec.toml");
  }
}

TEST(ProtocheckRules, Rnp304And305FlagIllegalEndpoints) {
  pc::Spec spec;
  auto msg =
      message("RestrictedMsg", "src/fx/restricted.cpp", {"kRestrictedBits"});
  msg.senders = {"src/other.cpp"};
  msg.receivers = {"src/other.cpp"};
  spec.messages.push_back(msg);
  const auto result =
      run_fixture("rnp304_wrong_endpoint.cpp", "src/fx/restricted.cpp", spec);
  EXPECT_EQ(lines_of(result, "RNP304"), (Lines{11}));
  EXPECT_EQ(lines_of(result, "RNP305"), (Lines{13}));
}

TEST(ProtocheckRules, Rnp306FlagsDriftedBitsExpression) {
  pc::Spec spec;
  spec.messages.push_back(
      message("MeteredMsg", "src/fx/metered.cpp", {"kMeteredBits"}));
  const auto result =
      run_fixture("rnp306_wrong_bits.cpp", "src/fx/metered.cpp", spec);
  // The first send matches the spec formula; only the drifted one fires.
  EXPECT_EQ(lines_of(result, "RNP306"), (Lines{12}));
  EXPECT_EQ(result.findings.size(), 1u);
}

TEST(ProtocheckRules, Rnp306NormalizesWhitespace) {
  // Same formula, different spacing: the tokenizer canonicalizes both sides.
  pc::Spec spec;
  spec.messages.push_back(
      message("MeteredMsg", "src/fx/metered.cpp", {"  kMeteredBits  "}));
  const auto result =
      run_fixture("rnp306_wrong_bits.cpp", "src/fx/metered.cpp", spec);
  EXPECT_EQ(lines_of(result, "RNP306"), (Lines{12}));
}

TEST(ProtocheckRules, Rnp307FlagsEveryWireUnsafeMemberFlavour) {
  pc::Spec spec;
  spec.messages.push_back(message("BadMsg", "src/fx/bad.cpp", {"kBadBits"}));
  const auto result =
      run_fixture("rnp307_impure_payload.cpp", "src/fx/bad.cpp", spec);
  // raw pointer, shared_ptr, double, unordered_map, pointer alias, and the
  // transitive hit through `Nested nested` — the plain int stays clean.
  EXPECT_EQ(lines_of(result, "RNP307"), (Lines{13, 14, 15, 16, 17, 18}));
}

TEST(ProtocheckRules, Rnp308FlagsPhaseOrderViolations) {
  pc::Spec spec;
  spec.messages.push_back(message("LateMsg", "src/fx/late.cpp", {"kLateBits"}));
  const auto result =
      run_fixture("rnp308_send_after_step.cpp", "src/fx/late.cpp", spec);
  // Line 17: send after the bus's final step. Line 22: never-stepped bus.
  // The step-alias function is clean: its last event is a step_late() call.
  EXPECT_EQ(lines_of(result, "RNP308"), (Lines{17, 22}));
  EXPECT_EQ(result.findings.size(), 2u);
}

TEST(ProtocheckRules, Rnp309AcceptsAndRejectsPinnedConstants) {
  pc::ConstantSpec pinned;
  pinned.name = "fixture.pinned_bits";
  pinned.file = "src/fx/pinned.cpp";
  pinned.code = "const unsigned long long kPinnedBits = 64 + 16";
  pinned.line = 7;

  pc::Spec spec;
  spec.constants.push_back(pinned);
  const auto clean =
      run_fixture("rnp309_constant_present.cpp", "src/fx/pinned.cpp", spec);
  EXPECT_TRUE(clean.findings.empty());

  spec.constants[0].code = "const unsigned long long kPinnedBits = 64 + 32";
  const auto drifted =
      run_fixture("rnp309_constant_present.cpp", "src/fx/pinned.cpp", spec);
  EXPECT_EQ(lines_of(drifted, "RNP309"), (Lines{7}));
  EXPECT_EQ(drifted.findings[0].file, "spec.toml");
}

TEST(ProtocheckRules, Rnp309FlagsConstantInUncheckedFile) {
  pc::ConstantSpec ghost;
  ghost.name = "fixture.ghost";
  ghost.file = "src/fx/ghost.cpp";
  ghost.code = "int x = 1";
  ghost.line = 3;
  pc::Spec spec;
  spec.constants.push_back(ghost);
  pc::Driver driver(spec, "spec.toml");
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNP309"), (Lines{3}));
}

TEST(ProtocheckRules, Rnp310FlagsMissingPayloadStruct) {
  pc::Spec spec;
  spec.messages.push_back(
      message("GhostMsg", "src/fx/ghost.cpp", {"kGhostBits"}, 5));
  // The registered file defines OrphanMsg, not GhostMsg.
  const auto result =
      run_fixture("rnp302_orphan_message.cpp", "src/fx/ghost.cpp", spec);
  EXPECT_EQ(lines_of(result, "RNP310"), (Lines{5}));
  // The orphan rules fire too (nothing sends or consumes GhostMsg).
  EXPECT_EQ(lines_of(result, "RNP302"), (Lines{5}));
  EXPECT_EQ(lines_of(result, "RNP303"), (Lines{5}));
}

TEST(ProtocheckRules, PartialRunsSkipWholeTreeRules) {
  // A partial run (explicit file list) only sees one file; spec entries for
  // absent files must not produce orphan/pin noise.
  pc::Spec spec;
  spec.messages.push_back(
      message("PingMsg", "src/fx/clean.cpp", {"kPingBits"}));
  spec.messages.push_back(
      message("OrphanMsg", "src/fx/orphan.cpp", {"kOrphanBits"}));
  pc::ConstantSpec ghost;
  ghost.name = "fixture.ghost";
  ghost.file = "src/fx/ghost.cpp";
  ghost.code = "int x = 1";
  ghost.line = 3;
  spec.constants.push_back(ghost);

  pc::Driver driver(spec, "spec.toml");
  driver.add_file("src/fx/clean.cpp", read_fixture("clean_protocol.cpp"));
  driver.set_partial(true);
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
}

TEST(ProtocheckRules, AllowListSwitchesRuleOffByPrefix) {
  pc::Spec spec;
  spec.messages.push_back(message("BadMsg", "src/fx/bad.cpp", {"kBadBits"}));
  spec.allow["RNP307"] = {"src/fx/"};
  const auto result =
      run_fixture("rnp307_impure_payload.cpp", "src/fx/bad.cpp", spec);
  EXPECT_TRUE(lines_of(result, "RNP307").empty());
  // Carve-outs are not counted as suppressions.
  EXPECT_EQ(result.suppressed, 0u);
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(ProtocheckSuppressions, ReasonedSuppressionSilencesAndCounts) {
  pc::Spec spec;
  spec.messages.push_back(message("SupMsg", "src/fx/sup.cpp", {"kSupBits"}));
  const auto result =
      run_fixture("suppression_valid.cpp", "src/fx/sup.cpp", spec);
  // Both placements work: standalone comment above, and same-line.
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 2u);
}

TEST(ProtocheckSuppressions, Rnp390FlagsMissingReasonAndKeepsFinding) {
  pc::Spec spec;
  spec.messages.push_back(message("MalMsg", "src/fx/mal.cpp", {"kMalBits"}));
  const auto result =
      run_fixture("rnp390_malformed_suppression.cpp", "src/fx/mal.cpp", spec);
  EXPECT_EQ(lines_of(result, "RNP390"), (Lines{6}));
  // The malformed comment does not hide the violation it targeted.
  EXPECT_EQ(lines_of(result, "RNP307"), (Lines{6}));
  EXPECT_EQ(result.suppressed, 0u);
}

// ---------------------------------------------------------------------------
// SARIF export

TEST(ProtocheckSarif, EmitsRulesAndResults) {
  std::vector<pc::Finding> findings;
  findings.push_back({"src/fx/bad.cpp", 13, "RNP307", "raw pointer member"});
  findings.push_back({"spec.toml", 1, "RNP302", "orphan \"message\""});
  std::ostringstream out;
  reconfnet::textscan::write_sarif(out, "reconfnet_protocheck",
                                   "tools/protocheck/protocheck.hpp",
                                   findings);
  const std::string sarif = out.str();
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("reconfnet_protocheck"), std::string::npos);
  EXPECT_NE(sarif.find("\"RNP307\""), std::string::npos);
  EXPECT_NE(sarif.find("\"RNP302\""), std::string::npos);
  EXPECT_NE(sarif.find("src/fx/bad.cpp"), std::string::npos);
  // The message with a quote must be escaped, not emitted raw.
  EXPECT_NE(sarif.find("orphan \\\"message\\\""), std::string::npos);
}

}  // namespace
