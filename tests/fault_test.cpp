// Tests for the deterministic fault-injection layer (src/fault/): the
// FaultInjector's schedules and determinism contract, the ReliableChannel's
// ack/retry/dedup machinery, and the graceful-degradation behavior of the
// churn protocols under injected faults (DESIGN.md §10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "adversary/churn.hpp"
#include "audit/invariants.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/hgraph.hpp"
#include "runtime/trial_runner.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace reconfnet::fault {
namespace {

struct Probe {
  int tag = 0;
};

/// A mixed-fault plan used by the determinism and conservation tests.
FaultPlan nasty_plan() {
  FaultPlan plan;
  plan.with_loss(0.2)
      .with_burst({0.1, 0.3, 0.0, 1.0})
      .with_duplication(0.15)
      .with_delay(0.3, 2)
      .with_reordering();
  return plan;
}

/// Drives `rounds` rounds of all-to-all probe traffic over `n` nodes and
/// returns a digest of every delivery in order.
std::string traffic_digest(FaultInjector& injector, std::size_t n,
                           int rounds, sim::WorkMeter* meter) {
  sim::Bus<Probe> bus(meter);
  bus.set_fault_hook(&injector);
  std::string digest;
  int tag = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t w = 0; w < n; ++w) {
        if (v == w) continue;
        bus.send(v, w, Probe{tag++}, 8);
      }
    }
    bus.step();
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        digest += std::to_string(envelope.from) + ">" +
                  std::to_string(envelope.to) + ":" +
                  std::to_string(envelope.payload.tag) + ";";
      }
    }
  }
  // Drain the delay queue so deferred copies are accounted too.
  while (bus.delayed_pending() > 0) {
    bus.step();
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        digest += std::to_string(envelope.from) + ">" +
                  std::to_string(envelope.to) + ":" +
                  std::to_string(envelope.payload.tag) + ";";
      }
    }
  }
  return digest;
}

TEST(FaultInjector, NoOpPlanIsByteIdenticalToNoHook) {
  const std::size_t n = 6;
  const int rounds = 5;
  sim::WorkMeter bare_meter;
  std::string bare;
  {
    sim::Bus<Probe> bus(&bare_meter);
    int tag = 0;
    for (int r = 0; r < rounds; ++r) {
      for (std::size_t v = 0; v < n; ++v) {
        for (std::size_t w = 0; w < n; ++w) {
          if (v != w) bus.send(v, w, Probe{tag++}, 8);
        }
      }
      bus.step();
      for (std::size_t v = 0; v < n; ++v) {
        for (const auto& envelope : bus.inbox(v)) {
          bare += std::to_string(envelope.from) + ">" +
                  std::to_string(envelope.to) + ":" +
                  std::to_string(envelope.payload.tag) + ";";
        }
      }
    }
  }
  sim::WorkMeter hooked_meter;
  FaultInjector injector(FaultPlan::none(), support::Rng(7));
  const std::string hooked =
      traffic_digest(injector, n, rounds, &hooked_meter);
  EXPECT_EQ(bare, hooked);
  EXPECT_EQ(injector.counters().offered,
            static_cast<std::uint64_t>(n * (n - 1) * rounds));
  ASSERT_EQ(bare_meter.history().size(), hooked_meter.history().size());
  for (std::size_t r = 0; r < bare_meter.history().size(); ++r) {
    const auto& a = bare_meter.history()[r];
    const auto& b = hooked_meter.history()[r];
    EXPECT_EQ(a.total_messages, b.total_messages) << "round " << r;
    EXPECT_EQ(a.total_bits, b.total_bits) << "round " << r;
    EXPECT_EQ(b.injected_drops, 0u);
    EXPECT_EQ(b.duplicated_messages, 0u);
    EXPECT_EQ(b.deferred_messages, 0u);
  }
}

TEST(FaultInjector, DeterministicAcrossJobs) {
  const auto body = [](runtime::TrialContext& context) {
    FaultInjector injector(nasty_plan(), context.rng.split(1));
    return traffic_digest(injector, 6, 4, nullptr);
  };
  runtime::TrialRunner serial(0xFA17, 1);
  runtime::TrialRunner parallel(0xFA17, 4);
  const auto a = serial.run(8, body);
  const auto b = parallel.run(8, body);
  EXPECT_EQ(a, b);
  // Distinct trials see distinct fault schedules.
  EXPECT_NE(a[0], a[1]);
}

TEST(FaultInjector, GilbertElliottBurstLengthsMatchExitRate) {
  FaultPlan plan;
  plan.with_burst({0.05, 0.25, 0.0, 1.0});  // mean burst length = 4
  FaultInjector injector(plan, support::Rng(11));
  sim::Bus<Probe> bus(nullptr);
  bus.set_fault_hook(&injector);
  std::size_t bursts = 0;
  std::size_t burst_losses = 0;
  bool in_burst = false;
  for (int i = 0; i < 20000; ++i) {
    bus.send(0, 1, Probe{i}, 1);
    bus.step();
    const bool lost = bus.inbox(1).empty();
    if (lost) {
      ++burst_losses;
      if (!in_burst) ++bursts;
    }
    in_burst = lost;
  }
  ASSERT_GT(bursts, 50u);
  const double mean_burst =
      static_cast<double>(burst_losses) / static_cast<double>(bursts);
  EXPECT_GT(mean_burst, 3.0);
  EXPECT_LT(mean_burst, 5.5);
  EXPECT_EQ(injector.counters().lost_burst, burst_losses);
  EXPECT_EQ(injector.counters().lost_iid, 0u);
}

TEST(FaultInjector, DelayIsBoundedAndLossless) {
  FaultPlan plan;
  plan.with_delay(1.0, 3);  // every message delayed by 1..3 rounds
  FaultInjector injector(plan, support::Rng(3));
  sim::Bus<Probe> bus(nullptr);
  bus.set_fault_hook(&injector);
  const int count = 200;
  for (int i = 0; i < count; ++i) bus.send(0, 1, Probe{i}, 1);
  int arrived = 0;
  for (int round = 1; round <= 6; ++round) {
    bus.step();
    const auto inbox = bus.inbox(1);
    arrived += static_cast<int>(inbox.size());
    if (!inbox.empty()) {
      // Sent in round 0 with delay k in [1, 3]: visible in rounds 2..4.
      EXPECT_GE(round, 2) << "delivery arrived earlier than the minimum delay";
      EXPECT_LE(round, 4) << "delivery exceeded max_delay";
    }
  }
  EXPECT_EQ(arrived, count);
  EXPECT_EQ(bus.delayed_pending(), 0u);
  EXPECT_EQ(injector.counters().delayed_copies,
            static_cast<std::uint64_t>(count));
}

TEST(FaultInjector, ScriptedCrashWindows) {
  FaultPlan plan;
  plan.with_crash({3, 2, 5});    // node 3 down at ticks 2..4
  plan.with_crash({7, 4, -1});   // node 7 crash-stop from tick 4
  FaultInjector injector(plan, support::Rng(1));
  EXPECT_FALSE(injector.is_crashed(3, 1));
  EXPECT_TRUE(injector.is_crashed(3, 2));
  EXPECT_TRUE(injector.is_crashed(3, 4));
  EXPECT_FALSE(injector.is_crashed(3, 5));
  EXPECT_FALSE(injector.is_crashed(7, 3));
  EXPECT_TRUE(injector.is_crashed(7, 4));
  EXPECT_TRUE(injector.is_crashed(7, 1000));
  EXPECT_FALSE(injector.is_crashed(0, 2));
}

TEST(FaultInjector, RandomCrashQueriesAreOrderIndependent) {
  for (const sim::Round restart : {sim::Round{4}, sim::Round{-1}}) {
    FaultPlan plan;
    plan.with_crash_rate(0.15, restart);
    FaultInjector forward(plan, support::Rng(21));
    FaultInjector backward(plan, support::Rng(21));
    std::vector<bool> a, b;
    for (sim::NodeId node = 0; node < 8; ++node) {
      for (sim::Round tick = 0; tick < 32; ++tick) {
        a.push_back(forward.is_crashed(node, tick));
      }
    }
    for (sim::NodeId node = 8; node-- > 0;) {
      for (sim::Round tick = 32; tick-- > 0;) {
        b.push_back(backward.is_crashed(node, tick));
      }
    }
    std::reverse(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::find(a.begin(), a.end(), true) != a.end());
    if (restart >= 0) {
      // Crash-restart: every crashed node comes back up eventually.
      for (sim::NodeId node = 0; node < 8; ++node) {
        EXPECT_FALSE(forward.is_crashed(node, 10000) &&
                     forward.is_crashed(node, 10000 + restart))
            << "node " << node << " never restarts";
      }
    }
  }
}

TEST(FaultInjector, PartitionDropsCrossCutTrafficUntilHeal) {
  FaultPlan plan;
  plan.with_partition({1, 3, 2, 0});  // ticks 1..2, side A = ids below 2
  FaultInjector injector(plan, support::Rng(5));
  EXPECT_FALSE(injector.partitioned(0, 3, 0));
  EXPECT_TRUE(injector.partitioned(0, 3, 1));
  EXPECT_TRUE(injector.partitioned(3, 0, 2));
  EXPECT_FALSE(injector.partitioned(3, 0, 3));
  EXPECT_FALSE(injector.partitioned(0, 1, 1));  // same side
  sim::Bus<Probe> bus(nullptr);
  bus.set_fault_hook(&injector);
  std::vector<int> arrivals;
  for (int round = 0; round < 5; ++round) {
    bus.send(0, 3, Probe{round}, 1);
    bus.step();
    for (const auto& envelope : bus.inbox(3)) {
      arrivals.push_back(envelope.payload.tag);
    }
  }
  EXPECT_EQ(arrivals, (std::vector<int>{0, 3, 4}));
  EXPECT_EQ(injector.counters().partition_drops, 2u);
}

TEST(FaultInjector, ConservationHoldsUnderFaults) {
  sim::WorkMeter meter;
  FaultInjector injector(nasty_plan(), support::Rng(13));
  traffic_digest(injector, 8, 6, &meter);
  ASSERT_FALSE(meter.history().empty());
  bool any_fault = false;
  for (const auto& round : meter.history()) {
    EXPECT_TRUE(round.conserved())
        << "round " << round.round << ": delivered " << round.total_messages
        << " dropped " << round.dropped_messages << " injected "
        << round.injected_drops << " deferred " << round.deferred_messages
        << " sent " << round.sent_messages << " duplicated "
        << round.duplicated_messages << " released "
        << round.released_messages;
    any_fault |= round.injected_drops > 0 || round.duplicated_messages > 0 ||
                 round.deferred_messages > 0;
  }
  EXPECT_TRUE(any_fault) << "the nasty plan injected nothing";
}

// ---------------------------------------------------------------------------
// ReliableChannel

TEST(ReliableChannel, EventualDeliveryUnderHeavyLoss) {
  FaultPlan plan;
  plan.with_loss(0.5);
  FaultInjector injector(plan, support::Rng(31));
  sim::WorkMeter meter;
  ReliableChannel<Probe> channel(&meter, &injector);
  const int count = 50;
  for (int i = 0; i < count; ++i) {
    channel.send(static_cast<sim::NodeId>(i % 4),
                 static_cast<sim::NodeId>(4 + (i % 4)), Probe{i}, 32);
  }
  std::vector<int> received;
  int guard = 0;
  while (channel.pending_count() > 0 && guard++ < 500) {
    channel.step();
    for (sim::NodeId node = 0; node < 8; ++node) {
      for (const auto& envelope : channel.receive(node)) {
        received.push_back(envelope.payload.tag);
      }
    }
  }
  EXPECT_EQ(channel.pending_count(), 0u);
  std::sort(received.begin(), received.end());
  ASSERT_EQ(received.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  EXPECT_GT(channel.counters().retransmissions, 0u);
  for (const auto& round : meter.history()) {
    EXPECT_TRUE(round.conserved());
  }
}

TEST(ReliableChannel, AtMostOnceUnderDuplicationLossAndReordering) {
  FaultPlan plan;
  plan.with_loss(0.25).with_duplication(0.4).with_delay(0.3, 2)
      .with_reordering();
  FaultInjector injector(plan, support::Rng(41));
  ReliableChannel<Probe> channel(nullptr, &injector);
  const int count = 60;
  for (int i = 0; i < count; ++i) {
    channel.send(static_cast<sim::NodeId>(i % 5),
                 static_cast<sim::NodeId>(5 + (i % 3)), Probe{i}, 16);
  }
  int guard = 0;
  std::size_t delivered = 0;
  while (channel.pending_count() > 0 && guard++ < 500) {
    channel.step();
    for (sim::NodeId node = 0; node < 8; ++node) {
      delivered += channel.receive(node).size();
    }
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(count));
  EXPECT_EQ(channel.counters().delivered, static_cast<std::uint64_t>(count));
  EXPECT_GT(channel.counters().duplicates_suppressed, 0u);
  // The delivery log holds no (receiver, seq) pair twice.
  EXPECT_TRUE(audit::check_at_most_once(channel.delivery_log()).empty());
}

TEST(ReliableChannel, BackoffDoublesAndCaps) {
  FaultPlan plan;
  plan.with_loss(1.0);  // nothing ever arrives
  FaultInjector injector(plan, support::Rng(51));
  ReliableChannel<Probe> channel(nullptr, &injector);
  channel.send(0, 1, Probe{1}, 8);
  for (int i = 0; i < 50; ++i) channel.step();
  // Initial timeout 2, doubling to the cap of 16: retries fire at rounds
  // 2, 6, 14, 30 and 46.
  EXPECT_EQ(channel.counters().retransmissions, 5u);
  EXPECT_EQ(channel.pending_count(), 1u);
}

TEST(ReliableChannel, AbandonsAfterMaxRetries) {
  FaultPlan plan;
  plan.with_loss(1.0);
  FaultInjector injector(plan, support::Rng(61));
  ReliableChannel<Probe>::Config config;
  config.max_retries = 3;
  ReliableChannel<Probe> channel(nullptr, &injector, config);
  channel.send(0, 1, Probe{1}, 8);
  for (int i = 0; i < 40; ++i) channel.step();
  EXPECT_EQ(channel.counters().retransmissions, 3u);
  EXPECT_EQ(channel.counters().abandoned, 1u);
  EXPECT_EQ(channel.pending_count(), 0u);
}

TEST(ReliableChannel, SeqWraparoundStartsAFreshDedupEra) {
  FaultPlan plan;  // lossless: every send is delivered and acked promptly
  FaultInjector injector(plan, support::Rng(81));
  ReliableChannel<Probe>::Config config;
  config.seq_bits = 3;  // wrap after 8 sends instead of 2^32
  ReliableChannel<Probe> channel(nullptr, &injector, config);

  // Two full eras plus one: every message must be delivered exactly once —
  // reused sequence numbers from a previous era must not be suppressed as
  // duplicates.
  const int count = 17;
  std::size_t delivered = 0;
  for (int i = 0; i < count; ++i) {
    channel.send(0, 1, Probe{i}, 8);
    for (int r = 0; r < 4; ++r) {
      channel.step();
      delivered += channel.receive(1).size();
      channel.receive(0);  // consume acks
    }
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(count));
  EXPECT_EQ(channel.counters().seq_wraps, 2u);
  EXPECT_EQ(channel.counters().duplicates_suppressed, 0u);
  EXPECT_EQ(channel.pending_count(), 0u);
  EXPECT_TRUE(channel.take_abandoned().empty());  // all were acked in time
}

TEST(ReliableChannel, StaleAckAfterResetCannotCancelFreshSend) {
  FaultPlan plan;
  FaultInjector injector(plan, support::Rng(91));
  ReliableChannel<Probe> channel(nullptr, &injector);

  // Send A; let the receiver ack it, but reset the channel BEFORE the
  // sender consumes that ack. The ack (for seq 0) is now stale in flight.
  channel.send(0, 1, Probe{1}, 8);
  channel.step();
  ASSERT_EQ(channel.receive(1).size(), 1u);  // receiver acks seq 0
  channel.reset();
  ASSERT_EQ(channel.pending_count(), 0u);

  // Send B. Sequence numbering stayed monotone across the reset, so B got
  // seq 1 and the stale ack for seq 0 must leave it pending.
  channel.send(0, 1, Probe{2}, 8);
  channel.step();  // delivers the stale ack alongside B
  channel.receive(0);
  EXPECT_EQ(channel.pending_count(), 1u) << "stale ack cancelled a fresh send";
  EXPECT_EQ(channel.receive(1).size(), 1u);  // B still arrives
  channel.step();
  channel.receive(0);  // B's own ack clears it
  EXPECT_EQ(channel.pending_count(), 0u);

  // The reset surfaced A as a typed abandonment.
  const auto abandoned = channel.take_abandoned();
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0].seq, 0u);
  EXPECT_EQ(abandoned[0].from, 0);
  EXPECT_EQ(abandoned[0].to, 1);
  EXPECT_EQ(abandoned[0].reason,
            ReliableChannel<Probe>::AbandonReason::kReset);
  EXPECT_EQ(channel.counters().resets, 1u);
}

TEST(ReliableChannel, RetryBudgetExhaustionSurfacesTypedError) {
  FaultPlan plan;
  plan.with_loss(1.0);  // nothing ever arrives
  FaultInjector injector(plan, support::Rng(101));
  ReliableChannel<Probe>::Config config;
  config.max_retries = 3;
  ReliableChannel<Probe> channel(nullptr, &injector, config);
  channel.send(2, 5, Probe{7}, 8);
  for (int i = 0; i < 40; ++i) channel.step();
  ASSERT_EQ(channel.pending_count(), 0u);

  const auto abandoned = channel.take_abandoned();
  ASSERT_EQ(abandoned.size(), 1u);
  EXPECT_EQ(abandoned[0].from, 2);
  EXPECT_EQ(abandoned[0].to, 5);
  EXPECT_EQ(abandoned[0].retries, 3);
  EXPECT_EQ(abandoned[0].reason,
            ReliableChannel<Probe>::AbandonReason::kRetryBudget);
  // Draining is destructive: the records are handed over exactly once.
  EXPECT_TRUE(channel.take_abandoned().empty());
}

TEST(ReliableChannel, RecoversAfterPartitionHeals) {
  FaultPlan plan;
  plan.with_partition({0, 6, 1, 0});  // ticks 0..5, side A = {0}
  FaultInjector injector(plan, support::Rng(71));
  ReliableChannel<Probe> channel(nullptr, &injector);
  channel.send(0, 1, Probe{9}, 8);
  sim::Round delivered_at = -1;
  for (int i = 0; i < 64 && delivered_at < 0; ++i) {
    channel.step();
    if (!channel.receive(1).empty()) delivered_at = channel.round();
    channel.receive(0);  // consume acks
  }
  ASSERT_GE(delivered_at, 0) << "message never crossed the healed partition";
  // Not before the heal; within one capped backoff interval afterwards.
  EXPECT_GE(delivered_at, 6);
  EXPECT_LE(delivered_at, 6 + kReliableBackoffCapRounds + 1);
  // A few more rounds let the final ack travel back and clear the pending.
  for (int i = 0; i < 4 && channel.pending_count() > 0; ++i) {
    channel.step();
    channel.receive(1);
    channel.receive(0);
  }
  EXPECT_EQ(channel.pending_count(), 0u);
  EXPECT_GT(injector.counters().partition_drops, 0u);
}

// ---------------------------------------------------------------------------
// Protocol-level graceful degradation and recovery

TEST(FaultRecovery, ReconfigureUnderNoOpHookMatchesPristine) {
  support::Rng graph_rng(0xBEEF);
  const auto graph = graph::HGraph::random(32, 8, graph_rng);
  churn::ReconfigInput input;
  input.topology = &graph;
  for (std::size_t v = 0; v < 32; ++v) input.members.push_back(100 + v);
  input.leaving.assign(32, false);
  input.joiners.assign(32, {});
  input.joiners[3].push_back(900);

  support::Rng rng_a(0x5EED);
  const auto bare = churn::reconfigure(input, rng_a);

  FaultInjector injector(FaultPlan::none(), support::Rng(1));
  input.fault_hook = &injector;
  support::Rng rng_b(0x5EED);
  const auto hooked = churn::reconfigure(input, rng_b);

  ASSERT_TRUE(bare.success);
  ASSERT_TRUE(hooked.success);
  EXPECT_EQ(bare.rounds, hooked.rounds);
  EXPECT_EQ(bare.new_members, hooked.new_members);
  EXPECT_EQ(bare.max_node_bits_per_round, hooked.max_node_bits_per_round);
}

TEST(FaultRecovery, CrashStopMemberFailsEpochGracefullyAndFreshIdRejoins) {
  support::Rng graph_rng(0xCAFE);
  const auto graph = graph::HGraph::random(16, 8, graph_rng);
  churn::ReconfigInput input;
  input.topology = &graph;
  for (std::size_t v = 0; v < 16; ++v) input.members.push_back(v);
  input.leaving.assign(16, false);
  input.joiners.assign(16, {});

  // Node 5 crash-stops before the epoch: the epoch fails (its messages are
  // gone and the paper's protocol has no tolerance for that) but fails
  // *gracefully* — a failure result, not a crash or a corrupted topology.
  FaultPlan crash_plan;
  crash_plan.with_crash({5, 0, -1});
  FaultInjector injector(crash_plan, support::Rng(2));
  input.fault_hook = &injector;
  input.reliable_settle_rounds = 8;
  support::Rng rng_a(0xD00D);
  const auto crashed = churn::reconfigure(input, rng_a);
  EXPECT_FALSE(crashed.success);
  EXPECT_FALSE(crashed.failure_reason.empty());
  EXPECT_GT(injector.counters().crash_drops, 0u);

  // Recovery protocol: the crashed node restarts with fresh state, so its
  // old id leaves and it rejoins through the join procedure with a new id.
  input.fault_hook = nullptr;
  input.reliable_settle_rounds = 0;
  input.leaving[5] = true;
  input.joiners[2].push_back(500);
  support::Rng rng_b(0xD00D);
  const auto recovered = churn::reconfigure(input, rng_b);
  ASSERT_TRUE(recovered.success);
  EXPECT_EQ(recovered.new_members.size(), 16u);
  EXPECT_TRUE(std::find(recovered.new_members.begin(),
                        recovered.new_members.end(),
                        500) != recovered.new_members.end());
  EXPECT_TRUE(std::find(recovered.new_members.begin(),
                        recovered.new_members.end(),
                        5) == recovered.new_members.end());
}

TEST(FaultRecovery, ReliableEpochSurvivesLossThatKillsBareEpoch) {
  const double loss = 0.02;
  const auto run_epoch = [&](sim::Round settle_rounds) {
    FaultPlan plan;
    plan.with_loss(loss);
    FaultInjector injector(plan, support::Rng(99));
    churn::ChurnOverlay::Config config;
    config.initial_size = 64;
    config.degree = 8;
    config.seed = 0xABCD;
    config.fault_hook = &injector;
    config.reliable_settle_rounds = settle_rounds;
    churn::ChurnOverlay overlay(config);
    adversary::NoChurn no_churn;
    return overlay.run_epoch(no_churn);
  };
  const auto bare = run_epoch(0);
  const auto reliable = run_epoch(16);
  EXPECT_FALSE(bare.success)
      << "2% loss should break the paper's loss-free one-round phases";
  EXPECT_TRUE(reliable.success) << reliable.failure_reason;
  EXPECT_TRUE(reliable.connected);
  // Reliability costs rounds: the settle loops retransmit until acked.
  EXPECT_GT(reliable.rounds, bare.rounds);
}

}  // namespace
}  // namespace reconfnet::fault
