// Tests for reconfnet_lint (tools/lint/): one test per rule id, driven by the
// fixture files in tests/lint_fixtures/, plus coverage for the suppression
// syntax, the config parser, and the layer map. The fixtures directory is
// excluded from the repo-wide walk in tools/lint/main.cpp, so the deliberate
// violations below never reach the real gate; the tests feed them to the
// Driver by hand under synthetic repo-relative paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"
#include "toolcheck_util.hpp"

namespace lint = reconfnet::lint;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(RECONFNET_LINT_FIXTURES,
                                                 name);
}

/// A config whose single layer covers everything the determinism/hygiene
/// tests register, so layering never interferes with them.
lint::Config flat_config() {
  lint::Config config;
  config.layers.push_back({"all", {"src/"}});
  return config;
}

/// The two-layer map used by the layering tests: support below runtime.
lint::Config layered_config() {
  lint::Config config;
  config.layers.push_back({"support", {"src/support/"}});
  config.layers.push_back({"runtime", {"src/runtime/"}});
  return config;
}

lint::Driver::Result run_fixture(const std::string& fixture,
                                 const std::string& as_path) {
  lint::Driver driver(flat_config());
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

using Lines = std::vector<std::size_t>;

TEST(LintDeterminism, Rnl001FlagsRandomDevice) {
  const auto result =
      run_fixture("rnl001_random_device.cpp", "src/rnl001.cpp");
  EXPECT_EQ(lines_of(result, "RNL001"), (Lines{5}));
}

TEST(LintDeterminism, Rnl002FlagsGlobalRandButNotMembers) {
  const auto result = run_fixture("rnl002_global_rand.cpp", "src/rnl002.cpp");
  // The `int rand()` declaration, srand(7), and the trailing rand() call;
  // gen.rand() is member access and stays clean.
  EXPECT_EQ(lines_of(result, "RNL002"), (Lines{8, 12, 15}));
}

TEST(LintDeterminism, Rnl003FlagsClockIncludesAndCalls) {
  const auto result = run_fixture("rnl003_wall_clock.cpp", "src/rnl003.cpp");
  // <chrono>, <ctime>, the std::chrono:: use, and time(nullptr).
  EXPECT_EQ(lines_of(result, "RNL003"), (Lines{3, 4, 7, 8}));
}

TEST(LintDeterminism, Rnl004FlagsBuildStamps) {
  const auto result = run_fixture("rnl004_build_stamp.cpp", "src/rnl004.cpp");
  EXPECT_EQ(lines_of(result, "RNL004"), (Lines{3, 4}));
}

TEST(LintDeterminism, Rnl005FlagsUnorderedIterationOnly) {
  const auto result =
      run_fixture("rnl005_unordered_iteration.cpp", "src/rnl005.cpp");
  // Range-for over the map, range-for over the set member, iterator loop.
  // The vector loop two lines later must stay clean.
  EXPECT_EQ(lines_of(result, "RNL005"), (Lines{14, 15, 16}));
}

TEST(LintDeterminism, Rnl005AcceptsSortedExtraction) {
  const auto result =
      run_fixture("rnl005_sorted_extraction.cpp", "src/sorted.cpp");
  EXPECT_TRUE(result.findings.empty())
      << "sorted-extraction idiom should be clean, got "
      << result.findings.size() << " findings";
}

TEST(LintDeterminism, Rnl006FlagsPointerKeys) {
  const auto result =
      run_fixture("rnl006_pointer_keys.cpp", "src/rnl006.cpp");
  // std::hash<Node*> and reinterpret_cast<std::uintptr_t>.
  EXPECT_EQ(lines_of(result, "RNL006"), (Lines{9, 10}));
}

TEST(LintHygiene, Rnl201FlagsMissingPragmaOnce) {
  const auto result =
      run_fixture("rnl201_missing_pragma.hpp", "src/rnl201.hpp");
  EXPECT_EQ(lines_of(result, "RNL201"), (Lines{1}));
}

TEST(LintHygiene, Rnl202FlagsUsingNamespaceInHeader) {
  const auto result =
      run_fixture("rnl202_using_namespace.hpp", "src/rnl202.hpp");
  EXPECT_EQ(lines_of(result, "RNL202"), (Lines{6}));
  EXPECT_TRUE(lines_of(result, "RNL201").empty()) << "has #pragma once";
}

TEST(LintHygiene, Rnl203FlagsBareNolint) {
  const auto result =
      run_fixture("rnl203_bare_nolint.cpp", "src/rnl203.cpp");
  // The bare and the reason-less suppressions fire; the fixture's justified
  // begin/end pair is accepted.
  EXPECT_EQ(lines_of(result, "RNL203"), (Lines{4, 5}));
}

TEST(LintHygiene, Rnl204FlagsMalformedSuppressions) {
  const auto result =
      run_fixture("rnl204_malformed_suppression.cpp", "src/rnl204.cpp");
  // Empty id list, bad id, and missing reason.
  EXPECT_EQ(lines_of(result, "RNL204"), (Lines{3, 4, 5}));
}

TEST(LintSuppression, SameLineAndLineAboveFormsSuppress) {
  const auto result =
      run_fixture("suppression_valid.cpp", "src/suppressed.cpp");
  EXPECT_TRUE(result.findings.empty())
      << "both rand() calls carry well-formed suppressions";
  EXPECT_EQ(result.suppressed, 2u);
}

TEST(LintSuppression, PathAllowlistSilencesRuleWholesale) {
  lint::Config config = flat_config();
  config.allow["RNL002"] = {"src/legacy/"};
  lint::Driver driver(std::move(config));
  driver.add_file("src/legacy/old.cpp", "int r() { return rand(); }\n");
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
  // Path allowances are carve-outs, not suppressions; they are not counted.
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(LintLayering, Rnl101FlagsUpwardInclude) {
  lint::Driver driver(layered_config());
  driver.add_file("src/support/low.hpp", read_fixture("layering_low.hpp"));
  driver.add_file("src/runtime/high.hpp", read_fixture("layering_high.hpp"));
  driver.add_file("src/support/upward.cpp",
                  read_fixture("layering_upward.cpp"));
  const auto result = driver.run();
  ASSERT_EQ(lines_of(result, "RNL101"), (Lines{3}));
  // The downward include in high.hpp is legal, so RNL101 is the only hit.
  EXPECT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/support/upward.cpp");
}

TEST(LintLayering, Rnl102FlagsUnmappedFileAndUnresolvedInclude) {
  lint::Driver driver(layered_config());
  driver.add_file("scripts/tool.cpp", "int main() { return 0; }\n");
  driver.add_file("src/support/dangling.cpp",
                  "#include \"nowhere/missing.hpp\"\n");
  const auto result = driver.run();
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].file, "scripts/tool.cpp");
  EXPECT_EQ(result.findings[0].rule, "RNL102");
  EXPECT_EQ(result.findings[0].line, 1u);
  EXPECT_EQ(result.findings[1].file, "src/support/dangling.cpp");
  EXPECT_EQ(result.findings[1].rule, "RNL102");
  EXPECT_EQ(result.findings[1].line, 1u);
}

TEST(LintStrip, CommentsAndStringsDoNotFire) {
  lint::Driver driver(flat_config());
  driver.add_file("src/strings.cpp",
                  "// rand() lives in this comment\n"
                  "const char* label = \"rand() __DATE__ random_device\";\n"
                  "/* time(nullptr) in a block comment */\n");
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
}

TEST(LintConfig, ParsesLayersAndAllowances) {
  const std::string text =
      "# comment\n"
      "[[layer]]\n"
      "name = \"support\"\n"
      "paths = [\"src/support/\"]\n"
      "\n"
      "[[layer]]\n"
      "name = \"runtime\"\n"
      "paths = [\"src/runtime/\", \"tools/\"]\n"
      "\n"
      "[allow]\n"
      "RNL003 = [\"bench/common.hpp\"]\n";
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(text, config, error)) << error;
  ASSERT_EQ(config.layers.size(), 2u);
  EXPECT_EQ(config.layers[0].name, "support");
  EXPECT_EQ(config.layers[1].paths,
            (std::vector<std::string>{"src/runtime/", "tools/"}));
  ASSERT_EQ(config.allow.count("RNL003"), 1u);
  EXPECT_EQ(config.allow.at("RNL003"),
            (std::vector<std::string>{"bench/common.hpp"}));
}

TEST(LintConfig, RejectsMalformedInput) {
  lint::Config config;
  std::string error;
  EXPECT_FALSE(
      lint::parse_config("[[layer]]\nname = \"x\"\npaths = 7\n", config,
                         error));
  EXPECT_FALSE(error.empty());
}

TEST(LintConfig, RepoLayerMapParsesAndCoversKnownFiles) {
  // The shipped layers.toml must stay parseable and must map the core tree.
  std::ifstream in(std::string(RECONFNET_LINT_LAYERS));
  ASSERT_TRUE(in) << "cannot open " << RECONFNET_LINT_LAYERS;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(buffer.str(), config, error)) << error;
  EXPECT_GE(config.layers.size(), 8u);
  lint::Driver driver(std::move(config));
  driver.add_file("src/support/probe.cpp", "int probe() { return 0; }\n");
  driver.add_file("tests/probe_test.cpp", "int probe() { return 0; }\n");
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNL102").empty())
      << "core paths must be covered by the shipped layer map";
}

// --- shared TOML-subset parser edge cases ----------------------------------
// All three checkers (lint, protocheck, hotcheck) read their specs through
// textscan::parse_toml_subset, so its corner behavior is pinned here once.

namespace textscan = reconfnet::textscan;

std::vector<textscan::TomlSection> parse_ok(const std::string& text) {
  std::vector<textscan::TomlSection> sections;
  std::string error;
  EXPECT_TRUE(textscan::parse_toml_subset(text, sections, error)) << error;
  return sections;
}

TEST(TextscanToml, EmptyTablesAreValidAndKeepTheirNames) {
  // hotpaths.toml ships a deliberately empty [allow] table.
  const auto sections = parse_ok("[allow]\n\n[[hotpath]]\nname = \"x\"\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "allow");
  EXPECT_FALSE(sections[0].is_array_of_tables);
  EXPECT_TRUE(sections[0].entries.empty());
  EXPECT_EQ(sections[1].name, "hotpath");
  EXPECT_TRUE(sections[1].is_array_of_tables);
}

TEST(TextscanToml, TrailingCommentsAfterValuesAreStripped) {
  const auto sections = parse_ok(
      "[t]\n"
      "a = [\"x\", \"y\"]  # comment after an array\n"
      "b = \"v\" # comment after a scalar\n");
  ASSERT_EQ(sections.size(), 1u);
  ASSERT_EQ(sections[0].entries.size(), 2u);
  EXPECT_EQ(sections[0].entries[0].items,
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(sections[0].entries[1].scalar, "v");
}

TEST(TextscanToml, HashInsideQuotedStringsIsNotAComment) {
  const auto sections =
      parse_ok("[t]\na = \"x#y\"\nb = [\"p#q\", \"r\"]\n");
  ASSERT_EQ(sections[0].entries.size(), 2u);
  EXPECT_EQ(sections[0].entries[0].scalar, "x#y");
  EXPECT_EQ(sections[0].entries[1].items,
            (std::vector<std::string>{"p#q", "r"}));
}

TEST(TextscanToml, CrlfInputParsesIdenticallyToLf) {
  const auto sections =
      parse_ok("[t]\r\nk = \"v\"\r\n\r\n[[u]]\r\nm = [\"a\"]\r\n");
  ASSERT_EQ(sections.size(), 2u);
  ASSERT_EQ(sections[0].entries.size(), 1u);
  EXPECT_EQ(sections[0].entries[0].scalar, "v");
  ASSERT_EQ(sections[1].entries.size(), 1u);
  EXPECT_EQ(sections[1].entries[0].items,
            (std::vector<std::string>{"a"}));
}

TEST(TextscanToml, EmptyArrayValueYieldsNoItems) {
  const auto sections = parse_ok("[t]\nk = []\n");
  ASSERT_EQ(sections[0].entries.size(), 1u);
  EXPECT_TRUE(sections[0].entries[0].is_array);
  EXPECT_TRUE(sections[0].entries[0].items.empty());
}

}  // namespace
