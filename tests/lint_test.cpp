// Tests for reconfnet_lint (tools/lint/): one test per rule id, driven by the
// fixture files in tests/lint_fixtures/, plus coverage for the suppression
// syntax, the config parser, and the layer map. The fixtures directory is
// excluded from the repo-wide walk in tools/lint/main.cpp, so the deliberate
// violations below never reach the real gate; the tests feed them to the
// Driver by hand under synthetic repo-relative paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"
#include "toolcheck_util.hpp"

namespace lint = reconfnet::lint;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(RECONFNET_LINT_FIXTURES,
                                                 name);
}

/// A config whose single layer covers everything the determinism/hygiene
/// tests register, so layering never interferes with them.
lint::Config flat_config() {
  lint::Config config;
  config.layers.push_back({"all", {"src/"}});
  return config;
}

/// The two-layer map used by the layering tests: support below runtime.
lint::Config layered_config() {
  lint::Config config;
  config.layers.push_back({"support", {"src/support/"}});
  config.layers.push_back({"runtime", {"src/runtime/"}});
  return config;
}

lint::Driver::Result run_fixture(const std::string& fixture,
                                 const std::string& as_path) {
  lint::Driver driver(flat_config());
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

using Lines = std::vector<std::size_t>;

TEST(LintDeterminism, Rnl001FlagsRandomDevice) {
  const auto result =
      run_fixture("rnl001_random_device.cpp", "src/rnl001.cpp");
  EXPECT_EQ(lines_of(result, "RNL001"), (Lines{5}));
}

TEST(LintDeterminism, Rnl002FlagsGlobalRandButNotMembers) {
  const auto result = run_fixture("rnl002_global_rand.cpp", "src/rnl002.cpp");
  // The `int rand()` declaration, srand(7), and the trailing rand() call;
  // gen.rand() is member access and stays clean.
  EXPECT_EQ(lines_of(result, "RNL002"), (Lines{8, 12, 15}));
}

TEST(LintDeterminism, Rnl003FlagsClockIncludesAndCalls) {
  const auto result = run_fixture("rnl003_wall_clock.cpp", "src/rnl003.cpp");
  // <chrono>, <ctime>, the std::chrono:: use, and time(nullptr).
  EXPECT_EQ(lines_of(result, "RNL003"), (Lines{3, 4, 7, 8}));
}

TEST(LintDeterminism, Rnl004FlagsBuildStamps) {
  const auto result = run_fixture("rnl004_build_stamp.cpp", "src/rnl004.cpp");
  EXPECT_EQ(lines_of(result, "RNL004"), (Lines{3, 4}));
}

TEST(LintDeterminism, Rnl005FlagsUnorderedIterationOnly) {
  const auto result =
      run_fixture("rnl005_unordered_iteration.cpp", "src/rnl005.cpp");
  // Range-for over the map, range-for over the set member, iterator loop.
  // The vector loop two lines later must stay clean.
  EXPECT_EQ(lines_of(result, "RNL005"), (Lines{14, 15, 16}));
}

TEST(LintDeterminism, Rnl005AcceptsSortedExtraction) {
  const auto result =
      run_fixture("rnl005_sorted_extraction.cpp", "src/sorted.cpp");
  EXPECT_TRUE(result.findings.empty())
      << "sorted-extraction idiom should be clean, got "
      << result.findings.size() << " findings";
}

TEST(LintDeterminism, Rnl006FlagsPointerKeys) {
  const auto result =
      run_fixture("rnl006_pointer_keys.cpp", "src/rnl006.cpp");
  // std::hash<Node*> and reinterpret_cast<std::uintptr_t>.
  EXPECT_EQ(lines_of(result, "RNL006"), (Lines{9, 10}));
}

TEST(LintHygiene, Rnl201FlagsMissingPragmaOnce) {
  const auto result =
      run_fixture("rnl201_missing_pragma.hpp", "src/rnl201.hpp");
  EXPECT_EQ(lines_of(result, "RNL201"), (Lines{1}));
}

TEST(LintHygiene, Rnl202FlagsUsingNamespaceInHeader) {
  const auto result =
      run_fixture("rnl202_using_namespace.hpp", "src/rnl202.hpp");
  EXPECT_EQ(lines_of(result, "RNL202"), (Lines{6}));
  EXPECT_TRUE(lines_of(result, "RNL201").empty()) << "has #pragma once";
}

TEST(LintHygiene, Rnl203FlagsBareNolint) {
  const auto result =
      run_fixture("rnl203_bare_nolint.cpp", "src/rnl203.cpp");
  // The bare and the reason-less suppressions fire; the fixture's justified
  // begin/end pair is accepted.
  EXPECT_EQ(lines_of(result, "RNL203"), (Lines{4, 5}));
}

TEST(LintHygiene, Rnl204FlagsMalformedSuppressions) {
  const auto result =
      run_fixture("rnl204_malformed_suppression.cpp", "src/rnl204.cpp");
  // Empty id list, bad id, and missing reason.
  EXPECT_EQ(lines_of(result, "RNL204"), (Lines{3, 4, 5}));
}

TEST(LintSuppression, SameLineAndLineAboveFormsSuppress) {
  const auto result =
      run_fixture("suppression_valid.cpp", "src/suppressed.cpp");
  EXPECT_TRUE(result.findings.empty())
      << "both rand() calls carry well-formed suppressions";
  EXPECT_EQ(result.suppressed, 2u);
}

TEST(LintSuppression, PathAllowlistSilencesRuleWholesale) {
  lint::Config config = flat_config();
  config.allow["RNL002"] = {"src/legacy/"};
  lint::Driver driver(std::move(config));
  driver.add_file("src/legacy/old.cpp", "int r() { return rand(); }\n");
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
  // Path allowances are carve-outs, not suppressions; they are not counted.
  EXPECT_EQ(result.suppressed, 0u);
}

TEST(LintLayering, Rnl101FlagsUpwardInclude) {
  lint::Driver driver(layered_config());
  driver.add_file("src/support/low.hpp", read_fixture("layering_low.hpp"));
  driver.add_file("src/runtime/high.hpp", read_fixture("layering_high.hpp"));
  driver.add_file("src/support/upward.cpp",
                  read_fixture("layering_upward.cpp"));
  const auto result = driver.run();
  ASSERT_EQ(lines_of(result, "RNL101"), (Lines{3}));
  // The downward include in high.hpp is legal, so RNL101 is the only hit.
  EXPECT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "src/support/upward.cpp");
}

TEST(LintLayering, Rnl102FlagsUnmappedFileAndUnresolvedInclude) {
  lint::Driver driver(layered_config());
  driver.add_file("scripts/tool.cpp", "int main() { return 0; }\n");
  driver.add_file("src/support/dangling.cpp",
                  "#include \"nowhere/missing.hpp\"\n");
  const auto result = driver.run();
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].file, "scripts/tool.cpp");
  EXPECT_EQ(result.findings[0].rule, "RNL102");
  EXPECT_EQ(result.findings[0].line, 1u);
  EXPECT_EQ(result.findings[1].file, "src/support/dangling.cpp");
  EXPECT_EQ(result.findings[1].rule, "RNL102");
  EXPECT_EQ(result.findings[1].line, 1u);
}

TEST(LintStrip, CommentsAndStringsDoNotFire) {
  lint::Driver driver(flat_config());
  driver.add_file("src/strings.cpp",
                  "// rand() lives in this comment\n"
                  "const char* label = \"rand() __DATE__ random_device\";\n"
                  "/* time(nullptr) in a block comment */\n");
  const auto result = driver.run();
  EXPECT_TRUE(result.findings.empty());
}

TEST(LintConfig, ParsesLayersAndAllowances) {
  const std::string text =
      "# comment\n"
      "[[layer]]\n"
      "name = \"support\"\n"
      "paths = [\"src/support/\"]\n"
      "\n"
      "[[layer]]\n"
      "name = \"runtime\"\n"
      "paths = [\"src/runtime/\", \"tools/\"]\n"
      "\n"
      "[allow]\n"
      "RNL003 = [\"bench/common.hpp\"]\n";
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(text, config, error)) << error;
  ASSERT_EQ(config.layers.size(), 2u);
  EXPECT_EQ(config.layers[0].name, "support");
  EXPECT_EQ(config.layers[1].paths,
            (std::vector<std::string>{"src/runtime/", "tools/"}));
  ASSERT_EQ(config.allow.count("RNL003"), 1u);
  EXPECT_EQ(config.allow.at("RNL003"),
            (std::vector<std::string>{"bench/common.hpp"}));
}

TEST(LintConfig, RejectsMalformedInput) {
  lint::Config config;
  std::string error;
  EXPECT_FALSE(
      lint::parse_config("[[layer]]\nname = \"x\"\npaths = 7\n", config,
                         error));
  EXPECT_FALSE(error.empty());
}

TEST(LintConfig, RepoLayerMapParsesAndCoversKnownFiles) {
  // The shipped layers.toml must stay parseable and must map the core tree.
  std::ifstream in(std::string(RECONFNET_LINT_LAYERS));
  ASSERT_TRUE(in) << "cannot open " << RECONFNET_LINT_LAYERS;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(buffer.str(), config, error)) << error;
  EXPECT_GE(config.layers.size(), 8u);
  lint::Driver driver(std::move(config));
  driver.add_file("src/support/probe.cpp", "int probe() { return 0; }\n");
  driver.add_file("tests/probe_test.cpp", "int probe() { return 0; }\n");
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNL102").empty())
      << "core paths must be covered by the shipped layer map";
}

// --- shared TOML-subset parser edge cases ----------------------------------
// All three checkers (lint, protocheck, hotcheck) read their specs through
// textscan::parse_toml_subset, so its corner behavior is pinned here once.

namespace textscan = reconfnet::textscan;

std::vector<textscan::TomlSection> parse_ok(const std::string& text) {
  std::vector<textscan::TomlSection> sections;
  std::string error;
  EXPECT_TRUE(textscan::parse_toml_subset(text, sections, error)) << error;
  return sections;
}

TEST(TextscanToml, EmptyTablesAreValidAndKeepTheirNames) {
  // hotpaths.toml ships a deliberately empty [allow] table.
  const auto sections = parse_ok("[allow]\n\n[[hotpath]]\nname = \"x\"\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "allow");
  EXPECT_FALSE(sections[0].is_array_of_tables);
  EXPECT_TRUE(sections[0].entries.empty());
  EXPECT_EQ(sections[1].name, "hotpath");
  EXPECT_TRUE(sections[1].is_array_of_tables);
}

TEST(TextscanToml, TrailingCommentsAfterValuesAreStripped) {
  const auto sections = parse_ok(
      "[t]\n"
      "a = [\"x\", \"y\"]  # comment after an array\n"
      "b = \"v\" # comment after a scalar\n");
  ASSERT_EQ(sections.size(), 1u);
  ASSERT_EQ(sections[0].entries.size(), 2u);
  EXPECT_EQ(sections[0].entries[0].items,
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(sections[0].entries[1].scalar, "v");
}

TEST(TextscanToml, HashInsideQuotedStringsIsNotAComment) {
  const auto sections =
      parse_ok("[t]\na = \"x#y\"\nb = [\"p#q\", \"r\"]\n");
  ASSERT_EQ(sections[0].entries.size(), 2u);
  EXPECT_EQ(sections[0].entries[0].scalar, "x#y");
  EXPECT_EQ(sections[0].entries[1].items,
            (std::vector<std::string>{"p#q", "r"}));
}

TEST(TextscanToml, CrlfInputParsesIdenticallyToLf) {
  const auto sections =
      parse_ok("[t]\r\nk = \"v\"\r\n\r\n[[u]]\r\nm = [\"a\"]\r\n");
  ASSERT_EQ(sections.size(), 2u);
  ASSERT_EQ(sections[0].entries.size(), 1u);
  EXPECT_EQ(sections[0].entries[0].scalar, "v");
  ASSERT_EQ(sections[1].entries.size(), 1u);
  EXPECT_EQ(sections[1].entries[0].items,
            (std::vector<std::string>{"a"}));
}

TEST(TextscanToml, EmptyArrayValueYieldsNoItems) {
  const auto sections = parse_ok("[t]\nk = []\n");
  ASSERT_EQ(sections[0].entries.size(), 1u);
  EXPECT_TRUE(sections[0].entries[0].is_array);
  EXPECT_TRUE(sections[0].entries[0].items.empty());
}

// --- shared SARIF writer ----------------------------------------------------
// All four checkers emit through textscan::write_sarif; the umbrella driver
// (tools/run_checks.sh) then merges the per-tool logs into one file, so the
// writer must keep rule ids namespaced per run and mark suppressed results.
// Findings from two different tools (lint RNL ids, racecheck RNR ids) in one
// run pin that nothing in the writer assumes a single rule prefix.

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TextscanSarif, TwoToolRuleSetsShareOneRunWithoutCollisions) {
  const std::vector<textscan::Finding> findings = {
      {"src/support/rng.cpp", 12, "RNL004", "rand() call"},
      {"src/runtime/pool.cpp", 40, "RNR501", "shared mutation \"total\""},
      {"src/runtime/pool.cpp", 44, "RNR503", "writes slots[0]"},
      {"src/support/rng.cpp", 30, "RNL004", "second rand() call"},
  };
  const std::vector<textscan::Finding> suppressed = {
      {"bench/common.hpp", 7, "RNL003", "time() in timing block"},
      {"src/runtime/pool.cpp", 52, "RNR501", "documented reduction"},
  };
  std::ostringstream out;
  textscan::write_sarif(out, "reconfnet_checks", "tools/run_checks.sh",
                        findings, suppressed);
  const std::string sarif = out.str();

  // Rule ids from both tools appear, deduplicated, in the driver's rules
  // array — RNL004 has two results and RNR501 one live + one suppressed,
  // but each descriptor is emitted once.
  EXPECT_EQ(count_of(sarif, "{\"id\": \"RNL003\"}"), 1u);
  EXPECT_EQ(count_of(sarif, "{\"id\": \"RNL004\"}"), 1u);
  EXPECT_EQ(count_of(sarif, "{\"id\": \"RNR501\"}"), 1u);
  EXPECT_EQ(count_of(sarif, "{\"id\": \"RNR503\"}"), 1u);

  // Every finding becomes a result with its own region URI and line.
  EXPECT_EQ(count_of(sarif, "\"uri\": \"src/support/rng.cpp\""), 2u);
  EXPECT_EQ(count_of(sarif, "\"uri\": \"src/runtime/pool.cpp\""), 3u);
  EXPECT_EQ(count_of(sarif, "\"uri\": \"bench/common.hpp\""), 1u);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 52"), std::string::npos);

  // Exactly the two suppressed results carry an inSource suppression record.
  EXPECT_EQ(count_of(sarif, "\"suppressions\": [{\"kind\": \"inSource\"}]"),
            2u);
  EXPECT_EQ(count_of(sarif, "\"ruleId\""), 6u);

  // Message text is JSON-escaped.
  EXPECT_NE(sarif.find("shared mutation \\\"total\\\""), std::string::npos);

  // The whole log parses as the single-run SARIF 2.1.0 shape the merge step
  // concatenates.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_EQ(count_of(sarif, "\"name\": \"reconfnet_checks\""), 1u);
}

TEST(TextscanSarif, EmptyRunAndZeroLineAreWellFormed) {
  std::ostringstream out;
  textscan::write_sarif(out, "reconfnet_lint", "tools/lint/lint.hpp", {});
  const std::string sarif = out.str();
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);

  // A finding with no line number clamps to startLine 1 (SARIF requires a
  // positive line).
  std::ostringstream out2;
  textscan::write_sarif(out2, "reconfnet_lint", "tools/lint/lint.hpp",
                        {{"src/a.cpp", 0, "RNL001", "file-scope finding"}});
  EXPECT_NE(out2.str().find("\"startLine\": 1"), std::string::npos);
}

}  // namespace
