// Schedule-perturbation replay harness for the dynamic half of the
// concurrency checker (src/runtime/racecheck.hpp, DESIGN.md §13).
//
// The determinism contract (DESIGN.md §7) says the pool schedule cannot leak
// into results. These tests hold the runtime to it: each scenario runs once
// under the natural production schedule, then again under three adversarial
// schedules — reversed submission, a seeded shuffle, and a steal storm that
// funnels every task through worker 0's queue — plus the serial reference
// path, and asserts the byte serialization of the results is identical
// every time. Scenarios cover every registered parallel region shape: a raw
// parallel_for slot fill, a TrialRunner grid over churn-overlay epochs, and
// workload-driver trials with and without injected faults.
//
// The ownership tracker's own semantics (slot i written exactly once, by
// task i; violations thrown from the submitting thread) are pinned by the
// negative tests at the bottom.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/churn.hpp"
#include "churn/overlay.hpp"
#include "runtime/racecheck.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trial_runner.hpp"
#include "sim/snapshot.hpp"
#include "support/rng.hpp"
#include "workload/adapters.hpp"
#include "workload/driver.hpp"

namespace reconfnet {
namespace {

namespace racecheck = runtime::racecheck;
using runtime::parallel_for;
using runtime::ThreadPool;
using runtime::TrialContext;
using runtime::TrialRunner;

/// Every schedule a region must replay identically under. kNatural first:
/// it is the baseline the others are compared against.
const std::vector<std::pair<racecheck::Schedule, const char*>>& schedules() {
  static const std::vector<std::pair<racecheck::Schedule, const char*>> all = {
      {racecheck::Schedule::kNatural, "natural"},
      {racecheck::Schedule::kReverse, "reverse"},
      {racecheck::Schedule::kSeeded, "seeded"},
      {racecheck::Schedule::kStealStorm, "steal-storm"},
  };
  return all;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

template <typename T>
void append_value(std::vector<std::uint8_t>& out, const T& value) {
  append_bytes(out, &value, sizeof(value));
}

/// Tracker + schedule state for one replay run; restores production state.
class ScheduleGuard {
 public:
  ScheduleGuard(racecheck::Schedule schedule, std::uint64_t seed) {
    racecheck::set_enabled(true);
    racecheck::set_schedule(schedule, seed);
  }
  ~ScheduleGuard() {
    racecheck::set_schedule(racecheck::Schedule::kNatural, 0);
    racecheck::set_enabled(false);
  }
};

/// Runs `scenario(jobs)` under the natural schedule and every adversarial
/// one (and serially) and asserts byte-identical output throughout.
template <typename Scenario>
void expect_schedule_invariant(const char* name, Scenario&& scenario) {
  std::vector<std::uint8_t> baseline;
  {
    ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
    baseline = scenario(4);
  }
  ASSERT_FALSE(baseline.empty()) << name;
  {
    ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
    EXPECT_EQ(baseline, scenario(1)) << name << ": serial reference diverged";
  }
  for (const auto& [schedule, label] : schedules()) {
    ScheduleGuard guard(schedule, 0xFEED5EED);
    EXPECT_EQ(baseline, scenario(4))
        << name << ": schedule " << label << " leaked into the results";
  }
}

// --- replay scenarios -------------------------------------------------------

TEST(RacecheckReplay, RawParallelForSlotFill) {
  expect_schedule_invariant("parallel_for", [](std::size_t jobs) {
    std::vector<std::uint64_t> slots(96, 0);
    ThreadPool pool(jobs);
    parallel_for(pool, slots.size(), [&slots](std::size_t i) {
      support::Rng rng = support::Rng(0xABCD).split(i);
      std::uint64_t acc = 0;
      for (int draw = 0; draw < 64; ++draw) acc ^= rng.next();
      slots[i] = acc;
    });
    std::vector<std::uint8_t> bytes;
    for (const std::uint64_t v : slots) append_value(bytes, v);
    return bytes;
  });
}

TEST(RacecheckReplay, ChurnOverlayEpochGrid) {
  expect_schedule_invariant("churn-epochs", [](std::size_t jobs) {
    TrialRunner runner(0xC0FFEE, jobs);
    const auto snapshots =
        runner.run(12, [](TrialContext& trial) {
          churn::ChurnOverlay::Config config;
          config.initial_size = 48;
          config.degree = 6;
          config.sampling.c = 2.0;
          config.seed = trial.derive_seed();
          churn::ChurnOverlay overlay(config);
          adversary::UniformChurn churn_adversary(
              0.05, 1.0, 1.0, support::Rng(trial.derive_seed()));
          for (int epoch = 0; epoch < 2; ++epoch) {
            overlay.run_epoch(churn_adversary);
          }
          sim::TopologySnapshot snap;
          snap.round = overlay.round();
          snap.nodes = overlay.members();
          return sim::serialize(snap);
        });
    std::vector<std::uint8_t> bytes;
    for (const auto& snap : snapshots) {
      bytes.insert(bytes.end(), snap.begin(), snap.end());
    }
    return bytes;
  });
}

std::vector<std::uint8_t> workload_trials(std::size_t jobs, bool faults) {
  TrialRunner runner(faults ? 0xFA17 : 0x10AD, jobs);
  const auto reports = runner.run(8, [faults](TrialContext& trial) {
    workload::PubSubAdapterConfig adapter_config;
    adapter_config.size = 128;
    adapter_config.topics = 16;
    adapter_config.seed = trial.derive_seed();
    workload::DriverConfig config;
    config.rounds = 48;
    config.write_fraction = 0.3;
    config.keys.keyspace = adapter_config.topics;
    config.keys.theta = 0.9;
    config.arrivals.rate = 2.0;
    config.arrivals.poisson = true;
    config.per_group_capacity = 2;
    config.epoch_every = 16;
    if (faults) config.faults = fault::FaultPlan{}.with_loss(0.02);
    workload::PubSubAdapter adapter(adapter_config);
    return workload::run_workload(config, adapter, trial.rng);
  });
  std::vector<std::uint8_t> bytes;
  for (const auto& report : reports) {
    append_value(bytes, report.issued);
    append_value(bytes, report.completed);
    append_value(bytes, report.failed);
    append_value(bytes, report.in_flight);
    append_value(bytes, report.retries);
    append_value(bytes, report.fault_lost_legs);
    append_value(bytes, report.rounds);
    append_value(bytes, report.epochs_run);
    append_value(bytes, report.epochs_ok);
    append_value(bytes, report.max_queue);
    append_value(bytes, report.throughput);
    append_value(bytes, report.p50);
    append_value(bytes, report.p99);
    append_value(bytes, report.p999);
    append_value(bytes, report.mean_latency);
  }
  return bytes;
}

TEST(RacecheckReplay, WorkloadDriverTrials) {
  expect_schedule_invariant("workload", [](std::size_t jobs) {
    return workload_trials(jobs, /*faults=*/false);
  });
}

TEST(RacecheckReplay, WorkloadDriverTrialsUnderFaults) {
  expect_schedule_invariant("workload-faults", [](std::size_t jobs) {
    return workload_trials(jobs, /*faults=*/true);
  });
}

// --- ownership tracker semantics --------------------------------------------

TEST(RacecheckReplay, WrongSlotWriteThrowsFromSubmittingThread) {
  ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 16,
                   [](std::size_t i) {
                     racecheck::note_slot_write((i + 1) % 16);
                   }),
      std::logic_error);
}

TEST(RacecheckReplay, DoubleSlotWriteThrows) {
  ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 16,
                            [](std::size_t i) {
                              racecheck::note_slot_write(i);
                              racecheck::note_slot_write(i);
                            }),
               std::logic_error);
}

TEST(RacecheckReplay, OwnSlotWritesAreClean) {
  ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
  ThreadPool pool(4);
  EXPECT_NO_THROW(parallel_for(
      pool, 16, [](std::size_t i) { racecheck::note_slot_write(i); }));
}

TEST(RacecheckReplay, SerialTrialRunnerIsTrackedToo) {
  ScheduleGuard guard(racecheck::Schedule::kNatural, 0);
  TrialRunner runner(1, 1);
  const auto results =
      runner.run(8, [](TrialContext& trial) { return trial.index; });
  ASSERT_EQ(results.size(), 8u);  // note_slot_write(i) ran clean serially
}

TEST(RacecheckReplay, DisabledTrackerIgnoresViolations) {
  racecheck::set_enabled(false);
  ThreadPool pool(2);
  EXPECT_NO_THROW(parallel_for(pool, 8, [](std::size_t i) {
    racecheck::note_slot_write((i + 1) % 8);
  }));
}

TEST(RacecheckReplay, EnvironmentStateRoundTrips) {
  const bool was = racecheck::enabled();
  racecheck::set_enabled(true);
  EXPECT_TRUE(racecheck::enabled());
  racecheck::set_schedule(racecheck::Schedule::kSeeded, 99);
  EXPECT_EQ(racecheck::schedule(), racecheck::Schedule::kSeeded);
  EXPECT_EQ(racecheck::schedule_seed(), 99u);
  racecheck::set_schedule(racecheck::Schedule::kNatural, 0);
  racecheck::set_enabled(was);
}

}  // namespace
}  // namespace reconfnet
