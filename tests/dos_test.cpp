#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adversary/dos.hpp"
#include "dos/group_table.hpp"
#include "dos/overlay.hpp"
#include "graph/connectivity.hpp"
#include "support/rng.hpp"

namespace reconfnet::dos {
namespace {

TEST(ChooseDimension, MatchesPaperFormula) {
  // d is the largest integer with 2^d <= n / (c log2 n).
  EXPECT_EQ(DosOverlay::choose_dimension(1024, 1.0), 6);   // 1024/10.0 = 102.4
  EXPECT_EQ(DosOverlay::choose_dimension(1024, 2.0), 5);   // 51.2
  EXPECT_EQ(DosOverlay::choose_dimension(65536, 1.0), 12); // 4096
  EXPECT_GE(DosOverlay::choose_dimension(64, 4.0), 1);
}

TEST(GroupTable, RandomAssignsEveryNodeOnce) {
  support::Rng rng(1);
  std::vector<sim::NodeId> nodes(256);
  for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i] = i + 1000;
  const auto table = GroupTable::random(4, nodes, rng);
  EXPECT_EQ(table.size(), 256u);
  EXPECT_EQ(table.supernodes(), 16u);
  std::size_t total = 0;
  for (std::uint64_t x = 0; x < table.supernodes(); ++x) {
    const auto& members = table.group(x);
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (sim::NodeId node : members) {
      EXPECT_EQ(table.supernode_of(node), x);
    }
    total += members.size();
  }
  EXPECT_EQ(total, 256u);
  EXPECT_GE(table.min_group_size(), 1u);
  EXPECT_LE(table.max_group_size(), 40u);  // mean 16, whp bounded
}

TEST(GroupTable, RejectsInvalidConfigurations) {
  // Empty group.
  EXPECT_THROW(GroupTable(1, {{1, 2}, {}}), std::invalid_argument);
  // Node in two groups.
  EXPECT_THROW(GroupTable(1, {{1, 2}, {2, 3}}), std::invalid_argument);
  // Wrong group count.
  EXPECT_THROW(GroupTable(2, {{1}, {2}}), std::invalid_argument);
}

TEST(GroupTable, OverlayEdgesAreCliquesPlusBipartite) {
  // d = 1: groups {1,2} and {3}; expect clique edge (1,2) and bipartite
  // (1,3), (2,3).
  const GroupTable table(1, {{1, 2}, {3}});
  auto edges = table.overlay_edges();
  EXPECT_EQ(edges.size(), 3u);
  auto has = [&](sim::NodeId a, sim::NodeId b) {
    return std::any_of(edges.begin(), edges.end(), [&](const auto& e) {
      return (e.first == a && e.second == b) ||
             (e.first == b && e.second == a);
    });
  };
  EXPECT_TRUE(has(1, 2));
  EXPECT_TRUE(has(1, 3));
  EXPECT_TRUE(has(2, 3));
}

TEST(GroupTable, OverlayIsConnectedWithoutBlocking) {
  support::Rng rng(2);
  std::vector<sim::NodeId> nodes(512);
  for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i] = i;
  const auto table = GroupTable::random(5, nodes, rng);
  EXPECT_TRUE(graph::is_connected(table.all_nodes(), table.overlay_edges()));
}

DosOverlay::Config overlay_config(std::size_t n, std::uint64_t seed) {
  DosOverlay::Config config;
  config.size = n;
  config.group_c = 1.0;
  config.seed = seed;
  return config;
}

TEST(DosOverlay, QuietEpochReorganizes) {
  DosOverlay overlay(overlay_config(512, 1));
  const auto before = overlay.groups().all_nodes();
  std::unordered_map<sim::NodeId, std::uint64_t> old_assignment;
  for (sim::NodeId node : before) {
    old_assignment[node] = overlay.groups().supernode_of(node);
  }
  const auto report = overlay.run_epoch({});
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.reorganized);
  EXPECT_EQ(report.silenced_group_rounds, 0u);
  EXPECT_EQ(report.disconnected_rounds, 0u);
  EXPECT_DOUBLE_EQ(report.min_available_fraction, 1.0);
  EXPECT_GT(report.rounds, 0);
  // Node set unchanged, assignment rerandomized.
  std::size_t moved = 0;
  for (sim::NodeId node : overlay.groups().all_nodes()) {
    if (overlay.groups().supernode_of(node) != old_assignment.at(node)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, before.size() / 2);
}

TEST(DosOverlay, EpochTakesLogLogRounds) {
  DosOverlay overlay(overlay_config(1024, 2));
  const auto report = overlay.run_epoch({});
  ASSERT_TRUE(report.success);
  // 4 rounds per sampler iteration + 4 reorganization rounds; with d = 6
  // the sampler runs ceil(log2 6) = 3 iterations -> 16 rounds.
  EXPECT_EQ(report.rounds, 16);
}

TEST(DosOverlay, GroupSizesStayBalanced) {
  // Lemma 16: (1-delta) n/N < |R(x)| < (1+delta) n/N w.h.p.
  DosOverlay overlay(overlay_config(2048, 3));
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto report = overlay.run_epoch({});
    ASSERT_TRUE(report.success) << report.failure_reason;
    const double avg = static_cast<double>(overlay.size()) /
                       static_cast<double>(overlay.groups().supernodes());
    EXPECT_GT(static_cast<double>(report.min_group_size), 0.2 * avg);
    EXPECT_LT(static_cast<double>(report.max_group_size), 3.0 * avg);
  }
}

TEST(DosOverlay, SurvivesRandomAttackAtHalfMinusEpsilon) {
  // Theorem 6 with eps = 0.15: the adversary blocks 35% of all nodes every
  // round but cannot target groups it cannot see. Lemma 17 requires the
  // group-size constant c to be large enough for the blocking fraction;
  // group_c = 2 gives groups of ~32 nodes at this scale.
  auto config = overlay_config(1024, 4);
  config.group_c = 2.0;
  DosOverlay overlay(config);
  support::Rng rng(5);
  adversary::RandomDos adversary(rng);
  DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 64;  // > 2t for this configuration
  attack.blocked_fraction = 0.35;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(attack);
    EXPECT_TRUE(report.success) << "epoch " << epoch << ": "
                                << report.failure_reason;
    EXPECT_EQ(report.disconnected_rounds, 0u);
    EXPECT_GT(report.min_available_fraction, 0.0);
  }
}

TEST(DosOverlay, StaticOverlayFallsToZeroLateIsolation) {
  // The impossibility direction: a 0-late adversary that sees the live
  // topology isolates a node of the *static* overlay and disconnects it.
  DosOverlay overlay(overlay_config(512, 6));
  support::Rng rng(7);
  adversary::IsolationDos adversary(rng);
  DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 0;
  attack.blocked_fraction = 0.45;
  const auto report = overlay.run_static(attack, 8);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.disconnected_rounds, 0u);
}

TEST(DosOverlay, ReconfiguringOverlayResistsLateIsolation) {
  // The possibility direction: the same isolation strategy with Omega(log
  // log n) lateness acts on outdated groups and fails.
  auto config = overlay_config(1024, 8);
  config.group_c = 2.0;  // Lemma 17: c scaled to the blocking fraction
  DosOverlay overlay(config);
  support::Rng rng(9);
  adversary::IsolationDos adversary(rng);
  DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.blocked_fraction = 0.35;
  attack.lateness = 40;  // 2t with t = 16-20 rounds per epoch
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(attack);
    EXPECT_TRUE(report.success) << "epoch " << epoch << ": "
                                << report.failure_reason;
    EXPECT_EQ(report.disconnected_rounds, 0u);
  }
}

TEST(DosOverlay, GroupWipeSilencesGroupsWhenZeroLate) {
  // A 0-late group-wiping adversary can silence entire groups (it sees the
  // current cliques); the overlay must detect this and refuse to adopt the
  // epoch's reorganization.
  DosOverlay overlay(overlay_config(512, 10));
  support::Rng rng(11);
  adversary::GroupWipeDos adversary(rng);
  DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 0;
  attack.blocked_fraction = 0.45;
  const auto report = overlay.run_epoch(attack);
  EXPECT_GT(report.silenced_group_rounds, 0u);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.reorganized);
}

TEST(DosOverlay, LatenessIsEnforcedViaSnapshots) {
  // With lateness larger than the overlay's age the adversary gets no
  // topology snapshot — only the public id universe — so the group-wipe
  // strategy degrades to blind random blocking: it still blocks its full
  // budget but can no longer silence groups (contrast with the 0-late case
  // in GroupWipeSilencesGroupsWhenZeroLate).
  auto config = overlay_config(512, 12);
  config.group_c = 2.0;
  DosOverlay overlay(config);
  support::Rng rng(13);
  adversary::GroupWipeDos adversary(rng);
  DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 1000000;
  attack.blocked_fraction = 0.45;
  const auto report = overlay.run_epoch(attack);
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.silenced_group_rounds, 0u);
  // The budget was actually spent: availability is visibly reduced.
  EXPECT_LT(report.min_available_fraction, 1.0);
  EXPECT_GT(report.min_available_fraction, 0.0);
}

TEST(DosOverlay, CommunicationWorkIsPolylog) {
  DosOverlay overlay(overlay_config(2048, 14));
  const auto report = overlay.run_epoch({});
  ASSERT_TRUE(report.success);
  // The state broadcast S(x) is O(log^2 n) entries of O(log n) group
  // references each, replicated to O(log n) members: O(log^4 n) ids per node
  // per round, i.e. polylog. We check the id count (bits / 64-bit id width)
  // against a generous log^7 n envelope that absorbs the schedule constants.
  const double log_n = 11.0;
  const double ids_per_round =
      static_cast<double>(report.max_node_bits_per_round) / 64.0;
  EXPECT_LT(ids_per_round, std::pow(log_n, 7.0));
  EXPECT_GT(report.max_node_bits_per_round, 0u);
}

TEST(DosOverlay, StaticRunKeepsGroupsFixed) {
  DosOverlay overlay(overlay_config(256, 15));
  std::unordered_map<sim::NodeId, std::uint64_t> before;
  for (sim::NodeId node : overlay.groups().all_nodes()) {
    before[node] = overlay.groups().supernode_of(node);
  }
  const auto report = overlay.run_static({}, 10);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.rounds, 10);
  for (const auto& [node, x] : before) {
    EXPECT_EQ(overlay.groups().supernode_of(node), x);
  }
}

}  // namespace
}  // namespace reconfnet::dos
