#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet::sampling {
namespace {

TEST(CeilLog2, KnownValues) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
}

TEST(SizeEstimate, UpperBoundsLogLogN) {
  // n = 65536: log log n = 4 exactly.
  const auto est = SizeEstimate::from_true_size(65536);
  EXPECT_EQ(est.loglog_upper(), 4);
  EXPECT_EQ(est.log_n_estimate(), 16u);
  // Slack shifts k additively (Section 4's additive deviation model).
  const auto loose = SizeEstimate::from_true_size(65536, 2);
  EXPECT_EQ(loose.loglog_upper(), 6);
  EXPECT_EQ(loose.log_n_estimate(), 64u);
}

TEST(SizeEstimate, EstimateDominatesTrueLogN) {
  for (std::size_t n : {16u, 100u, 1024u, 65536u, 1000000u}) {
    const auto est = SizeEstimate::from_true_size(n);
    EXPECT_GE(static_cast<double>(est.log_n_estimate()),
              std::log2(static_cast<double>(n)) - 1e-9)
        << "n=" << n;
  }
}

TEST(Schedule, HGraphMatchesLemma7Shape) {
  const auto est = SizeEstimate::from_true_size(1024);
  SamplingConfig config;
  config.epsilon = 0.5;
  config.c = 2.0;
  config.beta = 2.0;
  const auto schedule = hgraph_schedule(est, 8, config);
  ASSERT_GE(schedule.iterations, 1);
  ASSERT_EQ(schedule.m.size(),
            static_cast<std::size_t>(schedule.iterations) + 1);
  // m_i = (2+eps)^{T-i} c log n: decreasing by factor 2+eps, ending at
  // c log n >= beta log n.
  for (int i = 1; i <= schedule.iterations; ++i) {
    const double ratio =
        static_cast<double>(schedule.m[static_cast<std::size_t>(i - 1)]) /
        static_cast<double>(schedule.m[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(ratio, 2.5, 0.1);
  }
  EXPECT_GE(schedule.samples_out(),
            static_cast<std::size_t>(config.beta *
                                     static_cast<double>(est.log_n_estimate())));
  // Walk length 2^T covers the mixing length of Lemma 2.
  EXPECT_GE(schedule.target_walk_length,
            hgraph_mixing_walk_length(est.log_n_estimate() > 0 ? 1024 : 0, 8,
                                      config.alpha));
}

TEST(Schedule, HypercubeIterationCount) {
  const auto est = SizeEstimate::from_true_size(256);
  SamplingConfig config;
  // d = 8 = 2^3: exactly log2(d) iterations, the paper's log log n.
  EXPECT_EQ(hypercube_schedule(est, 8, config).iterations, 3);
  EXPECT_EQ(hypercube_schedule(est, 6, config).iterations, 3);
  EXPECT_EQ(hypercube_schedule(est, 16, config).iterations, 4);
}

TEST(Schedule, RejectsInvalidConfigs) {
  const auto est = SizeEstimate::from_true_size(256);
  SamplingConfig bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(hgraph_schedule(est, 8, bad), std::invalid_argument);
  bad.epsilon = 1.5;
  EXPECT_THROW(hgraph_schedule(est, 8, bad), std::invalid_argument);
  SamplingConfig c_lt_beta;
  c_lt_beta.c = 1.0;
  c_lt_beta.beta = 2.0;
  EXPECT_THROW(hgraph_schedule(est, 8, c_lt_beta), std::invalid_argument);
  SamplingConfig ok;
  EXPECT_THROW(hgraph_schedule(est, 4, ok), std::invalid_argument);  // d/4 = 1
  EXPECT_THROW(hypercube_schedule(est, 0, ok), std::invalid_argument);
}

// --- Algorithm 1 -----------------------------------------------------------

Schedule small_hgraph_schedule(std::size_t n, double c = 2.0,
                               double epsilon = 1.0) {
  SamplingConfig config;
  config.epsilon = epsilon;
  config.c = c;
  config.beta = 1.0;
  return hgraph_schedule(SizeEstimate::from_true_size(n), 8, config);
}

TEST(HGraphSamplerCore, InitFillsWithNeighbors) {
  support::Rng rng(1);
  const auto g = graph::HGraph::random(64, 8, rng);
  const auto schedule = small_hgraph_schedule(64);
  HGraphSamplerCore core(5, schedule, rng.split(99));
  core.init(g);
  EXPECT_EQ(core.multiset().size(), schedule.m0());
  const auto nbrs = g.neighbors(5);
  for (const auto& entry : core.multiset()) {
    EXPECT_EQ(entry.length, 1u);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), entry.vertex), nbrs.end());
  }
}

TEST(HGraphSamplerCore, MakeRequestsExtractsScheduleSizes) {
  support::Rng rng(2);
  const auto g = graph::HGraph::random(64, 8, rng);
  const auto schedule = small_hgraph_schedule(64);
  HGraphSamplerCore core(0, schedule, rng.split(1));
  core.init(g);
  const auto requests = core.make_requests(1);
  EXPECT_EQ(requests.size(), schedule.m[1]);
  EXPECT_EQ(core.multiset().size(), schedule.m0() - schedule.m[1]);
  for (const auto& [dest, request] : requests) {
    EXPECT_EQ(request.requester, 0u);
    EXPECT_EQ(request.requester_walk_length, 1u);
  }
}

TEST(HGraphSamplerCore, ServeSplicesWalkLengths) {
  support::Rng rng(3);
  const auto g = graph::HGraph::random(64, 8, rng);
  HGraphSamplerCore core(0, small_hgraph_schedule(64), rng.split(1));
  core.init(g);
  const auto response = core.serve({7, 5});
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.length, 6u);  // requester's 5 + our stored 1
}

TEST(HGraphSamplerCore, DryMultisetReportsFailure) {
  support::Rng rng(4);
  const auto g = graph::HGraph::random(64, 8, rng);
  Schedule starved;
  starved.iterations = 1;
  starved.m = {0, 4};  // m_0 = 0: immediately dry
  starved.target_walk_length = 2;
  HGraphSamplerCore core(0, starved, rng.split(1));
  core.init(g);
  EXPECT_TRUE(core.make_requests(1).empty());
  EXPECT_GT(core.dry_events(), 0u);
  const auto response = core.serve({1, 1});
  EXPECT_FALSE(response.ok);
}

TEST(HGraphSampling, SucceedsWithLemma7Schedule) {
  support::Rng rng(5);
  const auto g = graph::HGraph::random(256, 8, rng);
  const auto schedule = small_hgraph_schedule(256);
  auto seed = rng.split(1);
  const auto result = run_hgraph_sampling(g, schedule, seed);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.dry_events, 0u);
  for (const auto& samples : result.samples) {
    EXPECT_EQ(samples.size(), schedule.samples_out());
  }
}

TEST(HGraphSampling, Lemma5WalkLengthInvariant) {
  // Every delivered sample must be the endpoint of a walk of length exactly
  // 2^T: the pointer-doubling invariant of Lemma 5.
  support::Rng rng(6);
  const auto g = graph::HGraph::random(128, 8, rng);
  const auto schedule = small_hgraph_schedule(128);
  auto seed = rng.split(1);
  const auto result = run_hgraph_sampling(g, schedule, seed);
  ASSERT_TRUE(result.success);
  for (const auto& lengths : result.walk_lengths) {
    for (auto length : lengths) {
      EXPECT_EQ(length, schedule.target_walk_length);
    }
  }
}

TEST(HGraphSampling, RoundsAreTwoPerIteration) {
  support::Rng rng(7);
  const auto g = graph::HGraph::random(64, 8, rng);
  const auto schedule = small_hgraph_schedule(64);
  auto seed = rng.split(1);
  const auto result = run_hgraph_sampling(g, schedule, seed);
  EXPECT_EQ(result.rounds, 2 * schedule.iterations);
}

TEST(HGraphSampling, SamplesAreAlmostUniform) {
  support::Rng rng(8);
  const std::size_t n = 64;
  const auto g = graph::HGraph::random(n, 8, rng);
  const auto schedule = small_hgraph_schedule(n, 4.0);
  std::vector<std::uint64_t> counts(n, 0);
  for (int run = 0; run < 4; ++run) {
    auto seed = rng.split(static_cast<std::uint64_t>(run));
    const auto result = run_hgraph_sampling(g, schedule, seed);
    ASSERT_TRUE(result.success);
    for (const auto& samples : result.samples) {
      for (auto s : samples) ++counts[s];
    }
  }
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
  EXPECT_LT(support::tv_distance_from_uniform(counts), 0.1);
}

TEST(HGraphSampling, DeterministicGivenSeed) {
  support::Rng graph_rng(9);
  const auto g = graph::HGraph::random(64, 8, graph_rng);
  const auto schedule = small_hgraph_schedule(64);
  support::Rng a(42), b(42);
  const auto ra = run_hgraph_sampling(g, schedule, a);
  const auto rb = run_hgraph_sampling(g, schedule, b);
  EXPECT_EQ(ra.samples, rb.samples);
}

TEST(HGraphSampling, UndersizedScheduleRunsDry) {
  // Lemma 7 needs m_{i-1} > m_i + (received requests); a flat schedule
  // violates it and the algorithm must detect the failure.
  support::Rng rng(10);
  const auto g = graph::HGraph::random(128, 8, rng);
  Schedule flat;
  flat.iterations = 3;
  flat.m = {4, 4, 4, 4};
  flat.target_walk_length = 8;
  auto seed = rng.split(1);
  const auto result = run_hgraph_sampling(g, flat, seed);
  EXPECT_FALSE(result.success);
  EXPECT_GT(result.dry_events, 0u);
}

// --- Algorithm 2 -----------------------------------------------------------

Schedule small_cube_schedule(int dimension, double c = 2.0,
                             double epsilon = 1.0) {
  SamplingConfig config;
  config.epsilon = epsilon;
  config.c = c;
  config.beta = 1.0;
  const std::size_t n = std::size_t{1} << dimension;
  return hypercube_schedule(SizeEstimate::from_true_size(n), dimension,
                            config);
}

TEST(HypercubeSamplerCore, InitRandomizesSingleCoordinate) {
  support::Rng rng(11);
  const int d = 6;
  HypercubeSamplerCore core(d, 0b101010, small_cube_schedule(d));
  core.init(rng);
  for (int j = 1; j <= d; ++j) {
    const auto& block = core.block(j);
    EXPECT_EQ(block.size(), core.schedule().m0());
    const std::uint64_t mask = std::uint64_t{1} << (j - 1);
    for (auto v : block) {
      EXPECT_EQ((v ^ 0b101010u) & ~mask, 0u)
          << "entry differs outside coordinate " << j;
    }
  }
}

TEST(HypercubeSamplerCore, Lemma8WindowInvariant) {
  // Drive the full protocol by hand and check after every iteration that
  // each live block's entries agree with the owner outside the block's
  // coordinate window.
  support::Rng rng(12);
  const int d = 8;
  const auto n = std::uint64_t{1} << d;
  const auto schedule = small_cube_schedule(d);

  std::vector<HypercubeSamplerCore> cores;
  std::vector<support::Rng> rngs;
  for (std::uint64_t v = 0; v < n; ++v) {
    cores.emplace_back(d, v, schedule);
    rngs.push_back(rng.split(v));
    cores.back().init(rngs.back());
  }

  for (int i = 1; i <= schedule.iterations; ++i) {
    // Requests.
    std::vector<std::vector<std::pair<std::uint64_t,
                                      HypercubeSamplerCore::Request>>>
        outgoing(n);
    for (std::uint64_t v = 0; v < n; ++v) {
      outgoing[v] = cores[v].make_requests(i, rngs[v]);
    }
    // Serve and route responses.
    std::vector<std::vector<HypercubeSamplerCore::Response>> responses(n);
    for (std::uint64_t v = 0; v < n; ++v) {
      for (const auto& [dest, request] : outgoing[v]) {
        responses[request.requester].push_back(
            cores[dest].serve(request, i, rngs[dest]));
      }
    }
    for (std::uint64_t v = 0; v < n; ++v) cores[v].discard_consumed(i);
    for (std::uint64_t v = 0; v < n; ++v) {
      for (const auto& response : responses[v]) {
        cores[v].accept(response, rngs[v]);
      }
    }
    // Invariant check.
    for (std::uint64_t v = 0; v < n; ++v) {
      ASSERT_EQ(cores[v].dry_events(), 0u);
      for (int j = 1; j <= d; ++j) {
        if (!HypercubeSamplerCore::live_block(j, i)) continue;
        const int width = cores[v].window_width(j, i);
        std::uint64_t window_mask = 0;
        for (int b = 0; b < width; ++b) {
          window_mask |= std::uint64_t{1} << (j - 1 + b);
        }
        for (auto entry : cores[v].block(j)) {
          EXPECT_EQ((entry ^ v) & ~window_mask, 0u)
              << "iteration " << i << " block " << j;
        }
      }
    }
  }
}

TEST(HypercubeSampling, SucceedsWithLemma9Schedule) {
  support::Rng rng(13);
  const graph::Hypercube cube(8);
  const auto schedule = small_cube_schedule(8);
  auto seed = rng.split(1);
  const auto result = run_hypercube_sampling(cube, schedule, seed);
  EXPECT_TRUE(result.success);
  for (const auto& samples : result.samples) {
    EXPECT_EQ(samples.size(), schedule.samples_out());
  }
  EXPECT_EQ(result.rounds, 2 * schedule.iterations);
}

TEST(HypercubeSampling, SamplesAreExactlyUniform) {
  support::Rng rng(14);
  const graph::Hypercube cube(6);
  const auto schedule = small_cube_schedule(6, 4.0);
  std::vector<std::uint64_t> counts(cube.size(), 0);
  for (int run = 0; run < 4; ++run) {
    auto seed = rng.split(static_cast<std::uint64_t>(run));
    const auto result = run_hypercube_sampling(cube, schedule, seed);
    ASSERT_TRUE(result.success);
    for (const auto& samples : result.samples) {
      for (auto s : samples) ++counts[s];
    }
  }
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
}

TEST(HypercubeSampling, WorksForNonPowerOfTwoDimension) {
  support::Rng rng(15);
  const graph::Hypercube cube(6);  // d = 6 is not a power of two
  const auto schedule = small_cube_schedule(6);
  auto seed = rng.split(1);
  const auto result = run_hypercube_sampling(cube, schedule, seed);
  EXPECT_TRUE(result.success);
  // Samples cover far more than the 2^ceil? window of any single block.
  std::vector<bool> seen(cube.size(), false);
  for (const auto& samples : result.samples) {
    for (auto s : samples) {
      ASSERT_LT(s, cube.size());
      seen[s] = true;
    }
  }
  const auto covered = static_cast<std::size_t>(
      std::count(seen.begin(), seen.end(), true));
  EXPECT_GT(covered, cube.size() / 2);
}

TEST(HypercubeSampling, DeterministicGivenSeed) {
  const graph::Hypercube cube(5);
  const auto schedule = small_cube_schedule(5);
  support::Rng a(77), b(77);
  const auto ra = run_hypercube_sampling(cube, schedule, a);
  const auto rb = run_hypercube_sampling(cube, schedule, b);
  EXPECT_EQ(ra.samples, rb.samples);
}

// --- Baselines -------------------------------------------------------------

TEST(PlainWalk, HGraphRoundsAreWalkLengthPlusReport) {
  support::Rng rng(16);
  const auto g = graph::HGraph::random(64, 8, rng);
  auto seed = rng.split(1);
  const auto result = run_hgraph_plain_walks(g, 3, 10, seed);
  EXPECT_EQ(result.rounds, 11);
  for (const auto& samples : result.samples) {
    EXPECT_EQ(samples.size(), 3u);
  }
}

TEST(PlainWalk, HypercubeIsExactlyUniform) {
  support::Rng rng(17);
  const graph::Hypercube cube(4);
  auto seed = rng.split(1);
  const auto result = run_hypercube_plain_walks(cube, 400, seed);
  EXPECT_EQ(result.rounds, cube.dimension() + 1);
  std::vector<std::uint64_t> counts(cube.size(), 0);
  for (const auto& samples : result.samples) {
    for (auto s : samples) ++counts[s];
  }
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
}

TEST(PlainWalk, MixingLengthMatchesLemma2) {
  // t = ceil(2 alpha log_{d/4} n): for d = 8, base 2, so t = 2 alpha log2 n.
  EXPECT_EQ(hgraph_mixing_walk_length(1024, 8, 1.0), 20u);
  EXPECT_EQ(hgraph_mixing_walk_length(1024, 8, 2.0), 40u);
  EXPECT_THROW(hgraph_mixing_walk_length(1024, 4, 1.0),
               std::invalid_argument);
}

TEST(PlainWalk, RapidSamplingUsesExponentiallyFewerRounds) {
  // The headline claim (F1): Theta(log log n) vs Theta(log n) rounds.
  support::Rng rng(18);
  const std::size_t n = 1024;
  const auto g = graph::HGraph::random(n, 8, rng);
  const auto schedule = small_hgraph_schedule(n);
  auto seed1 = rng.split(1);
  const auto rapid = run_hgraph_sampling(g, schedule, seed1);
  const auto walk_length = hgraph_mixing_walk_length(n, 8, 1.0);
  auto seed2 = rng.split(2);
  const auto plain = run_hgraph_plain_walks(g, 1, walk_length, seed2);
  EXPECT_TRUE(rapid.success);
  EXPECT_LT(rapid.rounds * 2, plain.rounds)
      << "rapid=" << rapid.rounds << " plain=" << plain.rounds;
}

}  // namespace
}  // namespace reconfnet::sampling
