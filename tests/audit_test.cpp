// Tests for the runtime invariant-audit layer (src/audit/). Each invariant
// family is exercised both ways: the checker stays silent on healthy state
// and fires on deliberately corrupted state. The end-to-end tests prove the
// audit hooks are wired into the overlays' round/epoch boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "churn/overlay.hpp"
#include "combined/overlay.hpp"
#include "combined/split_merge.hpp"
#include "dos/group_table.hpp"
#include "dos/node_sim.hpp"
#include "dos/overlay.hpp"
#include "graph/hgraph.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"

namespace reconfnet {
namespace {

using audit::AuditError;
using audit::ScopedEnable;
using audit::Violation;

std::vector<sim::NodeId> make_nodes(std::size_t n, sim::NodeId first = 0) {
  std::vector<sim::NodeId> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = first + i;
  return nodes;
}

bool has_check(const std::vector<Violation>& violations,
               const std::string& check) {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const Violation& violation) { return violation.check == check; });
}

// --- core gating ------------------------------------------------------------

TEST(AuditCore, ScopedEnableTogglesAndRestores) {
  const bool before = audit::enabled();
  {
    ScopedEnable on(true);
    EXPECT_TRUE(audit::enabled());
    {
      ScopedEnable off(false);
      EXPECT_FALSE(audit::enabled());
    }
    EXPECT_TRUE(audit::enabled());
  }
  EXPECT_EQ(audit::enabled(), before);
}

TEST(AuditCore, EnforceCountsChecksAndThrowsWithDetails) {
  audit::reset_stats();
  EXPECT_NO_THROW(audit::enforce({}));
  EXPECT_EQ(audit::stats().checks_run, 1u);
  EXPECT_EQ(audit::stats().violations_found, 0u);

  try {
    audit::enforce({{"test.check", "something broke"}});
    FAIL() << "enforce() must throw on violations";
  } catch (const AuditError& error) {
    ASSERT_EQ(error.violations().size(), 1u);
    EXPECT_EQ(error.violations()[0].check, "test.check");
    EXPECT_NE(std::string(error.what()).find("something broke"),
              std::string::npos);
  }
  EXPECT_EQ(audit::stats().checks_run, 2u);
  EXPECT_EQ(audit::stats().violations_found, 1u);
}

// --- H-graph structure (Section 2.2, Algorithm 3) ---------------------------

TEST(AuditHGraph, HealthyRandomHGraphPasses) {
  support::Rng rng(7);
  const auto graph = graph::HGraph::random(64, 8, rng);
  EXPECT_TRUE(audit::check_hgraph(graph, 8).empty());
}

TEST(AuditHGraph, FiresOnWrongExpectedDegree) {
  support::Rng rng(7);
  const auto graph = graph::HGraph::random(64, 8, rng);
  const auto violations = audit::check_hgraph(graph, 6);
  EXPECT_TRUE(has_check(violations, "hgraph.degree"));
}

TEST(AuditHGraph, FiresOnNonPermutationSuccessors) {
  // Vertex 2 has two predecessors; vertex 3 has none.
  const std::vector<std::vector<std::size_t>> successors = {{1, 2, 2, 0}};
  const auto violations = audit::check_hamilton_cycles(4, successors);
  EXPECT_TRUE(has_check(violations, "hgraph.cycle"));
}

TEST(AuditHGraph, FiresOnSplitCycle) {
  // A valid permutation that is two 2-cycles, not one Hamilton cycle.
  const std::vector<std::vector<std::size_t>> successors = {{1, 0, 3, 2}};
  const auto violations = audit::check_hamilton_cycles(4, successors);
  EXPECT_TRUE(has_check(violations, "hgraph.cycle"));
}

TEST(AuditHGraph, SilentOnHealthyHamiltonCycle) {
  const std::vector<std::vector<std::size_t>> successors = {{1, 2, 3, 0}};
  EXPECT_TRUE(audit::check_hamilton_cycles(4, successors).empty());
}

// --- overlay edge lists -----------------------------------------------------

TEST(AuditEdges, SilentOnHealthyEdgeList) {
  const auto nodes = make_nodes(4);
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_TRUE(audit::check_edge_symmetry(nodes, edges).empty());
}

TEST(AuditEdges, FiresOnSelfLoopDanglingAndDuplicate) {
  const auto nodes = make_nodes(4);
  const std::vector<std::pair<sim::NodeId, sim::NodeId>> edges = {
      {0, 0},        // self-loop
      {1, 99},       // dangling endpoint
      {2, 3}, {3, 2} // duplicate in the opposite orientation
  };
  const auto violations = audit::check_edge_symmetry(nodes, edges);
  EXPECT_TRUE(has_check(violations, "edges.self_loop"));
  EXPECT_TRUE(has_check(violations, "edges.dangling"));
  EXPECT_TRUE(has_check(violations, "edges.duplicate"));
}

// --- group partition and size bounds (Section 5) ----------------------------

TEST(AuditGroups, HealthyRandomGroupTablePasses) {
  support::Rng rng(3);
  const auto table =
      dos::GroupTable::random(4, make_nodes(256, 1000), rng);
  EXPECT_TRUE(audit::check_group_table(table, 1.0).empty());
}

TEST(AuditGroups, FiresOnDuplicateAndMissingNodes) {
  // Node 2 appears twice; the expected total of 4 nodes is missed too.
  const std::vector<std::vector<sim::NodeId>> groups = {{1, 2}, {2}};
  const auto violations = audit::check_group_partition(groups, 4);
  EXPECT_TRUE(has_check(violations, "groups.duplicate"));
  EXPECT_TRUE(has_check(violations, "groups.partition"));
}

TEST(AuditGroups, FiresOnEmptyGroup) {
  const std::vector<std::vector<sim::NodeId>> groups = {{1, 2}, {}};
  EXPECT_TRUE(has_check(audit::check_group_partition(groups, 2),
                        "groups.empty"));
}

TEST(AuditGroups, FiresOnDegenerateGroupSizes) {
  // A GroupTable the constructor accepts (valid partition) whose sizes are
  // far outside the Theta(log n) envelope: one giant group, three singletons.
  std::vector<std::vector<sim::NodeId>> raw(4);
  for (sim::NodeId node = 0; node < 100; ++node) raw[0].push_back(node);
  raw[1] = {100};
  raw[2] = {101};
  raw[3] = {102};
  const dos::GroupTable table(2, std::move(raw));
  const auto violations = audit::check_group_table(table, 1.0);
  EXPECT_TRUE(has_check(violations, "groups.size"));
}

// --- supernode labels and Equation (1) (Section 6) --------------------------

TEST(AuditLabels, SilentOnCompleteCode) {
  // Leaves {0, 10, 11}: a complete prefix-free code.
  const combined::Label zero{0, 1};
  const std::vector<combined::Label> labels = {
      zero, zero.sibling().child(0), zero.sibling().child(1)};
  EXPECT_TRUE(audit::check_complete_code(labels).empty());
}

TEST(AuditLabels, FiresOnMissingLeaf) {
  // {0, 10} without 11: Kraft sum 3/4 < 1.
  const combined::Label zero{0, 1};
  const std::vector<combined::Label> labels = {zero,
                                               zero.sibling().child(0)};
  EXPECT_TRUE(
      has_check(audit::check_complete_code(labels), "labels.complete"));
}

TEST(AuditLabels, FiresOnPrefixViolation) {
  // "0" is a prefix of "00" (a parent and its child are both live).
  const combined::Label zero{0, 1};
  const std::vector<combined::Label> labels = {zero, zero.child(0),
                                               zero.sibling()};
  EXPECT_TRUE(has_check(audit::check_complete_code(labels), "labels.prefix"));
}

TEST(AuditEquation1, FiresOnOversizedSupernode) {
  // d = 1 with c = 2: the envelope is [0, 4], so a 20-node group violates it.
  auto super = combined::SuperGroups::uniform(
      1, {make_nodes(20), make_nodes(3, 100)});
  const auto violations = audit::check_equation1(super, 2.0);
  EXPECT_TRUE(has_check(violations, "supergroups.equation1"));
}

TEST(AuditEquation1, SilentAfterEnforce) {
  auto super = combined::SuperGroups::uniform(
      1, {make_nodes(20), make_nodes(3, 100)});
  support::Rng rng(5);
  super.enforce(2.0, rng);
  EXPECT_TRUE(audit::check_equation1(super, 2.0).empty());
  EXPECT_TRUE(audit::check_supergroups(super, 2.0).empty());
}

// --- bus conservation and blocking rule (Section 1.1) -----------------------

TEST(AuditBus, SilentOnConservedMeter) {
  sim::WorkMeter meter;
  meter.note_sent(1, 64);
  meter.note_sent(1, 64);
  meter.note_received(2, 64);
  meter.note_dropped();
  meter.finish_round(0);
  EXPECT_TRUE(audit::check_bus_conservation(meter).empty());
}

TEST(AuditBus, FiresWhenDeliveriesExceedSends) {
  sim::WorkMeter meter;
  meter.note_received(2, 64);  // delivery without any send
  meter.finish_round(0);
  EXPECT_TRUE(
      has_check(audit::check_bus_conservation(meter), "bus.conservation"));
}

TEST(AuditBus, FiresWhenDropsAreUnaccounted) {
  sim::WorkMeter meter;
  meter.note_sent(1, 64);
  meter.note_received(2, 64);
  meter.note_dropped();  // delivered + dropped > sent
  meter.finish_round(0);
  EXPECT_TRUE(
      has_check(audit::check_bus_conservation(meter), "bus.conservation"));
}

TEST(AuditBus, BlockingRuleFiresForEachBlockedEndpoint) {
  const sim::BlockedSet sender_blocked({1});
  const sim::BlockedSet receiver_blocked({2});
  EXPECT_TRUE(has_check(
      audit::check_blocking_rule(1, 2, sender_blocked, {}), "bus.blocking"));
  EXPECT_TRUE(has_check(
      audit::check_blocking_rule(1, 2, receiver_blocked, {}),
      "bus.blocking"));
  EXPECT_TRUE(has_check(
      audit::check_blocking_rule(1, 2, {}, receiver_blocked),
      "bus.blocking"));
  EXPECT_TRUE(audit::check_blocking_rule(1, 2, {}, {}).empty());
}

TEST(AuditBus, BusStepUnderAuditStaysSilentOnHealthyTraffic) {
  ScopedEnable on;
  sim::WorkMeter meter;
  sim::Bus<int> bus(&meter);
  sim::BlockedSet blocked({2});
  bus.send(0, 1, 41, 64);
  bus.send(0, 2, 42, 64);  // dropped: receiver blocked in the sending round
  EXPECT_NO_THROW(bus.step(blocked, {}));
  EXPECT_EQ(bus.inbox(1).size(), 1u);
  EXPECT_TRUE(bus.inbox(2).empty());
  EXPECT_TRUE(audit::check_bus_conservation(meter).empty());
}

// --- adversary budget contract ----------------------------------------------

TEST(AuditAdversary, FiresOnBudgetOverrunAndUnknownNodes) {
  const auto universe = make_nodes(8);
  const sim::BlockedSet over({0, 1, 2});
  EXPECT_TRUE(has_check(audit::check_blocked_budget(over, 2, universe),
                        "adversary.budget"));
  const sim::BlockedSet unknown({99});
  EXPECT_TRUE(has_check(audit::check_blocked_budget(unknown, 4, universe),
                        "adversary.budget"));
  const sim::BlockedSet fine({0, 1});
  EXPECT_TRUE(audit::check_blocked_budget(fine, 2, universe).empty());
}

// --- adversary lateness contract (Section 1.1 t-lateness) --------------------

TEST(AuditAdversary, LatenessCheckFiresOnTooFreshView) {
  // now=10, snapshot=8, t=5: the view is only 2 rounds stale.
  EXPECT_TRUE(has_check(audit::check_adversary_lateness(10, 8, 5),
                        "adversary.lateness"));
  // Exactly t rounds stale is the boundary the contract permits.
  EXPECT_TRUE(audit::check_adversary_lateness(13, 8, 5).empty());
  // Lateness 0 is trivially satisfied even by the freshest snapshot.
  EXPECT_TRUE(audit::check_adversary_lateness(10, 10, 0).empty());
}

TEST(AuditCore, ScopedOracleEnableTogglesAndRestores) {
  const bool before = audit::oracle_enabled();
  {
    const audit::ScopedOracleEnable on;
    EXPECT_TRUE(audit::oracle_enabled());
    {
      const audit::ScopedOracleEnable off(false);
      EXPECT_FALSE(audit::oracle_enabled());
    }
    EXPECT_TRUE(audit::oracle_enabled());
  }
  EXPECT_EQ(audit::oracle_enabled(), before);
}

// --- end-to-end: hooks wired into the overlays ------------------------------

TEST(AuditHooks, ChurnOverlayHealthyEpochIsSilent) {
  ScopedEnable on;
  audit::reset_stats();
  churn::ChurnOverlay::Config config;
  config.initial_size = 64;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = 21;
  churn::ChurnOverlay overlay(config);
  support::Rng rng(22);
  adversary::UniformChurn churn(0.05, 1.0, 1.0, rng.split(1));
  for (int epoch = 0; epoch < 2; ++epoch) {
    EXPECT_NO_THROW(overlay.run_epoch(churn));
  }
  EXPECT_GT(audit::stats().checks_run, 0u);
  EXPECT_EQ(audit::stats().violations_found, 0u);
}

TEST(AuditHooks, DosOverlayHealthyEpochIsSilent) {
  ScopedEnable on;
  audit::reset_stats();
  dos::DosOverlay::Config config;
  config.size = 1024;
  config.group_c = 2.0;  // groups of ~32 nodes, safe under 35% blocking
  config.seed = 23;
  dos::DosOverlay overlay(config);
  support::Rng rng(24);
  adversary::RandomDos adversary(rng.split(2));
  dos::DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 64;
  attack.blocked_fraction = 0.35;
  const auto report = overlay.run_epoch(attack);
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_GT(audit::stats().checks_run, 0u);
  EXPECT_EQ(audit::stats().violations_found, 0u);
}

TEST(AuditHooks, CombinedOverlayHealthyEpochIsSilent) {
  ScopedEnable on;
  audit::reset_stats();
  combined::CombinedOverlay::Config config;
  config.initial_size = 512;
  config.group_c = 2.0;
  config.seed = 25;
  combined::CombinedOverlay overlay(config);
  adversary::NoChurn quiet;
  const auto report = overlay.run_epoch(quiet, {});
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_GT(audit::stats().checks_run, 0u);
  EXPECT_EQ(audit::stats().violations_found, 0u);
}

TEST(AuditHooks, OracleAuditSilentAcrossCombinedEpochsUnderAttack) {
  // The RECONFNET_ORACLEAUDIT dynamic twin of reconfnet_oraclecheck: with
  // the oracle audit armed, every adversary read of its stale view
  // re-asserts now - snapshot.round >= t. Churn reconfigures the overlay
  // across epochs while a t-late DoS adversary keeps reading; the serve
  // sites' staleness arithmetic must hold on every read of every epoch.
  const audit::ScopedOracleEnable oracle;
  ScopedEnable on;
  audit::reset_stats();
  combined::CombinedOverlay::Config config;
  config.initial_size = 256;
  config.group_c = 2.0;
  config.seed = 29;
  combined::CombinedOverlay overlay(config);
  support::Rng churn_rng(30);
  adversary::UniformChurn churn(0.02, 1.0, 2.0, churn_rng);
  support::Rng dos_rng(31);
  adversary::RandomDos dos(dos_rng);
  combined::CombinedOverlay::Attack attack;
  attack.adversary = &dos;
  attack.blocked_fraction = 0.2;
  attack.lateness = 12;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto report = overlay.run_epoch(churn, attack);
    EXPECT_TRUE(report.success) << report.failure_reason;
  }
  EXPECT_GT(audit::stats().checks_run, 0u);
  EXPECT_EQ(audit::stats().violations_found, 0u);
}

TEST(AuditHooks, NodeLevelEpochUnderAuditIsSilent) {
  ScopedEnable on;
  audit::reset_stats();
  support::Rng table_rng(26);
  const auto groups =
      dos::GroupTable::random(3, make_nodes(128), table_rng);
  support::Rng rng(27);
  const auto report = dos::run_node_level_epoch(groups, {}, {}, rng);
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_GT(audit::stats().checks_run, 0u);
  EXPECT_EQ(audit::stats().violations_found, 0u);
}

TEST(AuditHooks, DisabledAuditSkipsChecks) {
  ScopedEnable off(false);
  audit::reset_stats();
  churn::ChurnOverlay::Config config;
  config.initial_size = 64;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = 28;
  churn::ChurnOverlay overlay(config);
  adversary::NoChurn quiet;
  EXPECT_NO_THROW(overlay.run_epoch(quiet));
  EXPECT_EQ(audit::stats().checks_run, 0u);
}

}  // namespace
}  // namespace reconfnet
