// Tests of the full message-level Section 5 group simulation (node_sim) and
// its cross-validation against the group-level fast path in DosOverlay.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dos/group_table.hpp"
#include "dos/node_sim.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet::dos {
namespace {

GroupTable make_groups(std::size_t n, int dimension, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<sim::NodeId> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = i;
  return GroupTable::random(dimension, nodes, rng);
}

TEST(NodeLevelEpoch, QuietEpochSucceedsAndReorganizes) {
  const auto groups = make_groups(128, 3, 1);
  support::Rng rng(2);
  const auto report = run_node_level_epoch(groups, {}, {}, rng);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.knowledge_consistent);
  EXPECT_EQ(report.silenced_group_rounds, 0u);
  EXPECT_EQ(report.resyncs, 0u);  // nobody was ever blocked
  ASSERT_TRUE(report.new_groups.has_value());
  EXPECT_EQ(report.new_groups->size(), 128u);
  // The assignment actually changed: most nodes moved supernode.
  std::size_t moved = 0;
  for (sim::NodeId id = 0; id < 128; ++id) {
    if (report.new_groups->supernode_of(id) != groups.supernode_of(id)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 64u);
}

TEST(NodeLevelEpoch, RoundCountMatchesProtocol) {
  // d = 4: the sampler runs I = 2 iterations -> P = 2I+1 = 5 primitive
  // rounds -> 10 overlay rounds, plus 4 reorganization rounds.
  const auto groups = make_groups(128, 4, 3);
  support::Rng rng(4);
  const auto report = run_node_level_epoch(groups, {}, {}, rng);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.rounds, 14);
}

TEST(NodeLevelEpoch, CommunicationWorkIsMetered) {
  const auto groups = make_groups(128, 3, 5);
  support::Rng rng(6);
  const auto report = run_node_level_epoch(groups, {}, {}, rng);
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.max_node_bits_per_round, 0u);
}

TEST(NodeLevelEpoch, SurvivesRandomBlockingAndResyncs) {
  const auto groups = make_groups(256, 3, 7);  // groups of ~32
  support::Rng rng(8);
  // 25% of nodes blocked per round, independently per round: nodes drop out
  // and rejoin constantly, exercising the state-broadcast resync path.
  std::vector<sim::BlockedSet> blocked(40);
  for (auto& set : blocked) {
    for (sim::NodeId node = 0; node < 256; ++node) {
      if (rng.bernoulli(0.25)) set.insert(node);
    }
  }
  const auto report = run_node_level_epoch(groups, {}, blocked, rng);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.knowledge_consistent);
  EXPECT_GT(report.resyncs, 0u);
  EXPECT_EQ(report.new_groups->size(), 256u);
}

TEST(NodeLevelEpoch, SilencedGroupIsDetected) {
  const auto groups = make_groups(64, 3, 9);
  support::Rng rng(10);
  // Block every member of group 0 for two consecutive rounds mid-protocol.
  sim::BlockedSet wipe;
  for (sim::NodeId id : groups.group(0)) wipe.insert(id);
  std::vector<sim::BlockedSet> blocked(6);
  blocked[3] = wipe;
  blocked[4] = wipe;
  const auto report = run_node_level_epoch(groups, {}, blocked, rng);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.silenced_group_rounds, 0u);
}

TEST(NodeLevelEpoch, DeterministicGivenSeed) {
  const auto groups = make_groups(128, 3, 11);
  support::Rng a(77), b(77);
  const auto ra = run_node_level_epoch(groups, {}, {}, a);
  const auto rb = run_node_level_epoch(groups, {}, {}, b);
  ASSERT_TRUE(ra.success);
  ASSERT_TRUE(rb.success);
  for (sim::NodeId id = 0; id < 128; ++id) {
    EXPECT_EQ(ra.new_groups->supernode_of(id),
              rb.new_groups->supernode_of(id));
  }
}

TEST(NodeLevelEpoch, BlockingChangesTheWinnerButNotConsistency) {
  // Block the lowest-id member of every group during simulation rounds: the
  // lowest-id *available* node's candidate wins instead, and the replicas
  // must still agree.
  const auto groups = make_groups(128, 3, 12);
  sim::BlockedSet lowest;
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    lowest.insert(groups.group(x).front());
  }
  std::vector<sim::BlockedSet> blocked(30, lowest);
  support::Rng rng(13);
  const auto report = run_node_level_epoch(groups, {}, blocked, rng);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.knowledge_consistent);
}

TEST(NodeLevelEpoch, CrossValidatesWithGroupLevelFastPath) {
  // The node-level protocol and DosOverlay's group-level fast path are two
  // implementations of the same reorganization. Run both from statistically
  // identical starting points and compare the *distributional* outcome:
  // both succeed, keep every node, and produce group sizes in the same
  // concentration band.
  const std::size_t n = 256;
  const int d = 4;

  const auto groups = make_groups(n, d, 14);
  support::Rng rng(15);
  const auto node_level = run_node_level_epoch(groups, {}, {}, rng);
  ASSERT_TRUE(node_level.success) << node_level.failure_reason;

  DosOverlay::Config config;
  config.size = n;
  config.group_c = static_cast<double>(n >> d) /
                   8.0;  // match the dimension choice approximately
  config.seed = 16;
  DosOverlay overlay(config);
  const auto group_level = overlay.run_epoch({});
  ASSERT_TRUE(group_level.success) << group_level.failure_reason;

  // Same node count, no losses, and comparable size concentration.
  EXPECT_EQ(node_level.new_groups->size(), n);
  const double avg_node = static_cast<double>(n) /
                          static_cast<double>(node_level.new_groups->supernodes());
  EXPECT_GT(static_cast<double>(node_level.new_groups->min_group_size()),
            0.15 * avg_node);
  EXPECT_LT(static_cast<double>(node_level.new_groups->max_group_size()),
            3.0 * avg_node);
  const double avg_group_level =
      static_cast<double>(n) /
      static_cast<double>(overlay.groups().supernodes());
  EXPECT_GT(static_cast<double>(group_level.min_group_size),
            0.15 * avg_group_level);
  EXPECT_LT(static_cast<double>(group_level.max_group_size),
            3.0 * avg_group_level);
}

TEST(NodeLevelEpoch, NewAssignmentLooksUniform) {
  // Aggregate assignments over several epochs: each (node, supernode) cell
  // should be hit uniformly.
  const std::size_t n = 128;
  const int d = 3;
  std::vector<std::uint64_t> counts(std::size_t{1} << d, 0);
  for (int run = 0; run < 6; ++run) {
    const auto groups = make_groups(n, d, 20 + static_cast<std::uint64_t>(run));
    support::Rng rng(30 + static_cast<std::uint64_t>(run));
    const auto report = run_node_level_epoch(groups, {}, {}, rng);
    ASSERT_TRUE(report.success);
    for (sim::NodeId id = 0; id < n; ++id) {
      ++counts[report.new_groups->supernode_of(id)];
    }
  }
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
}

// Failure-injection sweep: structured blocking patterns targeting specific
// protocol phases. The protocol must either succeed with consistent
// replicas or detect the violation — never silently mis-reorganize.
class BlockPatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockPatternSweep, DetectOrSurvive) {
  const int pattern = GetParam();
  const auto groups = make_groups(192, 3, 50 + static_cast<std::uint64_t>(pattern));
  support::Rng rng(60 + static_cast<std::uint64_t>(pattern));
  std::vector<sim::BlockedSet> blocked(40);
  const auto block_node = [&](std::size_t round, sim::NodeId id) {
    if (round < blocked.size()) blocked[round].insert(id);
  };
  switch (pattern) {
    case 0:  // block only even (simulation) rounds, 30% random
      for (std::size_t r = 0; r < blocked.size(); r += 2) {
        for (sim::NodeId id = 0; id < 192; ++id) {
          if (rng.bernoulli(0.3)) block_node(r, id);
        }
      }
      break;
    case 1:  // block only odd (synchronization) rounds, 30% random
      for (std::size_t r = 1; r < blocked.size(); r += 2) {
        for (sim::NodeId id = 0; id < 192; ++id) {
          if (rng.bernoulli(0.3)) block_node(r, id);
        }
      }
      break;
    case 2:  // persistently block the two lowest ids of every group
      for (std::size_t r = 0; r < blocked.size(); ++r) {
        for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
          const auto& members = groups.group(x);
          block_node(r, members[0]);
          if (members.size() > 1) block_node(r, members[1]);
        }
      }
      break;
    case 3:  // block the reorganization rounds only (the tail of the epoch)
      for (std::size_t r = 10; r < 14; ++r) {
        for (sim::NodeId id = 0; id < 192; ++id) {
          if (rng.bernoulli(0.3)) block_node(r, id);
        }
      }
      break;
    case 4:  // alternate halves of every group: half blocked in even
             // rounds, the other half in odd rounds
      for (std::size_t r = 0; r < blocked.size(); ++r) {
        for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
          const auto& members = groups.group(x);
          for (std::size_t i = 0; i < members.size(); ++i) {
            if ((i % 2 == 0) == (r % 2 == 0)) block_node(r, members[i]);
          }
        }
      }
      break;
    default:
      FAIL();
  }
  auto run_rng = rng.split(1);
  const auto report = run_node_level_epoch(groups, {}, blocked, run_rng);
  if (report.success) {
    EXPECT_TRUE(report.knowledge_consistent);
    EXPECT_EQ(report.new_groups->size(), 192u);
  } else {
    // Detection, never silent corruption.
    EXPECT_FALSE(report.failure_reason.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, BlockPatternSweep,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace reconfnet::dos
