#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/skip_graph.hpp"
#include "support/rng.hpp"

namespace reconfnet::graph {
namespace {

TEST(SkipGraph, LevelZeroIsTheSortedList) {
  support::Rng rng(1);
  const auto g = SkipGraph::random(64, rng);
  // Walk level 0 from the minimum-key node: visits everyone in key order.
  std::size_t start = 0;
  for (std::size_t v = 1; v < 64; ++v) {
    if (g.key(v) < g.key(start)) start = v;
  }
  std::size_t current = start;
  std::size_t visited = 1;
  while (g.right(current, 0) != kNoSkipNode) {
    const std::size_t next = g.right(current, 0);
    EXPECT_GT(g.key(next), g.key(current));
    EXPECT_EQ(g.left(next, 0), current);
    current = next;
    ++visited;
  }
  EXPECT_EQ(visited, 64u);
}

TEST(SkipGraph, HeightsAreLogarithmic) {
  support::Rng rng(2);
  const auto g = SkipGraph::random(1024, rng);
  int max_height = 0;
  for (std::size_t v = 0; v < 1024; ++v) {
    max_height = std::max(max_height, g.height(v));
  }
  // Expected max height ~ log2 n + O(1); generous envelope.
  EXPECT_GE(max_height, 8);
  EXPECT_LE(max_height, 30);
}

TEST(SkipGraph, DegreeIsLogarithmic) {
  support::Rng rng(3);
  const auto g = SkipGraph::random(1024, rng);
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v < 1024; ++v) {
    max_degree = std::max(max_degree, g.neighbors(v).size());
  }
  EXPECT_LE(max_degree, 60u);  // 2 per level, ~log n levels
  EXPECT_GE(max_degree, 10u);
}

TEST(SkipGraph, IsConnected) {
  support::Rng rng(4);
  const auto g = SkipGraph::random(512, rng);
  EXPECT_TRUE(is_connected(
      g.size(), [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : g.neighbors(v)) f(w);
      }));
}

class SkipRouteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SkipRouteSweep, GreedyRouteReachesClosestKey) {
  const std::size_t n = GetParam();
  support::Rng rng(n * 7 + 5);
  const auto g = SkipGraph::random(n, rng);
  for (int trial = 0; trial < 50; ++trial) {
    const auto from = static_cast<std::size_t>(rng.below(n));
    const std::uint64_t target = rng.next();
    const auto path = g.route(from, target);
    const std::size_t arrived = path.empty() ? from : path.back();
    EXPECT_EQ(arrived, g.closest(target))
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkipRouteSweep,
                         ::testing::Values(4u, 32u, 256u, 1024u));

TEST(SkipGraph, RouteLengthIsLogarithmic) {
  support::Rng rng(6);
  const std::size_t n = 2048;
  const auto g = SkipGraph::random(n, rng);
  std::size_t max_hops = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto from = static_cast<std::size_t>(rng.below(n));
    const auto path = g.route(from, rng.next());
    max_hops = std::max(max_hops, path.size());
  }
  // O(log n) w.h.p.; generous envelope of 4 log2 n.
  EXPECT_LE(static_cast<double>(max_hops),
            4.0 * std::log2(static_cast<double>(n)));
}

TEST(SkipGraph, RouteToOwnKeyStaysPut) {
  support::Rng rng(7);
  const auto g = SkipGraph::random(64, rng);
  for (std::size_t v = 0; v < 64; ++v) {
    const auto path = g.route(v, g.key(v));
    EXPECT_TRUE(path.empty());
  }
}

}  // namespace
}  // namespace reconfnet::graph
