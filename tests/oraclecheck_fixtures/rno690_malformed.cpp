// RNO690 violations: suppression comments that do not parse. A suppression
// that silently fails open would hide real findings, so the malformed shapes
// are findings themselves.
#include "adversary/dos.hpp"

namespace reconfnet::adversary {

// reconfnet-oraclecheck: allow() forgot the rule id
void a();

// reconfnet-oraclecheck: allow(RNO601 missing close paren
void b();

// reconfnet-oraclecheck: allow(RNR501) wrong tool's rule id
void c();

}  // namespace reconfnet::adversary
