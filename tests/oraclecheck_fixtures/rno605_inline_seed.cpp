// RNO605 violations: adversary strategies constructed with inline Rng seeds
// that are not derived from a dedicated split stream. Registered alongside
// clean_adversary.cpp (which defines PoliteDos) so strategy discovery sees
// the class; fed under a bench/ path.
#include <memory>

#include "adversary/dos.hpp"
#include "support/rng.hpp"

namespace reconfnet::bench {

void run_trial(support::Rng& rng, unsigned long master_seed) {
  // line 14: raw literal seed — collides with every other stream seeded 7.
  adversary::PoliteDos bad(support::Rng(7));
  // line 17: arithmetic on the master seed is still not a split stream.
  auto worse = std::make_unique<adversary::PoliteDos>(
      support::Rng(master_seed + 1));
  // Sanctioned shapes: forwarding an Rng, splitting, deriving.
  adversary::PoliteDos ok_forward(rng);
  adversary::PoliteDos ok_split(support::Rng(rng.split(3)));
  adversary::PoliteDos ok_derived(support::Rng(derive_seed(master_seed, 2)));
  (void)worse;
}

}  // namespace reconfnet::bench
