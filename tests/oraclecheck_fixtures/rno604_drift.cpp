// RNO604 violations: staleness arithmetic drifting from the spec-pinned
// serve shape. Fed under src/dos/overlay.cpp with a servesite declared for
// advance_round(round = round_, lateness = attack.lateness).
#include "dos/overlay.hpp"
#include "sim/stale_view.hpp"

namespace reconfnet::dos {

void DosOverlay::advance_round(const Attack& attack) {
  // line 12: numeric-literal lateness — serves a fixed-freshness view no
  // matter what the experiment configured.
  const auto stale_a = sim::serve_stale(snapshots_, round_, 4);
  // line 15: wrong round identifier (current_ instead of round_) and no
  // declared lateness expression.
  const auto stale_b = sim::serve_stale(snapshots_, current_, lateness_);
  attack.adversary->choose(stale_b, {}, 0, round_);
}

void DosOverlay::debug_dump() {
  // line 21: serve_stale outside any declared [[servesite]].
  const auto stale = sim::serve_stale(snapshots_, round_, attack_.lateness);
  // line 23: raw stale_view bypasses the access-audited serve path.
  const auto* snap = snapshots_.stale_view(round_ - attack_.lateness);
  (void)stale;
  (void)snap;
}

}  // namespace reconfnet::dos
