// Suppression behavior: a real violation carrying a reasoned inline allow
// (dropped, recorded as suppressed), and a stale allow on a clean line.
#include "adversary/dos.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

class AuditedDos {
 public:
  // reconfnet-oraclecheck: allow(RNO601) fixture: exercising suppression flow
  void observe(const sim::Bus& bus);  // would be RNO601 (live-state Bus)

  // reconfnet-oraclecheck: allow(RNO602) stale: nothing fires on this line
  void quiet();
};

}  // namespace reconfnet::adversary
