// RNO602 violations: an adversary that reaches for the snapshot machinery
// itself instead of consuming the harness-served stale view.
#include "adversary/dos.hpp"
#include "sim/snapshot.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

class FreshDos {
 public:
  void peek(const sim::SnapshotBuffer& buffer) {  // line 11: SnapshotBuffer
    const auto* snap = buffer.latest();           // line 12: latest() call
    if (snap != nullptr) cached_round_ = snap->round;
  }
  void self_serve(const sim::SnapshotBuffer& buffer) {  // line 15
    const auto* snap = buffer.stale_view(0);            // line 16
    (void)snap;
  }
  sim::TopologySnapshot forge() const {  // line 19: TopologySnapshot
    return {};
  }

 private:
  long cached_round_ = 0;
};

}  // namespace reconfnet::adversary
