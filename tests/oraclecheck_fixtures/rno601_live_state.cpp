// RNO601 violations: an adversary TU that includes live-state headers and
// references live-state types — it can see the bus, so it is not t-late.
#include "adversary/dos.hpp"
#include "sim/bus.hpp"              // line 4: include outside the surface
#include "structures/groups.hpp"   // line 5: include outside the surface
#include "support/rng.hpp"

namespace reconfnet::adversary {

class OmniscientDos {
 public:
  void observe(const sim::Bus& bus) {           // line 12: Bus reference
    last_ = bus.pending();
  }
  void infer(const structures::GroupTable& g);  // line 15: GroupTable
 private:
  std::size_t last_ = 0;
};

}  // namespace reconfnet::adversary
