// RNO603 violations: protocol code (fed under a non-harness src/ path) that
// includes an adversary header and special-cases a concrete strategy.
#include "adversary/dos.hpp"  // line 3: adversary include from protocol code
#include "structures/groups.hpp"

namespace reconfnet::structures {

void GroupTable::harden(const void* attacker) {
  // line 11: naming a concrete strategy couples protocol behavior to the
  // attacker — the overlay must treat every adversary identically.
  if (dynamic_cast<const adversary::PoliteDos*>(attacker) != nullptr) {
    rebalance_aggressively();
  }
}

}  // namespace reconfnet::structures
