// RNO606 violations: adversary code reaching known-global mutable state,
// directly and through a same-file callee (the one-level call-graph walk).
#include "adversary/dos.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

namespace {

void bump_epoch() {
  ++g_attack_epoch;  // the global itself is flagged where it is touched
}

}  // namespace

class LeakyDos {
 public:
  void tick() {
    ++g_attack_epoch;       // line 19: direct g_-prefixed global write
    checks_counter();       // line 20: spec-listed global accessor
    bump_epoch();           // line 21: one-level walk reaches g_attack_epoch
  }
};

}  // namespace reconfnet::adversary
