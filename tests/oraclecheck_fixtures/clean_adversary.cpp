// A well-behaved t-late adversary: consumes only the harness-served stale
// view, draws from its own split Rng stream, and touches no live state.
// Fed to the Driver under the synthetic path src/adversary/clean.hpp.
#include <vector>

#include "adversary/dos.hpp"
#include "sim/blocked.hpp"
#include "sim/stale_view.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

class PoliteDos final : public DosAdversary {
 public:
  explicit PoliteDos(support::Rng rng) : rng_(rng) {}

  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override {
    sim::BlockedSet blocked;
    if (!stale.has_snapshot()) return blocked;
    const auto nodes = stale.nodes();
    for (std::size_t i = 0; i < budget && i < nodes.size(); ++i) {
      blocked.insert(nodes[rng_.below(nodes.size())]);
    }
    (void)now;
    (void)universe;
    return blocked;
  }

 private:
  support::Rng rng_;
};

}  // namespace reconfnet::adversary
