// Tests for reconfnet_oraclecheck (tools/oraclecheck/): one test per RNO
// rule id, driven by the fixtures in tests/oraclecheck_fixtures/, plus
// coverage for the oracle.toml parser, strategy discovery, suppressions
// (including stale detection) and the spec-drift legs. The fixtures
// directory is excluded from every repo-wide tool walk, so the deliberate
// violations never reach the real gate; the tests feed them to the Driver
// under synthetic paths, in partial mode like the CLI's explicit-file runs.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "toolcheck_util.hpp"
#include "tools/oraclecheck/oraclecheck.hpp"

namespace oc = reconfnet::oraclecheck;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(
      RECONFNET_ORACLECHECK_FIXTURES, name);
}

/// A spec mirroring the real oracle.toml surface, with one DoS entrypoint so
/// strategy discovery (RNO603/605) recognises classes deriving from
/// DosAdversary. Entrypoint/servesite drift (RNO610) is exercised by its own
/// tests; the fixture tests run in partial mode, which skips it.
oc::Spec surface_spec() {
  oc::Spec spec;
  spec.adversary_paths = {"src/adversary/"};
  spec.permitted_includes = {"adversary/", "sim/types.hpp",
                             "sim/blocked.hpp", "sim/stale_view.hpp",
                             "support/"};
  spec.live_state = {"Bus", "WorkMeter", "GroupTable"};
  spec.rng_derivations = {"split", "trial_rng", "derive_seed", "seed"};
  spec.globals = {"checks_counter"};
  spec.harness_paths = {"src/dos/", "src/combined/", "src/apps/"};
  spec.retention = "lateness-horizon";
  spec.buffer_file = "src/sim/snapshot.hpp";
  spec.horizon_method = "ensure_lateness_horizon";
  oc::EntrypointSpec ep;
  ep.name = "dos-choose";
  ep.file = "src/adversary/dos.hpp";
  ep.interface = "DosAdversary";
  ep.method = "choose";
  ep.view = "StaleSnapshotView";
  ep.line = 1;
  spec.entrypoints.push_back(ep);
  return spec;
}

oc::Driver::Result run_fixture(const std::string& fixture,
                               const std::string& as_path) {
  oc::Driver driver(surface_spec(), "spec.toml");
  driver.set_partial(true);
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

// --- spec parser ------------------------------------------------------------

TEST(OraclecheckSpec, ParsesSurfaceEntrypointsServesitesAndSnapshot) {
  const std::string text = R"(
[options]
roots = ["src/", "bench/"]

[surface]
adversary_paths = ["src/adversary/"]
permitted_includes = ["adversary/", "support/"]
live_state = ["Bus"]
rng_derivations = ["split"]
globals = ["checks_counter"]
harness_paths = ["src/dos/"]

[[entrypoint]]
name = "dos-choose"
file = "src/adversary/dos.hpp"
interface = "DosAdversary"
method = "choose"
view = "StaleSnapshotView"
note = "t-late"

[[servesite]]
name = "dos-overlay"
file = "src/dos/overlay.cpp"
function = "advance_round"
round = "round_"
lateness = "attack.lateness"

[snapshot]
retention = "lateness-horizon"
buffer_file = "src/sim/snapshot.hpp"
horizon_method = "ensure_lateness_horizon"

[allow]
RNO690 = ["tools/oraclecheck/"]
)";
  oc::Spec spec;
  std::string error;
  ASSERT_TRUE(oc::parse_spec(text, spec, error)) << error;
  EXPECT_EQ(spec.roots, (std::vector<std::string>{"src/", "bench/"}));
  EXPECT_EQ(spec.adversary_paths,
            (std::vector<std::string>{"src/adversary/"}));
  EXPECT_EQ(spec.live_state, (std::vector<std::string>{"Bus"}));
  ASSERT_EQ(spec.entrypoints.size(), 1u);
  EXPECT_EQ(spec.entrypoints[0].interface, "DosAdversary");
  EXPECT_EQ(spec.entrypoints[0].view, "StaleSnapshotView");
  ASSERT_EQ(spec.servesites.size(), 1u);
  EXPECT_EQ(spec.servesites[0].round_ident, "round_");
  EXPECT_EQ(spec.servesites[0].lateness, "attack.lateness");
  EXPECT_EQ(spec.retention, "lateness-horizon");
  EXPECT_EQ(spec.horizon_method, "ensure_lateness_horizon");
  ASSERT_EQ(spec.allow.count("RNO690"), 1u);
}

TEST(OraclecheckSpec, RejectsBadShapes) {
  oc::Spec spec;
  std::string error;
  // No [surface] adversary_paths at all.
  EXPECT_FALSE(oc::parse_spec("[options]\nroots = [\"src/\"]\n", spec,
                              error));
  // Entrypoint missing required fields.
  EXPECT_FALSE(oc::parse_spec(
      "[surface]\nadversary_paths = [\"src/adversary/\"]\n"
      "[[entrypoint]]\nname = \"x\"\n",
      spec, error));
  // Servesite missing the lateness expression.
  EXPECT_FALSE(oc::parse_spec(
      "[surface]\nadversary_paths = [\"src/adversary/\"]\n"
      "[[servesite]]\nname = \"s\"\nfile = \"f.cpp\"\n"
      "function = \"g\"\nround = \"round_\"\n",
      spec, error));
  // Unknown retention policy.
  EXPECT_FALSE(oc::parse_spec(
      "[surface]\nadversary_paths = [\"src/adversary/\"]\n"
      "[snapshot]\nretention = \"keep-everything\"\n",
      spec, error));
  // Duplicate entrypoint name.
  EXPECT_FALSE(oc::parse_spec(
      "[surface]\nadversary_paths = [\"src/adversary/\"]\n"
      "[[entrypoint]]\nname = \"x\"\nfile = \"f\"\ninterface = \"I\"\n"
      "method = \"m\"\n"
      "[[entrypoint]]\nname = \"x\"\nfile = \"f\"\ninterface = \"I\"\n"
      "method = \"m\"\n",
      spec, error));
}

// --- fixture-driven rule tests ---------------------------------------------

TEST(Oraclecheck, CleanAdversaryPasses) {
  const auto result =
      run_fixture("clean_adversary.cpp", "src/adversary/clean.hpp");
  EXPECT_TRUE(result.findings.empty()) << result.findings.size();
  EXPECT_EQ(result.adversary_files, 1u);
}

TEST(Oraclecheck, RNO601FlagsLiveStateIncludesAndReferences) {
  const auto result =
      run_fixture("rno601_live_state.cpp", "src/adversary/omniscient.hpp");
  EXPECT_EQ(lines_of(result, "RNO601"),
            (std::vector<std::size_t>{4, 5, 12, 15}));
}

TEST(Oraclecheck, RNO602FlagsSnapshotMachineryReach) {
  const auto result =
      run_fixture("rno602_snapshot_reach.cpp", "src/adversary/fresh.hpp");
  EXPECT_EQ(lines_of(result, "RNO602"),
            (std::vector<std::size_t>{11, 12, 15, 16, 19}));
  // The snapshot include itself is off the permitted surface too.
  EXPECT_EQ(lines_of(result, "RNO601"), (std::vector<std::size_t>{4}));
}

TEST(Oraclecheck, RNO603FlagsProtocolReadingAdversaryInternals) {
  oc::Driver driver(surface_spec(), "spec.toml");
  driver.set_partial(true);
  // The adversary file defines PoliteDos : DosAdversary, which discovery
  // turns into a banned name for protocol code.
  driver.add_file("src/adversary/clean.hpp",
                  read_fixture("clean_adversary.cpp"));
  driver.add_file("src/structures/groups.cpp",
                  read_fixture("rno603_reverse_isolation.cpp"));
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNO603"), (std::vector<std::size_t>{3, 11}));
}

TEST(Oraclecheck, RNO603ExemptsHarnessPaths) {
  oc::Driver driver(surface_spec(), "spec.toml");
  driver.set_partial(true);
  driver.add_file("src/adversary/clean.hpp",
                  read_fixture("clean_adversary.cpp"));
  // The same file under a declared harness prefix is legitimate.
  driver.add_file("src/dos/groups.cpp",
                  read_fixture("rno603_reverse_isolation.cpp"));
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNO603").empty());
}

TEST(Oraclecheck, RNO604FlagsStalenessDrift) {
  oc::Spec spec = surface_spec();
  oc::ServeSiteSpec site;
  site.name = "dos-overlay";
  site.file = "src/dos/overlay.cpp";
  site.function = "advance_round";
  site.round_ident = "round_";
  site.lateness = "attack.lateness";
  site.line = 1;
  spec.servesites.push_back(site);
  oc::Driver driver(std::move(spec), "spec.toml");
  driver.set_partial(true);
  driver.add_file("src/dos/overlay.cpp", read_fixture("rno604_drift.cpp"));
  const auto result = driver.run();
  const auto lines = lines_of(result, "RNO604");
  // Line 12: literal lateness (also misses the declared expression and the
  // horizon raise — findings collapse per line). Line 15: wrong round +
  // missing expression. Line 21: serve outside any declared site. Line 23:
  // raw stale_view.
  EXPECT_EQ(lines, (std::vector<std::size_t>{12, 15, 21, 23}));
  EXPECT_EQ(result.servesites_checked, 2u);
}

TEST(Oraclecheck, RNO605FlagsUnderivedInlineSeeds) {
  oc::Driver driver(surface_spec(), "spec.toml");
  driver.set_partial(true);
  driver.add_file("src/adversary/clean.hpp",
                  read_fixture("clean_adversary.cpp"));
  driver.add_file("bench/bench_fixture.cpp",
                  read_fixture("rno605_inline_seed.cpp"));
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNO605"), (std::vector<std::size_t>{14, 17}));
}

TEST(Oraclecheck, RNO606FlagsGlobalReach) {
  const auto result =
      run_fixture("rno606_global_reach.cpp", "src/adversary/leaky.hpp");
  EXPECT_EQ(lines_of(result, "RNO606"),
            (std::vector<std::size_t>{11, 19, 20, 21}));
}

TEST(Oraclecheck, RNO690FlagsMalformedSuppressions) {
  const auto result =
      run_fixture("rno690_malformed.cpp", "src/adversary/sup.hpp");
  EXPECT_EQ(lines_of(result, "RNO690"),
            (std::vector<std::size_t>{8, 11, 14}));
}

// --- suppressions -----------------------------------------------------------

TEST(Oraclecheck, InlineAllowSuppressesAndRecordsFinding) {
  const auto result =
      run_fixture("suppressions.cpp", "src/adversary/audited.hpp");
  EXPECT_TRUE(lines_of(result, "RNO601").empty());
  EXPECT_EQ(result.suppressed, 1u);
  ASSERT_EQ(result.suppressed_findings.size(), 1u);
  EXPECT_EQ(result.suppressed_findings[0].rule, "RNO601");
  EXPECT_EQ(result.suppressed_findings[0].line, 11u);
}

TEST(Oraclecheck, ReportsStaleSuppressions) {
  const auto result =
      run_fixture("suppressions.cpp", "src/adversary/audited.hpp");
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0].rule, "RNO602");
  EXPECT_EQ(result.stale[0].line, 13u);
}

TEST(Oraclecheck, AllowCarveOutSuppressesWholesale) {
  oc::Spec spec = surface_spec();
  spec.allow["RNO601"] = {"src/adversary/omniscient"};
  oc::Driver driver(std::move(spec), "spec.toml");
  driver.set_partial(true);
  driver.add_file("src/adversary/omniscient.hpp",
                  read_fixture("rno601_live_state.cpp"));
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNO601").empty());
  EXPECT_EQ(result.suppressed, 4u);
}

// --- RNO610: spec drift -----------------------------------------------------

TEST(Oraclecheck, RNO610FlagsMissingEntrypointPieces) {
  // Interface present, method present, but the declared view type is gone:
  // the entry point no longer consumes the stale view.
  oc::Spec spec = surface_spec();
  spec.buffer_file.clear();  // isolate the entrypoint leg
  oc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/adversary/dos.hpp",
                  "class DosAdversary {\n"
                  " public:\n"
                  "  virtual int choose(int budget) = 0;\n"
                  "};\n");
  const auto result = driver.run();
  const auto lines = lines_of(result, "RNO610");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(result.findings[0].file, "spec.toml");
}

TEST(Oraclecheck, RNO610FlagsUnregisteredEntrypointFile) {
  oc::Spec spec = surface_spec();
  spec.buffer_file.clear();
  oc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file("src/adversary/other.hpp", "class Unrelated {};\n");
  const auto result = driver.run();
  EXPECT_EQ(lines_of(result, "RNO610").size(), 1u);
}

TEST(Oraclecheck, RNO610FlagsDeadServeSite) {
  oc::Spec spec = surface_spec();
  spec.entrypoints.clear();
  spec.buffer_file.clear();
  oc::ServeSiteSpec site;
  site.name = "dos-overlay";
  site.file = "src/dos/overlay.cpp";
  site.function = "advance_round";
  site.round_ident = "round_";
  site.lateness = "attack.lateness";
  site.line = 7;
  spec.servesites.push_back(site);
  oc::Driver driver(std::move(spec), "spec.toml");
  // The function exists but no longer serves a stale view.
  driver.add_file("src/dos/overlay.cpp",
                  "void advance_round() {\n  int x = 0;\n  (void)x;\n}\n");
  const auto result = driver.run();
  const auto lines = lines_of(result, "RNO610");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 7u);
}

TEST(Oraclecheck, RNO610FlagsBrokenRetentionPin) {
  oc::Spec spec = surface_spec();
  spec.entrypoints.clear();
  spec.snapshot_line = 42;
  oc::Driver driver(std::move(spec), "spec.toml");
  // The buffer no longer declares the horizon method: capacity-only
  // eviction can starve t-late views.
  driver.add_file("src/sim/snapshot.hpp",
                  "class SnapshotBuffer {\n public:\n  void push();\n};\n");
  const auto result = driver.run();
  const auto lines = lines_of(result, "RNO610");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 42u);
}

TEST(Oraclecheck, PartialRunsSkipDriftChecks) {
  oc::Driver driver(surface_spec(), "spec.toml");
  driver.set_partial(true);
  driver.add_file("src/adversary/other.hpp", "class Unrelated {};\n");
  const auto result = driver.run();
  EXPECT_TRUE(lines_of(result, "RNO610").empty());
}

}  // namespace
