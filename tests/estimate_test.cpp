#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "support/rng.hpp"

namespace reconfnet::estimate {
namespace {

TEST(SizeEstimation, ConvergesAndAllNodesAgree) {
  support::Rng rng(1);
  const auto g = graph::HGraph::random(256, 8, rng);
  const auto result = estimate_size(g, {}, rng);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.rounds, 0);
  // Max-flooding reaches a global fixed point: every node holds the same
  // estimate.
  for (std::size_t v = 1; v < 256; ++v) {
    EXPECT_DOUBLE_EQ(result.log_n_upper[v], result.log_n_upper[0]);
    EXPECT_EQ(result.loglog_upper[v], result.loglog_upper[0]);
  }
}

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, EstimateTracksTrueSize) {
  const std::size_t n = GetParam();
  support::Rng rng(n * 13 + 1);
  const auto g = graph::HGraph::random(n, 8, rng);
  SizeEstimationConfig config;
  config.slots = 32;
  const auto result = estimate_size(g, config, rng);
  ASSERT_TRUE(result.converged);
  const double true_log = std::log2(static_cast<double>(n));
  // The slot-averaged maximum estimates log2 n within ~±2 at 32 slots.
  EXPECT_NEAR(result.log_n_upper[0], true_log, 2.5) << "n=" << n;
  // The derived k must be a sound upper bound on log log n up to the
  // paper's additive constant slack.
  EXPECT_GE(result.loglog_upper[0],
            static_cast<int>(std::floor(std::log2(true_log))) - 1);
  EXPECT_LE(result.loglog_upper[0],
            static_cast<int>(std::ceil(std::log2(true_log))) + 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

TEST(SizeEstimation, RoundsTrackDiameter) {
  // Flooding needs diameter+1 rounds; on a degree-8 expander the diameter is
  // O(log n) with a small constant.
  support::Rng rng(3);
  const auto g = graph::HGraph::random(1024, 8, rng);
  const auto result = estimate_size(g, {}, rng);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.rounds, 12);
}

TEST(SizeEstimation, MoreSlotsReduceSpread) {
  // Run many graphs; the estimate spread with 64 slots must be no larger
  // than with 4 slots (variance reduction).
  auto spread = [](int slots) {
    double lo = 1e9, hi = -1e9;
    for (int run = 0; run < 8; ++run) {
      support::Rng rng(100 + static_cast<std::uint64_t>(run));
      const auto g = graph::HGraph::random(512, 8, rng);
      SizeEstimationConfig config;
      config.slots = slots;
      auto est_rng = rng.split(9);
      const auto result = estimate_size(g, config, est_rng);
      lo = std::min(lo, result.log_n_upper[0]);
      hi = std::max(hi, result.log_n_upper[0]);
    }
    return hi - lo;
  };
  EXPECT_LE(spread(64), spread(4) + 0.5);
}

TEST(SizeEstimation, RejectsInvalidConfig) {
  support::Rng rng(5);
  const auto g = graph::HGraph::random(32, 8, rng);
  SizeEstimationConfig config;
  config.slots = 0;
  EXPECT_THROW(estimate_size(g, config, rng), std::invalid_argument);
}

TEST(SizeEstimation, EstimationFeedsSampling) {
  // End-to-end: replace the Section 4 oracle with the protocol's output and
  // run Algorithm 1 with it — the schedule must still succeed.
  support::Rng rng(7);
  const std::size_t n = 256;
  const auto g = graph::HGraph::random(n, 8, rng);
  SizeEstimationConfig est_config;
  est_config.slots = 32;
  est_config.margin = 2.0;  // generous upper bound, as the paper assumes
  const auto estimation = estimate_size(g, est_config, rng);
  ASSERT_TRUE(estimation.converged);

  sampling::SamplingConfig config;
  config.c = 2.0;
  const auto schedule =
      sampling::hgraph_schedule(oracle_of(estimation, 0), 8, config);
  auto run_rng = rng.split(11);
  const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.samples.front().size(), schedule.samples_out());
}

}  // namespace
}  // namespace reconfnet::estimate
