#include <gtest/gtest.h>

#include <string>

#include "audit/audit.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"
#include "sim/snapshot.hpp"
#include "sim/stale_view.hpp"
#include "sim/types.hpp"

namespace reconfnet::sim {
namespace {

TEST(IdAllocator, NeverReusesIds) {
  IdAllocator ids;
  const NodeId a = ids.allocate();
  const NodeId b = ids.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(ids.allocated(), 2u);
}

TEST(IdBits, MatchesBinaryLength) {
  EXPECT_EQ(id_bits(0), 1u);
  EXPECT_EQ(id_bits(1), 1u);
  EXPECT_EQ(id_bits(2), 2u);
  EXPECT_EQ(id_bits(255), 8u);
  EXPECT_EQ(id_bits(256), 9u);
}

TEST(Bus, DeliversNextRound) {
  Bus<int> bus;
  bus.send(1, 2, 42, 64);
  EXPECT_TRUE(bus.inbox(2).empty());  // not delivered within sending round
  bus.step();
  ASSERT_EQ(bus.inbox(2).size(), 1u);
  EXPECT_EQ(bus.inbox(2)[0].from, 1u);
  EXPECT_EQ(bus.inbox(2)[0].payload, 42);
  EXPECT_TRUE(bus.inbox(1).empty());
}

TEST(Bus, InboxClearedEachRound) {
  Bus<int> bus;
  bus.send(1, 2, 1, 8);
  bus.step();
  EXPECT_EQ(bus.inbox(2).size(), 1u);
  bus.step();
  EXPECT_TRUE(bus.inbox(2).empty());
}

TEST(Bus, DistinctMessagesToDistinctReceivers) {
  Bus<std::string> bus;
  bus.send(1, 2, "to2", 8);
  bus.send(1, 3, "to3", 8);
  bus.step();
  ASSERT_EQ(bus.inbox(2).size(), 1u);
  ASSERT_EQ(bus.inbox(3).size(), 1u);
  EXPECT_EQ(bus.inbox(2)[0].payload, "to2");
  EXPECT_EQ(bus.inbox(3)[0].payload, "to3");
}

TEST(Bus, BlockedSenderDropsMessage) {
  Bus<int> bus;
  BlockedSet sending;
  sending.insert(1);
  bus.send(1, 2, 7, 8);
  bus.step(sending, BlockedSet{});
  EXPECT_TRUE(bus.inbox(2).empty());
}

TEST(Bus, ReceiverBlockedInSendingRoundDropsMessage) {
  Bus<int> bus;
  BlockedSet sending;
  sending.insert(2);
  bus.send(1, 2, 7, 8);
  bus.step(sending, BlockedSet{});
  EXPECT_TRUE(bus.inbox(2).empty());
}

TEST(Bus, ReceiverBlockedInDeliveryRoundDropsMessage) {
  Bus<int> bus;
  BlockedSet delivery;
  delivery.insert(2);
  bus.send(1, 2, 7, 8);
  bus.step(BlockedSet{}, delivery);
  EXPECT_TRUE(bus.inbox(2).empty());
}

TEST(Bus, SenderBlockedOnlyInDeliveryRoundStillDelivers) {
  // The blocking rule constrains the sender in the sending round only; a
  // sender that goes down in round i+1 has already handed the message to the
  // bus in round i, so it MUST arrive.
  Bus<int> bus;
  BlockedSet delivery;
  delivery.insert(1);  // the sender, blocked in the delivery round
  bus.send(1, 2, 7, 8);
  bus.step(BlockedSet{}, delivery);
  ASSERT_EQ(bus.inbox(2).size(), 1u);
  EXPECT_EQ(bus.inbox(2)[0].payload, 7);
}

TEST(Bus, DropAccountingPerBlockingPath) {
  // Each of the three drop paths of the blocking rule — sender blocked in
  // the sending round, receiver blocked in the sending round, receiver
  // blocked in the delivery round — must hit note_dropped exactly once and
  // charge no receive bits.
  const auto run = [](NodeId blocked, bool in_delivery_round) {
    WorkMeter meter;
    Bus<int> bus(&meter);
    BlockedSet blocked_set;
    blocked_set.insert(blocked);
    bus.send(1, 2, 7, 40);
    if (in_delivery_round) {
      bus.step(BlockedSet{}, blocked_set);
    } else {
      bus.step(blocked_set, BlockedSet{});
    }
    EXPECT_TRUE(bus.inbox(2).empty());
    return meter.history().at(0);
  };
  for (const auto& work : {run(1, false), run(2, false), run(2, true)}) {
    EXPECT_EQ(work.sent_messages, 1u);
    EXPECT_EQ(work.total_messages, 0u);
    EXPECT_EQ(work.dropped_messages, 1u);
    EXPECT_TRUE(work.conserved());
    // Only the sender's 40 bits are charged: the message never arrived.
    EXPECT_EQ(work.total_bits, 40u);
  }
}

TEST(Bus, InboxTurnoverAcrossConsecutiveRounds) {
  // Regression for the deterministic per-delivery clearing: an inbox that
  // receives in consecutive rounds holds only the newest round's messages,
  // and inboxes untouched in a round stay empty.
  Bus<int> bus;
  bus.send(1, 2, 10, 8);
  bus.send(1, 3, 11, 8);
  bus.step();
  ASSERT_EQ(bus.inbox(2).size(), 1u);
  ASSERT_EQ(bus.inbox(3).size(), 1u);
  bus.send(1, 2, 20, 8);
  bus.step();
  ASSERT_EQ(bus.inbox(2).size(), 1u);
  EXPECT_EQ(bus.inbox(2)[0].payload, 20);
  EXPECT_TRUE(bus.inbox(3).empty());  // cleared, not re-delivered
  bus.step();
  EXPECT_TRUE(bus.inbox(2).empty());
}

TEST(Bus, UnblockedEndpointsDeliver) {
  Bus<int> bus;
  BlockedSet sending;
  sending.insert(99);  // unrelated node
  BlockedSet delivery;
  delivery.insert(98);
  bus.send(1, 2, 7, 8);
  bus.step(sending, delivery);
  EXPECT_EQ(bus.inbox(2).size(), 1u);
}

TEST(Bus, RoundCounterAdvances) {
  Bus<int> bus;
  EXPECT_EQ(bus.round(), 0);
  bus.step();
  bus.step();
  EXPECT_EQ(bus.round(), 2);
}

TEST(Bus, MetersBitsOnBothEndpoints) {
  WorkMeter meter;
  Bus<int> bus(&meter);
  bus.send(1, 2, 5, 100);
  bus.send(2, 1, 6, 50);
  bus.step();
  ASSERT_EQ(meter.history().size(), 1u);
  const auto& round_work = meter.history()[0];
  // Node 1: sent 100 + received 50 = 150; node 2: 50 + 100 = 150.
  EXPECT_EQ(round_work.max_node_bits, 150u);
  EXPECT_EQ(round_work.total_bits, 300u);
  EXPECT_EQ(round_work.total_messages, 2u);
  EXPECT_EQ(round_work.dropped_messages, 0u);
}

TEST(Bus, MetersDroppedMessages) {
  WorkMeter meter;
  Bus<int> bus(&meter);
  BlockedSet sending;
  sending.insert(1);
  bus.send(1, 2, 5, 100);
  bus.step(sending, BlockedSet{});
  ASSERT_EQ(meter.history().size(), 1u);
  EXPECT_EQ(meter.history()[0].dropped_messages, 1u);
  // Sender is still charged for the send attempt.
  EXPECT_EQ(meter.history()[0].max_node_bits, 100u);
}

TEST(WorkMeter, TracksMaxAcrossRounds) {
  WorkMeter meter;
  meter.note_sent(1, 10);
  meter.finish_round(0);
  meter.note_sent(1, 30);
  meter.note_received(1, 5);
  meter.finish_round(1);
  EXPECT_EQ(meter.max_node_bits_any_round(), 35u);
  EXPECT_EQ(meter.total_bits(), 45u);
  EXPECT_EQ(meter.rounds(), 2u);
  meter.clear();
  EXPECT_EQ(meter.rounds(), 0u);
}

TEST(SnapshotBuffer, ServesStaleViews) {
  SnapshotBuffer buffer(4);
  for (Round r = 0; r < 6; ++r) {
    TopologySnapshot snap;
    snap.round = r;
    snap.nodes = {static_cast<NodeId>(r)};
    buffer.push(std::move(snap));
  }
  // Capacity 4 keeps rounds 2..5.
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.stale_view(5)->round, 5);
  EXPECT_EQ(buffer.stale_view(3)->round, 3);
  EXPECT_EQ(buffer.stale_view(100)->round, 5);
  EXPECT_EQ(buffer.stale_view(1), nullptr);
}

TEST(SnapshotBuffer, TLateSemantics) {
  // A t-late adversary acting at round r sees stale_view(r - t): topology
  // that is at least t rounds old.
  SnapshotBuffer buffer;
  TopologySnapshot snap;
  snap.round = 10;
  buffer.push(snap);
  const Round now = 17;
  const Round lateness = 5;
  const auto* view = buffer.stale_view(now - lateness);
  ASSERT_NE(view, nullptr);
  EXPECT_GE(now - view->round, lateness);
}

TEST(SnapshotBuffer, HorizonOutlivesCapacityEviction) {
  // A tiny capacity with a large lateness horizon: eviction must never drop
  // the snapshot a t-late adversary is served, so the horizon wins and the
  // buffer grows past capacity (but stays bounded near the horizon).
  SnapshotBuffer buffer(4);
  buffer.ensure_lateness_horizon(10);
  for (Round r = 0; r < 40; ++r) {
    TopologySnapshot snap;
    snap.round = r;
    buffer.push(std::move(snap));
    if (r >= 10) {
      const auto* view = buffer.stale_view(r - 10);
      ASSERT_NE(view, nullptr) << "horizon snapshot evicted at round " << r;
      EXPECT_GE(r - view->round, 10);
    }
  }
  EXPECT_GT(buffer.size(), 4u);
  EXPECT_LE(buffer.size(), 12u);
}

TEST(SnapshotBuffer, LatenessHorizonOnlyGrows) {
  // The strongest adversary seen pins the history: a later, weaker attack
  // must not shrink what an earlier stronger one still needs.
  SnapshotBuffer buffer;
  buffer.ensure_lateness_horizon(8);
  buffer.ensure_lateness_horizon(3);
  EXPECT_EQ(buffer.lateness_horizon(), 8);
}

TEST(StaleSnapshotView, EmptyViewHasNoSnapshotAndNoReads) {
  StaleSnapshotView view;
  EXPECT_FALSE(view.has_snapshot());
  EXPECT_EQ(view.reads(), 0u);
}

TEST(StaleSnapshotView, CountsEveryAuditedRead) {
  TopologySnapshot snap;
  snap.round = 3;
  snap.nodes = {0, 1};
  snap.edges = {{0, 1}};
  const StaleSnapshotView view(&snap, 8, 5);
  EXPECT_EQ(view.now(), 8);
  EXPECT_EQ(view.lateness(), 5);
  EXPECT_EQ(view.reads(), 0u);  // metadata accessors are free
  (void)view.round();
  (void)view.nodes();
  (void)view.edges();
  EXPECT_EQ(view.reads(), 3u);
}

TEST(StaleSnapshotView, ServeStaleExactBoundaryHit) {
  SnapshotBuffer buffer;
  for (Round r = 0; r <= 10; ++r) {
    TopologySnapshot snap;
    snap.round = r;
    buffer.push(std::move(snap));
  }
  // Exactly t-late: round 10 with lateness 4 serves the round-6 snapshot.
  const auto view = serve_stale(buffer, 10, 4);
  ASSERT_TRUE(view.has_snapshot());
  EXPECT_EQ(view.round(), 6);
  // Lateness 0 is the trivial contract: the freshest snapshot qualifies.
  const auto fresh = serve_stale(buffer, 10, 0);
  ASSERT_TRUE(fresh.has_snapshot());
  EXPECT_EQ(fresh.round(), 10);
}

TEST(StaleSnapshotView, PreHistoryServesEmptyView) {
  // No snapshot old enough exists yet: the adversary gets an empty view,
  // not a fresher-than-t one.
  SnapshotBuffer buffer;
  TopologySnapshot snap;
  snap.round = 5;
  buffer.push(std::move(snap));
  const auto view = serve_stale(buffer, 6, 4);
  EXPECT_FALSE(view.has_snapshot());
}

TEST(StaleSnapshotView, OracleAuditThrowsOnTooFreshRead) {
  TopologySnapshot snap;
  snap.round = 8;
  snap.nodes = {0};
  const audit::ScopedOracleEnable oracle;
  // 10 - 8 < 5: a view fresher than the configured lateness fails on first
  // read, not at some later divergence.
  const StaleSnapshotView fresh(&snap, 10, 5);
  EXPECT_THROW((void)fresh.nodes(), audit::AuditError);
  const StaleSnapshotView ok(&snap, 13, 5);
  EXPECT_NO_THROW((void)ok.nodes());
}

TEST(StaleSnapshotView, SerializeRoundTripsThroughViewSpans) {
  // The canonical byte encoding survives the trip through the audited view:
  // what the adversary can read is exactly what the snapshot holds (this is
  // the same serialization the --jobs determinism tests compare bytewise).
  TopologySnapshot snap;
  snap.round = 7;
  snap.nodes = {1, 2, 3};
  snap.edges = {{1, 2}, {2, 3}};
  const auto direct = serialize(snap);
  const StaleSnapshotView view(&snap, 12, 5);
  TopologySnapshot rebuilt;
  rebuilt.round = view.round();
  const auto nodes = view.nodes();
  const auto edges = view.edges();
  rebuilt.nodes.assign(nodes.begin(), nodes.end());
  rebuilt.edges.assign(edges.begin(), edges.end());
  EXPECT_EQ(serialize(rebuilt), direct);
  EXPECT_EQ(view.reads(), 3u);
}

}  // namespace
}  // namespace reconfnet::sim
