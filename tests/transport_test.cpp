// Transport backend coverage (DESIGN.md §15): wire codec round-trips, the
// reliable link's delivery/dedup/abandon machinery, fault-plan mangler
// determinism, scenario parsing, and — the heart of the tentpole — the
// in-process deployment of the per-node protocol: bit-exact parity with
// dos::run_node_level_epoch when fault-free, and graceful convergence (or
// bounded degradation, never a wedge) under scripted kills, partitions and
// restarts. A threaded live-UDP smoke run closes the loop on real sockets.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "dos/group_table.hpp"
#include "dos/node_sim.hpp"
#include "support/rng.hpp"
#include "transport/clock.hpp"
#include "transport/inproc.hpp"
#include "transport/live_runtime.hpp"
#include "transport/mangler.hpp"
#include "transport/reliable_link.hpp"
#include "transport/scenario.hpp"
#include "transport/udp.hpp"
#include "transport/wire.hpp"

namespace reconfnet::transport {
namespace {

// --- wire codec -------------------------------------------------------------

Message sample_candidate() {
  Message msg;
  msg.kind = MsgKind::kCandidate;
  msg.round = 17;
  msg.epoch = 2;
  msg.attempt = 1;
  msg.supernode = 5;
  msg.state.seq = 9;
  msg.state.blocks = {{1, 2, 3}, {}, {42}};
  SuperMsg super;
  super.src = 5;
  super.dest = 4;
  super.seq = 9;
  super.index = 7;
  super.is_request = true;
  super.req_requester = 11;
  super.req_j = 2;
  msg.outbox.push_back(super);
  return msg;
}

TEST(Wire, RoundTripsEveryField) {
  const Message msg = sample_candidate();
  std::vector<std::uint8_t> bytes;
  encode(msg, bytes);
  EXPECT_EQ(bytes.size(), encoded_bytes(msg));

  Message back;
  ASSERT_TRUE(decode(bytes, back));
  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.round, msg.round);
  EXPECT_EQ(back.epoch, msg.epoch);
  EXPECT_EQ(back.attempt, msg.attempt);
  EXPECT_EQ(back.supernode, msg.supernode);
  EXPECT_EQ(back.state.seq, msg.state.seq);
  EXPECT_EQ(back.state.blocks, msg.state.blocks);
  ASSERT_EQ(back.outbox.size(), 1u);
  EXPECT_EQ(back.outbox[0].dest, 4u);
  EXPECT_TRUE(back.outbox[0].is_request);
}

TEST(Wire, RoundTripsTableAndLookupFrames) {
  Message msg;
  msg.kind = MsgKind::kTableFrag;
  msg.round = 3;
  msg.table.push_back(TableEntry{1, {4, 5, 6}});
  msg.table.push_back(TableEntry{2, {7}});
  std::vector<std::uint8_t> bytes;
  encode(msg, bytes);
  Message back;
  ASSERT_TRUE(decode(bytes, back));
  ASSERT_EQ(back.table.size(), 2u);
  EXPECT_EQ(back.table[0].members, (std::vector<sim::NodeId>{4, 5, 6}));
  EXPECT_EQ(back.table[1].supernode, 2u);

  Message lookup;
  lookup.kind = MsgKind::kLookup;
  lookup.key = 0xDEADBEEFull;
  lookup.origin = 12;
  lookup.supernode = 6;
  encode(lookup, bytes);
  ASSERT_TRUE(decode(bytes, back));
  EXPECT_EQ(back.key, 0xDEADBEEFull);
  EXPECT_EQ(back.origin, 12u);
  EXPECT_EQ(back.supernode, 6u);
}

TEST(Wire, RejectsCorruptedFrames) {
  const Message msg = sample_candidate();
  std::vector<std::uint8_t> bytes;
  encode(msg, bytes);
  Message back;

  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decode(corrupt, back));

  corrupt = bytes;
  corrupt[2] = kWireVersion + 1;
  EXPECT_FALSE(decode(corrupt, back));

  corrupt = bytes;
  corrupt.resize(corrupt.size() - 1);  // truncated body
  EXPECT_FALSE(decode(corrupt, back));

  corrupt = bytes;
  corrupt.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode(corrupt, back));

  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}, back));
}

// --- link layer -------------------------------------------------------------

TEST(Link, HeaderRoundTripAndValidation) {
  LinkHeader header;
  header.op = LinkOp::kReliable;
  header.from = 42;
  header.incarnation = 3;
  header.seq = 77;
  std::uint8_t buffer[kLinkHeaderBytes];
  encode_link_header(header, buffer);

  LinkHeader back;
  ASSERT_TRUE(decode_link_header(buffer, back));
  EXPECT_EQ(back.op, LinkOp::kReliable);
  EXPECT_EQ(back.from, 42u);
  EXPECT_EQ(back.incarnation, 3u);
  EXPECT_EQ(back.seq, 77u);

  buffer[0] ^= 0xFF;
  EXPECT_FALSE(decode_link_header(buffer, back));
  encode_link_header(header, buffer);
  buffer[3] = 9;  // op out of range
  EXPECT_FALSE(decode_link_header(buffer, back));
}

TEST(Link, RetransmitsUntilAckedWithBackoff) {
  LinkConfig config;
  config.initial_timeout_us = 100;
  config.backoff_cap_us = 400;
  config.max_retries = 10;
  ReliableLink link(config, /*self=*/0, /*incarnation=*/0);

  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const std::uint32_t seq = link.stage(payload, 0, /*tag=*/5);
  std::vector<std::int64_t> tags;
  int sends = 0;
  const auto count = [&](std::span<const std::uint8_t> bytes,
                         std::uint32_t, std::int64_t tag) {
    ++sends;
    tags.push_back(tag);
    EXPECT_EQ(bytes.size(), kLinkHeaderBytes + payload.size());
  };
  link.for_due(0, count);    // first transmission
  link.for_due(50, count);   // not due yet
  link.for_due(100, count);  // 1st retransmit (timeout 100)
  link.for_due(250, count);  // not due (backoff doubled to 200, due at 300)
  link.for_due(300, count);  // 2nd retransmit
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(tags, (std::vector<std::int64_t>{5, 5, 5}));
  EXPECT_EQ(link.counters().retransmits, 2u);

  link.on_ack(seq, 0);
  EXPECT_EQ(link.pending(), 0u);
  link.for_due(10'000, count);
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(link.counters().acked, 1u);
}

TEST(Link, AbandonsAfterRetryBudget) {
  LinkConfig config;
  config.initial_timeout_us = 10;
  config.max_retries = 3;
  ReliableLink link(config, 0, 0);
  link.stage(std::vector<std::uint8_t>{9}, 0);

  int sends = 0;
  const auto count = [&](std::span<const std::uint8_t>, std::uint32_t,
                         std::int64_t) { ++sends; };
  for (std::int64_t now = 0; now < 10'000; now += 10) link.for_due(now, count);
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(link.counters().abandoned, 1u);
  EXPECT_EQ(link.pending(), 0u);
}

TEST(Link, CancelStaleDropsOnlyOlderTags) {
  ReliableLink link(LinkConfig{}, 0, 0);
  link.stage(std::vector<std::uint8_t>{1}, 0, /*tag=*/4);
  link.stage(std::vector<std::uint8_t>{2}, 0, /*tag=*/5);
  link.stage(std::vector<std::uint8_t>{3}, 0, /*tag=*/6);
  ASSERT_EQ(link.pending(), 3u);

  // Advancing to round 6 gives up on everything sent before it — the live
  // analog of the simulator dropping frames a dead round could not deliver.
  EXPECT_EQ(link.cancel_stale(6), 2u);
  EXPECT_EQ(link.pending(), 1u);
  EXPECT_EQ(link.counters().canceled, 2u);

  // The surviving frame still (re)transmits with its own tag.
  std::vector<std::int64_t> tags;
  link.for_due(0, [&](std::span<const std::uint8_t>, std::uint32_t,
                      std::int64_t tag) { tags.push_back(tag); });
  EXPECT_EQ(tags, (std::vector<std::int64_t>{6}));
}

TEST(Link, ReceiverDeduplicatesAndAcksEverything) {
  ReliableLink link(LinkConfig{}, 0, 0);
  EXPECT_TRUE(link.on_data(1, 0));
  EXPECT_TRUE(link.on_data(3, 0));   // out of order
  EXPECT_FALSE(link.on_data(1, 0));  // duplicate below/at floor
  EXPECT_FALSE(link.on_data(3, 0));  // duplicate above floor
  EXPECT_TRUE(link.on_data(2, 0));   // fills the gap, floor advances to 3
  EXPECT_FALSE(link.on_data(2, 0));

  std::vector<std::uint32_t> acks;
  link.drain_acks([&](std::uint32_t seq) { acks.push_back(seq); });
  EXPECT_EQ(acks, (std::vector<std::uint32_t>{1, 3, 1, 3, 2, 2}));
  EXPECT_EQ(link.counters().delivered, 3u);
  EXPECT_EQ(link.counters().duplicates, 3u);
}

TEST(Link, IncarnationBumpResetsDedupAndStaleAcksAreIgnored) {
  ReliableLink link(LinkConfig{}, 0, /*incarnation=*/1);
  EXPECT_TRUE(link.on_data(1, 0));
  EXPECT_TRUE(link.on_data(2, 0));
  // The peer restarted: its fresh life reuses low sequence numbers.
  EXPECT_TRUE(link.on_data(1, 1));
  EXPECT_EQ(link.peer_incarnation(), 1u);
  // Data from the dead previous life is dropped without an ack.
  EXPECT_FALSE(link.on_data(7, 0));
  EXPECT_EQ(link.counters().stale_incarnation, 1u);

  // Sender half: an ack addressed to OUR previous life must not consume the
  // fresh sequence space.
  const std::uint32_t seq = link.stage(std::vector<std::uint8_t>{1}, 0);
  link.on_ack(seq, 0);  // stale incarnation (ours is 1)
  EXPECT_EQ(link.pending(), 1u);
  link.on_ack(seq, 1);
  EXPECT_EQ(link.pending(), 0u);
}

// --- mangler + scenarios ----------------------------------------------------

TEST(Mangler, CrashAndPartitionWindowsArePureAndScripted) {
  fault::FaultPlan plan;
  plan.with_crash({/*node=*/3, /*at=*/10, /*restart=*/20});
  plan.with_crash({/*node=*/5, /*at=*/15, /*restart=*/-1});
  fault::PartitionEvent cut;
  cut.start = 4;
  cut.heal = 8;
  cut.id_below = 8;
  plan.with_partition(cut);
  PacketMangler mangler(plan, /*salt=*/1);

  EXPECT_FALSE(mangler.is_crashed(3, 9));
  EXPECT_TRUE(mangler.is_crashed(3, 10));
  EXPECT_TRUE(mangler.is_crashed(3, 19));
  EXPECT_FALSE(mangler.is_crashed(3, 20));  // restarted
  EXPECT_TRUE(mangler.is_crashed(5, 1000)); // crash-stop: down forever

  EXPECT_FALSE(mangler.partitioned(1, 9, 3));
  EXPECT_TRUE(mangler.partitioned(1, 9, 4));
  EXPECT_TRUE(mangler.partitioned(9, 1, 7));   // symmetric
  EXPECT_FALSE(mangler.partitioned(1, 2, 5));  // same side
  EXPECT_FALSE(mangler.partitioned(1, 9, 8));  // healed

  // drop() composes the windows: sender crashed, receiver down next round,
  // or the cut between them.
  EXPECT_TRUE(mangler.drop(3, 1, 12, 0));   // sender down
  EXPECT_TRUE(mangler.drop(1, 3, 9, 0));    // receiver down at delivery
  EXPECT_TRUE(mangler.drop(1, 9, 5, 0));    // partitioned
  EXPECT_FALSE(mangler.drop(1, 2, 5, 0));
}

TEST(Mangler, LossDrawsFreshCoinPerAttempt) {
  fault::FaultPlan plan;
  plan.with_loss(0.5);
  PacketMangler mangler(plan, 7);
  PacketMangler again(plan, 7);

  int dropped = 0;
  int disagreements = 0;
  for (std::uint32_t attempt = 0; attempt < 64; ++attempt) {
    const bool a = mangler.drop(1, 2, 5, attempt);
    if (a) ++dropped;
    if (a != again.drop(1, 2, 5, attempt)) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0);  // pure in (endpoints, round, attempt)
  EXPECT_GT(dropped, 8);        // p = 0.5: both outcomes well represented
  EXPECT_LT(dropped, 56);
}

TEST(Scenario, ParsesPlansAndCanonicalizesNames) {
  const auto plan = parse_plan("kill2,partition1", 64, 30);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].node, 21u);
  EXPECT_EQ(plan.crashes[0].at, 33);
  EXPECT_LT(plan.crashes[0].restart, 0);
  EXPECT_EQ(plan.crashes[1].node, 42u);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].id_below, 32u);

  EXPECT_EQ(canonical_plan_name("kill2,partition1"), "kill2+partition1");
  EXPECT_EQ(canonical_plan_name(""), "none");
  EXPECT_EQ(canonical_plan_name("none"), "none");
  EXPECT_TRUE(parse_plan("none", 64, 30).crashes.empty());
  EXPECT_THROW((void)parse_plan("kill9", 64, 30), std::invalid_argument);
}

// --- in-process deployment --------------------------------------------------

InprocDeploymentConfig small_deployment(int epochs, bool smoke) {
  InprocDeploymentConfig config;
  config.nodes = 64;
  config.dimension = 3;
  config.protocol.epochs = epochs;
  config.protocol.dht_smoke = smoke;
  return config;
}

TEST(InprocDeployment, FaultFreeRunMatchesNodeSimExactly) {
  auto config = small_deployment(/*epochs=*/1, /*smoke=*/false);
  InprocDeployment deployment(config);

  // Ground truth: the monolithic node_sim epoch over the same initial table
  // with the same seed (NodeProtocol replays its exact rng split order).
  support::Rng rng(config.protocol.seed);
  const auto report = dos::run_node_level_epoch(deployment.initial_table(),
                                                {}, {}, rng);
  ASSERT_TRUE(report.success) << report.failure_reason;
  ASSERT_TRUE(report.new_groups.has_value());

  const auto result = deployment.run();
  EXPECT_TRUE(result.all_live_finished);
  EXPECT_EQ(result.finished, config.nodes);

  const dos::GroupTable& expected = *report.new_groups;
  for (int id = 0; id < config.nodes; ++id) {
    const dos::GroupTable& got =
        deployment.node(static_cast<sim::NodeId>(id)).table();
    ASSERT_EQ(got.supernodes(), expected.supernodes()) << "node " << id;
    for (std::uint64_t x = 0; x < expected.supernodes(); ++x) {
      EXPECT_EQ(got.group(x), expected.group(x))
          << "node " << id << " group " << x;
    }
    EXPECT_EQ(deployment.node(static_cast<sim::NodeId>(id))
                  .metrics()
                  .epochs_completed,
              1);
  }
}

TEST(InprocDeployment, SurvivesKillsAndPartition) {
  auto config = small_deployment(/*epochs=*/3, /*smoke=*/true);
  {
    InprocDeployment probe(config);
    config.plan = parse_plan("kill2,partition1", config.nodes,
                             probe.node(0).epoch_rounds());
  }
  InprocDeployment deployment(config);
  const auto report = deployment.run();
  EXPECT_TRUE(report.all_live_finished);
  EXPECT_EQ(report.crashed_forever, 2);
  EXPECT_EQ(report.finished, config.nodes - 2);

  for (int id = 0; id < config.nodes; ++id) {
    const auto node = static_cast<sim::NodeId>(id);
    if (id == 21 || id == 42) continue;  // the kill2 victims
    const auto& metrics = deployment.node(node).metrics();
    EXPECT_EQ(metrics.epochs_completed, 3) << "node " << id;
    EXPECT_TRUE(metrics.lookup_ok) << "node " << id;
  }
}

TEST(InprocDeployment, WholeGroupKillAbortsEpochAndFallsBack) {
  auto config = small_deployment(/*epochs=*/1, /*smoke=*/false);
  config.protocol.max_attempts = 2;
  // Kill every member of the initial group of supernode 0 before the epoch
  // can finish: the survivors must abort (group silence / missing data),
  // fall back to the previous configuration, exhaust the retry budget and
  // still terminate cleanly.
  InprocDeployment probe(config);
  for (const sim::NodeId member : probe.initial_table().group(0)) {
    config.plan.with_crash({member, /*at=*/2, /*restart=*/-1});
  }
  InprocDeployment deployment(config);
  const auto report = deployment.run();
  EXPECT_TRUE(report.all_live_finished);

  const auto killed = static_cast<int>(config.plan.crashes.size());
  EXPECT_EQ(report.crashed_forever, killed);
  bool any_fallback = false;
  for (int id = 0; id < config.nodes; ++id) {
    const auto node = static_cast<sim::NodeId>(id);
    bool is_victim = false;
    for (const fault::CrashEvent& event : config.plan.crashes) {
      if (event.node == node) is_victim = true;
    }
    if (is_victim) continue;
    const auto& metrics = deployment.node(node).metrics();
    EXPECT_TRUE(metrics.finished) << "node " << id;
    EXPECT_EQ(metrics.epochs_completed, 0) << "node " << id;
    EXPECT_EQ(metrics.epochs_failed, 1) << "node " << id;
    if (metrics.fallbacks > 0) any_fallback = true;
  }
  EXPECT_TRUE(any_fallback);
}

TEST(InprocDeployment, CrashWithRestartRejoinsWithinTheEpoch) {
  auto config = small_deployment(/*epochs=*/1, /*smoke=*/false);
  // One node reboots early in the (long) sampler phase: it comes back with a
  // fresh protocol instance, resyncs off the state broadcasts, and still
  // completes the epoch with everyone else.
  config.plan.with_crash({/*node=*/7, /*at=*/3, /*restart=*/9});
  InprocDeployment deployment(config);
  const auto report = deployment.run();
  EXPECT_TRUE(report.all_live_finished);
  EXPECT_EQ(report.finished, config.nodes);
  EXPECT_EQ(deployment.node(7).metrics().epochs_completed, 1);
  EXPECT_GT(deployment.node(7).metrics().resyncs, 0);
}

// --- live UDP smoke ---------------------------------------------------------

TEST(LiveUdp, SixteenThreadedNodesConvergeAndMatchInproc) {
  constexpr int kNodes = 16;
  constexpr int kDim = 2;
  constexpr std::uint16_t kPort = 53210;

  InprocDeploymentConfig reference_config;
  reference_config.nodes = kNodes;
  reference_config.dimension = kDim;
  reference_config.protocol.epochs = 1;
  InprocDeployment reference(reference_config);
  ASSERT_TRUE(reference.run().all_live_finished);

  std::vector<int> exit_codes(kNodes, -1);
  std::vector<std::int64_t> epochs_done(kNodes, 0);
  std::vector<std::vector<std::vector<sim::NodeId>>> tables(kNodes);
  {
    std::vector<std::thread> threads;
    threads.reserve(kNodes);
    for (int id = 0; id < kNodes; ++id) {
      threads.emplace_back([id, &exit_codes, &epochs_done, &tables] {
        LiveConfig config;
        config.self = static_cast<sim::NodeId>(id);
        config.nodes = kNodes;
        config.dimension = kDim;
        config.base_port = kPort;
        config.protocol.epochs = 1;
        config.pacer.round_budget_us = 30'000;
        config.linger_us = 300'000;
        MonotonicClock clock;
        LiveNodeRuntime node(config, &clock);
        exit_codes[static_cast<std::size_t>(id)] = node.run();
        epochs_done[static_cast<std::size_t>(id)] =
            node.protocol().metrics().epochs_completed;
        const dos::GroupTable& table = node.protocol().table();
        for (std::uint64_t x = 0; x < table.supernodes(); ++x) {
          tables[static_cast<std::size_t>(id)].push_back(table.group(x));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  const dos::GroupTable& expected = reference.node(0).table();
  for (int id = 0; id < kNodes; ++id) {
    EXPECT_EQ(exit_codes[static_cast<std::size_t>(id)],
              LiveNodeRuntime::kFinished)
        << "node " << id;
    EXPECT_EQ(epochs_done[static_cast<std::size_t>(id)], 1) << "node " << id;
    ASSERT_EQ(tables[static_cast<std::size_t>(id)].size(),
              expected.supernodes())
        << "node " << id;
    for (std::uint64_t x = 0; x < expected.supernodes(); ++x) {
      EXPECT_EQ(tables[static_cast<std::size_t>(id)][x], expected.group(x))
          << "node " << id << " group " << x;
    }
  }
}

TEST(UdpTransport, DatagramHandlerRejectsGarbageAndCountsLateFrames) {
  UdpConfig config;
  config.self = 0;
  config.nodes = 4;
  UdpTransport transport(config);  // never opened: socket-free paths only

  EXPECT_FALSE(transport.on_datagram(std::vector<std::uint8_t>{1, 2, 3}, 0));
  EXPECT_EQ(transport.counters().decode_failures, 1u);

  // A well-formed unreliable datagram from peer 2 carrying a heartbeat.
  Message beat;
  beat.kind = MsgKind::kHeartbeat;
  beat.round = 6;
  std::vector<std::uint8_t> payload;
  encode(beat, payload);
  std::vector<std::uint8_t> datagram(kLinkHeaderBytes + payload.size());
  LinkHeader header;
  header.op = LinkOp::kUnreliable;
  header.from = 2;
  encode_link_header(header, datagram.data());
  std::copy(payload.begin(), payload.end(),
            datagram.begin() + kLinkHeaderBytes);

  EXPECT_TRUE(transport.on_datagram(datagram, 0));
  EXPECT_EQ(transport.counters().heartbeats_received, 1u);
  EXPECT_EQ(transport.round_heard(2), 6);

  // A protocol frame whose delivery round has already passed is dropped.
  Message stale;
  stale.kind = MsgKind::kCommitVote;
  stale.round = 1;
  encode(stale, payload);
  datagram.assign(kLinkHeaderBytes + payload.size(), 0);
  header.op = LinkOp::kReliable;
  header.seq = 1;
  encode_link_header(header, datagram.data());
  std::copy(payload.begin(), payload.end(),
            datagram.begin() + kLinkHeaderBytes);
  transport.advance_round(10);
  EXPECT_TRUE(transport.on_datagram(datagram, 0));
  EXPECT_EQ(transport.counters().late_frames, 1u);
  std::vector<sim::Envelope<Message>> inbox;
  transport.poll(inbox);
  EXPECT_TRUE(inbox.empty());
}

}  // namespace
}  // namespace reconfnet::transport
