#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "combined/labels.hpp"
#include "combined/overlay.hpp"
#include "combined/split_merge.hpp"
#include "graph/connectivity.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet::combined {
namespace {

TEST(Label, ChildParentSiblingRoundTrip) {
  const Label root{0, 0};
  const Label zero = root.child(0);
  const Label one = root.child(1);
  EXPECT_EQ(zero.length, 1);
  EXPECT_EQ(zero.bits, 0u);
  EXPECT_EQ(one.bits, 1u);
  EXPECT_EQ(zero.sibling(), one);
  EXPECT_EQ(one.sibling(), zero);
  EXPECT_EQ(zero.parent(), root);
  EXPECT_EQ(one.parent(), root);
  const Label deep = one.child(0).child(1);
  EXPECT_EQ(deep.length, 3);
  EXPECT_EQ(deep.parent().parent(), one);
  EXPECT_THROW((void)root.parent(), std::invalid_argument);
  EXPECT_THROW((void)root.sibling(), std::invalid_argument);
}

TEST(Label, KeysAreUniqueAcrossLengths) {
  // "0" vs "00" vs "000" must all have distinct keys.
  const Label a{0, 1};
  const Label b{0, 2};
  const Label c{0, 3};
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(b.key(), c.key());
  EXPECT_NE(a.key(), c.key());
}

TEST(Label, PrefixRelation) {
  const Label x{0b01, 2};  // coordinates 1,0
  EXPECT_TRUE(x.is_prefix_of(Label{0b101, 3}));
  EXPECT_TRUE(x.is_prefix_of(x));
  EXPECT_FALSE(x.is_prefix_of(Label{0b10, 2}));
  EXPECT_FALSE((Label{0b101, 3}).is_prefix_of(x));
  EXPECT_EQ((Label{0b101, 3}).prefix(2), x);
}

TEST(Label, ConnectivityRuleSection6) {
  // Equal lengths: plain hypercube adjacency.
  EXPECT_TRUE(labels_connected(Label{0b00, 2}, Label{0b01, 2}));
  EXPECT_FALSE(labels_connected(Label{0b00, 2}, Label{0b11, 2}));
  // Different lengths: compare the first d(x) coordinates.
  EXPECT_TRUE(labels_connected(Label{0b00, 2}, Label{0b101, 3}));   // 00 vs 10
  EXPECT_FALSE(labels_connected(Label{0b00, 2}, Label{0b111, 3}));  // 00 vs 11
  // Identical prefixes are NOT connected (zero differing coordinates).
  EXPECT_FALSE(labels_connected(Label{0b00, 2}, Label{0b100, 3}));
  EXPECT_FALSE(labels_connected(Label{0, 0}, Label{0, 1}));
}

TEST(Label, ToStringOrdersCoordinates) {
  EXPECT_EQ((Label{0b01, 2}).to_string(), "10");  // b1=1, b2=0
  EXPECT_EQ((Label{0, 0}).to_string(), "<root>");
}

std::vector<std::vector<sim::NodeId>> even_groups(std::size_t n,
                                                  std::size_t buckets) {
  std::vector<std::vector<sim::NodeId>> groups(buckets);
  for (std::size_t i = 0; i < n; ++i) groups[i % buckets].push_back(i);
  return groups;
}

TEST(SuperGroups, UniformConstructionIsValid) {
  const auto super = SuperGroups::uniform(3, even_groups(64, 8));
  EXPECT_EQ(super.supernode_count(), 8u);
  EXPECT_EQ(super.node_count(), 64u);
  EXPECT_EQ(super.min_dimension(), 3);
  EXPECT_EQ(super.max_dimension(), 3);
}

TEST(SuperGroups, RejectsIncompleteCode) {
  // Labels {0, 10} leave 11 uncovered.
  EXPECT_THROW(
      SuperGroups({{Label{0, 1}, {1}}, {Label{0b01, 2}, {2}}}),
      std::invalid_argument);
  // Label prefixing another.
  EXPECT_THROW(
      SuperGroups({{Label{0, 1}, {1}},
                   {Label{0b1, 1}, {2}},
                   {Label{0b01, 2}, {3}}}),
      std::invalid_argument);
  // Empty group.
  EXPECT_THROW(SuperGroups({{Label{0, 1}, {}}, {Label{1, 1}, {2}}}),
               std::invalid_argument);
}

TEST(SuperGroups, EnforceSplitsOversizedGroups) {
  // One giant group at the root: c = 2 forces splits until Eq (1) holds.
  std::vector<sim::NodeId> everyone(64);
  for (std::size_t i = 0; i < 64; ++i) everyone[i] = i;
  SuperGroups super({{Label{0, 0}, everyone}});
  support::Rng rng(1);
  const auto ops = super.enforce(2.0, rng);
  EXPECT_GT(ops.splits, 0);
  EXPECT_EQ(super.node_count(), 64u);
  for (const auto& [key, entry] : super.groups()) {
    const auto& [label, members] = entry;
    EXPECT_LT(static_cast<double>(members.size()),
              2.0 * 2.0 * label.length)
        << label.to_string();
  }
  EXPECT_LE(super.max_dimension() - super.min_dimension(), 2);
}

TEST(SuperGroups, EnforceMergesUndersizedGroups) {
  // Dimension-4 supernodes with 2 nodes each violate |R| > c d - c for
  // c = 2 (need > 6): everything merges upward.
  auto super = SuperGroups::uniform(4, even_groups(32, 16));
  support::Rng rng(2);
  const auto ops = super.enforce(2.0, rng);
  EXPECT_GT(ops.merges, 0);
  EXPECT_EQ(super.node_count(), 32u);
  for (const auto& [key, entry] : super.groups()) {
    const auto& [label, members] = entry;
    // The merge trigger is |R(x)| < c d(x) - c (strict), so sizes may rest
    // exactly at the boundary.
    EXPECT_GE(static_cast<double>(members.size()),
              2.0 * label.length - 2.0);
  }
}

TEST(SuperGroups, ForcedSubtreeMerge) {
  // Labels: 0 (big), 10, 11 (each tiny). Merging "10"/"11" requires the
  // sibling subtree of "0" to collapse first when "0" wants to merge — here
  // we exercise the other direction: "10" merges with "11" into "1", then
  // possibly "0" with "1".
  SuperGroups super({{Label{0, 1}, {1, 2, 3, 4}},
                     {Label{0b01, 2}, {5}},
                     {Label{0b11, 2}, {6}}});
  support::Rng rng(3);
  const auto ops = super.enforce(2.0, rng);
  EXPECT_GT(ops.merges, 0);
  EXPECT_EQ(super.node_count(), 6u);
}

TEST(SuperGroups, DescendSelectsByPrefix) {
  const auto super = SuperGroups::uniform(2, even_groups(16, 4));
  // bit_at(i) returning fixed bits 1,0 must land on label "10" = bits 0b01.
  const auto label = super.descend([](int i) { return i == 0 ? 1 : 0; });
  EXPECT_EQ(label, (Label{0b01, 2}));
}

TEST(SuperGroups, SampleMatchesTwoPowMinusDim) {
  // Labels {0 (d=1), 10 (d=2), 11 (d=2)}: probabilities 1/2, 1/4, 1/4.
  SuperGroups super({{Label{0, 1}, {1, 2}},
                     {Label{0b01, 2}, {3}},
                     {Label{0b11, 2}, {4}}});
  support::Rng rng(4);
  std::map<std::uint64_t, std::uint64_t> counts;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[super.sample(rng).key()];
  EXPECT_NEAR(static_cast<double>(counts[(Label{0, 1}).key()]) / kDraws, 0.5,
              0.02);
  EXPECT_NEAR(static_cast<double>(counts[(Label{0b01, 2}).key()]) / kDraws,
              0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[(Label{0b11, 2}).key()]) / kDraws,
              0.25, 0.02);
}

TEST(SuperGroups, OverlayEdgesFollowConnectivityRule) {
  SuperGroups super({{Label{0, 1}, {1, 2}},
                     {Label{0b01, 2}, {3}},
                     {Label{0b11, 2}, {4}}});
  const auto edges = super.overlay_edges();
  auto has = [&](sim::NodeId a, sim::NodeId b) {
    return std::any_of(edges.begin(), edges.end(), [&](const auto& e) {
      return (e.first == a && e.second == b) ||
             (e.first == b && e.second == a);
    });
  };
  EXPECT_TRUE(has(1, 2));   // clique inside "0"
  EXPECT_TRUE(has(1, 3));   // "0" vs "10": first coordinate differs
  EXPECT_TRUE(has(1, 4));   // "0" vs "11": first coordinate differs
  EXPECT_TRUE(has(3, 4));   // "10" vs "11": second coordinate differs
  EXPECT_TRUE(graph::is_connected(super.all_nodes(), edges));
}

TEST(SuperGroups, ReassignValidation) {
  auto super = SuperGroups::uniform(1, even_groups(8, 2));
  // Same labels, different membership: fine.
  super.reassign({{Label{0, 1}, {0, 1, 2}}, {Label{1, 1}, {3, 4, 5, 6, 7}}});
  EXPECT_EQ(super.node_count(), 8u);
  // Empty group: rejected.
  EXPECT_THROW(
      super.reassign({{Label{0, 1}, {}}, {Label{1, 1}, {0, 1}}}),
      std::runtime_error);
  // Unknown label: rejected.
  EXPECT_THROW(super.reassign({{Label{0, 1}, {0}}, {Label{0b01, 2}, {1}}}),
               std::runtime_error);
}

TEST(InitialDimension, SatisfiesLemma18Window) {
  for (std::size_t n : {128u, 512u, 1024u, 4096u, 16384u}) {
    const double c = 2.0;
    const int d = CombinedOverlay::initial_dimension(n, c);
    EXPECT_LT(std::ldexp(2.0 * c * d, d), static_cast<double>(n)) << n;
    EXPECT_LE(static_cast<double>(n), std::ldexp(2.0 * c * (d + 1), d + 1))
        << n;
  }
}

CombinedOverlay::Config combined_config(std::size_t n, std::uint64_t seed) {
  CombinedOverlay::Config config;
  config.initial_size = n;
  config.group_c = 2.0;
  config.seed = seed;
  return config;
}

TEST(CombinedOverlay, BootstrapSatisfiesEquationOne) {
  CombinedOverlay overlay(combined_config(1024, 1));
  EXPECT_EQ(overlay.size(), 1024u);
  for (const auto& [key, entry] : overlay.supernodes().groups()) {
    const auto& [label, members] = entry;
    // Enforcement triggers are strict (split only when |R| > 2cd, merge only
    // when |R| < cd - c), so sizes may rest exactly at either boundary.
    EXPECT_GE(static_cast<double>(members.size()),
              2.0 * label.length - 2.0);
    EXPECT_LE(static_cast<double>(members.size()), 2.0 * 2.0 * label.length);
  }
  EXPECT_LE(overlay.supernodes().max_dimension() -
                overlay.supernodes().min_dimension(),
            2);
}

TEST(CombinedOverlay, QuietEpochSucceeds) {
  CombinedOverlay overlay(combined_config(512, 2));
  adversary::NoChurn quiet;
  const auto report = overlay.run_epoch(quiet, {});
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.reorganized);
  EXPECT_EQ(report.disconnected_rounds, 0u);
  EXPECT_EQ(overlay.size(), 512u);
  EXPECT_LE(report.max_dimension - report.min_dimension, 2);
}

TEST(CombinedOverlay, ChurnChangesMembershipWithinTwoEpochs) {
  CombinedOverlay overlay(combined_config(512, 3));
  support::Rng rng(4);
  adversary::UniformChurn churn(0.01, 1.0, 4.0, rng);
  adversary::NoChurn quiet;
  const std::size_t before = overlay.size();
  const auto first = overlay.run_epoch(churn, {});
  ASSERT_TRUE(first.success) << first.failure_reason;
  EXPECT_EQ(first.joins_applied, 0u);  // staged only
  const auto second = overlay.run_epoch(quiet, {});
  ASSERT_TRUE(second.success) << second.failure_reason;
  EXPECT_GT(second.joins_applied + second.leaves_applied, 0u);
  EXPECT_EQ(overlay.size(), before);  // turnover with growth 1.0
}

TEST(CombinedOverlay, Lemma18DimensionSpreadUnderGrowth) {
  // Sustained growth: supernodes must split, and the dimension window must
  // never exceed 2.
  CombinedOverlay overlay(combined_config(256, 5));
  support::Rng rng(6);
  adversary::UniformChurn churn(0.02, 2.0, 8.0, rng);
  int total_splits = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto report = overlay.run_epoch(churn, {});
    ASSERT_TRUE(report.success) << "epoch " << epoch << ": "
                                << report.failure_reason;
    EXPECT_LE(report.max_dimension - report.min_dimension, 2)
        << "epoch " << epoch;
    total_splits += report.split_merge.splits;
  }
  EXPECT_GT(overlay.size(), 256u);
  EXPECT_GT(total_splits, 0);
}

TEST(CombinedOverlay, Lemma18DimensionSpreadUnderShrinkage) {
  CombinedOverlay overlay(combined_config(768, 7));
  support::Rng rng(8);
  adversary::UniformChurn churn(0.005, 0.0, 2.0, rng);  // leaves only
  int total_merges = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto report = overlay.run_epoch(churn, {});
    ASSERT_TRUE(report.success) << "epoch " << epoch << ": "
                                << report.failure_reason;
    EXPECT_LE(report.max_dimension - report.min_dimension, 2);
    total_merges += report.split_merge.merges;
  }
  EXPECT_LT(overlay.size(), 768u);
  EXPECT_GT(total_merges, 0);
}

TEST(CombinedOverlay, Theorem7ChurnAndDosTogether) {
  // Equation (1) lets groups rest at the floor c*d(x)-c, so the blocking
  // fraction must respect Lemma 17's c(eps) coupling: with c = 2 and 25%
  // blocked, silencing a floor-sized group is a <<1-per-run event. Epoch
  // failures (kept-old-groups retries) are tolerated; lost connectivity is
  // not — that is Theorem 7's actual claim.
  CombinedOverlay overlay(combined_config(1024, 9));
  support::Rng churn_rng(10), dos_rng(11);
  adversary::UniformChurn churn(0.005, 1.0, 4.0, churn_rng);
  adversary::IsolationDos dos_adversary(dos_rng);
  CombinedOverlay::Attack attack;
  attack.adversary = &dos_adversary;
  attack.blocked_fraction = 0.25;
  attack.lateness = 60;
  int ok = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto report = overlay.run_epoch(churn, attack);
    ok += report.success ? 1 : 0;
    EXPECT_EQ(report.disconnected_rounds, 0u) << "epoch " << epoch;
  }
  EXPECT_GE(ok, 3);
}

TEST(CombinedOverlay, ZeroLateGroupWipeIsDetected) {
  CombinedOverlay overlay(combined_config(512, 12));
  support::Rng dos_rng(13);
  adversary::GroupWipeDos dos_adversary(dos_rng);
  adversary::NoChurn quiet;
  CombinedOverlay::Attack attack;
  attack.adversary = &dos_adversary;
  attack.blocked_fraction = 0.45;
  attack.lateness = 0;
  const auto report = overlay.run_epoch(quiet, attack);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.silenced_group_rounds, 0u);
  EXPECT_FALSE(report.reorganized);
}

TEST(CombinedOverlay, MembershipIsMonotonic) {
  CombinedOverlay overlay(combined_config(256, 14));
  support::Rng rng(15);
  adversary::UniformChurn churn(0.02, 1.0, 4.0, rng);
  std::unordered_set<sim::NodeId> gone;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto before = overlay.members();
    const auto report = overlay.run_epoch(churn, {});
    ASSERT_TRUE(report.success) << report.failure_reason;
    const auto after_list = overlay.members();
    std::unordered_set<sim::NodeId> after(after_list.begin(),
                                          after_list.end());
    for (sim::NodeId id : after) {
      EXPECT_FALSE(gone.contains(id)) << "id " << id << " re-entered";
    }
    for (sim::NodeId id : before) {
      if (!after.contains(id)) gone.insert(id);
    }
  }
  EXPECT_GT(gone.size(), 0u);
}

TEST(CombinedOverlay, CrashedNodesAreEmulatedOut) {
  // Section 6's closing discussion: distinguishable crash failures are
  // emulated by the group and excluded at the next epoch boundary.
  CombinedOverlay overlay(combined_config(256, 30));
  adversary::NoChurn quiet;
  const auto members = overlay.members();
  overlay.crash(members[0]);
  overlay.crash(members[1]);
  overlay.crash(members[2]);
  EXPECT_EQ(overlay.crashed().size(), 3u);

  const auto report = overlay.run_epoch(quiet, {});
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.leaves_applied, 3u);
  EXPECT_EQ(overlay.size(), 253u);
  const auto after = overlay.members();
  std::unordered_set<sim::NodeId> alive(after.begin(), after.end());
  EXPECT_FALSE(alive.contains(members[0]));
  EXPECT_FALSE(alive.contains(members[1]));
  EXPECT_FALSE(alive.contains(members[2]));
  // Emulation is complete: no lingering crash bookkeeping.
  EXPECT_TRUE(overlay.crashed().empty());
}

TEST(CombinedOverlay, CrashedNodeIsSilentImmediately) {
  // Between crash and exclusion, the node behaves as permanently blocked —
  // the epoch still succeeds because the group covers for it.
  CombinedOverlay overlay(combined_config(256, 31));
  adversary::NoChurn quiet;
  overlay.crash(overlay.members()[10]);
  const auto report = overlay.run_epoch(quiet, {});
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.disconnected_rounds, 0u);
  // A whole-group availability dip is visible but not total.
  EXPECT_LT(report.min_available_fraction, 1.0);
  EXPECT_GT(report.min_available_fraction, 0.0);
}

TEST(CombinedOverlay, CrashValidation) {
  CombinedOverlay overlay(combined_config(256, 32));
  EXPECT_THROW(overlay.crash(999999), std::invalid_argument);
  const sim::NodeId victim = overlay.members()[5];
  overlay.crash(victim);
  EXPECT_THROW(overlay.crash(victim), std::invalid_argument);
}

TEST(CombinedOverlay, MassCrashUnderChurnAndDos) {
  // Crashes, churn, and blocking all at once; the overlay absorbs all
  // three. 10% of the membership crashes before the first epoch.
  CombinedOverlay overlay(combined_config(512, 33));
  support::Rng churn_rng(34), dos_rng(35);
  adversary::UniformChurn churn(0.005, 1.0, 4.0, churn_rng);
  adversary::RandomDos dos_adversary(dos_rng);
  CombinedOverlay::Attack attack;
  attack.adversary = &dos_adversary;
  attack.blocked_fraction = 0.2;
  attack.lateness = 60;
  const auto members = overlay.members();
  for (std::size_t i = 0; i < 51; ++i) overlay.crash(members[i * 10]);

  int ok = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto report = overlay.run_epoch(churn, attack);
    ok += report.success ? 1 : 0;
    EXPECT_EQ(report.disconnected_rounds, 0u) << "epoch " << epoch;
  }
  EXPECT_GE(ok, 2);
  EXPECT_TRUE(overlay.crashed().empty());
  const auto final_members = overlay.members();
  std::unordered_set<sim::NodeId> alive(final_members.begin(),
                                        final_members.end());
  for (std::size_t i = 0; i < 51; ++i) {
    EXPECT_FALSE(alive.contains(members[i * 10]));
  }
}

}  // namespace
}  // namespace reconfnet::combined
