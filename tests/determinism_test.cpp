// Reproducibility guard for the Rng::split contract (src/support/rng.hpp):
// every protocol node derives its randomness from a single master seed, so
// two runs of the same scenario with the same seed must agree bit for bit.
// These tests compare the byte serialization of the overlays' topology
// snapshots across two independent runs — any hidden dependence on iteration
// order, addresses, or global state shows up as a byte difference.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "churn/overlay.hpp"
#include "combined/overlay.hpp"
#include "dos/overlay.hpp"
#include "runtime/trial_runner.hpp"
#include "sim/snapshot.hpp"
#include "support/rng.hpp"

namespace reconfnet {
namespace {

// --- churn overlay ----------------------------------------------------------

/// The churn overlay keeps no snapshot buffer; serialize its ground-truth
/// topology (members plus every Hamilton-cycle edge) into snapshot form.
sim::TopologySnapshot churn_snapshot(const churn::ChurnOverlay& overlay) {
  sim::TopologySnapshot snap;
  snap.round = overlay.round();
  snap.nodes = overlay.members();
  const auto& topology = overlay.topology();
  for (int cycle = 0; cycle < topology.num_cycles(); ++cycle) {
    for (std::size_t v = 0; v < topology.size(); ++v) {
      snap.edges.emplace_back(snap.nodes[v],
                              snap.nodes[topology.succ(cycle, v)]);
    }
  }
  return snap;
}

std::vector<std::uint8_t> run_churn(std::uint64_t seed, int epochs) {
  churn::ChurnOverlay::Config config;
  config.initial_size = 64;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = seed;
  churn::ChurnOverlay overlay(config);
  adversary::UniformChurn churn(0.05, 1.0, 1.0, support::Rng(seed ^ 0xAD));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    overlay.run_epoch(churn);
  }
  return sim::serialize(churn_snapshot(overlay));
}

TEST(Determinism, ChurnOverlaySameSeedIsByteIdentical) {
  const auto first = run_churn(42, 3);
  const auto second = run_churn(42, 3);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, ChurnOverlayDifferentSeedsDiverge) {
  EXPECT_NE(run_churn(42, 3), run_churn(43, 3));
}

// --- DoS overlay ------------------------------------------------------------

std::vector<std::uint8_t> run_dos(std::uint64_t seed, int epochs) {
  dos::DosOverlay::Config config;
  config.size = 512;
  config.seed = seed;
  dos::DosOverlay overlay(config);
  adversary::RandomDos adversary(support::Rng(seed ^ 0xD0));
  dos::DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 64;
  attack.blocked_fraction = 0.1;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    overlay.run_epoch(attack);
  }
  const auto* latest = overlay.snapshots().latest();
  EXPECT_NE(latest, nullptr);
  return latest != nullptr ? sim::serialize(*latest)
                           : std::vector<std::uint8_t>{};
}

TEST(Determinism, DosOverlaySameSeedIsByteIdentical) {
  const auto first = run_dos(7, 2);
  const auto second = run_dos(7, 2);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, DosOverlayDifferentSeedsDiverge) {
  EXPECT_NE(run_dos(7, 2), run_dos(8, 2));
}

// --- combined overlay -------------------------------------------------------

std::vector<std::uint8_t> run_combined(std::uint64_t seed, int epochs) {
  combined::CombinedOverlay::Config config;
  config.initial_size = 512;
  config.group_c = 2.0;
  config.seed = seed;
  combined::CombinedOverlay overlay(config);
  adversary::UniformChurn churn(0.02, 1.0, 1.0, support::Rng(seed ^ 0xCA));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    overlay.run_epoch(churn, {});
  }
  const auto* latest = overlay.snapshots().latest();
  EXPECT_NE(latest, nullptr);
  return latest != nullptr ? sim::serialize(*latest)
                           : std::vector<std::uint8_t>{};
}

TEST(Determinism, CombinedOverlaySameSeedIsByteIdentical) {
  const auto first = run_combined(11, 2);
  const auto second = run_combined(11, 2);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, CombinedOverlayDifferentSeedsDiverge) {
  EXPECT_NE(run_combined(11, 2), run_combined(12, 2));
}

// --- serialization itself ---------------------------------------------------

TEST(Determinism, SerializationIsInjectiveOnObservableState) {
  sim::TopologySnapshot a;
  a.round = 1;
  a.nodes = {1, 2, 3};
  a.edges = {{1, 2}, {2, 3}};
  sim::TopologySnapshot b = a;
  EXPECT_EQ(sim::serialize(a), sim::serialize(b));
  b.edges[1] = {3, 2};  // orientation matters: these are distinct encodings
  EXPECT_NE(sim::serialize(a), sim::serialize(b));
  b = a;
  b.round = 2;
  EXPECT_NE(sim::serialize(a), sim::serialize(b));
}

// --- parallel trial runtime -------------------------------------------------

/// The experiment runtime extends the same-seed contract across threads: a
/// full overlay scenario fanned over 8 workers must serialize byte-for-byte
/// identically to the serial run, because every trial's randomness derives
/// only from (master_seed, trial_index), never from scheduling.
TEST(Determinism, TrialRunnerParallelMatchesSerialOnOverlayScenario) {
  const auto run_with = [](std::size_t jobs) {
    runtime::TrialRunner runner(0xD15EA5E, jobs);
    return runner.run(12, [](runtime::TrialContext& trial) {
      dos::DosOverlay::Config config;
      config.size = 256;
      config.group_c = 2.0;
      config.seed = trial.derive_seed();
      dos::DosOverlay overlay(config);
      adversary::RandomDos adversary(trial.rng.split(1));
      dos::DosOverlay::Attack attack;
      attack.adversary = &adversary;
      attack.lateness = 16;
      attack.blocked_fraction = 0.3;
      (void)overlay.run_epoch(attack);
      const auto* latest = overlay.snapshots().latest();
      return latest != nullptr ? sim::serialize(*latest)
                               : std::vector<std::uint8_t>{};
    });
  };
  const auto serial = run_with(1);
  const auto parallel_result = run_with(8);
  ASSERT_EQ(serial.size(), parallel_result.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel_result[i]) << "trial " << i;
  }
}

}  // namespace
}  // namespace reconfnet
