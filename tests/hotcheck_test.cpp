// Tests for reconfnet_hotcheck (tools/hotcheck/): one test per RNH rule id,
// driven by the fixtures in tests/hotcheck_fixtures/, plus coverage for the
// hotpaths.toml parser, strict vs. loop-scoped analysis, suppressions, drift
// detection (RNH410) and partial runs. The fixtures directory is excluded
// from every repo-wide tool walk, so the deliberate violations never reach
// the real gate; the tests feed them to the Driver under synthetic paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "toolcheck_util.hpp"
#include "tools/hotcheck/hotcheck.hpp"

namespace hc = reconfnet::hotcheck;

using reconfnet::toolcheck::lines_of;

namespace {

std::string read_fixture(const std::string& name) {
  return reconfnet::toolcheck::read_fixture_file(RECONFNET_HOTCHECK_FIXTURES,
                                                 name);
}

/// A spec declaring `functions` of one synthetic hot file.
hc::Spec one_hotpath(const std::string& file,
                     const std::vector<std::string>& functions, bool strict) {
  hc::Spec spec;
  hc::HotPathSpec hp;
  hp.name = "fixture";
  hp.file = file;
  hp.functions = functions;
  hp.strict = strict;
  hp.line = 1;
  spec.hotpaths.push_back(hp);
  return spec;
}

hc::Driver::Result run_fixture(const std::string& fixture,
                               const std::string& as_path, hc::Spec spec) {
  hc::Driver driver(std::move(spec), "spec.toml");
  driver.add_file(as_path, read_fixture(fixture));
  return driver.run();
}

// --- spec parser ------------------------------------------------------------

TEST(HotcheckSpec, ParsesHotpathsBudgetsOptionsAndAllow) {
  const std::string text = R"(
[options]
roots = ["src/", "bench/"]

[[hotpath]]
name = "bus"
file = "src/sim/bus.hpp"
functions = ["send", "deliver"]
strict = "true"
note = "per-message leaves"

[[hotpath]]
file = "src/churn/reconfigure.cpp"
functions = ["reconfigure"]

[[budget]]
name = "bus.steady_state"
allocs_per_round = "0"
rounds = "8"

[allow]
RNH403 = ["src/legacy/"]
)";
  hc::Spec spec;
  std::string error;
  ASSERT_TRUE(hc::parse_spec(text, spec, error)) << error;
  ASSERT_EQ(spec.roots.size(), 2u);
  ASSERT_EQ(spec.hotpaths.size(), 2u);
  EXPECT_EQ(spec.hotpaths[0].name, "bus");
  EXPECT_TRUE(spec.hotpaths[0].strict);
  // A hotpath without a name falls back to its file.
  EXPECT_EQ(spec.hotpaths[1].name, "src/churn/reconfigure.cpp");
  EXPECT_FALSE(spec.hotpaths[1].strict);
  ASSERT_EQ(spec.budgets.size(), 1u);
  EXPECT_EQ(spec.budgets[0].values.at("allocs_per_round"), "0");
  EXPECT_EQ(spec.budgets[0].values.at("rounds"), "8");
  EXPECT_EQ(spec.allow.at("RNH403").front(), "src/legacy/");
}

TEST(HotcheckSpec, RejectsMalformedInput) {
  hc::Spec spec;
  std::string error;
  EXPECT_FALSE(hc::parse_spec("[[hotpath]]\nfile = \"x.cpp\"\n", spec, error))
      << "functions is required";
  EXPECT_FALSE(hc::parse_spec(
      "[[hotpath]]\nfile = \"x\"\nfunctions = [\"f\"]\nstrict = \"yes\"\n",
      spec, error))
      << "strict must be true/false";
  EXPECT_FALSE(hc::parse_spec(
      "[[budget]]\nname = \"b\"\nallocs_per_round = \"lots\"\n", spec, error))
      << "budget values must be integers";
  EXPECT_FALSE(hc::parse_spec("[[budget]]\nname = \"b\"\n", spec, error))
      << "a budget needs at least one integer key";
  EXPECT_FALSE(hc::parse_spec(
      "[[budget]]\nname = \"b\"\nx = \"1\"\n"
      "[[budget]]\nname = \"b\"\nx = \"2\"\n",
      spec, error))
      << "duplicate budget names are ambiguous";
  EXPECT_FALSE(hc::parse_spec("[[mystery]]\nkey = \"v\"\n", spec, error))
      << "unknown sections are errors";
}

// --- rules ------------------------------------------------------------------

TEST(Hotcheck, CleanHotFunctionProducesNoFindings) {
  const auto result = run_fixture("clean_hot.cpp", "src/hot/clean.cpp",
                                  one_hotpath("src/hot/clean.cpp", {"pump"},
                                              /*strict=*/false));
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.hot_functions_checked, 1u);
}

TEST(Hotcheck, RNH401FlagsAllocationInDriverLoopsOnly) {
  const auto result = run_fixture("rnh401_alloc_in_loop.cpp",
                                  "src/hot/alloc.cpp",
                                  one_hotpath("src/hot/alloc.cpp", {"driver"},
                                              /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH401"),
            (std::vector<std::size_t>{12, 13}));  // hoisted line 16 is clean
}

TEST(Hotcheck, RNH401FlagsAnyAllocationInStrictFunctions) {
  const auto result = run_fixture("rnh401_alloc_in_loop.cpp",
                                  "src/hot/alloc.cpp",
                                  one_hotpath("src/hot/alloc.cpp", {"leaf"},
                                              /*strict=*/true));
  EXPECT_EQ(lines_of(result, "RNH401"), (std::vector<std::size_t>{21, 22}));
}

TEST(Hotcheck, RNH402FlagsByValueContainerParameters) {
  const auto result = run_fixture(
      "rnh402_by_value_param.cpp", "src/hot/params.cpp",
      one_hotpath("src/hot/params.cpp", {"by_value", "by_ref"},
                  /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH402"), (std::vector<std::size_t>{8, 9}));
}

TEST(Hotcheck, RNH403FlagsMapOperations) {
  const auto result = run_fixture("rnh403_map_in_hot_path.cpp",
                                  "src/hot/maps.cpp",
                                  one_hotpath("src/hot/maps.cpp", {"lookup"},
                                              /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH403"), (std::vector<std::size_t>{14, 16}));
}

TEST(Hotcheck, RNH404FlagsPushLoopsWithoutReserve) {
  const auto result = run_fixture(
      "rnh404_missing_reserve.cpp", "src/hot/push.cpp",
      one_hotpath("src/hot/push.cpp", {"unreserved", "reserved"},
                  /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH404"), (std::vector<std::size_t>{12}));
}

TEST(Hotcheck, RNH405FlagsStringFormatting) {
  const auto result = run_fixture("rnh405_string_format.cpp",
                                  "src/hot/fmt.cpp",
                                  one_hotpath("src/hot/fmt.cpp", {"label"},
                                              /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH405"), (std::vector<std::size_t>{7}));
}

// --- suppressions -----------------------------------------------------------

TEST(Hotcheck, SuppressionSilencesItsLineAndMalformedMarkersAreFlagged) {
  const auto result = run_fixture(
      "suppressions.cpp", "src/hot/sup.cpp",
      one_hotpath("src/hot/sup.cpp", {"tagged", "untagged"},
                  /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH405"), (std::vector<std::size_t>{14}));
  EXPECT_EQ(lines_of(result, "RNH490"), (std::vector<std::size_t>{13}));
  EXPECT_EQ(result.suppressed, 1u);
}

// --- drift (RNH410) and partial runs ----------------------------------------

TEST(Hotcheck, RNH410FlagsMissingFileOnFullRunsOnly) {
  hc::Spec spec = one_hotpath("src/hot/gone.cpp", {"f"}, false);
  spec.hotpaths[0].line = 7;

  hc::Driver full(spec, "spec.toml");
  full.add_file("src/hot/other.cpp", "int g() { return 0; }\n");
  const auto full_result = full.run();
  ASSERT_EQ(full_result.findings.size(), 1u);
  EXPECT_EQ(full_result.findings[0].rule, "RNH410");
  EXPECT_EQ(full_result.findings[0].file, "spec.toml");
  EXPECT_EQ(full_result.findings[0].line, 7u);

  hc::Driver partial(spec, "spec.toml");
  partial.set_partial(true);
  partial.add_file("src/hot/other.cpp", "int g() { return 0; }\n");
  EXPECT_TRUE(partial.run().findings.empty());
}

TEST(Hotcheck, RNH410FlagsFunctionMissingFromItsFile) {
  const auto result = run_fixture("clean_hot.cpp", "src/hot/clean.cpp",
                                  one_hotpath("src/hot/clean.cpp",
                                              {"pump", "vanished"},
                                              /*strict=*/false));
  EXPECT_EQ(lines_of(result, "RNH410"), (std::vector<std::size_t>{1}));
  EXPECT_EQ(result.hot_functions_checked, 1u);
}

// --- allow carve-outs -------------------------------------------------------

TEST(Hotcheck, AllowPrefixSwitchesARuleOffWholesale) {
  hc::Spec spec = one_hotpath("src/hot/fmt.cpp", {"label"}, false);
  spec.allow["RNH405"] = {"src/hot/"};
  const auto result = run_fixture("rnh405_string_format.cpp",
                                  "src/hot/fmt.cpp", std::move(spec));
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.suppressed, 1u);
}

}  // namespace
