// Fixture: header without #pragma once. RNL201 must fire.
inline int answer() { return 42; }
