// Fixture: build-time stamps baked into the binary. RNL004 must fire on
// each line.
const char* build_date() { return __DATE__; }
const char* build_time() { return __TIME__; }
