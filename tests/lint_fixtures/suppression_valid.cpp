// Fixture: well-formed suppressions on the same line and on the line above.
// Both rand() calls are suppressed; the run must report zero findings and
// two suppressed hits.
#include <cstdlib>

int roll_once() {
  return rand();  // reconfnet-lint: allow(RNL002) fixture exercises same-line
}

int roll_twice() {
  // reconfnet-lint: allow(RNL002) fixture exercises the line-above form
  return rand();
}
