// Fixture: iteration over unordered containers. RNL005 must fire for the
// range-for over the map, the range-for over the set member, and the
// iterator loop, but not for the vector loop.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct State {
  std::unordered_set<int> members;
};

int drain(const std::unordered_map<int, int>& weights, const State& state) {
  int total = 0;
  for (const auto& [node, weight] : weights) total += node * weight;
  for (int member : state.members) total += member;
  for (auto it = state.members.begin(); it != state.members.end(); ++it) {
    total -= *it;
  }
  std::vector<int> ordered{1, 2, 3};
  for (int value : ordered) total += value;
  return total;
}
