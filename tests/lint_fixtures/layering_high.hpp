// Fixture: a top-layer header that correctly includes downward. Registered
// by the test as src/runtime/high.hpp.
#pragma once

#include "support/low.hpp"

inline int high_value() { return low_value() + 1; }
