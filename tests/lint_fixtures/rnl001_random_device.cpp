// Fixture: seeds from the hardware entropy source. RNL001 must fire.
#include <random>

unsigned seed_from_entropy() {
  std::random_device device;
  return device();
}
