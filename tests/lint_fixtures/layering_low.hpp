// Fixture: a bottom-layer header. Registered by the test as
// src/support/low.hpp.
#pragma once

inline int low_value() { return 1; }
