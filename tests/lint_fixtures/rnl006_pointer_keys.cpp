// Fixture: pointer values used as keys or converted to integers. RNL006 must
// fire on the hash specialisation and on the reinterpret_cast.
#include <cstdint>
#include <functional>

struct Node {};

std::size_t key_of(Node* node) {
  std::hash<Node*> hasher;
  const auto raw = reinterpret_cast<std::uintptr_t>(node);
  return hasher(node) ^ static_cast<std::size_t>(raw);
}
