// Fixture: suppressions for other linters still need a rule and a reason.
// The first two NOLINTs are bare or reason-less (RNL203 fires); the third is
// well-formed and the NOLINTEND closer inherits its justification.
int first = 1;   // NOLINT
int second = 2;  // NOLINT(misc-foo)
// NOLINTBEGIN(misc-foo): fixture exercises the well-formed path
int third = 3;
// NOLINTEND(misc-foo)
