// Fixture: using-directive in a header. RNL202 must fire (RNL201 must not).
#pragma once

#include <string>

using namespace std;

inline string shout() { return "hi"; }
