// Fixture: wall-clock inputs. RNL003 must fire on the include, the
// std::chrono use, and the time() call.
#include <chrono>
#include <ctime>

long now_pair() {
  const auto tick = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<long>(tick.count()) + time(nullptr);
}
