// Fixture: hidden global-state RNG. RNL002 must fire for srand() and the
// trailing rand() call — and, the checker being token-level, also for the
// declaration of a function spelled `rand`. The call through an object
// (gen.rand()) is member access and must stay clean.
#include <cstdlib>

struct Gen {
  int rand() { return 4; }
};

int roll() {
  srand(7);
  Gen gen;
  int ok = gen.rand();  // member access: not the global rand()
  return rand() + ok;
}
