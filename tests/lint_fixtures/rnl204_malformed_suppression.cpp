// Fixture: reconfnet-lint suppressions that do not parse. RNL204 must fire
// for the empty id list, the bad id, and the missing reason.
int a = 1;  // reconfnet-lint: allow() nothing inside
int b = 2;  // reconfnet-lint: allow(RNL5) id is not RNLddd
int c = 3;  // reconfnet-lint: allow(RNL002)
