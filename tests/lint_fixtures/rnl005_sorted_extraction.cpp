// Fixture: the sanctioned idiom — extract into a vector, sort, iterate.
// Must produce zero findings.
#include <algorithm>
#include <unordered_set>
#include <vector>

int drain_sorted(const std::unordered_set<int>& members) {
  std::vector<int> ordered(members.begin(), members.end());
  std::sort(ordered.begin(), ordered.end());
  int total = 0;
  for (int member : ordered) total += member;
  return total;
}
