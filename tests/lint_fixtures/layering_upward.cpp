// Fixture: a bottom-layer file reaching up the DAG. Registered by the test
// as src/support/upward.cpp; the include of runtime/high.hpp is RNL101.
#include "runtime/high.hpp"

int upward() { return high_value(); }
