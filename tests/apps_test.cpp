#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "adversary/dos.hpp"
#include "apps/anonym/anonymizer.hpp"
#include "apps/dht/kary_overlay.hpp"
#include "apps/dht/robust_store.hpp"
#include "apps/pubsub/pubsub.hpp"
#include "graph/connectivity.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet::apps {
namespace {

// --- Anonymizer (Section 7.1) ----------------------------------------------

dos::GroupTable server_table(std::size_t n, int dimension,
                             std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<sim::NodeId> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = i;
  return dos::GroupTable::random(dimension, nodes, rng);
}

std::vector<AnonymousRequest> make_requests(std::size_t count) {
  std::vector<AnonymousRequest> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests[i] = {1000 + i, 2000 + i};
  }
  return requests;
}

TEST(Anonymizer, DeliversEverythingWithoutBlocking) {
  const auto servers = server_table(256, 4, 1);
  support::Rng rng(2);
  const auto requests = make_requests(100);
  const auto report = route_anonymous_batch(servers, requests, {}, rng);
  EXPECT_EQ(report.requests, 100u);
  EXPECT_EQ(report.delivered, 100u);
  EXPECT_EQ(report.replied, 100u);
  EXPECT_EQ(report.rounds, kAnonymizerPipelineRounds);
  EXPECT_EQ(report.exit_servers.size(), 100u);
}

TEST(Anonymizer, ExitServersAreUniform) {
  // Corollary 2's anonymity property: exit servers are uniform over V. With
  // uniformly random groups, aggregating exits over many fresh tables must
  // pass a uniformity test.
  std::vector<std::uint64_t> counts(128, 0);
  support::Rng rng(3);
  for (int table_index = 0; table_index < 40; ++table_index) {
    const auto servers = server_table(
        128, 3, 100 + static_cast<std::uint64_t>(table_index));
    const auto requests = make_requests(200);
    const auto report = route_anonymous_batch(servers, requests, {}, rng);
    for (sim::NodeId exit : report.exit_servers) ++counts[exit];
  }
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
}

TEST(Anonymizer, SurvivesHeavyRandomBlocking) {
  const auto servers = server_table(512, 5, 4);
  support::Rng rng(5);
  // Blocked sets for all 5 pipeline rounds at 40% each.
  std::vector<sim::BlockedSet> blocked(kAnonymizerPipelineRounds);
  for (auto& set : blocked) {
    for (sim::NodeId node = 0; node < 512; ++node) {
      if (rng.bernoulli(0.4)) set.insert(node);
    }
  }
  const auto requests = make_requests(200);
  const auto report = route_anonymous_batch(servers, requests, blocked, rng);
  // Groups of ~16 servers: some member survives the 40% blocking of rounds
  // 0-2 w.o.p., so delivery is near-perfect. A reply additionally needs one
  // holder to stay non-blocked through all five independent rounds
  // (0.6^5 ~ 8% per holder, ~70% per group of 16), so the reply rate is
  // lower but still a solid majority.
  EXPECT_GT(report.delivered, 190u);
  EXPECT_GT(report.replied, 110u);
}

TEST(Anonymizer, FullyBlockedEntryRoundDeliversNothing) {
  const auto servers = server_table(64, 3, 6);
  support::Rng rng(7);
  sim::BlockedSet everything;
  for (sim::NodeId node = 0; node < 64; ++node) everything.insert(node);
  std::vector<sim::BlockedSet> blocked{everything};
  const auto requests = make_requests(10);
  const auto report = route_anonymous_batch(servers, requests, blocked, rng);
  EXPECT_EQ(report.delivered, 0u);
}

TEST(Anonymizer, BlockedDestinationGroupDropsRequest) {
  // Block every server except one (the forced entry): its destination group
  // is fully blocked in round 1, so nothing is delivered.
  const auto servers = server_table(64, 3, 8);
  support::Rng rng(9);
  sim::BlockedSet all_but_zero;
  for (sim::NodeId node = 1; node < 64; ++node) all_but_zero.insert(node);
  std::vector<sim::BlockedSet> blocked{all_but_zero, all_but_zero,
                                       all_but_zero};
  const auto requests = make_requests(5);
  const auto report = route_anonymous_batch(servers, requests, blocked, rng);
  EXPECT_EQ(report.delivered, 0u);
}

// --- k-ary grouped overlay (Section 7.2) ------------------------------------

KaryGroupedOverlay::Config kary_config(std::size_t n, int k,
                                       std::uint64_t seed) {
  KaryGroupedOverlay::Config config;
  config.size = n;
  config.arity = k;
  config.group_c = 1.0;
  config.seed = seed;
  return config;
}

TEST(KaryGroupedOverlay, ChoosesDimensionLikeThePaper) {
  // k^d <= n / (c log2 n): n = 1024, k = 4 -> budget 102.4 -> d = 3.
  EXPECT_EQ(KaryGroupedOverlay::choose_dimension(1024, 4, 1.0), 3);
  EXPECT_EQ(KaryGroupedOverlay::choose_dimension(1024, 2, 1.0), 6);
  EXPECT_GE(KaryGroupedOverlay::choose_dimension(64, 8, 1.0), 1);
}

TEST(KaryGroupedOverlay, RejectsNonPowerOfTwoArity) {
  EXPECT_THROW(KaryGroupedOverlay(kary_config(256, 3, 1)),
               std::invalid_argument);
}

TEST(KaryGroupedOverlay, StartsConnectedWithBalancedGroups) {
  KaryGroupedOverlay overlay(kary_config(1024, 4, 2));
  EXPECT_TRUE(graph::is_connected(overlay.all_nodes(),
                                  overlay.overlay_edges()));
  EXPECT_GE(overlay.min_group_size(), 1u);
  std::size_t total = 0;
  for (std::uint64_t x = 0; x < overlay.cube().size(); ++x) {
    total += overlay.group(x).size();
  }
  EXPECT_EQ(total, 1024u);
}

TEST(KaryGroupedOverlay, QuietEpochReorganizes) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 3));
  std::unordered_map<sim::NodeId, std::uint64_t> before;
  for (sim::NodeId node : overlay.all_nodes()) {
    before[node] = overlay.supernode_of(node);
  }
  const auto report = overlay.run_epoch({});
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.reorganized);
  std::size_t moved = 0;
  for (const auto& [node, x] : before) {
    if (overlay.supernode_of(node) != x) ++moved;
  }
  EXPECT_GT(moved, 256u);
}

TEST(KaryGroupedOverlay, SurvivesLateIsolationAttack) {
  auto config = kary_config(1024, 4, 4);
  config.group_c = 2.0;
  KaryGroupedOverlay overlay(config);
  support::Rng rng(5);
  adversary::IsolationDos adversary(rng);
  KaryGroupedOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.blocked_fraction = 0.3;
  attack.lateness = 60;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto report = overlay.run_epoch(attack);
    EXPECT_TRUE(report.success) << report.failure_reason;
    EXPECT_EQ(report.disconnected_rounds, 0u);
  }
}

// --- RobustStore -------------------------------------------------------------

TEST(RobustStore, WriteThenReadRoundTrip) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 6));
  RobustStore store(&overlay);
  support::Rng rng(7);
  std::vector<RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 50; ++key) {
    writes.push_back({true, key, key * 10});
  }
  const auto write_report = store.execute(writes, {}, rng);
  EXPECT_EQ(write_report.write_ok, 50u);
  EXPECT_EQ(store.record_count(), 50u);

  std::vector<RobustStore::Request> reads;
  for (std::uint64_t key = 0; key < 50; ++key) reads.push_back({false, key, 0});
  const auto read_report = store.execute(reads, {}, rng);
  EXPECT_EQ(read_report.read_ok, 50u);
  EXPECT_EQ(read_report.routing_failures, 0u);
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(store.peek(key), key * 10);
  }
}

TEST(RobustStore, MissingKeysReportNotFound) {
  KaryGroupedOverlay overlay(kary_config(256, 4, 8));
  RobustStore store(&overlay);
  support::Rng rng(9);
  std::vector<RobustStore::Request> reads{{false, 999, 0}};
  const auto report = store.execute(reads, {}, rng);
  EXPECT_EQ(report.not_found, 1u);
  EXPECT_EQ(report.read_ok, 0u);
}

TEST(RobustStore, RoutingTakesAtMostDimensionPlusOneRounds) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 10));
  RobustStore store(&overlay);
  support::Rng rng(11);
  std::vector<RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 100; ++key) {
    writes.push_back({true, key, key});
  }
  const auto report = store.execute(writes, {}, rng);
  EXPECT_LE(report.rounds, overlay.cube().dimension() + 1);
}

TEST(RobustStore, SurvivesRandomBlocking) {
  auto config = kary_config(1024, 4, 12);
  config.group_c = 2.0;  // larger groups for blocking tolerance
  KaryGroupedOverlay overlay(config);
  RobustStore store(&overlay);
  support::Rng rng(13);
  // Block 30% of nodes in each pipeline round.
  std::vector<sim::BlockedSet> blocked(
      static_cast<std::size_t>(overlay.cube().dimension()) + 2);
  for (auto& set : blocked) {
    for (sim::NodeId node = 0; node < 1024; ++node) {
      if (rng.bernoulli(0.3)) set.insert(node);
    }
  }
  std::vector<RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 200; ++key) {
    writes.push_back({true, key, key});
  }
  const auto report = store.execute(writes, blocked, rng);
  EXPECT_GT(report.write_ok, 190u);
}

TEST(RobustStore, TotalBlockingFailsRouting) {
  KaryGroupedOverlay overlay(kary_config(256, 4, 14));
  RobustStore store(&overlay);
  support::Rng rng(15);
  sim::BlockedSet everything;
  for (sim::NodeId node = 0; node < 256; ++node) everything.insert(node);
  std::vector<sim::BlockedSet> blocked(8, everything);
  std::vector<RobustStore::Request> writes{{true, 1, 1}};
  const auto report = store.execute(writes, blocked, rng);
  EXPECT_EQ(report.write_ok, 0u);
  EXPECT_EQ(report.routing_failures, 1u);
}

TEST(RobustStore, DataSurvivesReconfiguration) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 16));
  RobustStore store(&overlay);
  support::Rng rng(17);
  std::vector<RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 64; ++key) {
    writes.push_back({true, key, key + 7});
  }
  store.execute(writes, {}, rng);
  const auto epoch = store.reconfigure({});
  ASSERT_TRUE(epoch.success) << epoch.failure_reason;
  // Every record still readable through the *new* groups.
  std::vector<RobustStore::Request> reads;
  for (std::uint64_t key = 0; key < 64; ++key) reads.push_back({false, key, 0});
  const auto report = store.execute(reads, {}, rng);
  EXPECT_EQ(report.read_ok, 64u);
}

TEST(RobustStore, CongestionIsBounded) {
  KaryGroupedOverlay overlay(kary_config(1024, 4, 18));
  RobustStore store(&overlay);
  support::Rng rng(19);
  // One request per server (the paper's load model).
  std::vector<RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    writes.push_back({true, key, key});
  }
  const auto report = store.execute(writes, {}, rng);
  EXPECT_EQ(report.write_ok, 1024u);
  // With 64 groups and d+1-hop routes, the busiest group should see far less
  // than the full batch.
  EXPECT_LT(report.max_group_congestion, 300u);
}

// --- PubSub ------------------------------------------------------------------

TEST(PubSub, PublishAssignsConsecutiveIndices) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 20));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(21);
  const std::vector<PubSub::Payload> first{11, 22, 33};
  const auto report = pubsub.publish(5, first, {}, rng);
  EXPECT_EQ(report.published, 3u);
  const std::vector<PubSub::Payload> second{44};
  pubsub.publish(5, second, {}, rng);

  const auto fetched = pubsub.fetch_since(5, 0, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.latest, 4u);
  EXPECT_EQ(fetched.payloads, (std::vector<PubSub::Payload>{11, 22, 33, 44}));
}

TEST(PubSub, FetchSinceSkipsOldEntries) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 22));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(23);
  const std::vector<PubSub::Payload> payloads{1, 2, 3, 4, 5};
  pubsub.publish(9, payloads, {}, rng);
  const auto fetched = pubsub.fetch_since(9, 3, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.payloads, (std::vector<PubSub::Payload>{4, 5}));
}

TEST(PubSub, EmptyTopicIsComplete) {
  KaryGroupedOverlay overlay(kary_config(256, 4, 24));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(25);
  const auto fetched = pubsub.fetch_since(77, 0, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_TRUE(fetched.payloads.empty());
  EXPECT_EQ(fetched.latest, 0u);
}

TEST(PubSub, TopicsAreIndependent) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 26));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(27);
  pubsub.publish(1, std::vector<PubSub::Payload>{10}, {}, rng);
  pubsub.publish(2, std::vector<PubSub::Payload>{20, 21}, {}, rng);
  EXPECT_EQ(pubsub.fetch_since(1, 0, {}, rng).payloads.size(), 1u);
  EXPECT_EQ(pubsub.fetch_since(2, 0, {}, rng).payloads.size(), 2u);
}

TEST(PubSub, CounterNeverAdvancesOverHoles) {
  KaryGroupedOverlay overlay(kary_config(256, 4, 28));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(29);
  // Publish under total blocking: nothing stored, counter untouched.
  sim::BlockedSet everything;
  for (sim::NodeId node = 0; node < 256; ++node) everything.insert(node);
  std::vector<sim::BlockedSet> blocked(8, everything);
  const auto report =
      pubsub.publish(3, std::vector<PubSub::Payload>{7}, blocked, rng);
  EXPECT_EQ(report.published, 0u);
  const auto fetched = pubsub.fetch_since(3, 0, {}, rng);
  EXPECT_EQ(fetched.latest, 0u);
}

TEST(PubSub, SurvivesReconfigurationBetweenPublishAndFetch) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 30));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(31);
  pubsub.publish(4, std::vector<PubSub::Payload>{100, 200}, {}, rng);
  ASSERT_TRUE(store.reconfigure({}).success);
  const auto fetched = pubsub.fetch_since(4, 0, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.payloads, (std::vector<PubSub::Payload>{100, 200}));
}

// --- Aggregated publish (Section 7.3's Ranade-style combining) --------------

TEST(PubSubAggregate, CombinesAndIndexesABatch) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 40));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(41);
  // 64 servers publish to the same hot topic simultaneously.
  std::vector<PubSub::BatchPublication> batch;
  for (std::uint64_t i = 0; i < 64; ++i) {
    batch.push_back({i % overlay.cube().size(), /*topic=*/7,
                     /*payload=*/1000 + i});
  }
  const auto report = pubsub.aggregate_publish(batch, {}, rng);
  EXPECT_EQ(report.published, 64u);
  EXPECT_LE(report.rounds, overlay.cube().dimension() + 2);
  // Combining caps the busiest group at one message per topic per hop...
  EXPECT_LT(report.combined_congestion, report.naive_congestion);
  // ...and every publication is readable with consecutive indices.
  const auto fetched = pubsub.fetch_since(7, 0, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.payloads.size(), 64u);
}

TEST(PubSubAggregate, MultipleTopicsStayIndependent) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 42));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(43);
  std::vector<PubSub::BatchPublication> batch;
  for (std::uint64_t i = 0; i < 30; ++i) {
    batch.push_back({i % overlay.cube().size(), i % 3, i});
  }
  const auto report = pubsub.aggregate_publish(batch, {}, rng);
  EXPECT_EQ(report.published, 30u);
  for (std::uint64_t topic = 0; topic < 3; ++topic) {
    const auto fetched = pubsub.fetch_since(topic, 0, {}, rng);
    EXPECT_EQ(fetched.payloads.size(), 10u) << "topic " << topic;
  }
}

TEST(PubSubAggregate, HotTopicCongestionIsBoundedByTreeDepth) {
  // The headline of the aggregation: with EVERY group publishing to one
  // topic, the naive congestion at the home grows with the batch size while
  // the combined congestion grows only with the in-degree of the routing
  // tree (~ #groups at distance 1).
  KaryGroupedOverlay overlay(kary_config(1024, 4, 44));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(45);
  std::vector<PubSub::BatchPublication> batch;
  for (std::uint64_t g = 0; g < overlay.cube().size(); ++g) {
    for (int per_server = 0; per_server < 4; ++per_server) {
      batch.push_back({g, 9, g * 10 + static_cast<std::uint64_t>(per_server)});
    }
  }
  const auto report = pubsub.aggregate_publish(batch, {}, rng);
  EXPECT_EQ(report.published, batch.size());
  EXPECT_GE(report.naive_congestion, batch.size());
  EXPECT_LT(report.combined_congestion, batch.size() / 4);
}

TEST(PubSubAggregate, InteroperatesWithSequentialPublish) {
  KaryGroupedOverlay overlay(kary_config(512, 4, 46));
  RobustStore store(&overlay);
  PubSub pubsub(&store);
  support::Rng rng(47);
  pubsub.publish(5, std::vector<PubSub::Payload>{1, 2}, {}, rng);
  std::vector<PubSub::BatchPublication> batch{{0, 5, 3}, {1, 5, 4}};
  const auto report = pubsub.aggregate_publish(batch, {}, rng);
  EXPECT_EQ(report.published, 2u);
  const auto fetched = pubsub.fetch_since(5, 0, {}, rng);
  EXPECT_TRUE(fetched.complete);
  EXPECT_EQ(fetched.latest, 4u);
  EXPECT_EQ(fetched.payloads.size(), 4u);
}

}  // namespace
}  // namespace reconfnet::apps
