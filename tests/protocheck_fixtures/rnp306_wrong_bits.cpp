// RNP306: the second send's bits expression silently diverges from the
// spec's formula (the classic accounting-drift bug this rule exists for).
namespace reconfnet::fx {

struct MeteredMsg {
  int value = 0;
};

void run() {
  sim::Bus<MeteredMsg> bus(&meter);
  bus.send(1, 2, MeteredMsg{1}, kMeteredBits);
  bus.send(2, 3, MeteredMsg{2}, kMeteredBits + 1);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
