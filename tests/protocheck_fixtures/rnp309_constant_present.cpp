// RNP309 fixture: holds one pinned constant. Tests point a matching spec at
// it (clean) and a drifted spec at it (finding).
namespace reconfnet::fx {

const unsigned long long kPinnedBits = 64 + 16;

}  // namespace reconfnet::fx
