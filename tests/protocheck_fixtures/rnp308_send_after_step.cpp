// RNP308: phase-order violations. `late` sends after its final step (the
// message can never be delivered); `never` is never stepped at all. The
// step-alias variant must stay clean: its last event is a step_late() call.
namespace reconfnet::fx {

struct LateMsg {
  int value = 0;
};

void late_send() {
  sim::Bus<LateMsg> late(&meter);
  late.send(1, 2, LateMsg{1}, kLateBits);
  late.step();
  for (const auto& envelope : late.inbox(2)) {
    consume(envelope);
  }
  late.send(2, 3, LateMsg{2}, kLateBits);
}

void never_stepped() {
  sim::Bus<LateMsg> never(&meter);
  never.send(1, 2, LateMsg{3}, kLateBits);
}

void alias_is_clean() {
  sim::Bus<LateMsg> late(&meter);
  const auto step_late = [&]() { late.step(none, none); };
  late.send(1, 2, LateMsg{4}, kLateBits);
  step_late();
}

}  // namespace reconfnet::fx
