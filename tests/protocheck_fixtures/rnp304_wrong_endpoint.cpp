// RNP304/RNP305: this file sends and consumes RestrictedMsg, but the spec
// lists a different file as the only legal sender and receiver.
namespace reconfnet::fx {

struct RestrictedMsg {
  int value = 0;
};

void run() {
  sim::Bus<RestrictedMsg> bus(&meter);
  bus.send(1, 2, RestrictedMsg{7}, kRestrictedBits);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
