// A well-formed suppression with a reason: the RNP307 finding is counted as
// suppressed, not reported. Both placements (same line, line above) work.
namespace reconfnet::fx {

struct SupMsg {
  // reconfnet-protocheck: allow(RNP307) fixture: deliberate float, the test
  // pins that a reasoned suppression silences the rule
  double value = 0;
  float ratio = 0;  // reconfnet-protocheck: allow(RNP307) same-line form
};

void run() {
  sim::Bus<SupMsg> bus(&meter);
  bus.send(1, 2, SupMsg{}, kSupBits);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
