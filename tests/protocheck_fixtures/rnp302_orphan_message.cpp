// RNP302/RNP303: the spec declares OrphanMsg as this file's message, but the
// struct is never sent and never consumed — a dead wire format.
namespace reconfnet::fx {

struct OrphanMsg {
  int value = 0;
};

}  // namespace reconfnet::fx
