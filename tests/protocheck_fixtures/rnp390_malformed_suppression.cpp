// RNP390: a suppression without a reason is malformed, and the finding it
// tried to hide still fires.
namespace reconfnet::fx {

struct MalMsg {
  double value = 0;  // reconfnet-protocheck: allow(RNP307)
};

void run() {
  sim::Bus<MalMsg> bus(&meter);
  bus.send(1, 2, MalMsg{}, kMalBits);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
