// RNP307: one wire-unsafe member per flavour — raw pointer, smart pointer,
// floating point, unordered container, pointer-hiding alias, and a clean-
// looking member whose struct type transitively holds a double.
namespace reconfnet::fx {

struct Nested {
  double weight = 0;
};

using HandlePtr = std::shared_ptr<int>;

struct BadMsg {
  int* raw = nullptr;
  std::shared_ptr<int> shared;
  double value = 0;
  std::unordered_map<int, int> table;
  HandlePtr handle;
  Nested nested;
  int fine = 0;
};

void run() {
  sim::Bus<BadMsg> bus(&meter);
  bus.send(1, 2, BadMsg{}, kBadBits);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
