// RNP301: a bus whose message type has no [[message]] entry in the spec.
namespace reconfnet::fx {

struct StrayMsg {
  int value = 0;
};

void run() {
  sim::Bus<StrayMsg> bus(&meter);
  bus.send(1, 2, StrayMsg{7}, kStrayBits);
  bus.step();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
