// Clean fixture: the full receive -> compute -> send -> step round shape,
// two functions re-declaring the same bus variable name (the extractor must
// close the first binding), and a step-alias lambda wrapping bus.step (the
// alias's call sites count as step events; its body is excluded from the
// linear scan). Expected: zero findings.
namespace reconfnet::fx {

struct PingMsg {
  int cycle = 0;
  unsigned long long id = 0;
};

void first_phase() {
  sim::Bus<PingMsg> bus(&meter);
  for (int v = 0; v < 4; ++v) {
    bus.send(v, v + 1, PingMsg{0, 0}, kPingBits);
  }
  bus.step();
  for (int v = 0; v < 4; ++v) {
    for (const auto& envelope : bus.inbox(v)) {
      consume(envelope);
    }
  }
}

void second_phase() {
  sim::Bus<PingMsg> bus(&meter);
  const auto step_bus = [&]() { bus.step(none, none); };
  bus.send(1, 2, PingMsg{1, 1}, kPingBits);
  step_bus();
  for (const auto& envelope : bus.inbox(2)) {
    consume(envelope);
  }
}

}  // namespace reconfnet::fx
