#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "churn/active_search.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet::churn {
namespace {

std::vector<std::size_t> ring_succ(std::size_t n) {
  std::vector<std::size_t> succ(n);
  for (std::size_t v = 0; v < n; ++v) succ[v] = (v + 1) % n;
  return succ;
}

TEST(LargestEmptySegment, HandBuiltCases) {
  // Ring 0->1->...->7->0; active = {0, 4}: two empty segments of size 3.
  std::vector<bool> active(8, false);
  active[0] = active[4] = true;
  EXPECT_EQ(largest_empty_segment(ring_succ(8), active), 3u);

  active.assign(8, true);
  EXPECT_EQ(largest_empty_segment(ring_succ(8), active), 0u);

  active.assign(8, false);
  EXPECT_EQ(largest_empty_segment(ring_succ(8), active), 8u);

  active.assign(8, false);
  active[2] = true;
  EXPECT_EQ(largest_empty_segment(ring_succ(8), active), 7u);
}

/// Brute-force closest active successor following succ.
std::size_t brute_next_active(const std::vector<std::size_t>& succ,
                              const std::vector<bool>& active,
                              std::size_t v) {
  std::size_t w = succ[v];
  for (std::size_t steps = 0; steps < succ.size(); ++steps) {
    if (active[w]) return w;
    w = succ[w];
  }
  return kNoIndex;
}

class ActiveSearchParam
    : public ::testing::TestWithParam<std::pair<std::size_t, double>> {};

TEST_P(ActiveSearchParam, MatchesBruteForce) {
  const auto [n, active_fraction] = GetParam();
  support::Rng rng(n * 31 + 7);
  // Random cycle, random active set.
  const auto order = rng.permutation(n);
  std::vector<std::size_t> succ(n);
  for (std::size_t i = 0; i < n; ++i) succ[order[i]] = order[(i + 1) % n];
  std::vector<bool> active(n, false);
  std::size_t active_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (rng.bernoulli(active_fraction)) {
      active[v] = true;
      ++active_count;
    }
  }
  if (active_count == 0) {
    active[order[0]] = true;  // guarantee at least one
  }

  const auto result = find_active_neighbors(succ, active, 32);
  ASSERT_TRUE(result.success);
  std::vector<std::size_t> pred(n);
  for (std::size_t v = 0; v < n; ++v) pred[succ[v]] = v;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(result.next_active[v], brute_next_active(succ, active, v));
    EXPECT_EQ(result.prev_active[v], brute_next_active(pred, active, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ActiveSearchParam,
    ::testing::Values(std::pair<std::size_t, double>{8, 0.5},
                      std::pair<std::size_t, double>{33, 0.3},
                      std::pair<std::size_t, double>{64, 0.1},
                      std::pair<std::size_t, double>{100, 0.05},
                      std::pair<std::size_t, double>{128, 0.9},
                      std::pair<std::size_t, double>{200, 0.02}));

TEST(ActiveSearch, SingleActiveNodePointsEveryoneAtIt) {
  const std::size_t n = 16;
  std::vector<bool> active(n, false);
  active[5] = true;
  const auto result = find_active_neighbors(ring_succ(n), active, 16);
  ASSERT_TRUE(result.success);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(result.next_active[v], 5u);
    EXPECT_EQ(result.prev_active[v], 5u);
  }
}

TEST(ActiveSearch, AllActiveFinishesInOneStep) {
  const std::size_t n = 32;
  std::vector<bool> active(n, true);
  const auto result = find_active_neighbors(ring_succ(n), active, 16);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 2);  // one query/reply exchange
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(result.next_active[v], (v + 1) % n);
    EXPECT_EQ(result.prev_active[v], (v + n - 1) % n);
  }
}

TEST(ActiveSearch, NoActiveNodeFails) {
  std::vector<bool> active(16, false);
  const auto result = find_active_neighbors(ring_succ(16), active, 16);
  EXPECT_FALSE(result.success);
}

TEST(ActiveSearch, InsufficientBudgetFails) {
  // Gap of 15 needs ~4 doubling steps; give it 1.
  std::vector<bool> active(16, false);
  active[0] = true;
  const auto result = find_active_neighbors(ring_succ(16), active, 1);
  EXPECT_FALSE(result.success);
}

TEST(ActiveSearch, RoundsAreLogarithmicInGap) {
  // Doubling: gap g needs about log2(g) steps of 2 rounds each.
  const std::size_t n = 1024;
  std::vector<bool> active(n, false);
  active[0] = true;
  const auto result = find_active_neighbors(ring_succ(n), active, 32);
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.rounds, 2 * 12);
}

// --- reconfigure ------------------------------------------------------------

ReconfigInput basic_input(const graph::HGraph& g,
                          const std::vector<sim::NodeId>& members) {
  ReconfigInput input;
  input.topology = &g;
  input.members = members;
  input.leaving.assign(members.size(), false);
  input.joiners.assign(members.size(), {});
  input.sampling.c = 2.0;
  input.estimate = sampling::SizeEstimate::from_true_size(members.size());
  return input;
}

std::vector<sim::NodeId> iota_ids(std::size_t n) {
  std::vector<sim::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), sim::NodeId{100});
  return ids;
}

TEST(Reconfigure, NoChurnKeepsMemberSet) {
  support::Rng rng(1);
  const auto g = graph::HGraph::random(64, 8, rng);
  const auto members = iota_ids(64);
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(basic_input(g, members), epoch_rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  ASSERT_TRUE(result.new_topology.has_value());
  EXPECT_EQ(result.new_topology->size(), 64u);
  EXPECT_EQ(result.new_topology->degree(), 8);
  std::unordered_set<sim::NodeId> before(members.begin(), members.end());
  std::unordered_set<sim::NodeId> after(result.new_members.begin(),
                                        result.new_members.end());
  EXPECT_EQ(before, after);
  EXPECT_GT(result.rounds, 0);
}

TEST(Reconfigure, JoinersAreWovenIn) {
  support::Rng rng(2);
  const auto g = graph::HGraph::random(32, 8, rng);
  auto input = basic_input(g, iota_ids(32));
  input.joiners[3] = {900, 901};
  input.joiners[17] = {902};
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(input, epoch_rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  std::unordered_set<sim::NodeId> after(result.new_members.begin(),
                                        result.new_members.end());
  EXPECT_TRUE(after.contains(900));
  EXPECT_TRUE(after.contains(901));
  EXPECT_TRUE(after.contains(902));
  EXPECT_EQ(after.size(), 35u);
  EXPECT_EQ(result.new_topology->size(), 35u);
}

TEST(Reconfigure, LeaversAreExcluded) {
  support::Rng rng(3);
  const auto g = graph::HGraph::random(32, 8, rng);
  auto input = basic_input(g, iota_ids(32));
  input.leaving[0] = input.leaving[5] = input.leaving[31] = true;
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(input, epoch_rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  std::unordered_set<sim::NodeId> after(result.new_members.begin(),
                                        result.new_members.end());
  EXPECT_FALSE(after.contains(100));
  EXPECT_FALSE(after.contains(105));
  EXPECT_FALSE(after.contains(131));
  EXPECT_EQ(after.size(), 29u);
}

TEST(Reconfigure, LeaverStillPlacesItsJoiners) {
  support::Rng rng(4);
  const auto g = graph::HGraph::random(32, 8, rng);
  auto input = basic_input(g, iota_ids(32));
  input.leaving[7] = true;
  input.joiners[7] = {950};
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(input, epoch_rng);
  ASSERT_TRUE(result.success) << result.failure_reason;
  std::unordered_set<sim::NodeId> after(result.new_members.begin(),
                                        result.new_members.end());
  EXPECT_FALSE(after.contains(107));
  EXPECT_TRUE(after.contains(950));
}

TEST(Reconfigure, AllLeavingFails) {
  support::Rng rng(5);
  const auto g = graph::HGraph::random(16, 8, rng);
  auto input = basic_input(g, iota_ids(16));
  input.leaving.assign(16, true);
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(input, epoch_rng);
  EXPECT_FALSE(result.success);
}

TEST(Reconfigure, ZeroSearchBudgetFails) {
  support::Rng rng(6);
  const auto g = graph::HGraph::random(32, 8, rng);
  auto input = basic_input(g, iota_ids(32));
  input.active_search_steps = 0;
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(input, epoch_rng);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(Reconfigure, DeterministicGivenSeed) {
  support::Rng rng(7);
  const auto g = graph::HGraph::random(32, 8, rng);
  const auto input = basic_input(g, iota_ids(32));
  support::Rng a(99), b(99);
  const auto ra = reconfigure(input, a);
  const auto rb = reconfigure(input, b);
  ASSERT_TRUE(ra.success);
  ASSERT_TRUE(rb.success);
  EXPECT_EQ(ra.new_members, rb.new_members);
  for (int c = 0; c < ra.new_topology->num_cycles(); ++c) {
    for (std::size_t v = 0; v < ra.new_topology->size(); ++v) {
      EXPECT_EQ(ra.new_topology->succ(c, v), rb.new_topology->succ(c, v));
    }
  }
}

TEST(Reconfigure, CycleStatsArePopulated) {
  support::Rng rng(8);
  const auto g = graph::HGraph::random(128, 8, rng);
  auto epoch_rng = rng.split(1);
  const auto result = reconfigure(basic_input(g, iota_ids(128)), epoch_rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.cycle_stats.size(), 4u);
  for (const auto& stats : result.cycle_stats) {
    EXPECT_GT(stats.active_nodes, 0u);
    EXPECT_GT(stats.max_times_chosen, 0u);
    // Lemma 11/12: polylogarithmic; generous check against log^2 n = 49.
    EXPECT_LE(stats.max_times_chosen, 49u);
    EXPECT_LE(stats.max_empty_segment, 49u);
  }
}

TEST(Reconfigure, Lemma10NewCycleIsUniform) {
  // With 4 nodes there are (4-1)! / ... = 6 distinct directed Hamilton
  // cycles (successor permutations that are 4-cycles). Algorithm 3 must hit
  // each with equal probability (Lemma 10 / Theorem 4).
  support::Rng rng(9);
  const auto g = graph::HGraph::random(4, 6, rng);
  const auto members = iota_ids(4);
  std::map<std::vector<sim::NodeId>, std::uint64_t> histogram;
  const int kRuns = 600;
  int retries = 0;
  for (int run = 0; run < kRuns; ++run) {
    auto input = basic_input(g, members);
    // At n = 4 the w.h.p. guarantee of Lemma 7 is weak and sampling runs dry
    // in ~1.5% of epochs; the overlay retries failed epochs, and so do we.
    ReconfigResult result;
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 20);
      auto epoch_rng =
          rng.split(static_cast<std::uint64_t>(run) * 100 + 1000 +
                    static_cast<std::uint64_t>(attempt));
      result = reconfigure(input, epoch_rng);
      if (result.success) break;
      ++retries;
    }
    EXPECT_LT(retries, kRuns / 10);
    // Canonical signature of cycle 0: successor id of each member id,
    // starting from id 100.
    std::unordered_map<sim::NodeId, std::size_t> index;
    for (std::size_t i = 0; i < result.new_members.size(); ++i) {
      index[result.new_members[i]] = i;
    }
    std::vector<sim::NodeId> signature;
    sim::NodeId current = 100;
    for (int step = 0; step < 4; ++step) {
      const auto next_index = result.new_topology->succ(
          0, index.at(current));
      current = result.new_members[next_index];
      signature.push_back(current);
    }
    ++histogram[signature];
  }
  ASSERT_EQ(histogram.size(), 6u) << "not all 6 cycles were generated";
  std::vector<std::uint64_t> counts;
  for (const auto& [signature, count] : histogram) counts.push_back(count);
  EXPECT_GT(support::chi_square_uniform(counts).p_value, 1e-4);
}

TEST(Reconfigure, PlainWalkPhase1ProducesValidTopologyButMoreRounds) {
  // Ablation A4's correctness side: the plain-walk Phase 1 yields the same
  // valid uniformly random H-graph, just in Theta(log n) rounds.
  support::Rng rng(21);
  const auto g = graph::HGraph::random(128, 8, rng);
  auto input = basic_input(g, iota_ids(128));

  auto rapid_rng = rng.split(1);
  const auto rapid = reconfigure(input, rapid_rng);
  ASSERT_TRUE(rapid.success) << rapid.failure_reason;

  input.use_plain_walk_sampling = true;
  auto plain_rng = rng.split(2);
  const auto plain = reconfigure(input, plain_rng);
  ASSERT_TRUE(plain.success) << plain.failure_reason;

  std::unordered_set<sim::NodeId> before(input.members.begin(),
                                         input.members.end());
  std::unordered_set<sim::NodeId> after(plain.new_members.begin(),
                                        plain.new_members.end());
  EXPECT_EQ(before, after);
  EXPECT_EQ(plain.new_topology->size(), 128u);
  EXPECT_GT(plain.rounds, rapid.rounds);
}

// --- overlay ----------------------------------------------------------------

ChurnOverlay::Config overlay_config(std::size_t n, std::uint64_t seed) {
  ChurnOverlay::Config config;
  config.initial_size = n;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = seed;
  return config;
}

TEST(ChurnOverlay, NoChurnEpochKeepsMembership) {
  ChurnOverlay overlay(overlay_config(64, 1));
  adversary::NoChurn quiet;
  const auto before = overlay.members();
  const auto report = overlay.run_epoch(quiet);
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.connected);
  EXPECT_EQ(report.members_before, 64u);
  EXPECT_EQ(report.members_after, 64u);
  std::unordered_set<sim::NodeId> b(before.begin(), before.end());
  std::unordered_set<sim::NodeId> a(overlay.members().begin(),
                                    overlay.members().end());
  EXPECT_EQ(a, b);
  EXPECT_GT(overlay.round(), 0);
}

TEST(ChurnOverlay, ChurnTakesEffectNextEpoch) {
  ChurnOverlay overlay(overlay_config(64, 2));
  support::Rng rng(3);
  adversary::UniformChurn churn(0.05, 1.0, 4.0, rng);
  const auto first = overlay.run_epoch(churn);
  EXPECT_EQ(first.members_after, 64u);  // churn staged, not yet applied
  EXPECT_EQ(first.joins_applied, 0u);
  adversary::NoChurn quiet;
  const auto second = overlay.run_epoch(quiet);
  EXPECT_TRUE(second.success);
  // Whatever was staged in epoch 1 is applied in epoch 2.
  EXPECT_GT(second.joins_applied + second.leaves_applied, 0u);
}

TEST(ChurnOverlay, SurvivesSustainedUniformChurn) {
  // Theorem 5: connectivity under constant churn rate. 2% of members churn
  // per *round*, i.e. tens of percent per epoch.
  ChurnOverlay overlay(overlay_config(128, 4));
  support::Rng rng(5);
  adversary::UniformChurn churn(0.02, 1.0, 2.0, rng);
  for (int epoch = 0; epoch < 8; ++epoch) {
    const auto report = overlay.run_epoch(churn);
    ASSERT_TRUE(report.success) << "epoch " << epoch << ": "
                                << report.failure_reason;
    ASSERT_TRUE(report.connected) << "epoch " << epoch;
    ASSERT_GE(overlay.members().size(), 3u);
  }
}

TEST(ChurnOverlay, SurvivesTopologyAwareSegmentChurn) {
  ChurnOverlay overlay(overlay_config(128, 6));
  support::Rng rng(7);
  adversary::SegmentChurn churn(0.02, 2.0, rng);
  // Epochs fail with small probability (sampling runs dry); the overlay
  // keeps its old topology and retries, so the guarantee to test is that
  // connectivity is NEVER lost and most epochs reorganize.
  int ok = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    churn.set_order(overlay.cycle_order(0));  // omniscient: fresh order
    const auto report = overlay.run_epoch(churn);
    ok += report.success ? 1 : 0;
    ASSERT_TRUE(report.connected) << "epoch " << epoch;
  }
  EXPECT_GE(ok, 4);
}

TEST(ChurnOverlay, SurvivesSponsorFlood) {
  ChurnOverlay overlay(overlay_config(64, 8));
  support::Rng rng(9);
  adversary::SponsorFloodChurn churn(0.01, 4.0, rng);
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto report = overlay.run_epoch(churn);
    ASSERT_TRUE(report.success) << report.failure_reason;
    ASSERT_TRUE(report.connected);
  }
}

TEST(ChurnOverlay, MembershipIsMonotonic) {
  // Every id enters at most once and never reappears after leaving.
  ChurnOverlay overlay(overlay_config(64, 10));
  support::Rng rng(11);
  adversary::UniformChurn churn(0.02, 1.0, 2.0, rng);
  std::unordered_set<sim::NodeId> seen_gone;
  for (int epoch = 0; epoch < 6; ++epoch) {
    std::unordered_set<sim::NodeId> before(overlay.members().begin(),
                                           overlay.members().end());
    const auto report = overlay.run_epoch(churn);
    ASSERT_TRUE(report.success);
    std::unordered_set<sim::NodeId> after(overlay.members().begin(),
                                          overlay.members().end());
    for (sim::NodeId id : after) {
      EXPECT_FALSE(seen_gone.contains(id))
          << "id " << id << " re-entered after leaving";
    }
    for (sim::NodeId id : before) {
      if (!after.contains(id)) seen_gone.insert(id);
    }
  }
}

TEST(ChurnOverlay, GrowthAndShrinkage) {
  // Growth factor 2 on each leave: the network grows across epochs.
  ChurnOverlay grow(overlay_config(64, 12));
  support::Rng rng(13);
  adversary::UniformChurn churn(0.02, 2.0, 4.0, rng);
  for (int epoch = 0; epoch < 4; ++epoch) {
    ASSERT_TRUE(grow.run_epoch(churn).success);
  }
  EXPECT_GT(grow.members().size(), 64u);

  ChurnOverlay shrink(overlay_config(64, 14));
  adversary::UniformChurn leaver(0.02, 0.0, 2.0, rng.split(1));
  for (int epoch = 0; epoch < 4; ++epoch) {
    ASSERT_TRUE(shrink.run_epoch(leaver).success);
  }
  EXPECT_LT(shrink.members().size(), 64u);
}

TEST(ChurnOverlay, CycleOrderVisitsEveryMemberOnce) {
  ChurnOverlay overlay(overlay_config(32, 15));
  const auto order = overlay.cycle_order(0);
  EXPECT_EQ(order.size(), 32u);
  std::unordered_set<sim::NodeId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 32u);
}

TEST(ChurnOverlay, BurstChurnIsAbsorbed) {
  ChurnOverlay overlay(overlay_config(96, 16));
  support::Rng rng(17);
  adversary::BurstChurn churn(0.3, 2.0, 7, rng);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto report = overlay.run_epoch(churn);
    ASSERT_TRUE(report.success) << report.failure_reason;
    ASSERT_TRUE(report.connected);
  }
}

}  // namespace
}  // namespace reconfnet::churn
