// Shared scaffolding for the static-checker test suites (lint_test.cpp,
// protocheck_test.cpp, hotcheck_test.cpp). Each suite drives its tool's
// Driver in-process against fixture files under tests/<tool>_fixtures/;
// the helpers here are the tool-independent parts: reading a fixture off
// disk and projecting a Result down to the lines one rule fired on.
//
// The tools share the textscan Finding/Result shape but are otherwise
// separate types, so `lines_of` is a template over any result holding a
// `findings` vector of textscan::Finding.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace reconfnet::toolcheck {

/// Reads `dir/name` into a string; fails the current test (and returns
/// empty) when the fixture is missing. `dir` is the tool's fixture
/// directory, injected by CMake as a compile definition.
inline std::string read_fixture_file(const std::string& dir,
                                     const std::string& name) {
  const std::string path = dir + "/" + name;
  std::ifstream in(path);
  if (!in) ADD_FAILURE() << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lines on which `rule` fired, in report order.
template <typename Result>
std::vector<std::size_t> lines_of(const Result& result,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const auto& finding : result.findings) {
    if (finding.rule == rule) lines.push_back(finding.line);
  }
  return lines;
}

}  // namespace reconfnet::toolcheck
