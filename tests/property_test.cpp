// Property-based parameterized sweeps over the protocol space. Where the
// module tests pin single configurations, these sweep (n, degree, epsilon,
// c, adversary intensity, ...) and assert the *invariants* the paper's
// lemmas promise for every point of the space.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "churn/active_search.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "combined/split_merge.hpp"
#include "dos/overlay.hpp"
#include "graph/connectivity.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "graph/spectral.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "sim/bus.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace reconfnet {
namespace {

// --- H-graph structural properties over (n, degree) -------------------------

class HGraphSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HGraphSweep, AlwaysConnectedRegularAndInvolutive) {
  const auto [n, degree] = GetParam();
  support::Rng rng(n * 131 + static_cast<std::size_t>(degree));
  const auto g = graph::HGraph::random(n, degree, rng);
  EXPECT_EQ(g.degree(), degree);
  // Regularity with multiplicity; succ/pred inverses on every cycle.
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), static_cast<std::size_t>(degree));
    for (int c = 0; c < g.num_cycles(); ++c) {
      EXPECT_EQ(g.pred(c, g.succ(c, v)), v);
    }
  }
  EXPECT_TRUE(graph::is_connected(
      n, [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : g.neighbors(v)) f(w);
      }));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HGraphSweep,
    ::testing::Combine(::testing::Values(8u, 33u, 100u, 511u, 1024u),
                       ::testing::Values(2, 4, 8, 12)));

// --- Expansion across degrees (Corollary 1) ---------------------------------

class ExpansionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionSweep, RandomHGraphHasSpectralGap) {
  const int degree = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(degree) * 7 + 1);
  const auto g = graph::HGraph::random(400, degree, rng);
  const double lambda2 = graph::second_eigenvalue_estimate(g, rng, 250);
  // Corollary 1: |lambda_2| <= 2 sqrt(d) (we allow estimation slack).
  EXPECT_LT(lambda2, 2.0 * std::sqrt(static_cast<double>(degree)) + 0.6)
      << "degree " << degree;
  // And a gap exists at all: lambda_2 strictly below d.
  EXPECT_LT(lambda2, static_cast<double>(degree) * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Degrees, ExpansionSweep,
                         ::testing::Values(4, 6, 8, 10, 14));

// --- Schedule laws over (n, eps, c) ------------------------------------------

class ScheduleSweep : public ::testing::TestWithParam<
                          std::tuple<std::size_t, double, double>> {};

TEST_P(ScheduleSweep, SizesDecreaseGeometricallyAndCoverBeta) {
  const auto [n, epsilon, c] = GetParam();
  sampling::SamplingConfig config;
  config.epsilon = epsilon;
  config.c = c;
  config.beta = c;
  const auto est = sampling::SizeEstimate::from_true_size(n);
  for (const auto& schedule :
       {sampling::hgraph_schedule(est, 8, config),
        sampling::hypercube_schedule(
            est, static_cast<int>(std::log2(static_cast<double>(n))),
            config)}) {
    ASSERT_GE(schedule.iterations, 1);
    for (int i = 1; i <= schedule.iterations; ++i) {
      EXPECT_GE(schedule.m[static_cast<std::size_t>(i - 1)],
                schedule.m[static_cast<std::size_t>(i)]);
    }
    EXPECT_GE(static_cast<double>(schedule.samples_out()),
              config.beta * static_cast<double>(est.log_n_estimate()) - 1.0);
    EXPECT_EQ(schedule.target_walk_length,
              std::size_t{1} << schedule.iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleSweep,
    ::testing::Combine(::testing::Values(64u, 1024u, 65536u, 1048576u),
                       ::testing::Values(0.25, 0.5, 1.0),
                       ::testing::Values(0.5, 1.0, 4.0)));

// --- Algorithm 1 invariants over (n, eps) ------------------------------------

class HGraphSamplingSweep : public ::testing::TestWithParam<
                                std::tuple<std::size_t, double>> {};

TEST_P(HGraphSamplingSweep, SuccessRoundsAndWalkLengthInvariant) {
  const auto [n, epsilon] = GetParam();
  support::Rng rng(n * 977 + static_cast<std::size_t>(epsilon * 10));
  const auto g = graph::HGraph::random(n, 8, rng);
  sampling::SamplingConfig config;
  config.epsilon = epsilon;
  config.c = epsilon < 0.75 ? 8.0 : 3.0;  // Lemma 7's c(eps)
  const auto schedule = sampling::hgraph_schedule(
      sampling::SizeEstimate::from_true_size(n), 8, config);
  auto run_rng = rng.split(1);
  const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
  ASSERT_TRUE(result.success) << "n=" << n << " eps=" << epsilon;
  EXPECT_EQ(result.rounds, 2 * schedule.iterations);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(result.samples[v].size(), schedule.samples_out());
    for (auto length : result.walk_lengths[v]) {
      EXPECT_EQ(length, schedule.target_walk_length);  // Lemma 5
    }
    for (auto sample : result.samples[v]) {
      EXPECT_LT(sample, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HGraphSamplingSweep,
    ::testing::Combine(::testing::Values(64u, 256u, 700u),
                       ::testing::Values(0.5, 1.0)));

// --- Algorithm 2 invariants over dimensions (incl. non-powers of two) --------

class HypercubeSamplingSweep : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeSamplingSweep, SucceedsAtEveryDimension) {
  const int d = GetParam();
  const graph::Hypercube cube(d);
  sampling::SamplingConfig config;
  config.c = 3.0;
  const auto schedule = sampling::hypercube_schedule(
      sampling::SizeEstimate::from_true_size(cube.size()), d, config);
  support::Rng rng(static_cast<std::uint64_t>(d) * 31);
  const auto result = sampling::run_hypercube_sampling(cube, schedule, rng);
  ASSERT_TRUE(result.success) << "d=" << d;
  EXPECT_EQ(result.rounds, 2 * schedule.iterations);
  for (const auto& samples : result.samples) {
    EXPECT_EQ(samples.size(), schedule.samples_out());
    for (auto s : samples) EXPECT_LT(s, cube.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, HypercubeSamplingSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10));

// --- Size-estimate slack robustness (Section 4's oracle) ---------------------

class SlackSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlackSweep, SamplingToleratesOverestimates) {
  // The paper's oracle gives an *upper* bound on log log n with additive
  // slack; overestimating n only enlarges multisets and walk lengths, so
  // the primitive must keep succeeding (at higher cost).
  const int slack = GetParam();
  const std::size_t n = 128;
  support::Rng rng(static_cast<std::uint64_t>(slack) * 17 + 3);
  const auto g = graph::HGraph::random(n, 8, rng);
  sampling::SamplingConfig config;
  config.c = 2.0;
  const auto schedule = sampling::hgraph_schedule(
      sampling::SizeEstimate::from_true_size(n, slack), 8, config);
  auto run_rng = rng.split(9);
  const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
  EXPECT_TRUE(result.success) << "slack=" << slack;
  EXPECT_GE(result.samples.front().size(),
            schedule.samples_out());
}

INSTANTIATE_TEST_SUITE_P(Slack, SlackSweep, ::testing::Values(0, 1, 2));

// --- Active search over adversarial activity patterns ------------------------

class ActivePatternSweep : public ::testing::TestWithParam<int> {};

TEST_P(ActivePatternSweep, HandlesStructuredPatterns) {
  // Patterns: 0 = single block of actives, 1 = alternating, 2 = two actives
  // diametrically opposed, 3 = actives clustered at one end.
  const int pattern = GetParam();
  const std::size_t n = 64;
  std::vector<std::size_t> succ(n);
  for (std::size_t v = 0; v < n; ++v) succ[v] = (v + 1) % n;
  std::vector<bool> active(n, false);
  switch (pattern) {
    case 0:
      for (std::size_t v = 10; v < 20; ++v) active[v] = true;
      break;
    case 1:
      for (std::size_t v = 0; v < n; v += 2) active[v] = true;
      break;
    case 2:
      active[0] = active[n / 2] = true;
      break;
    case 3:
      for (std::size_t v = n - 5; v < n; ++v) active[v] = true;
      break;
    default:
      FAIL();
  }
  const auto result = churn::find_active_neighbors(succ, active, 32);
  ASSERT_TRUE(result.success);
  // Verify against brute force.
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t w = succ[v];
    while (!active[w]) w = succ[w];
    EXPECT_EQ(result.next_active[v], w) << "pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, ActivePatternSweep,
                         ::testing::Values(0, 1, 2, 3));

// --- Reconfiguration across sizes and churn mixes -----------------------------

class ReconfigSweep : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(ReconfigSweep, MemberAlgebraIsExact) {
  const auto [n, leavers, joiners] = GetParam();
  if (leavers >= n) GTEST_SKIP();
  support::Rng rng(n * 3 + leavers * 7 + joiners * 11);
  const auto g = graph::HGraph::random(n, 8, rng);
  churn::ReconfigInput input;
  input.topology = &g;
  input.members.resize(n);
  for (std::size_t v = 0; v < n; ++v) input.members[v] = 1000 + v;
  input.leaving.assign(n, false);
  for (std::size_t i = 0; i < leavers; ++i) input.leaving[i * 2 % n] = true;
  input.joiners.assign(n, {});
  for (std::size_t j = 0; j < joiners; ++j) {
    input.joiners[(j * 3) % n].push_back(5000 + j);
  }
  input.sampling.c = 2.0;
  input.estimate = sampling::SizeEstimate::from_true_size(n + joiners);

  // Reconfiguration succeeds w.h.p.; a dry sampling run is a legitimate
  // low-probability outcome that the overlay handles by retrying, so the
  // property is "succeeds within a few attempts", not "never fails".
  churn::ReconfigResult result;
  for (int attempt = 0;; ++attempt) {
    ASSERT_LT(attempt, 5) << result.failure_reason;
    auto epoch_rng = rng.split(1 + static_cast<std::uint64_t>(attempt));
    result = churn::reconfigure(input, epoch_rng);
    if (result.success) break;
  }

  // Exact set algebra: new = (old \ leavers) + joiners.
  std::unordered_set<sim::NodeId> expected;
  for (std::size_t v = 0; v < n; ++v) {
    if (!input.leaving[v]) expected.insert(input.members[v]);
  }
  for (std::size_t j = 0; j < joiners; ++j) expected.insert(5000 + j);
  std::unordered_set<sim::NodeId> actual(result.new_members.begin(),
                                         result.new_members.end());
  EXPECT_EQ(actual, expected);
  // The rebuilt graph is a valid H-graph of the right size (the HGraph
  // constructor validated the Hamilton cycles) and connected.
  ASSERT_TRUE(result.new_topology.has_value());
  EXPECT_EQ(result.new_topology->size(), expected.size());
  EXPECT_TRUE(graph::is_connected(
      result.new_topology->size(),
      [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : result.new_topology->neighbors(v)) f(w);
      }));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReconfigSweep,
    ::testing::Combine(::testing::Values(32u, 100u, 256u),
                       ::testing::Values(0u, 5u, 20u),
                       ::testing::Values(0u, 7u, 30u)));

// --- DoS overlay: random blocking sweep (Lemma 17 regime) ---------------------

class BlockingSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlockingSweep, LateRandomBlockingNeverDisconnects) {
  const double fraction = GetParam();
  dos::DosOverlay::Config config;
  config.size = 512;
  config.group_c = 2.0;
  config.seed = static_cast<std::uint64_t>(fraction * 1000) + 5;
  dos::DosOverlay overlay(config);
  support::Rng rng(config.seed + 1);
  adversary::RandomDos adversary(rng);
  dos::DosOverlay::Attack attack;
  attack.adversary = &adversary;
  attack.lateness = 10000;
  attack.blocked_fraction = fraction;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto report = overlay.run_epoch(attack);
    EXPECT_EQ(report.disconnected_rounds, 0u)
        << "fraction " << fraction << " epoch " << epoch;
    EXPECT_EQ(report.silenced_group_rounds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, BlockingSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.45));

// --- Split/merge: Equation (1) restoration from arbitrary skew ----------------

class SkewSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkewSweep, EnforceRestoresEquationOne) {
  // Build a deliberately skewed assignment over 8 dimension-3 supernodes:
  // skew 0..3 moves an increasing share of 96 nodes into supernode 0.
  const int skew = GetParam();
  const std::size_t n = 96;
  std::vector<std::vector<sim::NodeId>> groups(8);
  support::Rng rng(static_cast<std::uint64_t>(skew) * 19 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const bool to_zero = rng.bernoulli(0.2 * skew);
    groups[to_zero ? 0 : rng.below(8)].push_back(i);
  }
  for (auto& members : groups) {
    if (members.empty()) {
      auto biggest = std::max_element(
          groups.begin(), groups.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      members.push_back(biggest->back());
      biggest->pop_back();
    }
  }
  auto super = combined::SuperGroups::uniform(3, std::move(groups));
  const double c = 2.0;
  support::Rng enforce_rng(7);
  const auto ops = super.enforce(c, enforce_rng);
  EXPECT_EQ(super.node_count(), n);
  EXPECT_LE(super.max_dimension() - super.min_dimension(), 2);
  for (const auto& [key, entry] : super.groups()) {
    const auto& [label, members] = entry;
    // Post-enforce: no group violates the *triggers*.
    EXPECT_LE(static_cast<double>(members.size()),
              2.0 * c * std::max(label.length, 1));
    EXPECT_GE(static_cast<double>(members.size()),
              c * label.length - c);
  }
  if (skew >= 2) {
    EXPECT_GT(ops.splits + ops.merges, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewSweep, ::testing::Values(0, 1, 2, 3));

// --- Blocking semantics as algebraic properties --------------------------------

class BlockingSemantics
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(BlockingSemantics, DeliveryRuleIsExactlyThePapers) {
  const auto [sender_blocked_send, receiver_blocked_send,
              receiver_blocked_delivery] = GetParam();
  sim::Bus<int> bus;
  sim::BlockedSet at_send, at_delivery;
  if (sender_blocked_send) at_send.insert(1);
  if (receiver_blocked_send) at_send.insert(2);
  if (receiver_blocked_delivery) at_delivery.insert(2);
  bus.send(1, 2, 42, 8);
  bus.step(at_send, at_delivery);
  const bool expected = !sender_blocked_send && !receiver_blocked_send &&
                        !receiver_blocked_delivery;
  EXPECT_EQ(bus.inbox(2).size(), expected ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCases, BlockingSemantics,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace reconfnet
