# Empty dependencies file for reconfnet_sim.
# This may be replaced when dependencies are built.
