file(REMOVE_RECURSE
  "CMakeFiles/reconfnet_sim.dir/reconfnet_sim.cpp.o"
  "CMakeFiles/reconfnet_sim.dir/reconfnet_sim.cpp.o.d"
  "reconfnet_sim"
  "reconfnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
