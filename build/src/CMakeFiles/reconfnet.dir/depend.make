# Empty dependencies file for reconfnet.
# This may be replaced when dependencies are built.
