file(REMOVE_RECURSE
  "libreconfnet.a"
)
