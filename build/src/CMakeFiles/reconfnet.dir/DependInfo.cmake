
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/churn_adversaries.cpp" "src/CMakeFiles/reconfnet.dir/adversary/churn_adversaries.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/adversary/churn_adversaries.cpp.o.d"
  "/root/repo/src/adversary/dos_adversaries.cpp" "src/CMakeFiles/reconfnet.dir/adversary/dos_adversaries.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/adversary/dos_adversaries.cpp.o.d"
  "/root/repo/src/apps/anonym/anonymizer.cpp" "src/CMakeFiles/reconfnet.dir/apps/anonym/anonymizer.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/apps/anonym/anonymizer.cpp.o.d"
  "/root/repo/src/apps/dht/kary_overlay.cpp" "src/CMakeFiles/reconfnet.dir/apps/dht/kary_overlay.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/apps/dht/kary_overlay.cpp.o.d"
  "/root/repo/src/apps/dht/robust_store.cpp" "src/CMakeFiles/reconfnet.dir/apps/dht/robust_store.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/apps/dht/robust_store.cpp.o.d"
  "/root/repo/src/apps/pubsub/pubsub.cpp" "src/CMakeFiles/reconfnet.dir/apps/pubsub/pubsub.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/apps/pubsub/pubsub.cpp.o.d"
  "/root/repo/src/churn/active_search.cpp" "src/CMakeFiles/reconfnet.dir/churn/active_search.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/churn/active_search.cpp.o.d"
  "/root/repo/src/churn/overlay.cpp" "src/CMakeFiles/reconfnet.dir/churn/overlay.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/churn/overlay.cpp.o.d"
  "/root/repo/src/churn/reconfigure.cpp" "src/CMakeFiles/reconfnet.dir/churn/reconfigure.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/churn/reconfigure.cpp.o.d"
  "/root/repo/src/combined/overlay.cpp" "src/CMakeFiles/reconfnet.dir/combined/overlay.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/combined/overlay.cpp.o.d"
  "/root/repo/src/combined/split_merge.cpp" "src/CMakeFiles/reconfnet.dir/combined/split_merge.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/combined/split_merge.cpp.o.d"
  "/root/repo/src/dos/group_table.cpp" "src/CMakeFiles/reconfnet.dir/dos/group_table.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/dos/group_table.cpp.o.d"
  "/root/repo/src/dos/node_sim.cpp" "src/CMakeFiles/reconfnet.dir/dos/node_sim.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/dos/node_sim.cpp.o.d"
  "/root/repo/src/dos/overlay.cpp" "src/CMakeFiles/reconfnet.dir/dos/overlay.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/dos/overlay.cpp.o.d"
  "/root/repo/src/estimate/size_estimation.cpp" "src/CMakeFiles/reconfnet.dir/estimate/size_estimation.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/estimate/size_estimation.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "src/CMakeFiles/reconfnet.dir/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/hgraph.cpp" "src/CMakeFiles/reconfnet.dir/graph/hgraph.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/graph/hgraph.cpp.o.d"
  "/root/repo/src/graph/kary_hypercube.cpp" "src/CMakeFiles/reconfnet.dir/graph/kary_hypercube.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/graph/kary_hypercube.cpp.o.d"
  "/root/repo/src/graph/skip_graph.cpp" "src/CMakeFiles/reconfnet.dir/graph/skip_graph.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/graph/skip_graph.cpp.o.d"
  "/root/repo/src/graph/spectral.cpp" "src/CMakeFiles/reconfnet.dir/graph/spectral.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/graph/spectral.cpp.o.d"
  "/root/repo/src/sampling/hgraph_sampler.cpp" "src/CMakeFiles/reconfnet.dir/sampling/hgraph_sampler.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sampling/hgraph_sampler.cpp.o.d"
  "/root/repo/src/sampling/hypercube_sampler.cpp" "src/CMakeFiles/reconfnet.dir/sampling/hypercube_sampler.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sampling/hypercube_sampler.cpp.o.d"
  "/root/repo/src/sampling/plain_walk.cpp" "src/CMakeFiles/reconfnet.dir/sampling/plain_walk.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sampling/plain_walk.cpp.o.d"
  "/root/repo/src/sampling/schedule.cpp" "src/CMakeFiles/reconfnet.dir/sampling/schedule.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sampling/schedule.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/reconfnet.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/snapshot.cpp" "src/CMakeFiles/reconfnet.dir/sim/snapshot.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/sim/snapshot.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/reconfnet.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/reconfnet.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/reconfnet.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/reconfnet.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
