# Empty compiler generated dependencies file for robust_kv_store.
# This may be replaced when dependencies are built.
