file(REMOVE_RECURSE
  "CMakeFiles/robust_kv_store.dir/robust_kv_store.cpp.o"
  "CMakeFiles/robust_kv_store.dir/robust_kv_store.cpp.o.d"
  "robust_kv_store"
  "robust_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
