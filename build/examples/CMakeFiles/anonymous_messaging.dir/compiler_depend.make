# Empty compiler generated dependencies file for anonymous_messaging.
# This may be replaced when dependencies are built.
