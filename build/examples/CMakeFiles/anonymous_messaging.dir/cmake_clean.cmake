file(REMOVE_RECURSE
  "CMakeFiles/anonymous_messaging.dir/anonymous_messaging.cpp.o"
  "CMakeFiles/anonymous_messaging.dir/anonymous_messaging.cpp.o.d"
  "anonymous_messaging"
  "anonymous_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
