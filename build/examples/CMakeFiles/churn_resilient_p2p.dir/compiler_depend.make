# Empty compiler generated dependencies file for churn_resilient_p2p.
# This may be replaced when dependencies are built.
