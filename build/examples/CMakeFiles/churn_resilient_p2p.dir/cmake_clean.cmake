file(REMOVE_RECURSE
  "CMakeFiles/churn_resilient_p2p.dir/churn_resilient_p2p.cpp.o"
  "CMakeFiles/churn_resilient_p2p.dir/churn_resilient_p2p.cpp.o.d"
  "churn_resilient_p2p"
  "churn_resilient_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_resilient_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
