# Empty compiler generated dependencies file for reconfiguration_showdown.
# This may be replaced when dependencies are built.
