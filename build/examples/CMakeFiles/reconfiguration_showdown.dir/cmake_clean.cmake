file(REMOVE_RECURSE
  "CMakeFiles/reconfiguration_showdown.dir/reconfiguration_showdown.cpp.o"
  "CMakeFiles/reconfiguration_showdown.dir/reconfiguration_showdown.cpp.o.d"
  "reconfiguration_showdown"
  "reconfiguration_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfiguration_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
