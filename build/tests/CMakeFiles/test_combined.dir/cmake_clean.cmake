file(REMOVE_RECURSE
  "CMakeFiles/test_combined.dir/combined_test.cpp.o"
  "CMakeFiles/test_combined.dir/combined_test.cpp.o.d"
  "test_combined"
  "test_combined.pdb"
  "test_combined[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
