# Empty dependencies file for test_skip_graph.
# This may be replaced when dependencies are built.
