file(REMOVE_RECURSE
  "CMakeFiles/test_skip_graph.dir/skip_graph_test.cpp.o"
  "CMakeFiles/test_skip_graph.dir/skip_graph_test.cpp.o.d"
  "test_skip_graph"
  "test_skip_graph.pdb"
  "test_skip_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
