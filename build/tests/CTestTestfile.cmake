# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_dos[1]_include.cmake")
include("/root/repo/build/tests/test_combined[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_node_sim[1]_include.cmake")
include("/root/repo/build/tests/test_estimate[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_skip_graph[1]_include.cmake")
