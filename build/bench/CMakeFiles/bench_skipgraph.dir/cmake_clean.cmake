file(REMOVE_RECURSE
  "CMakeFiles/bench_skipgraph.dir/bench_skipgraph.cpp.o"
  "CMakeFiles/bench_skipgraph.dir/bench_skipgraph.cpp.o.d"
  "bench_skipgraph"
  "bench_skipgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skipgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
