# Empty compiler generated dependencies file for bench_skipgraph.
# This may be replaced when dependencies are built.
