# Empty dependencies file for bench_groups.
# This may be replaced when dependencies are built.
