file(REMOVE_RECURSE
  "CMakeFiles/bench_groups.dir/bench_groups.cpp.o"
  "CMakeFiles/bench_groups.dir/bench_groups.cpp.o.d"
  "bench_groups"
  "bench_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
