# Empty dependencies file for bench_sampling_hypercube.
# This may be replaced when dependencies are built.
