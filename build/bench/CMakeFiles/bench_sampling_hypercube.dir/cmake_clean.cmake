file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_hypercube.dir/bench_sampling_hypercube.cpp.o"
  "CMakeFiles/bench_sampling_hypercube.dir/bench_sampling_hypercube.cpp.o.d"
  "bench_sampling_hypercube"
  "bench_sampling_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
