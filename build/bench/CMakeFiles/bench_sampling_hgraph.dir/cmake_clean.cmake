file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_hgraph.dir/bench_sampling_hgraph.cpp.o"
  "CMakeFiles/bench_sampling_hgraph.dir/bench_sampling_hgraph.cpp.o.d"
  "bench_sampling_hgraph"
  "bench_sampling_hgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_hgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
