# Empty compiler generated dependencies file for bench_ablation_doubling.
# This may be replaced when dependencies are built.
