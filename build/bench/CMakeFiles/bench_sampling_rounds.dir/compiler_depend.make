# Empty compiler generated dependencies file for bench_sampling_rounds.
# This may be replaced when dependencies are built.
