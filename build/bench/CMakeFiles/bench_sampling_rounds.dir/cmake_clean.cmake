file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_rounds.dir/bench_sampling_rounds.cpp.o"
  "CMakeFiles/bench_sampling_rounds.dir/bench_sampling_rounds.cpp.o.d"
  "bench_sampling_rounds"
  "bench_sampling_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
