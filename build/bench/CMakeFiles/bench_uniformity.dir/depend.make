# Empty dependencies file for bench_uniformity.
# This may be replaced when dependencies are built.
