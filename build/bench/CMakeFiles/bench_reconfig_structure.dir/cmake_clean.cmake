file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfig_structure.dir/bench_reconfig_structure.cpp.o"
  "CMakeFiles/bench_reconfig_structure.dir/bench_reconfig_structure.cpp.o.d"
  "bench_reconfig_structure"
  "bench_reconfig_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfig_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
