# Empty compiler generated dependencies file for bench_anonymizer.
# This may be replaced when dependencies are built.
