file(REMOVE_RECURSE
  "CMakeFiles/bench_anonymizer.dir/bench_anonymizer.cpp.o"
  "CMakeFiles/bench_anonymizer.dir/bench_anonymizer.cpp.o.d"
  "bench_anonymizer"
  "bench_anonymizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anonymizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
