// Closest-active-neighbor search along an oriented Hamilton cycle by pointer
// doubling — the mechanism behind Phase 3 of Algorithm 3. Every node holds a
// pointer that initially references its cycle successor (resp. predecessor)
// and repeatedly jumps to the pointer's pointer until it hits an active node.
// Since the largest empty segment is polylogarithmic w.h.p. (Lemma 12),
// O(log log n) doubling steps suffice.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace reconfnet::sim {
class DeliveryHook;
}  // namespace reconfnet::sim

namespace reconfnet::churn {

inline constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

struct ActiveSearchResult {
  bool success = false;  ///< every node found both active neighbors
  sim::Round rounds = 0;
  /// Closest active node following the succ orientation (kNoIndex on failure).
  std::vector<std::size_t> next_active;
  /// Closest active node following the pred orientation.
  std::vector<std::size_t> prev_active;
  /// Ground truth: size of the largest empty segment (Lemma 12 statistic).
  std::size_t max_empty_segment = 0;
};

/// Runs the doubling search at message level for all nodes simultaneously.
/// `succ[v]` is v's successor on the cycle; `active[v]` marks active nodes.
/// Performs at most `max_steps` doubling steps (each costs two communication
/// rounds: query + reply); stops early once every node is done. If no node
/// is active the search fails. Work is accounted to `meter` if non-null.
/// A fault hook makes delivery lossy; lost queries are re-asked on the next
/// doubling step, so faults cost extra steps rather than wrong answers.
ActiveSearchResult find_active_neighbors(const std::vector<std::size_t>& succ,
                                         const std::vector<bool>& active,
                                         int max_steps,
                                         sim::WorkMeter* meter = nullptr,
                                         sim::DeliveryHook* fault_hook =
                                             nullptr);

/// Ground-truth largest empty segment of the cycle (for tests and stats).
std::size_t largest_empty_segment(const std::vector<std::size_t>& succ,
                                  const std::vector<bool>& active);

}  // namespace reconfnet::churn
