#include "churn/active_search.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/bus.hpp"

namespace reconfnet::churn {
namespace {

struct Msg {
  bool is_query = false;
  bool forward = false;      ///< direction of the search
  bool sender_active = false;  ///< reply: is the replying node active?
  std::size_t next = kNoIndex;  ///< reply: the replier's current pointer
};

/// One direction of the doubling search.
struct DirectionState {
  std::vector<std::size_t> ptr;     ///< current pointer per node
  std::vector<std::size_t> result;  ///< found active neighbor, or kNoIndex
};

}  // namespace

std::size_t largest_empty_segment(const std::vector<std::size_t>& succ,
                                  const std::vector<bool>& active) {
  const std::size_t n = succ.size();
  const auto first_active = std::find(active.begin(), active.end(), true);
  if (first_active == active.end()) return n;
  const auto start = static_cast<std::size_t>(
      std::distance(active.begin(), first_active));
  std::size_t longest = 0;
  std::size_t run = 0;
  std::size_t v = succ[start];
  for (std::size_t steps = 1; steps < n; ++steps) {
    if (active[v]) {
      longest = std::max(longest, run);
      run = 0;
    } else {
      ++run;
    }
    v = succ[v];
  }
  return std::max(longest, run);
}

ActiveSearchResult find_active_neighbors(const std::vector<std::size_t>& succ,
                                         const std::vector<bool>& active,
                                         int max_steps,
                                         sim::WorkMeter* meter,
                                         sim::DeliveryHook* fault_hook) {
  const std::size_t n = succ.size();
  if (active.size() != n) {
    throw std::invalid_argument("find_active_neighbors: size mismatch");
  }
  ActiveSearchResult result;
  result.max_empty_segment = largest_empty_segment(succ, active);

  std::vector<std::size_t> pred(n, kNoIndex);
  for (std::size_t v = 0; v < n; ++v) pred[succ[v]] = v;

  DirectionState fwd{succ, std::vector<std::size_t>(n, kNoIndex)};
  DirectionState bwd{pred, std::vector<std::size_t>(n, kNoIndex)};

  const std::uint64_t query_bits = 2;
  const std::uint64_t reply_bits = 2 + sim::id_bits(n - 1);

  sim::Bus<Msg> bus(meter);
  bus.set_fault_hook(fault_hook);
  for (int step = 0; step < max_steps; ++step) {
    // Query round: each node still searching asks its current pointer.
    std::size_t queries = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (fwd.result[v] == kNoIndex) {
        bus.send(v, fwd.ptr[v], Msg{true, true, false, kNoIndex}, query_bits);
        ++queries;
      }
      if (bwd.result[v] == kNoIndex) {
        bus.send(v, bwd.ptr[v], Msg{true, false, false, kNoIndex},
                 query_bits);
        ++queries;
      }
    }
    if (queries == 0) break;
    bus.step();
    // Reply round: answer with own activity and current pointer. A faulty
    // bus can deliver duplicated or delayed traffic off-phase, so only
    // queries are answered here.
    for (std::size_t u = 0; u < n; ++u) {
      for (const auto& envelope : bus.inbox(u)) {
        if (!envelope.payload.is_query) continue;
        const bool forward = envelope.payload.forward;
        const auto& dir = forward ? fwd : bwd;
        bus.send(u, envelope.from, Msg{false, forward, active[u], dir.ptr[u]},
                 reply_bits);
      }
    }
    bus.step();
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        if (envelope.payload.is_query) continue;  // delayed query: re-asked
        auto& dir = envelope.payload.forward ? fwd : bwd;
        // A stale duplicate reply must not regress a finished direction.
        if (dir.result[v] != kNoIndex) continue;
        if (envelope.payload.sender_active) {
          dir.result[v] = envelope.from;
        } else {
          dir.ptr[v] = envelope.payload.next;
        }
      }
    }
  }

  result.rounds = bus.round();
  result.next_active = std::move(fwd.result);
  result.prev_active = std::move(bwd.result);
  result.success =
      std::none_of(result.next_active.begin(), result.next_active.end(),
                   [](std::size_t r) { return r == kNoIndex; }) &&
      std::none_of(result.prev_active.begin(), result.prev_active.end(),
                   [](std::size_t r) { return r == kNoIndex; });
  return result;
}

}  // namespace reconfnet::churn
