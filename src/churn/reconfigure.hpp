// Algorithm 3 of the paper: network reconfiguration of an H-graph. Each
// Hamilton cycle is independently rebuilt from scratch:
//   Phase 1  every staying node sends its id — and the ids of all new nodes
//            introduced to it — to nodes chosen via rapid node sampling;
//   Phase 2  every node that received ids (an *active* node) permutes them
//            uniformly at random;
//   Phase 3  active nodes exchange boundary elements with their closest
//            active cycle neighbors, found by pointer doubling over the
//            (polylogarithmic, Lemma 12) empty segments;
//   Phase 4  every placed id is told its two neighbors in the new cycle.
// The concatenation of the permutations around the old cycle is a uniformly
// random Hamilton cycle over the new node set (Lemma 10), and the whole epoch
// takes O(log log n) communication rounds (Lemma 13, Theorem 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/hgraph.hpp"
#include "sampling/schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::sim {
class DeliveryHook;
}  // namespace reconfnet::sim

namespace reconfnet::churn {

/// Inputs of one reconfiguration epoch.
struct ReconfigInput {
  /// Current topology over dense old-member indices.
  const graph::HGraph* topology = nullptr;
  /// members[v] = NodeId of old index v.
  std::vector<sim::NodeId> members;
  /// leaving[v]: v was prescribed to leave and skips sending its own id.
  std::vector<bool> leaving;
  /// joiners[v] = ids of new nodes introduced to v before this epoch.
  std::vector<std::vector<sim::NodeId>> joiners;
  sampling::SamplingConfig sampling;
  sampling::SizeEstimate estimate{4};
  /// Budget of pointer-doubling steps for the Phase 3 neighbor search.
  int active_search_steps = 16;
  /// Ablation switch: feed Phase 1 from plain token random walks of the
  /// Lemma 2 mixing length instead of the rapid primitive. Same sampling
  /// distribution, Theta(log n) rounds instead of O(log log n) — the
  /// alternative the paper's introduction dismisses as too slow.
  bool use_plain_walk_sampling = false;
  /// Optional fault-injection hook, attached to every bus the epoch drives
  /// (sampling, placement, search, boundary, neighbor). Null = pristine.
  sim::DeliveryHook* fault_hook = nullptr;
  /// When positive, the one-round bus phases (1, 3b, 4) run over a
  /// fault::ReliableChannel and may each spend up to this many rounds
  /// retransmitting until every send is acked. Needs >= 2 to complete even a
  /// loss-free data+ack exchange; 0 keeps the paper's bare one-round phases.
  sim::Round reliable_settle_rounds = 0;
};

/// Per-cycle observations validating Lemmas 11 and 12.
struct CycleStats {
  std::size_t active_nodes = 0;
  std::size_t max_times_chosen = 0;   ///< Lemma 11: polylog w.h.p.
  std::size_t max_empty_segment = 0;  ///< Lemma 12: polylog w.h.p.
};

struct ReconfigResult {
  bool success = false;
  std::string failure_reason;
  sim::Round rounds = 0;
  std::uint64_t max_node_bits_per_round = 0;
  std::size_t sampling_instances = 0;
  /// Nodes woven into the new topology (stayers + joiners), by new index.
  std::vector<sim::NodeId> new_members;
  /// The new H-graph over new indices (present iff success).
  std::optional<graph::HGraph> new_topology;
  std::vector<CycleStats> cycle_stats;
};

/// Executes one full reconfiguration epoch (all d/2 cycles in parallel) at
/// message level. On failure the caller keeps the old topology and retries;
/// the paper's analysis makes failures w.h.p. events.
ReconfigResult reconfigure(const ReconfigInput& input, support::Rng& rng);

}  // namespace reconfnet::churn
