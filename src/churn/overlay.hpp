// The churn-resistant overlay of Section 4: an H-graph that reconfigures
// itself every O(log log n) rounds via Algorithm 3 while an omniscient
// adversary churns members at a constant rate (Theorem 5). Joins and leaves
// prescribed during epoch E take effect at the end of epoch E+1, i.e. within
// the paper's T = O(log log n) adaptation delay, and membership is monotonic
// (each id enters and leaves exactly once).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "sampling/schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::churn {

class ChurnOverlay {
 public:
  struct Config {
    std::size_t initial_size = 256;
    int degree = 8;
    sampling::SamplingConfig sampling{};
    /// Additive slack of the size-estimate oracle (Section 4).
    int size_estimate_slack = 0;
    int active_search_steps = 24;
    std::uint64_t seed = 1;
    /// Optional fault-injection hook forwarded to every bus of every epoch.
    sim::DeliveryHook* fault_hook = nullptr;
    /// Settle budget forwarded to ReconfigInput::reliable_settle_rounds; 0
    /// runs the paper's bare one-round phases.
    sim::Round reliable_settle_rounds = 0;
  };

  struct EpochReport {
    bool success = false;
    std::string failure_reason;
    sim::Round rounds = 0;
    std::uint64_t max_node_bits_per_round = 0;
    std::size_t members_before = 0;
    std::size_t members_after = 0;
    std::size_t joins_applied = 0;
    std::size_t leaves_applied = 0;
    /// The rebuilt topology is a valid connected H-graph.
    bool connected = false;
    std::vector<CycleStats> cycle_stats;
  };

  explicit ChurnOverlay(const Config& config);

  /// Runs one reconfiguration epoch. The adversary is consulted once per
  /// communication round of the epoch; churn prescribed during this epoch is
  /// staged and takes effect at the end of the *next* epoch.
  EpochReport run_epoch(adversary::ChurnAdversary& adversary);

  [[nodiscard]] const std::vector<sim::NodeId>& members() const {
    return members_;
  }
  [[nodiscard]] const graph::HGraph& topology() const { return topology_; }
  [[nodiscard]] sim::IdAllocator& ids() { return ids_; }
  [[nodiscard]] sim::Round round() const { return round_; }

  /// Ids currently flagged to leave (still members until their epoch ends).
  [[nodiscard]] std::vector<sim::NodeId> departing() const;

  /// The order of members along one Hamilton cycle (ground truth; used by
  /// omniscient topology-aware adversaries).
  [[nodiscard]] std::vector<sim::NodeId> cycle_order(int cycle) const;

  /// All ids that ever were members; monotonicity check support.
  [[nodiscard]] const std::unordered_set<sim::NodeId>& ever_members() const {
    return ever_members_;
  }

 private:
  Config config_;
  support::Rng rng_;
  sim::IdAllocator ids_;
  std::vector<sim::NodeId> members_;  // index -> id
  graph::HGraph topology_;
  sim::Round round_ = 0;

  // Staged churn, applied at the next epoch boundary.
  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> staged_joins_;
  std::unordered_set<sim::NodeId> staged_leaves_;
  // Leavers of the epoch currently executing (visible as departing, but a
  // lenient adversary may still sponsor joins on them, exercising the
  // delegation rule at the epoch boundary).
  std::unordered_set<sim::NodeId> epoch_departing_;
  std::unordered_set<sim::NodeId> ever_members_;

  void poll_adversary(adversary::ChurnAdversary& adversary, sim::Round rounds);
};

}  // namespace reconfnet::churn
