#include "churn/reconfigure.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "churn/active_search.hpp"
#include "fault/reliable_channel.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::churn {
namespace {

/// Phase 1 wire format: place `id` into cycle `cycle` at the receiver.
struct PlaceMsg {
  int cycle = 0;
  sim::NodeId id = sim::kNoNode;
};

/// Phase 3 wire format: boundary element exchanged between active neighbors.
struct BoundaryMsg {
  int cycle = 0;
  bool from_predecessor = false;  ///< true: sender is our closest active pred
  sim::NodeId id = sim::kNoNode;
};

/// Phase 4 wire format: the placed id's new neighbors in `cycle`.
struct NeighborMsg {
  int cycle = 0;
  sim::NodeId pred = sim::kNoNode;
  sim::NodeId succ = sim::kNoNode;
};

ReconfigResult fail(std::string reason, sim::Round rounds,
                    std::uint64_t work) {
  ReconfigResult result;
  result.success = false;
  result.failure_reason = std::move(reason);
  result.rounds = rounds;
  result.max_node_bits_per_round = work;
  return result;
}

/// Drives one reliable phase to quiescence: step, drain every receiver's
/// inbox, repeat until no send awaits an ack or the budget is spent, then
/// flush any acks still queued so the shared WorkMeter's per-round accounts
/// balance. Undelivered data past the budget is simply lost; the assembly
/// validation downstream turns that into the usual epoch failure.
template <typename Payload, typename OnReceive>
sim::Round settle(fault::ReliableChannel<Payload>& channel,
                  const std::vector<sim::NodeId>& receivers,
                  sim::Round budget, OnReceive&& on_receive) {
  sim::Round used = 0;
  while (true) {
    channel.step();
    ++used;
    for (const sim::NodeId node : receivers) {
      for (auto& envelope : channel.receive(node)) {
        on_receive(envelope.to, std::move(envelope.payload));
      }
    }
    if (channel.pending_count() == 0 || used >= budget) break;
  }
  if (channel.queued() > 0) {
    channel.step();
    ++used;
  }
  return used;
}

}  // namespace

ReconfigResult reconfigure(const ReconfigInput& input, support::Rng& rng) {
  const auto& graph = *input.topology;
  const std::size_t n = graph.size();
  const int cycles = graph.num_cycles();
  const std::uint64_t node_id_bits = 64;  // overlay ids on the wire

  // Which ids does each old node place? Its own (unless leaving) plus every
  // joiner introduced to it.
  std::vector<std::vector<sim::NodeId>> placements(n);
  std::size_t total_placed = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!input.leaving[v]) placements[v].push_back(input.members[v]);
    for (sim::NodeId joiner : input.joiners[v]) {
      placements[v].push_back(joiner);
    }
    total_placed += placements[v].size();
  }
  if (total_placed < 3) {
    return fail("fewer than 3 nodes would remain", 0, 0);
  }

  sim::WorkMeter meter;
  sim::Round rounds = 0;
  std::uint64_t max_bits = 0;

  // --- Rapid node sampling (input to Phase 1) -----------------------------
  // Each node needs one sample per (cycle, placed id). A single primitive
  // execution yields samples_out() samples per node; the paper runs
  // polylogarithmically many instances in parallel, so we run as many
  // instances as the heaviest-loaded node requires and charge rounds once
  // (the instances share rounds) while summing their communication work.
  const auto schedule =
      sampling::hgraph_schedule(input.estimate, graph.degree(), input.sampling);
  std::size_t max_needed = 0;
  for (std::size_t v = 0; v < n; ++v) {
    max_needed = std::max(max_needed, placements[v].size() *
                                          static_cast<std::size_t>(cycles));
  }
  const std::size_t instances =
      (max_needed + schedule.samples_out() - 1) / schedule.samples_out();

  std::vector<std::vector<std::size_t>> sample_pool(n);
  sim::Round sampling_rounds = 0;
  if (input.use_plain_walk_sampling) {
    // Ablation baseline: one batch of plain walks of the Lemma 2 mixing
    // length delivers the same almost-uniform samples in Theta(log n)
    // rounds.
    const auto walk_length = sampling::hgraph_mixing_walk_length(
        input.estimate.log_n_estimate() > 1
            ? (std::size_t{1} << input.estimate.log_n_estimate())
            : 4,
        graph.degree(), input.sampling.alpha);
    auto walk_rng = rng.split(0x77);
    const auto run = sampling::run_hgraph_plain_walks(
        graph, std::max<std::size_t>(max_needed, 1), walk_length, walk_rng);
    sampling_rounds = run.rounds;
    max_bits += run.max_node_bits_per_round;
    for (std::size_t v = 0; v < n; ++v) {
      for (auto sample : run.samples[v]) {
        sample_pool[v].push_back(static_cast<std::size_t>(sample));
      }
    }
  } else {
    for (std::size_t instance = 0; instance < instances; ++instance) {
      auto instance_rng = rng.split(instance);
      const auto run =
          run_hgraph_sampling(graph, schedule, instance_rng, input.fault_hook);
      sampling_rounds = std::max(sampling_rounds, run.rounds);
      max_bits += run.max_node_bits_per_round;  // parallel instances add up
      if (!run.success) {
        return fail("rapid node sampling ran dry", run.rounds, max_bits);
      }
      for (std::size_t v = 0; v < n; ++v) {
        sample_pool[v].insert(sample_pool[v].end(), run.samples[v].begin(),
                              run.samples[v].end());
      }
    }
  }
  rounds += sampling_rounds;

  // Reliable mode: the one-round phases below retransmit under a
  // ReliableChannel until acked or the settle budget runs out.
  const bool reliable = input.reliable_settle_rounds > 0;
  // Dense receiver list shared by the reliable phases: data flows between
  // old-member indices in phases 1 and 3b, and acks always return to them.
  std::vector<sim::NodeId> indices(n);
  for (std::size_t v = 0; v < n; ++v) indices[v] = v;

  // --- Phase 1: send ids to sampled targets (one round bare; a reliable
  // epoch spends settle rounds collecting acks) -----------------------------
  std::vector<std::vector<PlaceMsg>> place_msgs(n);
  sim::Bus<PlaceMsg> place_bus(&meter);
  place_bus.set_fault_hook(input.fault_hook);
  fault::ReliableChannel<PlaceMsg> place_channel(&meter, input.fault_hook);
  {
    std::vector<std::size_t> cursor(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (int c = 0; c < cycles; ++c) {
        for (sim::NodeId id : placements[v]) {
          if (cursor[v] >= sample_pool[v].size()) {
            return fail("sample pool exhausted", rounds, max_bits);
          }
          const std::size_t target = sample_pool[v][cursor[v]++];
          if (reliable) {
            place_channel.send(v, target, PlaceMsg{c, id},
                               node_id_bits + sim::id_bits(n - 1));
          } else {
            place_bus.send(v, target, PlaceMsg{c, id},
                           node_id_bits + sim::id_bits(n - 1));
          }
        }
      }
    }
    if (reliable) {
      rounds += settle(place_channel, indices, input.reliable_settle_rounds,
                       [&](sim::NodeId to, PlaceMsg msg) {
                         place_msgs[static_cast<std::size_t>(to)].push_back(
                             msg);
                       });
    } else {
      place_bus.step();
      rounds += 1;
      for (std::size_t v = 0; v < n; ++v) {
        for (const auto& envelope : place_bus.inbox(v)) {
          place_msgs[v].push_back(envelope.payload);
        }
      }
    }
  }

  // --- Phase 2: collect and permute (local) --------------------------------
  // permuted[c][v] = the permutation (u_1, ..., u_m) held by node v.
  std::vector<std::vector<std::vector<sim::NodeId>>> permuted(
      static_cast<std::size_t>(cycles));
  for (auto& per_cycle : permuted) per_cycle.resize(n);
  std::vector<CycleStats> cycle_stats(static_cast<std::size_t>(cycles));
  for (std::size_t v = 0; v < n; ++v) {
    auto node_rng = rng.split(0x1000000 + v);
    for (const PlaceMsg& msg : place_msgs[v]) {
      permuted[static_cast<std::size_t>(msg.cycle)][v].push_back(msg.id);
    }
    for (int c = 0; c < cycles; ++c) {
      auto& bucket = permuted[static_cast<std::size_t>(c)][v];
      node_rng.shuffle(std::span<sim::NodeId>(bucket));
      auto& stats = cycle_stats[static_cast<std::size_t>(c)];
      if (!bucket.empty()) {
        ++stats.active_nodes;
        stats.max_times_chosen =
            std::max(stats.max_times_chosen, bucket.size());
      }
    }
  }

  // --- Phase 3a: closest-active-neighbor search (pointer doubling) ---------
  // All cycles search in parallel; rounds are the max over cycles, work
  // accumulates in the shared meter.
  std::vector<ActiveSearchResult> searches;
  searches.reserve(static_cast<std::size_t>(cycles));
  sim::Round search_rounds = 0;
  // Fully overwritten per cycle, so one buffer serves every iteration.
  std::vector<std::size_t> cycle_succ(n);
  std::vector<bool> cycle_active(n);
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t v = 0; v < n; ++v) {
      cycle_succ[v] = graph.succ(c, v);
      cycle_active[v] = !permuted[static_cast<std::size_t>(c)][v].empty();
    }
    auto search =
        find_active_neighbors(cycle_succ, cycle_active,
                              input.active_search_steps, &meter,
                              input.fault_hook);
    if (!search.success) {
      return fail("active-neighbor search exhausted its budget",
                  rounds + search.rounds, max_bits);
    }
    cycle_stats[static_cast<std::size_t>(c)].max_empty_segment =
        search.max_empty_segment;
    search_rounds = std::max(search_rounds, search.rounds);
    searches.push_back(std::move(search));
  }
  rounds += search_rounds;

  // --- Phase 3b: exchange boundary elements (one round) --------------------
  sim::Bus<BoundaryMsg> boundary_bus(&meter);
  boundary_bus.set_fault_hook(input.fault_hook);
  fault::ReliableChannel<BoundaryMsg> boundary_channel(&meter,
                                                       input.fault_hook);
  for (int c = 0; c < cycles; ++c) {
    const auto& search = searches[static_cast<std::size_t>(c)];
    for (std::size_t v = 0; v < n; ++v) {
      const auto& bucket = permuted[static_cast<std::size_t>(c)][v];
      if (bucket.empty()) continue;
      // Our u_m goes to the closest active successor (as their u_0); our u_1
      // goes to the closest active predecessor (as their u_{m+1}).
      if (reliable) {
        boundary_channel.send(v, search.next_active[v],
                              BoundaryMsg{c, true, bucket.back()},
                              node_id_bits);
        boundary_channel.send(v, search.prev_active[v],
                              BoundaryMsg{c, false, bucket.front()},
                              node_id_bits);
      } else {
        boundary_bus.send(v, search.next_active[v],
                          BoundaryMsg{c, true, bucket.back()}, node_id_bits);
        boundary_bus.send(v, search.prev_active[v],
                          BoundaryMsg{c, false, bucket.front()}, node_id_bits);
      }
    }
  }

  std::vector<std::vector<sim::NodeId>> u0(static_cast<std::size_t>(cycles)),
      u_next(static_cast<std::size_t>(cycles));
  for (auto& per_cycle : u0) per_cycle.assign(n, sim::kNoNode);
  for (auto& per_cycle : u_next) per_cycle.assign(n, sim::kNoNode);
  const auto apply_boundary = [&](sim::NodeId to, const BoundaryMsg& msg) {
    const auto c = static_cast<std::size_t>(msg.cycle);
    const auto v = static_cast<std::size_t>(to);
    if (msg.from_predecessor) {
      u0[c][v] = msg.id;
    } else {
      u_next[c][v] = msg.id;
    }
  };
  if (reliable) {
    rounds += settle(boundary_channel, indices, input.reliable_settle_rounds,
                     apply_boundary);
  } else {
    boundary_bus.step();
    rounds += 1;
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : boundary_bus.inbox(v)) {
        apply_boundary(v, envelope.payload);
      }
    }
  }

  // The new membership (deterministic placement order) is known before
  // Phase 4 runs; building the index here lets the reliable arm bucket
  // deliveries by new index as they arrive. The index maps arbitrary
  // (sparse) surviving ids to dense new indices, so it cannot itself be an
  // index-addressed table; it is built and queried once per reconfiguration,
  // not per round.
  std::unordered_map<sim::NodeId, std::size_t> new_index;
  std::vector<sim::NodeId> new_members;
  std::size_t placed_count = 0;
  for (std::size_t v = 0; v < n; ++v) placed_count += placements[v].size();
  new_members.reserve(placed_count);
  for (std::size_t v = 0; v < n; ++v) {
    for (sim::NodeId id : placements[v]) {
      // reconfnet-hotcheck: allow(RNH403) per-reconfiguration sparse-id remap
      if (!new_index.emplace(id, new_members.size()).second) {
        return fail("duplicate id placement", rounds, max_bits);
      }
      new_members.push_back(id);
    }
  }
  const std::size_t new_n = new_members.size();

  // --- Phase 4: tell every placed id its new neighbors (one round) ---------
  std::vector<std::vector<NeighborMsg>> neighbor_msgs(new_n);
  sim::Bus<NeighborMsg> neighbor_bus(&meter);
  neighbor_bus.set_fault_hook(input.fault_hook);
  fault::ReliableChannel<NeighborMsg> neighbor_channel(&meter,
                                                       input.fault_hook);
  for (int c = 0; c < cycles; ++c) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto& bucket = permuted[static_cast<std::size_t>(c)][v];
      if (bucket.empty()) continue;
      const auto cs = static_cast<std::size_t>(c);
      if (u0[cs][v] == sim::kNoNode || u_next[cs][v] == sim::kNoNode) {
        return fail("missing boundary element", rounds, max_bits);
      }
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const sim::NodeId pred =
            (i == 0) ? u0[cs][v] : bucket[i - 1];
        const sim::NodeId succ =
            (i + 1 == bucket.size()) ? u_next[cs][v] : bucket[i + 1];
        if (reliable) {
          neighbor_channel.send(v, bucket[i], NeighborMsg{c, pred, succ},
                                2 * node_id_bits);
        } else {
          neighbor_bus.send(v, bucket[i], NeighborMsg{c, pred, succ},
                            2 * node_id_bits);
        }
      }
    }
  }
  if (reliable) {
    // Data lands on placed ids, acks return to the sender indices; the
    // receiver list is the sorted union of both id spaces.
    std::vector<sim::NodeId> receivers = indices;
    receivers.insert(receivers.end(), new_members.begin(), new_members.end());
    std::sort(receivers.begin(), receivers.end());
    receivers.erase(std::unique(receivers.begin(), receivers.end()),
                    receivers.end());
    rounds += settle(neighbor_channel, receivers,
                     input.reliable_settle_rounds,
                     [&](sim::NodeId to, NeighborMsg msg) {
                       // reconfnet-hotcheck: allow(RNH403) sparse-id remap
                       const auto it = new_index.find(to);
                       if (it != new_index.end()) {
                         neighbor_msgs[it->second].push_back(msg);
                       }
                     });
  } else {
    neighbor_bus.step();
    rounds += 1;
    for (std::size_t index = 0; index < new_members.size(); ++index) {
      for (const auto& envelope : neighbor_bus.inbox(new_members[index])) {
        neighbor_msgs[index].push_back(envelope.payload);
      }
    }
  }

  // --- Assemble and validate the new topology ------------------------------
  // Each id fills its own successor-table cells from the Phase 4 messages it
  // received; the walk follows the deterministic placement order.
  std::vector<std::vector<std::size_t>> succ_tables(
      static_cast<std::size_t>(cycles),
      std::vector<std::size_t>(new_n, kNoIndex));
  for (std::size_t index = 0; index < new_members.size(); ++index) {
    for (const NeighborMsg& msg : neighbor_msgs[index]) {
      const auto c = static_cast<std::size_t>(msg.cycle);
      // reconfnet-hotcheck: allow(RNH403) sparse-id remap, once per reconfig
      const auto succ_it = new_index.find(msg.succ);
      if (succ_it == new_index.end()) {
        return fail("successor references unknown id", rounds, max_bits);
      }
      succ_tables[c][index] = succ_it->second;
    }
  }
  for (const auto& table : succ_tables) {
    if (std::find(table.begin(), table.end(), kNoIndex) != table.end()) {
      return fail("a placed id received no neighbors", rounds, max_bits);
    }
  }

  ReconfigResult result;
  try {
    result.new_topology.emplace(new_n, std::move(succ_tables));
  } catch (const std::invalid_argument&) {
    return fail("assembled cycle is not Hamiltonian", rounds, max_bits);
  }
  result.success = true;
  result.rounds = rounds;
  result.max_node_bits_per_round =
      std::max(max_bits, meter.max_node_bits_any_round());
  result.sampling_instances = instances;
  result.new_members = std::move(new_members);
  result.cycle_stats = std::move(cycle_stats);
  return result;
}

}  // namespace reconfnet::churn
