#include "churn/overlay.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "graph/connectivity.hpp"
#include "support/sorted.hpp"

namespace reconfnet::churn {

ChurnOverlay::ChurnOverlay(const Config& config)
    : config_(config),
      rng_(config.seed),
      topology_(graph::HGraph::random(config.initial_size, config.degree,
                                      rng_)) {
  members_.reserve(config.initial_size);
  for (std::size_t i = 0; i < config.initial_size; ++i) {
    const sim::NodeId id = ids_.allocate();
    members_.push_back(id);
    ever_members_.insert(id);
  }
}

std::vector<sim::NodeId> ChurnOverlay::departing() const {
  std::vector<sim::NodeId> out(staged_leaves_.begin(), staged_leaves_.end());
  out.insert(out.end(), epoch_departing_.begin(), epoch_departing_.end());
  return out;
}

std::vector<sim::NodeId> ChurnOverlay::cycle_order(int cycle) const {
  std::vector<sim::NodeId> order;
  order.reserve(members_.size());
  std::size_t v = 0;
  for (std::size_t steps = 0; steps < members_.size(); ++steps) {
    order.push_back(members_[v]);
    v = topology_.succ(cycle, v);
  }
  return order;
}

void ChurnOverlay::poll_adversary(adversary::ChurnAdversary& adversary,
                                  sim::Round rounds) {
  std::unordered_set<sim::NodeId> member_set(members_.begin(),
                                             members_.end());
  for (sim::Round r = 0; r < std::max<sim::Round>(rounds, 1); ++r) {
    const auto departing_now = departing();
    adversary::ChurnView view{round_ + r, members_, departing_now};
    const auto batch = adversary.next(view, ids_);
    for (const auto& [fresh, sponsor] : batch.joins) {
      if (!member_set.contains(sponsor) ||
          staged_leaves_.contains(sponsor)) {
        throw std::logic_error("churn adversary violated the sponsor rule");
      }
      if (ever_members_.contains(fresh)) {
        throw std::logic_error("churn adversary reused a node id");
      }
      ever_members_.insert(fresh);
      staged_joins_[sponsor].push_back(fresh);
    }
    for (sim::NodeId leaver : batch.leaves) {
      if (!member_set.contains(leaver)) {
        throw std::logic_error("churn adversary removed a non-member");
      }
      staged_leaves_.insert(leaver);
    }
  }
}

ChurnOverlay::EpochReport ChurnOverlay::run_epoch(
    adversary::ChurnAdversary& adversary) {
  EpochReport report;
  report.members_before = members_.size();

  // Snapshot the staged churn for this epoch; churn arriving while the epoch
  // runs is staged for the next one (the paper's T = O(log log n) delay).
  auto epoch_joins = std::move(staged_joins_);
  auto epoch_leaves = std::move(staged_leaves_);
  staged_joins_.clear();
  staged_leaves_.clear();
  epoch_departing_ = epoch_leaves;

  ReconfigInput input;
  input.topology = &topology_;
  input.members = members_;
  input.leaving.assign(members_.size(), false);
  input.joiners.assign(members_.size(), {});
  std::size_t join_count = 0;
  for (std::size_t v = 0; v < members_.size(); ++v) {
    if (epoch_leaves.contains(members_[v])) input.leaving[v] = true;
    auto it = epoch_joins.find(members_[v]);
    if (it != epoch_joins.end()) {
      input.joiners[v] = std::move(it->second);
      join_count += input.joiners[v].size();
    }
  }
  input.sampling = config_.sampling;
  input.estimate = sampling::SizeEstimate::from_true_size(
      std::max<std::size_t>(members_.size() + join_count, 4),
      config_.size_estimate_slack);
  input.active_search_steps = config_.active_search_steps;
  input.fault_hook = config_.fault_hook;
  input.reliable_settle_rounds = config_.reliable_settle_rounds;

  auto epoch_rng = rng_.split(static_cast<std::uint64_t>(round_) + 17);
  auto result = reconfigure(input, epoch_rng);

  // The adversary acts in every round the epoch took.
  poll_adversary(adversary, std::max<sim::Round>(result.rounds, 1));
  round_ += std::max<sim::Round>(result.rounds, 1);
  epoch_departing_.clear();

  report.rounds = result.rounds;
  report.max_node_bits_per_round = result.max_node_bits_per_round;
  report.cycle_stats = std::move(result.cycle_stats);

  if (!result.success) {
    report.success = false;
    report.failure_reason = std::move(result.failure_reason);
    report.members_after = members_.size();
    // The old topology stays in place; the staged churn snapshot is
    // re-staged so nothing is lost.
    for (auto& [sponsor, list] : epoch_joins) {
      auto& dest = staged_joins_[sponsor];
      dest.insert(dest.end(), list.begin(), list.end());
    }
    staged_leaves_.insert(epoch_leaves.begin(), epoch_leaves.end());
    report.connected = true;  // unchanged valid H-graph
    return report;
  }

  members_ = std::move(result.new_members);
  topology_ = std::move(*result.new_topology);
  // Epoch-boundary audit (Algorithm 3 postconditions): the rebuilt topology
  // is a d-regular union of Hamilton cycles with symmetric succ/pred maps,
  // and its vertex set matches the member list one-to-one.
  if (audit::enabled()) {
    auto violations = audit::check_hgraph(topology_, config_.degree);
    if (topology_.size() != members_.size()) {
      violations.push_back(
          {"hgraph.members",
           "topology has " + std::to_string(topology_.size()) +
               " vertices but the overlay has " +
               std::to_string(members_.size()) + " members"});
    }
    audit::enforce(std::move(violations));
  }
  report.success = true;
  report.members_after = members_.size();
  report.joins_applied = join_count;
  report.leaves_applied = static_cast<std::size_t>(
      std::count(input.leaving.begin(), input.leaving.end(), true));

  // Joins staged during the epoch whose sponsor just left are delegated to a
  // surviving member (the paper's delegation rule).
  std::unordered_set<sim::NodeId> member_set(members_.begin(),
                                             members_.end());
  // Sorted sponsor order: the delegation loop below consumes the overlay
  // RNG per orphan, so the processing order must not depend on hash-bucket
  // order or the whole trajectory forks across standard libraries.
  std::vector<sim::NodeId> orphaned_sponsors;
  for (sim::NodeId sponsor : support::sorted_keys(staged_joins_)) {
    if (!member_set.contains(sponsor)) orphaned_sponsors.push_back(sponsor);
  }
  for (sim::NodeId sponsor : orphaned_sponsors) {
    auto list = std::move(staged_joins_[sponsor]);
    staged_joins_.erase(sponsor);
    const sim::NodeId delegate =
        members_[rng_.below(members_.size())];
    auto& dest = staged_joins_[delegate];
    dest.insert(dest.end(), list.begin(), list.end());
  }
  // Leaves staged during the epoch that already left are impossible by the
  // sponsor/member checks; leaves referring to stayers remain staged.
  std::erase_if(staged_leaves_, [&member_set](sim::NodeId node) {
    return !member_set.contains(node);
  });

  // Validate connectivity of the rebuilt overlay.
  report.connected = graph::is_connected(
      topology_.size(),
      [&](std::size_t v, const std::function<void(std::size_t)>& f) {
        for (auto w : topology_.neighbors(v)) f(w);
      });
  return report;
}

}  // namespace reconfnet::churn
