#include "sampling/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reconfnet::sampling {

int ceil_log2(std::size_t x) {
  if (x == 0) throw std::invalid_argument("ceil_log2(0)");
  int bits = 0;
  std::size_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

SizeEstimate SizeEstimate::from_true_size(std::size_t n, int slack) {
  if (n < 4) throw std::invalid_argument("SizeEstimate: n too small");
  const double loglog = std::log2(std::log2(static_cast<double>(n)));
  const int k = static_cast<int>(std::ceil(loglog)) + slack;
  return SizeEstimate(std::max(k, 1));
}

namespace {

void validate(const SamplingConfig& config) {
  if (config.epsilon <= 0.0 || config.epsilon > 1.0) {
    throw std::invalid_argument("SamplingConfig: need 0 < epsilon <= 1");
  }
  if (config.alpha <= 0.0 || config.c <= 0.0 || config.beta <= 0.0) {
    throw std::invalid_argument("SamplingConfig: alpha, c, beta must be > 0");
  }
  if (config.c < config.beta) {
    throw std::invalid_argument("SamplingConfig: need c >= beta (Lemma 7)");
  }
}

Schedule build(int iterations, double base, double c, std::size_t log_n) {
  Schedule schedule;
  schedule.iterations = iterations;
  schedule.m.resize(static_cast<std::size_t>(iterations) + 1);
  for (int i = 0; i <= iterations; ++i) {
    const double size = std::pow(base, iterations - i) * c *
                        static_cast<double>(log_n);
    schedule.m[static_cast<std::size_t>(i)] =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(size)));
  }
  schedule.target_walk_length = std::size_t{1} << iterations;
  return schedule;
}

}  // namespace

Schedule hgraph_schedule(const SizeEstimate& est, int degree,
                         const SamplingConfig& config) {
  validate(config);
  if (degree < 6) {
    throw std::invalid_argument("hgraph_schedule: need degree >= 6");
  }
  const auto log_n = static_cast<double>(est.log_n_estimate());
  // Walk length t = ceil(2 alpha log_{d/4} n) (Lemma 2), with
  // log_{d/4} n = log2(n) / log2(d/4).
  const double log_base = std::log2(static_cast<double>(degree) / 4.0);
  const double walk_length =
      std::ceil(2.0 * config.alpha * log_n / log_base);
  const int t = ceil_log2(static_cast<std::size_t>(
      std::max(2.0, walk_length)));
  return build(t, 2.0 + config.epsilon, config.c, est.log_n_estimate());
}

Schedule hypercube_schedule(const SizeEstimate& est, int dimension,
                            const SamplingConfig& config) {
  validate(config);
  if (dimension < 1) {
    throw std::invalid_argument("hypercube_schedule: need dimension >= 1");
  }
  const int iterations = ceil_log2(static_cast<std::size_t>(dimension));
  return build(std::max(iterations, 1), 1.0 + config.epsilon, config.c,
               est.log_n_estimate());
}

}  // namespace reconfnet::sampling
