// Algorithm 2 of the paper: rapid node sampling in the d-dimensional
// hypercube. The classic coin-flip walk (Section 2.3) randomizes one
// coordinate per round; Algorithm 2 instead randomizes coordinate *blocks*
// and doubles the block width every iteration, finishing in ceil(log2 d)
// iterations (the paper writes log log n for d = log n = 2^k). After
// iteration i, for every live block index j, each entry of M_j agrees with
// the owner outside the block's coordinate window while the window itself is
// uniformly random (Lemma 8). The schedule of Lemma 9 makes every extraction
// succeed w.h.p. (Theorem 3).
//
// The per-node logic is a pure state machine (HypercubeSamplerCore) whose
// randomness is injected per call; this is what lets the Section 5 overlay
// replicate a supernode's execution across its group of representatives and
// adopt the lowest-id available node's version.
//
// Generalization beyond d = 2^k: a block whose partner block would start past
// dimension d is already complete and is simply carried over; for d = 2^k
// this never happens and the algorithm is exactly the paper's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/hypercube.hpp"
#include "sampling/schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::sampling {

/// Per-node (or per-supernode) state machine for Algorithm 2.
class HypercubeSamplerCore {
 public:
  struct Request {
    std::uint64_t requester = 0;  ///< hypercube vertex of the requester
    int j = 0;                    ///< block index (1-indexed coordinate)
  };
  struct Response {
    std::uint64_t vertex = 0;  ///< spliced walk endpoint
    int j = 0;                 ///< block index it belongs to at the requester
    bool ok = false;
  };

  HypercubeSamplerCore(int dimension, std::uint64_t self, Schedule schedule);

  /// Phase 1: for every j, M_j holds m_0 entries that are `self` with
  /// coordinate j randomized by a fair coin.
  void init(support::Rng& rng);

  /// Phase 2 of iteration i (1-based): extracts m_i entries from each live
  /// requester block M_j (j = 1, 1+2^i, ...; partner within range) and emits
  /// one request per entry, addressed to the entry's vertex.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Request>> make_requests(
      int iteration, support::Rng& rng);

  /// Phase 3: serves a request by extracting from the partner block
  /// M_{j + 2^{i-1}} and splicing coordinate windows.
  [[nodiscard]] Response serve(const Request& request, int iteration,
                               support::Rng& rng);

  /// End of Phase 3 / start of Phase 4: clears every block that participated
  /// in iteration i (requesters and partners); complete blocks carry over.
  void discard_consumed(int iteration);

  /// Phase 4: stores a response into M_{response.j}. The multiset is
  /// semantically unordered; the response is inserted at a uniformly random
  /// position so that no downstream consumer of a *prefix* of the samples
  /// inherits the (value-correlated) network delivery order.
  void accept(const Response& response, support::Rng& rng);

  /// Final output: M_1 after the last iteration — uniform samples over the
  /// whole vertex set.
  [[nodiscard]] const std::vector<std::uint64_t>& samples() const;

  /// Block contents, for invariant checks (Lemma 8). j is 1-indexed.
  [[nodiscard]] const std::vector<std::uint64_t>& block(int j) const;

  /// Replaces every block wholesale: `blocks[j-1]` becomes M_j. This is the
  /// deserialization path of the transport layer (src/transport/), which
  /// ships replicated snapshots as raw block contents and reconstructs the
  /// core from (dimension, self, schedule) on the receiving side. Requires
  /// exactly dimension() entries. The dry/failed diagnostic counters are not
  /// part of the replicated state and stay untouched.
  void restore_blocks(std::vector<std::vector<std::uint64_t>> blocks);

  /// Width of the coordinate window [j, j + width) of block j after
  /// `iterations_done` completed iterations.
  [[nodiscard]] int window_width(int j, int iterations_done) const;

  /// True if block j is live (a requester block) after `iterations_done`
  /// iterations: j == 1 mod 2^iterations_done.
  [[nodiscard]] static bool live_block(int j, int iterations_done);

  [[nodiscard]] std::size_t dry_events() const { return dry_events_; }
  [[nodiscard]] std::size_t failed_responses() const {
    return failed_responses_;
  }
  [[nodiscard]] std::uint64_t self() const { return self_; }
  [[nodiscard]] int dimension() const { return dimension_; }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

 private:
  int dimension_;
  std::uint64_t self_;
  Schedule schedule_;
  std::vector<std::vector<std::uint64_t>> blocks_;  // blocks_[j-1] = M_j
  std::size_t dry_events_ = 0;
  std::size_t failed_responses_ = 0;

  [[nodiscard]] bool extract(int j, support::Rng& rng, std::uint64_t& out);
};

/// Result of a standalone execution over all vertices of a hypercube.
struct HypercubeSamplingResult {
  bool success = false;
  std::size_t dry_events = 0;
  sim::Round rounds = 0;
  std::uint64_t max_node_bits_per_round = 0;
  /// samples[v] = uniform vertex samples collected by vertex v.
  std::vector<std::vector<std::uint64_t>> samples;
};

/// Runs Algorithm 2 on every vertex of the hypercube simultaneously over a
/// sim::Bus with communication-work accounting.
HypercubeSamplingResult run_hypercube_sampling(const graph::Hypercube& cube,
                                               const Schedule& schedule,
                                               support::Rng& rng);

}  // namespace reconfnet::sampling
