// Baseline node sampling via plain (non-doubled) random walks, exactly as in
// Section 2.3 of the paper:
//  - H-graphs: a token performs a simple random walk of length
//    t = ceil(2 alpha log_{d/4} n); the final holder reports its id to the
//    origin. Almost-uniform by Lemma 2. Takes Theta(log n) rounds.
//  - Hypercube: a token walks for d rounds; in round i the holder flips a
//    fair coin and forwards the token across dimension i on heads. Exactly
//    uniform. Takes Theta(d) = Theta(log n) rounds.
//
// These baselines exist to measure the exponential round-count gap against
// the rapid primitives of Section 3 (experiment F1) and to cross-check the
// sampling distributions (experiment T3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::sampling {

struct PlainWalkResult {
  sim::Round rounds = 0;
  std::uint64_t max_node_bits_per_round = 0;
  /// samples[v] = endpoints of the walks originated by node v.
  std::vector<std::vector<std::uint64_t>> samples;
};

/// Every node launches `tokens_per_node` simple-random-walk tokens of length
/// `walk_length` over the H-graph; endpoints are reported back to the origin
/// in one final hop.
PlainWalkResult run_hgraph_plain_walks(const graph::HGraph& graph,
                                       std::size_t tokens_per_node,
                                       std::size_t walk_length,
                                       support::Rng& rng);

/// The walk length Lemma 2 prescribes for almost-uniform sampling.
std::size_t hgraph_mixing_walk_length(std::size_t n, int degree, double alpha);

/// Every vertex launches `tokens_per_node` coin-flip tokens that walk the
/// hypercube for `dimension` rounds (the classic Section 2.3 technique).
PlainWalkResult run_hypercube_plain_walks(const graph::Hypercube& cube,
                                          std::size_t tokens_per_node,
                                          support::Rng& rng);

}  // namespace reconfnet::sampling
