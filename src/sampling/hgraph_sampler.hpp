// Algorithm 1 of the paper: rapid node sampling in H-graphs. Random walks of
// length Theta(log n) are assembled by pointer doubling: after iteration i,
// each node's multiset M holds endpoints of independent random walks of
// length 2^i (Lemma 5). With the schedule of Lemma 7, the algorithm succeeds
// w.h.p. and delivers >= beta log n almost-uniform samples per node in
// O(log log n) communication rounds (Theorem 2).
//
// The implementation runs at message level on sim::Bus. Each loop iteration
// costs two bus rounds (requests travel in one round, responses in the next;
// the paper's Phase 4 of iteration i and Phase 2 of iteration i+1 share a
// round). Walk lengths are carried as simulation-only metadata so tests can
// check the Lemma 5 invariant directly; they are not charged as message bits.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/hgraph.hpp"
#include "sampling/schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::sim {
class DeliveryHook;
}  // namespace reconfnet::sim

namespace reconfnet::sampling {

/// An element of the multiset M: the endpoint of a random walk starting at
/// the owning node, together with the walk's length (validation metadata).
struct WalkEntry {
  std::size_t vertex = 0;
  std::size_t length = 0;
};

/// Per-node state machine for Algorithm 1 over dense vertex indices.
/// A driver wires cores together: standalone over sim::Bus (below) or inside
/// the reconfiguration protocols.
class HGraphSamplerCore {
 public:
  struct Request {
    std::size_t requester = 0;
    std::size_t requester_walk_length = 0;
  };
  struct Response {
    std::size_t vertex = 0;
    std::size_t length = 0;
    bool ok = false;
  };

  HGraphSamplerCore(std::size_t self, Schedule schedule, support::Rng rng);

  /// Phase 1: fills M with m_0 uniformly random neighbors, i.e. endpoints of
  /// walks of length 1.
  void init(const graph::HGraph& graph);

  /// Phase 2 of iteration i (1-based): extracts m_i entries from M; each
  /// yields a request addressed to the extracted walk endpoint.
  [[nodiscard]] std::vector<std::pair<std::size_t, Request>> make_requests(
      int iteration);

  /// Phase 3: serves one incoming request by extracting an entry from M and
  /// splicing the walks. A dry M yields ok = false.
  [[nodiscard]] Response serve(const Request& request);

  /// End of Phase 3: un-served leftovers of M are discarded (Algorithm 1
  /// line 14 replaces M by the received responses).
  void discard_leftovers();

  /// Phase 4: accepts one response into M (failed responses are counted but
  /// not stored). The multiset is semantically unordered; the entry lands at
  /// a uniformly random position so that consumers of a *prefix* of the
  /// samples do not inherit the (value-correlated) delivery order.
  void accept(const Response& response);

  /// Shuffles the multiset in place; the standalone driver calls this after
  /// each collection phase (Algorithm 1's M is an unordered multiset, and
  /// responses arrive ordered by responder, whose position correlates with
  /// the walk endpoints).
  void shuffle_multiset();

  [[nodiscard]] const std::vector<WalkEntry>& multiset() const { return m_; }
  [[nodiscard]] std::size_t dry_events() const { return dry_events_; }
  [[nodiscard]] std::size_t failed_responses() const {
    return failed_responses_;
  }
  [[nodiscard]] std::size_t self() const { return self_; }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

 private:
  std::size_t self_;
  Schedule schedule_;
  support::Rng rng_;
  std::vector<WalkEntry> m_;
  std::size_t dry_events_ = 0;
  std::size_t failed_responses_ = 0;

  /// Removes and returns a uniformly random entry, or nullopt if dry.
  [[nodiscard]] bool extract(WalkEntry& out);
};

/// Result of a full standalone execution over all nodes of an H-graph.
struct HGraphSamplingResult {
  bool success = false;          ///< no extraction ever hit an empty multiset
  std::size_t dry_events = 0;    ///< total dry extractions across all nodes
  sim::Round rounds = 0;         ///< communication rounds consumed
  std::uint64_t max_node_bits_per_round = 0;
  /// samples[v] = vertices sampled by node v (size m_T on success).
  std::vector<std::vector<std::size_t>> samples;
  /// walk_lengths[v][k] = length of the walk that produced samples[v][k].
  std::vector<std::vector<std::size_t>> walk_lengths;
};

/// Runs Algorithm 1 on every node of `graph` simultaneously and returns all
/// samples. Drives the cores over a sim::Bus with full communication-work
/// accounting. An optional fault hook makes delivery lossy; lost or delayed
/// traffic surfaces as dry multisets (success = false), never wrong samples.
HGraphSamplingResult run_hgraph_sampling(const graph::HGraph& graph,
                                         const Schedule& schedule,
                                         support::Rng& rng,
                                         sim::DeliveryHook* fault_hook =
                                             nullptr);

}  // namespace reconfnet::sampling
