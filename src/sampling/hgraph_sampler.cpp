#include "sampling/hgraph_sampler.hpp"

#include <utility>

#include "sim/bus.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::sampling {

HGraphSamplerCore::HGraphSamplerCore(std::size_t self, Schedule schedule,
                                     support::Rng rng)
    : self_(self), schedule_(std::move(schedule)), rng_(rng) {}

void HGraphSamplerCore::init(const graph::HGraph& graph) {
  m_.clear();
  m_.reserve(schedule_.m0());
  for (std::size_t j = 0; j < schedule_.m0(); ++j) {
    const int port = static_cast<int>(
        rng_.below(static_cast<std::uint64_t>(graph.degree())));
    m_.push_back({graph.neighbor(self_, port), 1});
  }
}

bool HGraphSamplerCore::extract(WalkEntry& out) {
  if (m_.empty()) {
    ++dry_events_;
    return false;
  }
  const std::size_t index = static_cast<std::size_t>(rng_.below(m_.size()));
  out = m_[index];
  m_[index] = m_.back();
  m_.pop_back();
  return true;
}

std::vector<std::pair<std::size_t, HGraphSamplerCore::Request>>
HGraphSamplerCore::make_requests(int iteration) {
  const std::size_t count = schedule_.m[static_cast<std::size_t>(iteration)];
  std::vector<std::pair<std::size_t, Request>> requests;
  requests.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    WalkEntry entry;
    if (!extract(entry)) break;
    requests.emplace_back(entry.vertex, Request{self_, entry.length});
  }
  return requests;
}

HGraphSamplerCore::Response HGraphSamplerCore::serve(const Request& request) {
  WalkEntry entry;
  if (!extract(entry)) return {0, 0, false};
  // Splice: the requester's walk (ending here) continued by our walk.
  return {entry.vertex, request.requester_walk_length + entry.length, true};
}

void HGraphSamplerCore::discard_leftovers() { m_.clear(); }

void HGraphSamplerCore::accept(const Response& response) {
  if (!response.ok) {
    ++failed_responses_;
    return;
  }
  m_.push_back({response.vertex, response.length});
}

void HGraphSamplerCore::shuffle_multiset() {
  rng_.shuffle(std::span<WalkEntry>(m_));
}

namespace {

/// Wire format of the standalone driver. `kind` plus one id (the requester
/// for requests, the sampled endpoint for responses) is charged as bits; walk
/// lengths are validation metadata and free.
struct WireMsg {
  bool is_request = false;
  HGraphSamplerCore::Request request{};
  HGraphSamplerCore::Response response{};
};

}  // namespace

HGraphSamplingResult run_hgraph_sampling(const graph::HGraph& graph,
                                         const Schedule& schedule,
                                         support::Rng& rng,
                                         sim::DeliveryHook* fault_hook) {
  const std::size_t n = graph.size();
  const std::uint64_t bits_per_msg = 1 + sim::id_bits(n - 1);

  std::vector<HGraphSamplerCore> cores;
  cores.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    cores.emplace_back(v, schedule, rng.split(v));
    cores.back().init(graph);
  }

  sim::WorkMeter meter;
  sim::Bus<WireMsg> bus(&meter);
  bus.set_fault_hook(fault_hook);

  for (int i = 1; i <= schedule.iterations; ++i) {
    // Phase 2: every node sends its requests.
    for (auto& core : cores) {
      for (auto& [dest, request] : core.make_requests(i)) {
        bus.send(core.self(), dest, WireMsg{true, request, {}}, bits_per_msg);
      }
    }
    bus.step();
    // Phase 3: serve all requests that arrived. Under a fault hook a delayed
    // response may land here too; only requests are served.
    for (auto& core : cores) {
      for (const auto& envelope : bus.inbox(core.self())) {
        if (!envelope.payload.is_request) continue;
        const auto response = core.serve(envelope.payload.request);
        bus.send(core.self(), envelope.payload.request.requester,
                 WireMsg{false, {}, response}, bits_per_msg);
      }
      core.discard_leftovers();
    }
    bus.step();
    // Phase 4: collect responses into the new multiset. M is semantically
    // unordered, but bus delivery orders responses by responder index and
    // the endpoints correlate with the responder, so re-randomize the order
    // for downstream prefix consumers (e.g. Algorithm 3's sample pool).
    for (auto& core : cores) {
      for (const auto& envelope : bus.inbox(core.self())) {
        if (envelope.payload.is_request) continue;  // delayed query: dropped
        core.accept(envelope.payload.response);
      }
      core.shuffle_multiset();
    }
  }

  HGraphSamplingResult result;
  result.rounds = bus.round();
  result.max_node_bits_per_round = meter.max_node_bits_any_round();
  result.samples.resize(n);
  result.walk_lengths.resize(n);
  result.dry_events = 0;
  for (std::size_t v = 0; v < n; ++v) {
    result.dry_events += cores[v].dry_events();
    for (const auto& entry : cores[v].multiset()) {
      result.samples[v].push_back(entry.vertex);
      result.walk_lengths[v].push_back(entry.length);
    }
  }
  result.success = result.dry_events == 0;
  return result;
}

}  // namespace reconfnet::sampling
