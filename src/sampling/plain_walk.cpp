#include "sampling/plain_walk.hpp"

#include <cmath>
#include <stdexcept>

#include "sampling/schedule.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::sampling {
namespace {

struct Token {
  std::uint64_t origin = 0;
  bool is_report = false;  ///< final hop carrying the endpoint to the origin
};

}  // namespace

std::size_t hgraph_mixing_walk_length(std::size_t n, int degree,
                                      double alpha) {
  if (degree < 6) {
    throw std::invalid_argument("mixing walk length: need degree >= 6");
  }
  const double log_base = std::log2(static_cast<double>(degree) / 4.0);
  return static_cast<std::size_t>(std::ceil(
      2.0 * alpha * std::log2(static_cast<double>(n)) / log_base));
}

PlainWalkResult run_hgraph_plain_walks(const graph::HGraph& graph,
                                       std::size_t tokens_per_node,
                                       std::size_t walk_length,
                                       support::Rng& rng) {
  const std::size_t n = graph.size();
  const std::uint64_t bits = 1 + sim::id_bits(n - 1);

  sim::WorkMeter meter;
  sim::Bus<Token> bus(&meter);

  // held[v] = tokens currently at node v.
  std::vector<std::vector<Token>> held(n);
  std::vector<support::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    rngs.push_back(rng.split(v));
    held[v].assign(tokens_per_node, Token{v, false});
  }

  PlainWalkResult result;
  result.samples.resize(n);

  for (std::size_t step = 0; step < walk_length; ++step) {
    for (std::size_t v = 0; v < n; ++v) {
      for (const Token& token : held[v]) {
        const int port = static_cast<int>(
            rngs[v].below(static_cast<std::uint64_t>(graph.degree())));
        bus.send(v, graph.neighbor(v, port), token, bits);
      }
      held[v].clear();
    }
    bus.step();
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        held[v].push_back(envelope.payload);
      }
    }
  }
  // Final hop: each holder reports its own id to the token's origin.
  for (std::size_t v = 0; v < n; ++v) {
    for (const Token& token : held[v]) {
      bus.send(v, token.origin, Token{v, true}, bits);
    }
    held[v].clear();
  }
  bus.step();
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& envelope : bus.inbox(v)) {
      result.samples[v].push_back(envelope.payload.origin);
    }
  }

  result.rounds = bus.round();
  result.max_node_bits_per_round = meter.max_node_bits_any_round();
  return result;
}

PlainWalkResult run_hypercube_plain_walks(const graph::Hypercube& cube,
                                          std::size_t tokens_per_node,
                                          support::Rng& rng) {
  const auto n = cube.size();
  const std::uint64_t bits = 1 + sim::id_bits(n - 1);

  sim::WorkMeter meter;
  sim::Bus<Token> bus(&meter);

  std::vector<std::vector<Token>> held(n);
  std::vector<support::Rng> rngs;
  rngs.reserve(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    rngs.push_back(rng.split(v));
    held[v].assign(tokens_per_node, Token{v, false});
  }

  PlainWalkResult result;
  result.samples.resize(n);

  // Round i (1-indexed): flip coordinate i with probability 1/2. A token
  // that stays put costs no communication.
  for (int i = 1; i <= cube.dimension(); ++i) {
    for (std::uint64_t v = 0; v < n; ++v) {
      std::vector<Token> staying;
      for (const Token& token : held[v]) {
        if (rngs[v].coin()) {
          bus.send(v, cube.flip(v, i), token, bits);
        } else {
          staying.push_back(token);
        }
      }
      held[v] = std::move(staying);
    }
    bus.step();
    for (std::uint64_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        held[v].push_back(envelope.payload);
      }
    }
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    for (const Token& token : held[v]) {
      bus.send(v, token.origin, Token{v, true}, bits);
    }
    held[v].clear();
  }
  bus.step();
  for (std::uint64_t v = 0; v < n; ++v) {
    for (const auto& envelope : bus.inbox(v)) {
      result.samples[v].push_back(envelope.payload.origin);
    }
  }

  result.rounds = bus.round();
  result.max_node_bits_per_round = meter.max_node_bits_any_round();
  return result;
}

}  // namespace reconfnet::sampling
