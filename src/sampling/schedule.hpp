// Multiset-size schedules for the rapid node sampling primitives (Section 3).
//
// Algorithm 1 (H-graphs) generates random walks of length >= ceil(2 alpha
// log_{d/4} n) by pointer doubling in T = ceil(log2(2 alpha log_{d/4} n))
// iterations with multiset sizes m_i = (2+eps)^{T-i} c log n (Lemma 7).
// Algorithm 2 (hypercube) uses I = ceil(log2 d) iterations with sizes
// m_i = (1+eps)^{I-i} c log n (Lemma 9).
//
// Nodes do not know n exactly; per Section 4 they hold an upper bound k on
// log log n precise up to an additive constant, which yields the estimate
// 2^k of log n. SizeEstimate models that oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reconfnet::sampling {

/// The network-size knowledge the paper grants each node (Section 4): an
/// upper bound k on log log n with k - slack <= log log n <= k, from which
/// 2^k estimates log n up to a constant factor.
class SizeEstimate {
 public:
  /// Builds the oracle from the true size with the given additive slack on
  /// the log log scale (slack = 0 gives k = ceil(log log n)).
  static SizeEstimate from_true_size(std::size_t n, int slack = 0);

  /// Direct construction from k.
  explicit SizeEstimate(int k) : k_(k) {}

  /// The upper bound k on log log n.
  [[nodiscard]] int loglog_upper() const { return k_; }

  /// The derived estimate of log2 n (i.e. 2^k).
  [[nodiscard]] std::size_t log_n_estimate() const {
    return std::size_t{1} << k_;
  }

 private:
  int k_;
};

/// Parameters shared by both primitives; defaults follow the paper with
/// constants small enough for laptop-scale simulation.
struct SamplingConfig {
  double alpha = 1.0;    ///< walk length >= 2*alpha*log_{d/4} n (Lemma 2)
  double epsilon = 1.0;  ///< schedule slack, 0 < eps <= 1 (Lemmas 7/9)
  double c = 1.0;        ///< schedule constant, c >= beta
  double beta = 1.0;     ///< required samples per node: >= beta log n
};

/// A fully resolved schedule: number of doubling iterations and the multiset
/// sizes m_0 >= m_1 >= ... >= m_T.
struct Schedule {
  int iterations = 0;                ///< T (H-graph) or I (hypercube)
  std::vector<std::size_t> m;        ///< m[i] for i = 0..iterations
  std::size_t target_walk_length = 0;  ///< walks generated have length 2^T

  [[nodiscard]] std::size_t m0() const { return m.front(); }
  [[nodiscard]] std::size_t samples_out() const { return m.back(); }
};

/// Schedule for Algorithm 1 on a d-regular H-graph (d >= 6 so that the base
/// d/4 > 1; the paper uses d >= 8).
Schedule hgraph_schedule(const SizeEstimate& est, int degree,
                         const SamplingConfig& config);

/// Schedule for Algorithm 2 on a d-dimensional hypercube. The paper assumes
/// d = 2^k and runs log log n iterations; we generalize to any d >= 1 with
/// I = ceil(log2 d) (identical for d = 2^k).
Schedule hypercube_schedule(const SizeEstimate& est, int dimension,
                            const SamplingConfig& config);

/// ceil(log2 x) for x >= 1.
int ceil_log2(std::size_t x);

}  // namespace reconfnet::sampling
