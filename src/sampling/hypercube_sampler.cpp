#include "sampling/hypercube_sampler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/bus.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::sampling {

HypercubeSamplerCore::HypercubeSamplerCore(int dimension, std::uint64_t self,
                                           Schedule schedule)
    : dimension_(dimension), self_(self), schedule_(std::move(schedule)) {
  if (dimension < 1 || dimension > 62) {
    throw std::invalid_argument("HypercubeSamplerCore: bad dimension");
  }
  blocks_.resize(static_cast<std::size_t>(dimension));
}

void HypercubeSamplerCore::init(support::Rng& rng) {
  for (int j = 1; j <= dimension_; ++j) {
    auto& block = blocks_[static_cast<std::size_t>(j - 1)];
    block.clear();
    block.reserve(schedule_.m0());
    const std::uint64_t flipped = self_ ^ (std::uint64_t{1} << (j - 1));
    for (std::size_t k = 0; k < schedule_.m0(); ++k) {
      block.push_back(rng.coin() ? flipped : self_);
    }
  }
}

bool HypercubeSamplerCore::extract(int j, support::Rng& rng,
                                   std::uint64_t& out) {
  auto& block = blocks_[static_cast<std::size_t>(j - 1)];
  if (block.empty()) {
    ++dry_events_;
    return false;
  }
  const std::size_t index = static_cast<std::size_t>(rng.below(block.size()));
  out = block[index];
  block[index] = block.back();
  block.pop_back();
  return true;
}

std::vector<std::pair<std::uint64_t, HypercubeSamplerCore::Request>>
HypercubeSamplerCore::make_requests(int iteration, support::Rng& rng) {
  const int step = 1 << iteration;
  const int half = 1 << (iteration - 1);
  const std::size_t count = schedule_.m[static_cast<std::size_t>(iteration)];
  std::vector<std::pair<std::uint64_t, Request>> requests;
  // Upper bound: `count` extractions from each of the blocks this iteration
  // touches; extraction can run dry, so the actual size may be smaller.
  requests.reserve(count * static_cast<std::size_t>(dimension_ / step + 1));
  for (int j = 1; j <= dimension_; j += step) {
    if (j + half > dimension_) continue;  // block already complete: keep it
    for (std::size_t k = 0; k < count; ++k) {
      std::uint64_t dest = 0;
      if (!extract(j, rng, dest)) break;
      requests.emplace_back(dest, Request{self_, j});
    }
  }
  return requests;
}

HypercubeSamplerCore::Response HypercubeSamplerCore::serve(
    const Request& request, int iteration, support::Rng& rng) {
  const int partner = request.j + (1 << (iteration - 1));
  if (partner < 1 || partner > dimension_) return {0, 0, false};
  std::uint64_t vertex = 0;
  if (!extract(partner, rng, vertex)) return {0, request.j, false};
  // The extracted entry already carries our random window on top of our own
  // coordinates, which equal the requester's outside its window: the vertex
  // is the spliced walk endpoint as-is.
  return {vertex, request.j, true};
}

void HypercubeSamplerCore::discard_consumed(int iteration) {
  const int step = 1 << iteration;
  const int half = 1 << (iteration - 1);
  for (int j = 1; j <= dimension_; j += step) {
    const int partner = j + half;
    if (partner > dimension_) continue;
    blocks_[static_cast<std::size_t>(j - 1)].clear();
    blocks_[static_cast<std::size_t>(partner - 1)].clear();
  }
}

void HypercubeSamplerCore::accept(const Response& response,
                                  support::Rng& rng) {
  if (!response.ok) {
    ++failed_responses_;
    return;
  }
  // Online Fisher-Yates: append, then swap with a uniformly random slot.
  // Responses arrive ordered by their source supernode, and their values
  // correlate with that source, so positional order must be re-randomized
  // for prefix consumers (the group reorganization takes the first |R(x)|
  // samples).
  auto& block = blocks_[static_cast<std::size_t>(response.j - 1)];
  block.push_back(response.vertex);
  const std::size_t slot = static_cast<std::size_t>(rng.below(block.size()));
  std::swap(block[slot], block.back());
}

const std::vector<std::uint64_t>& HypercubeSamplerCore::samples() const {
  return blocks_[0];
}

const std::vector<std::uint64_t>& HypercubeSamplerCore::block(int j) const {
  return blocks_.at(static_cast<std::size_t>(j - 1));
}

void HypercubeSamplerCore::restore_blocks(
    std::vector<std::vector<std::uint64_t>> blocks) {
  if (blocks.size() != static_cast<std::size_t>(dimension_)) {
    throw std::invalid_argument(
        "HypercubeSamplerCore::restore_blocks: wrong block count");
  }
  blocks_ = std::move(blocks);
}

int HypercubeSamplerCore::window_width(int j, int iterations_done) const {
  const int nominal = 1 << iterations_done;
  return std::min(nominal, dimension_ - j + 1);
}

bool HypercubeSamplerCore::live_block(int j, int iterations_done) {
  const int step = 1 << iterations_done;
  return (j - 1) % step == 0;
}

namespace {

struct WireMsg {
  bool is_request = false;
  HypercubeSamplerCore::Request request{};
  HypercubeSamplerCore::Response response{};
};

}  // namespace

HypercubeSamplingResult run_hypercube_sampling(const graph::Hypercube& cube,
                                               const Schedule& schedule,
                                               support::Rng& rng) {
  const auto n = cube.size();
  // One id plus a block index plus a kind bit per message.
  const std::uint64_t bits_per_msg =
      1 + sim::id_bits(n - 1) +
      static_cast<std::uint64_t>(
          ceil_log2(static_cast<std::size_t>(cube.dimension())) + 1);

  std::vector<HypercubeSamplerCore> cores;
  std::vector<support::Rng> rngs;
  cores.reserve(n);
  rngs.reserve(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    cores.emplace_back(cube.dimension(), v, schedule);
    rngs.push_back(rng.split(v));
    cores.back().init(rngs.back());
  }

  sim::WorkMeter meter;
  sim::Bus<WireMsg> bus(&meter);

  for (int i = 1; i <= schedule.iterations; ++i) {
    for (std::uint64_t v = 0; v < n; ++v) {
      for (auto& [dest, request] : cores[v].make_requests(i, rngs[v])) {
        bus.send(v, dest, WireMsg{true, request, {}}, bits_per_msg);
      }
    }
    bus.step();
    for (std::uint64_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        const auto response =
            cores[v].serve(envelope.payload.request, i, rngs[v]);
        bus.send(v, envelope.payload.request.requester,
                 WireMsg{false, {}, response}, bits_per_msg);
      }
      cores[v].discard_consumed(i);
    }
    bus.step();
    for (std::uint64_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        cores[v].accept(envelope.payload.response, rngs[v]);
      }
    }
  }

  HypercubeSamplingResult result;
  result.rounds = bus.round();
  result.max_node_bits_per_round = meter.max_node_bits_any_round();
  result.samples.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    result.dry_events += cores[v].dry_events();
    result.samples[v] = cores[v].samples();
  }
  result.success = result.dry_events == 0;
  return result;
}

}  // namespace reconfnet::sampling
