#include "adversary/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace reconfnet::adversary {
namespace {

std::size_t sponsor_cap(double rate) {
  if (rate < 1.0) throw std::invalid_argument("churn rate must be >= 1");
  return static_cast<std::size_t>(std::ceil(rate));
}

/// Survivors = members that neither leave this round nor are already
/// departing; only they may sponsor joins (paper: introduced to a node in
/// W_i intersect W_{i+1}).
std::vector<sim::NodeId> survivors(
    const ChurnView& view, const std::vector<sim::NodeId>& leaves) {
  std::unordered_set<sim::NodeId> gone(leaves.begin(), leaves.end());
  gone.insert(view.departing.begin(), view.departing.end());
  std::vector<sim::NodeId> out;
  out.reserve(view.members.size());
  for (sim::NodeId node : view.members) {
    if (!gone.contains(node)) out.push_back(node);
  }
  return out;
}

/// Assigns `join_count` fresh nodes to sponsors drawn uniformly from
/// `sponsor_pool`, respecting the per-sponsor cap.
void assign_joins(std::size_t join_count,
                  const std::vector<sim::NodeId>& sponsor_pool,
                  std::size_t cap, support::Rng& rng, sim::IdAllocator& ids,
                  ChurnBatch& batch) {
  if (sponsor_pool.empty()) return;
  std::unordered_map<sim::NodeId, std::size_t> used;
  for (std::size_t i = 0; i < join_count; ++i) {
    // Rejection-sample a sponsor with remaining budget; bail out if the cap
    // makes the requested volume infeasible.
    sim::NodeId sponsor = sim::kNoNode;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto pick = sponsor_pool[rng.below(sponsor_pool.size())];
      if (used[pick] < cap) {
        sponsor = pick;
        break;
      }
    }
    if (sponsor == sim::kNoNode) break;
    ++used[sponsor];
    batch.joins.emplace_back(ids.allocate(), sponsor);
  }
}

}  // namespace

UniformChurn::UniformChurn(double turnover, double growth, double rate,
                           support::Rng rng)
    : turnover_(turnover),
      growth_(growth),
      max_per_sponsor_(sponsor_cap(rate)),
      rng_(rng) {}

ChurnBatch UniformChurn::next(const ChurnView& view, sim::IdAllocator& ids) {
  ChurnBatch batch;
  const std::size_t n = view.members.size();
  if (n == 0) return batch;
  std::unordered_set<sim::NodeId> departing(view.departing.begin(),
                                            view.departing.end());
  const auto leave_target = static_cast<std::size_t>(
      turnover_ * static_cast<double>(n));
  // Sample leaves without replacement from members not already departing.
  std::vector<sim::NodeId> candidates;
  candidates.reserve(n);
  for (sim::NodeId node : view.members) {
    if (!departing.contains(node)) candidates.push_back(node);
  }
  rng_.shuffle(std::span<sim::NodeId>(candidates));
  const std::size_t leave_count =
      std::min(leave_target, candidates.size() > 1 ? candidates.size() - 1
                                                   : std::size_t{0});
  batch.leaves.assign(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(leave_count));

  const auto join_count = static_cast<std::size_t>(
      growth_ * static_cast<double>(leave_count));
  assign_joins(join_count, survivors(view, batch.leaves), max_per_sponsor_,
               rng_, ids, batch);
  return batch;
}

SegmentChurn::SegmentChurn(double turnover, double rate, support::Rng rng)
    : turnover_(turnover), max_per_sponsor_(sponsor_cap(rate)), rng_(rng) {}

void SegmentChurn::set_order(std::vector<sim::NodeId> order) {
  order_ = std::move(order);
}

ChurnBatch SegmentChurn::next(const ChurnView& view, sim::IdAllocator& ids) {
  ChurnBatch batch;
  const std::size_t n = view.members.size();
  if (n == 0) return batch;
  std::unordered_set<sim::NodeId> departing(view.departing.begin(),
                                            view.departing.end());
  std::unordered_set<sim::NodeId> member_set(view.members.begin(),
                                             view.members.end());
  const auto leave_target =
      static_cast<std::size_t>(turnover_ * static_cast<double>(n));
  if (!order_.empty() && leave_target > 0) {
    // Remove a contiguous run starting at a random position of the reported
    // cycle order, skipping ids that are no longer members.
    const std::size_t start = static_cast<std::size_t>(rng_.below(order_.size()));
    for (std::size_t i = 0;
         i < order_.size() && batch.leaves.size() < leave_target; ++i) {
      const sim::NodeId node = order_[(start + i) % order_.size()];
      if (member_set.contains(node) && !departing.contains(node) &&
          batch.leaves.size() + 1 < n) {
        batch.leaves.push_back(node);
      }
    }
  }
  assign_joins(batch.leaves.size(), survivors(view, batch.leaves),
               max_per_sponsor_, rng_, ids, batch);
  return batch;
}

SponsorFloodChurn::SponsorFloodChurn(double turnover, double rate,
                                     support::Rng rng)
    : turnover_(turnover), max_per_sponsor_(sponsor_cap(rate)), rng_(rng) {}

ChurnBatch SponsorFloodChurn::next(const ChurnView& view,
                                   sim::IdAllocator& ids) {
  ChurnBatch batch;
  const std::size_t n = view.members.size();
  if (n == 0) return batch;
  std::unordered_set<sim::NodeId> departing(view.departing.begin(),
                                            view.departing.end());
  std::vector<sim::NodeId> candidates;
  for (sim::NodeId node : view.members) {
    if (!departing.contains(node)) candidates.push_back(node);
  }
  rng_.shuffle(std::span<sim::NodeId>(candidates));
  const auto leave_target =
      static_cast<std::size_t>(turnover_ * static_cast<double>(n));
  const std::size_t leave_count = std::min(
      leave_target,
      candidates.size() > 1 ? candidates.size() - 1 : std::size_t{0});
  batch.leaves.assign(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(leave_count));

  const auto pool = survivors(view, batch.leaves);
  if (pool.empty()) return batch;
  const sim::NodeId victim = pool[rng_.below(pool.size())];
  const std::size_t join_count = std::min(leave_count, max_per_sponsor_);
  for (std::size_t i = 0; i < join_count; ++i) {
    batch.joins.emplace_back(ids.allocate(), victim);
  }
  return batch;
}

BurstChurn::BurstChurn(double turnover, double rate, int burst_every,
                       support::Rng rng)
    : inner_(turnover, 1.0, rate, rng), burst_every_(burst_every) {
  if (burst_every < 1) {
    throw std::invalid_argument("BurstChurn: burst_every must be >= 1");
  }
}

ChurnBatch BurstChurn::next(const ChurnView& view, sim::IdAllocator& ids) {
  ++counter_;
  if (counter_ % burst_every_ != 0) return {};
  return inner_.next(view, ids);
}

}  // namespace reconfnet::adversary
