// Adversarial churn (Section 1.1). The adversary is omniscient: it sees the
// full ground-truth state of the simulation each round. It prescribes joins
// (each new node introduced to exactly one surviving member, at most ceil(r)
// introductions per member per round) and leaves. Node ids are never reused.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

/// Omniscient view handed to a churn adversary each round.
struct ChurnView {
  sim::Round round = 0;
  /// Current members V_i (ids currently woven into the overlay).
  std::span<const sim::NodeId> members;
  /// Members that have already been prescribed to leave but are still
  /// completing the current reconfiguration (monotonicity: they may not be
  /// re-targeted).
  std::span<const sim::NodeId> departing;
};

/// One round's prescription.
struct ChurnBatch {
  /// (new node id, sponsor): the new node is introduced to the sponsor, which
  /// must be a current member that is not departing.
  std::vector<std::pair<sim::NodeId, sim::NodeId>> joins;
  /// Members prescribed to leave.
  std::vector<sim::NodeId> leaves;
};

/// Strategy interface. Implementations allocate join ids from `ids` so ids
/// are globally unique and never reused.
class ChurnAdversary {
 public:
  virtual ~ChurnAdversary() = default;
  virtual ChurnBatch next(const ChurnView& view, sim::IdAllocator& ids) = 0;
};

/// No churn at all.
class NoChurn final : public ChurnAdversary {
 public:
  ChurnBatch next(const ChurnView&, sim::IdAllocator&) override { return {}; }
};

/// Uniformly random churn: each round removes `turnover` fraction of the
/// members chosen uniformly at random and adds `growth` times as many new
/// nodes, each sponsored by a uniformly random survivor (respecting the
/// ceil(rate) introductions-per-sponsor cap).
class UniformChurn final : public ChurnAdversary {
 public:
  UniformChurn(double turnover, double growth, double rate,
               support::Rng rng);
  ChurnBatch next(const ChurnView& view, sim::IdAllocator& ids) override;

 private:
  double turnover_;
  double growth_;
  std::size_t max_per_sponsor_;
  support::Rng rng_;
};

/// Topology-aware churn that removes a *contiguous run* of nodes along the
/// overlay order it is given (the overlay reports a linear order such as one
/// Hamilton cycle via set_order). Against a static topology this is the
/// strongest cut attack; against a reconfiguring overlay the order is stale
/// by the time nodes leave.
class SegmentChurn final : public ChurnAdversary {
 public:
  SegmentChurn(double turnover, double rate, support::Rng rng);
  /// Ground-truth cycle order, updated by the harness whenever it likes
  /// (omniscient adversary).
  void set_order(std::vector<sim::NodeId> order);
  ChurnBatch next(const ChurnView& view, sim::IdAllocator& ids) override;

 private:
  double turnover_;
  std::size_t max_per_sponsor_;
  support::Rng rng_;
  std::vector<sim::NodeId> order_;
};

/// All joins are introduced to a single sponsor each round (up to the
/// per-sponsor cap), stressing join delegation.
class SponsorFloodChurn final : public ChurnAdversary {
 public:
  SponsorFloodChurn(double turnover, double rate, support::Rng rng);
  ChurnBatch next(const ChurnView& view, sim::IdAllocator& ids) override;

 private:
  double turnover_;
  std::size_t max_per_sponsor_;
  support::Rng rng_;
};

/// Alternates quiet periods with maximal bursts: `burst_every` rounds of
/// silence, then one round at the given turnover.
class BurstChurn final : public ChurnAdversary {
 public:
  BurstChurn(double turnover, double rate, int burst_every, support::Rng rng);
  ChurnBatch next(const ChurnView& view, sim::IdAllocator& ids) override;

 private:
  UniformChurn inner_;
  int burst_every_;
  int counter_ = 0;
};

}  // namespace reconfnet::adversary
