#include "adversary/dos.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace reconfnet::adversary {
namespace {

/// Node and adjacency data pulled out of the audited view in one pass, so a
/// strategy pays one logged nodes() read and one logged edges() read per
/// decision instead of one per loop iteration.
struct StaleTopology {
  std::vector<sim::NodeId> nodes;
  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> adj;
};

/// Adjacency lists of the stale view, deduplicated.
StaleTopology adjacency(const sim::StaleSnapshotView& stale) {
  StaleTopology topo;
  topo.nodes.assign(stale.nodes().begin(), stale.nodes().end());
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>> sets;
  for (sim::NodeId node : topo.nodes) sets[node];
  for (const auto& [a, b] : stale.edges()) {
    if (a == b) continue;
    sets[a].insert(b);
    sets[b].insert(a);
  }
  topo.adj.reserve(sets.size());
  // Walk the snapshot's node list (not the map) and sort each neighbor
  // list, so the adjacency vectors the strategies iterate are independent
  // of hash-bucket order.
  for (sim::NodeId node : topo.nodes) {
    const auto& nbrs = sets[node];
    std::vector<sim::NodeId> list(nbrs.begin(), nbrs.end());
    std::sort(list.begin(), list.end());
    topo.adj.emplace(node, std::move(list));
  }
  return topo;
}

bool has_nodes(const sim::StaleSnapshotView& stale) {
  return stale.has_snapshot() && !stale.nodes().empty();
}

/// Deterministic partition of the stale topology into apparent groups: scan
/// nodes in ascending id order and greedily collect each unassigned node with
/// every unassigned neighbor sharing at least 90% of its neighborhood (group
/// members are pairwise adjacent cliques in the grouped overlays). Singleton
/// "groups" are kept — against an ungrouped topology the partition degrades
/// to singletons and group wiping becomes plain blocking.
std::vector<std::vector<sim::NodeId>> apparent_groups(
    const StaleTopology& topo) {
  std::vector<sim::NodeId> order = topo.nodes;
  std::sort(order.begin(), order.end());
  std::unordered_set<sim::NodeId> assigned;
  std::vector<std::vector<sim::NodeId>> groups;
  for (sim::NodeId seed : order) {
    if (assigned.contains(seed)) continue;
    std::vector<sim::NodeId> group{seed};
    const auto it = topo.adj.find(seed);
    if (it != topo.adj.end() && !it->second.empty()) {
      const std::unordered_set<sim::NodeId> seed_nbrs(it->second.begin(),
                                                      it->second.end());
      for (sim::NodeId nbr : it->second) {
        if (assigned.contains(nbr)) continue;
        const auto nbr_it = topo.adj.find(nbr);
        if (nbr_it == topo.adj.end()) continue;
        std::size_t shared = 0;
        for (sim::NodeId x : nbr_it->second) {
          if (x == seed || seed_nbrs.contains(x)) ++shared;
        }
        if (10 * shared >= 9 * seed_nbrs.size()) group.push_back(nbr);
      }
    }
    for (sim::NodeId member : group) assigned.insert(member);
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace

sim::BlockedSet RandomDos::choose(const sim::StaleSnapshotView& stale,
                                  std::span<const sim::NodeId> universe,
                                  std::size_t budget, sim::Round) {
  sim::BlockedSet blocked;
  std::vector<sim::NodeId> pool =
      has_nodes(stale)
          ? std::vector<sim::NodeId>(stale.nodes().begin(),
                                     stale.nodes().end())
          : std::vector<sim::NodeId>(universe.begin(), universe.end());
  if (pool.empty() || budget == 0) return blocked;
  rng_.shuffle(std::span<sim::NodeId>(pool));
  const std::size_t count = std::min(budget, pool.size());
  for (std::size_t i = 0; i < count; ++i) blocked.insert(pool[i]);
  return blocked;
}

sim::BlockedSet IsolationDos::choose(const sim::StaleSnapshotView& stale,
                                     std::span<const sim::NodeId> universe,
                                     std::size_t budget, sim::Round now) {
  // Without topology information the strategy degrades to blind random
  // blocking over the public id space.
  if (!has_nodes(stale)) {
    RandomDos fallback(rng_.split(static_cast<std::uint64_t>(now)));
    return fallback.choose(sim::StaleSnapshotView{}, universe, budget, now);
  }
  sim::BlockedSet blocked;
  if (budget == 0) return blocked;
  const StaleTopology topo = adjacency(stale);
  std::vector<sim::NodeId> candidates = topo.nodes;
  rng_.shuffle(std::span<sim::NodeId>(candidates));
  // Isolate victims: block every neighbor of a victim while leaving the
  // victim itself non-blocked — the paper's argument for why a topology-aware
  // adversary defeats any static overlay of degree below its budget.
  std::unordered_set<sim::NodeId> victims;
  for (sim::NodeId victim : candidates) {
    if (blocked.contains(victim)) continue;
    const auto it = topo.adj.find(victim);
    if (it == topo.adj.end() || it->second.empty()) continue;
    // The victim's neighbors must all fit in the remaining budget and must
    // not include an earlier victim (that would un-isolate it).
    std::size_t fresh = 0;
    bool clashes = false;
    for (sim::NodeId nbr : it->second) {
      if (victims.contains(nbr)) {
        clashes = true;
        break;
      }
      if (!blocked.contains(nbr)) ++fresh;
    }
    if (clashes || blocked.size() + fresh > budget) continue;
    victims.insert(victim);
    for (sim::NodeId nbr : it->second) blocked.insert(nbr);
    if (blocked.size() >= budget) break;
  }
  // Spend leftover budget on random non-victim nodes for maximum pressure.
  for (sim::NodeId node : candidates) {
    if (blocked.size() >= budget) break;
    if (!victims.contains(node)) blocked.insert(node);
  }
  return blocked;
}

sim::BlockedSet GroupWipeDos::choose(const sim::StaleSnapshotView& stale,
                                     std::span<const sim::NodeId> universe,
                                     std::size_t budget, sim::Round now) {
  if (!has_nodes(stale)) {
    RandomDos fallback(rng_.split(static_cast<std::uint64_t>(now)));
    return fallback.choose(sim::StaleSnapshotView{}, universe, budget, now);
  }
  sim::BlockedSet blocked;
  if (budget == 0) return blocked;
  const StaleTopology topo = adjacency(stale);
  std::vector<sim::NodeId> victim_order = topo.nodes;
  rng_.shuffle(std::span<sim::NodeId>(victim_order));
  for (sim::NodeId victim : victim_order) {
    if (blocked.contains(victim)) continue;
    const auto it = topo.adj.find(victim);
    if (it == topo.adj.end()) continue;
    const std::unordered_set<sim::NodeId> victim_nbrs(it->second.begin(),
                                                      it->second.end());
    // The victim's group = victim + neighbors sharing most of its
    // neighborhood (group members are pairwise adjacent in the snapshot).
    std::vector<sim::NodeId> clique{victim};
    for (sim::NodeId nbr : it->second) {
      const auto nbr_it = topo.adj.find(nbr);
      if (nbr_it == topo.adj.end()) continue;
      std::size_t shared = 0;
      for (sim::NodeId x : nbr_it->second) {
        if (x == victim || victim_nbrs.contains(x)) ++shared;
      }
      if (10 * shared >= 9 * victim_nbrs.size()) clique.push_back(nbr);
    }
    if (blocked.size() + clique.size() > budget) continue;
    for (sim::NodeId member : clique) blocked.insert(member);
    if (blocked.size() >= budget) break;
  }
  for (sim::NodeId node : victim_order) {
    if (blocked.size() >= budget) break;
    blocked.insert(node);
  }
  return blocked;
}

sim::BlockedSet StickyRandomDos::choose(const sim::StaleSnapshotView& stale,
                                        std::span<const sim::NodeId> universe,
                                        std::size_t budget, sim::Round now) {
  if (age_ == 0 || current_.size() > budget) {
    RandomDos fresh(rng_.split(static_cast<std::uint64_t>(now)));
    current_ = fresh.choose(stale, universe, budget, now);
  }
  age_ = (age_ + 1) % hold_;
  return current_;
}

sim::BlockedSet AdaptiveDos::choose(const sim::StaleSnapshotView& stale,
                                    std::span<const sim::NodeId> universe,
                                    std::size_t budget, sim::Round now) {
  if (!has_nodes(stale)) {
    RandomDos fallback(rng_.split(static_cast<std::uint64_t>(now)));
    return fallback.choose(sim::StaleSnapshotView{}, universe, budget, now);
  }
  sim::BlockedSet blocked;
  if (budget == 0) return blocked;
  const StaleTopology topo = adjacency(stale);
  const sim::Round snapshot_round = stale.round();
  const bool new_snapshot = snapshot_round != last_snapshot_round_;
  std::vector<std::vector<sim::NodeId>> groups = apparent_groups(topo);

  if (new_snapshot && !attacked_groups_.empty()) {
    // Feedback step: of the groups we wiped at the previous snapshot, how
    // many still exist in this one? A previously attacked group "persists" if
    // some current group contains a strict majority of its members. This uses
    // only the adversary's own past output and the new stale view — the
    // legitimate learning channel of the model.
    std::unordered_map<sim::NodeId, std::size_t> group_of;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (sim::NodeId member : groups[g]) group_of.emplace(member, g);
    }
    std::size_t persisted = 0;
    for (const auto& old_group : attacked_groups_) {
      std::unordered_map<std::size_t, std::size_t> votes;
      std::size_t best = 0;
      for (sim::NodeId member : old_group) {
        const auto it = group_of.find(member);
        if (it == group_of.end()) continue;
        best = std::max(best, ++votes[it->second]);
      }
      if (2 * best > old_group.size()) ++persisted;
    }
    const double sample =
        static_cast<double>(persisted) /
        static_cast<double>(attacked_groups_.size());
    persistence_ = 0.5 * persistence_ + 0.5 * sample;
  }
  if (new_snapshot) {
    last_snapshot_round_ = snapshot_round;
    attacked_groups_.clear();
  }

  // Spend a persistence-weighted share of the budget on group wipes, smallest
  // groups first (cheapest whole-group kills), and the remainder on random
  // pressure. Ties break on the smallest member id so the plan is a pure
  // function of (stale view, own state).
  const auto targeted = static_cast<std::size_t>(
      std::llround(persistence_ * static_cast<double>(budget)));
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<sim::NodeId>& a,
               const std::vector<sim::NodeId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.front() < b.front();
            });
  for (const auto& group : groups) {
    if (blocked.size() + group.size() > targeted) break;
    for (sim::NodeId member : group) blocked.insert(member);
    attacked_groups_.push_back(group);
  }
  std::vector<sim::NodeId> filler = topo.nodes;
  rng_.shuffle(std::span<sim::NodeId>(filler));
  for (sim::NodeId node : filler) {
    if (blocked.size() >= budget) break;
    blocked.insert(node);
  }
  return blocked;
}

}  // namespace reconfnet::adversary
