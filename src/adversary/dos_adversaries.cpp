#include "adversary/dos.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace reconfnet::adversary {
namespace {

/// Adjacency lists of a snapshot, deduplicated.
std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> adjacency(
    const sim::TopologySnapshot& snap) {
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>> sets;
  for (sim::NodeId node : snap.nodes) sets[node];
  for (const auto& [a, b] : snap.edges) {
    if (a == b) continue;
    sets[a].insert(b);
    sets[b].insert(a);
  }
  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> adj;
  adj.reserve(sets.size());
  // Walk the snapshot's node list (not the map) and sort each neighbor
  // list, so the adjacency vectors the strategies iterate are independent
  // of hash-bucket order.
  for (sim::NodeId node : snap.nodes) {
    const auto& nbrs = sets[node];
    std::vector<sim::NodeId> list(nbrs.begin(), nbrs.end());
    std::sort(list.begin(), list.end());
    adj.emplace(node, std::move(list));
  }
  return adj;
}

}  // namespace

sim::BlockedSet RandomDos::choose(const sim::TopologySnapshot* stale,
                                  std::span<const sim::NodeId> universe,
                                  std::size_t budget, sim::Round) {
  sim::BlockedSet blocked;
  std::vector<sim::NodeId> pool =
      stale != nullptr && !stale->nodes.empty()
          ? stale->nodes
          : std::vector<sim::NodeId>(universe.begin(), universe.end());
  if (pool.empty() || budget == 0) return blocked;
  rng_.shuffle(std::span<sim::NodeId>(pool));
  const std::size_t count = std::min(budget, pool.size());
  for (std::size_t i = 0; i < count; ++i) blocked.insert(pool[i]);
  return blocked;
}

sim::BlockedSet IsolationDos::choose(const sim::TopologySnapshot* stale,
                                     std::span<const sim::NodeId> universe,
                                     std::size_t budget, sim::Round now) {
  // Without topology information the strategy degrades to blind random
  // blocking over the public id space.
  if (stale == nullptr || stale->nodes.empty()) {
    RandomDos fallback(rng_.split(static_cast<std::uint64_t>(now)));
    return fallback.choose(nullptr, universe, budget, now);
  }
  sim::BlockedSet blocked;
  if (budget == 0) return blocked;
  const auto adj = adjacency(*stale);
  std::vector<sim::NodeId> candidates = stale->nodes;
  rng_.shuffle(std::span<sim::NodeId>(candidates));
  // Isolate victims: block every neighbor of a victim while leaving the
  // victim itself non-blocked — the paper's argument for why a topology-aware
  // adversary defeats any static overlay of degree below its budget.
  std::unordered_set<sim::NodeId> victims;
  for (sim::NodeId victim : candidates) {
    if (blocked.contains(victim)) continue;
    const auto it = adj.find(victim);
    if (it == adj.end() || it->second.empty()) continue;
    // The victim's neighbors must all fit in the remaining budget and must
    // not include an earlier victim (that would un-isolate it).
    std::size_t fresh = 0;
    bool clashes = false;
    for (sim::NodeId nbr : it->second) {
      if (victims.contains(nbr)) {
        clashes = true;
        break;
      }
      if (!blocked.contains(nbr)) ++fresh;
    }
    if (clashes || blocked.size() + fresh > budget) continue;
    victims.insert(victim);
    for (sim::NodeId nbr : it->second) blocked.insert(nbr);
    if (blocked.size() >= budget) break;
  }
  // Spend leftover budget on random non-victim nodes for maximum pressure.
  for (sim::NodeId node : candidates) {
    if (blocked.size() >= budget) break;
    if (!victims.contains(node)) blocked.insert(node);
  }
  return blocked;
}

sim::BlockedSet GroupWipeDos::choose(const sim::TopologySnapshot* stale,
                                     std::span<const sim::NodeId> universe,
                                     std::size_t budget, sim::Round now) {
  if (stale == nullptr || stale->nodes.empty()) {
    RandomDos fallback(rng_.split(static_cast<std::uint64_t>(now)));
    return fallback.choose(nullptr, universe, budget, now);
  }
  sim::BlockedSet blocked;
  if (budget == 0) return blocked;
  const auto adj = adjacency(*stale);
  std::vector<sim::NodeId> victim_order = stale->nodes;
  rng_.shuffle(std::span<sim::NodeId>(victim_order));
  for (sim::NodeId victim : victim_order) {
    if (blocked.contains(victim)) continue;
    const auto it = adj.find(victim);
    if (it == adj.end()) continue;
    const std::unordered_set<sim::NodeId> victim_nbrs(it->second.begin(),
                                                      it->second.end());
    // The victim's group = victim + neighbors sharing most of its
    // neighborhood (group members are pairwise adjacent in the snapshot).
    std::vector<sim::NodeId> clique{victim};
    for (sim::NodeId nbr : it->second) {
      const auto nbr_it = adj.find(nbr);
      if (nbr_it == adj.end()) continue;
      std::size_t shared = 0;
      for (sim::NodeId x : nbr_it->second) {
        if (x == victim || victim_nbrs.contains(x)) ++shared;
      }
      if (10 * shared >= 9 * victim_nbrs.size()) clique.push_back(nbr);
    }
    if (blocked.size() + clique.size() > budget) continue;
    for (sim::NodeId member : clique) blocked.insert(member);
    if (blocked.size() >= budget) break;
  }
  for (sim::NodeId node : victim_order) {
    if (blocked.size() >= budget) break;
    blocked.insert(node);
  }
  return blocked;
}

sim::BlockedSet StickyRandomDos::choose(const sim::TopologySnapshot* stale,
                                        std::span<const sim::NodeId> universe,
                                        std::size_t budget, sim::Round now) {
  if (age_ == 0 || current_.size() > budget) {
    RandomDos fresh(rng_.split(static_cast<std::uint64_t>(now)));
    current_ = fresh.choose(stale, universe, budget, now);
  }
  age_ = (age_ + 1) % hold_;
  return current_;
}

}  // namespace reconfnet::adversary
