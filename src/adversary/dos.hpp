// DoS adversaries (Section 1.1). An r-bounded t-late adversary may block any
// r-fraction of the current nodes each round but only sees the overlay
// topology as it was at least t rounds ago. Lateness is enforced by the
// harness and machine-checked from both sides: strategies receive an
// access-audited sim::StaleSnapshotView (never live state), and
// reconfnet_oraclecheck statically verifies that adversary code touches only
// the permitted read surface declared in tools/oraclecheck/oracle.toml.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "sim/blocked.hpp"
#include "sim/stale_view.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

/// Strategy interface. `stale` is the harness-served view of the freshest
/// snapshot that is at least the configured lateness old (empty if none
/// exists yet); `universe` is the publicly known id space (an adversary
/// without topology information can still block ids blindly); `budget` is the
/// maximum number of nodes the adversary may block this round.
class DosAdversary {
 public:
  virtual ~DosAdversary() = default;
  virtual sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                                 std::span<const sim::NodeId> universe,
                                 std::size_t budget, sim::Round now) = 0;
};

/// Blocks nothing.
class NoDos final : public DosAdversary {
 public:
  sim::BlockedSet choose(const sim::StaleSnapshotView&,
                         std::span<const sim::NodeId>, std::size_t,
                         sim::Round) override {
    return {};
  }
};

/// Blocks a uniformly random `budget`-subset of the (stale) node set.
class RandomDos final : public DosAdversary {
 public:
  explicit RandomDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Isolation attack: repeatedly picks a victim and blocks its entire closed
/// neighborhood in the stale topology until the budget is exhausted. Against
/// a static overlay with degree < budget this disconnects the network even
/// for large lateness; against the reconfiguring overlay the stale
/// neighborhood no longer matches the live one.
class IsolationDos final : public DosAdversary {
 public:
  explicit IsolationDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Clique attack tuned against the grouped-hypercube overlay of Section 5:
/// in the stale topology the groups appear as cliques, so the adversary
/// greedily blocks whole cliques (a victim plus every neighbor sharing 90% of
/// its neighborhood) hoping to silence an entire group.
class GroupWipeDos final : public DosAdversary {
 public:
  explicit GroupWipeDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Blocks the same random set for `hold` consecutive rounds before rerolling;
/// models an attacker with slow retargeting.
class StickyRandomDos final : public DosAdversary {
 public:
  StickyRandomDos(support::Rng rng, int hold) : rng_(rng), hold_(hold) {}
  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
  int hold_;
  int age_ = 0;
  sim::BlockedSet current_;
};

/// Adaptive group-learning attack (ROADMAP item 5). The adversary partitions
/// each new stale snapshot into apparent groups (near-cliques), wipes whole
/// groups, and then *learns from its own blocked-set feedback*: when the next
/// stale snapshot arrives it checks whether the groups it attacked last time
/// still exist, and keeps an exponential moving average `persistence` of how
/// often they do. Against a static overlay persistence converges to 1 and the
/// full budget goes into group wipes; against the reconfiguring overlay with
/// lateness >= one epoch the attacked groups have dissolved by the time the
/// adversary can observe the outcome, persistence decays toward 0, and the
/// strategy degrades to random blocking — exactly the paper's Section 5
/// claim, measured from the adversary's side. Everything it consumes (stale
/// view, public universe, its own past choices) is inside the permitted read
/// surface of oracle.toml; the point of this strategy is to demonstrate that
/// a *learning* adversary needs no contraband information channel.
class AdaptiveDos final : public DosAdversary {
 public:
  explicit AdaptiveDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::StaleSnapshotView& stale,
                         std::span<const sim::NodeId> universe,
                         std::size_t budget, sim::Round now) override;

  /// Current estimate in [0, 1] of how often an attacked group survives until
  /// the adversary can next observe it. Exposed for tests and benches.
  [[nodiscard]] double persistence() const { return persistence_; }

 private:
  support::Rng rng_;
  // Optimistic prior: assume the overlay is static until feedback says
  // otherwise (the strongest opening move against a non-reconfiguring
  // target).
  double persistence_ = 1.0;
  sim::Round last_snapshot_round_ = -1;  // no snapshot observed yet
  // Groups this adversary chose to wipe at the previous snapshot — its own
  // output, remembered as feedback. Each group is sorted.
  std::vector<std::vector<sim::NodeId>> attacked_groups_;
};

}  // namespace reconfnet::adversary
