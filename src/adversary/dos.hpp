// DoS adversaries (Section 1.1). An r-bounded t-late adversary may block any
// r-fraction of the current nodes each round but only sees the overlay
// topology as it was at least t rounds ago. Lateness is enforced by the
// harness: strategies receive a stale TopologySnapshot, never live state.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "sim/blocked.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::adversary {

/// Strategy interface. `stale` is the freshest snapshot that is at least the
/// configured lateness old (nullptr if none exists yet); `universe` is the
/// publicly known id space (an adversary without topology information can
/// still block ids blindly); `budget` is the maximum number of nodes the
/// adversary may block this round.
class DosAdversary {
 public:
  virtual ~DosAdversary() = default;
  virtual sim::BlockedSet choose(const sim::TopologySnapshot* stale,
                                 std::span<const sim::NodeId> universe,
                                 std::size_t budget, sim::Round now) = 0;
};

/// Blocks nothing.
class NoDos final : public DosAdversary {
 public:
  sim::BlockedSet choose(const sim::TopologySnapshot*,
                         std::span<const sim::NodeId>, std::size_t,
                         sim::Round) override {
    return {};
  }
};

/// Blocks a uniformly random `budget`-subset of the (stale) node set.
class RandomDos final : public DosAdversary {
 public:
  explicit RandomDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::TopologySnapshot* stale,
                                std::span<const sim::NodeId> universe,
                                std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Isolation attack: repeatedly picks a victim and blocks its entire closed
/// neighborhood in the stale topology until the budget is exhausted. Against
/// a static overlay with degree < budget this disconnects the network even
/// for large lateness; against the reconfiguring overlay the stale
/// neighborhood no longer matches the live one.
class IsolationDos final : public DosAdversary {
 public:
  explicit IsolationDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::TopologySnapshot* stale,
                                std::span<const sim::NodeId> universe,
                                std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Clique attack tuned against the grouped-hypercube overlay of Section 5:
/// in the stale topology the groups appear as cliques, so the adversary
/// greedily blocks whole cliques (a victim plus every neighbor sharing 90% of
/// its neighborhood) hoping to silence an entire group.
class GroupWipeDos final : public DosAdversary {
 public:
  explicit GroupWipeDos(support::Rng rng) : rng_(rng) {}
  sim::BlockedSet choose(const sim::TopologySnapshot* stale,
                                std::span<const sim::NodeId> universe,
                                std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
};

/// Blocks the same random set for `hold` consecutive rounds before rerolling;
/// models an attacker with slow retargeting.
class StickyRandomDos final : public DosAdversary {
 public:
  StickyRandomDos(support::Rng rng, int hold) : rng_(rng), hold_(hold) {}
  sim::BlockedSet choose(const sim::TopologySnapshot* stale,
                                std::span<const sim::NodeId> universe,
                                std::size_t budget, sim::Round now) override;

 private:
  support::Rng rng_;
  int hold_;
  int age_ = 0;
  sim::BlockedSet current_;
};

}  // namespace reconfnet::adversary
