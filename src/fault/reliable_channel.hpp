// Reliable delivery on top of the lossy bus (DESIGN.md §10): an ack/timeout/
// retry wrapper with capped binary exponential backoff (in rounds) and
// receiver-side deduplication by sequence number. The paper's model never
// loses messages, so the bare protocols have no retransmission story; the
// overlays opt into this wrapper at their Bus edges when running under a
// FaultPlan.
//
// Wire format (accounted against both endpoints' communication work):
//   data: 1 kind bit + kReliableSeqBits sequence number + the payload bits
//   ack:  1 kind bit + kReliableSeqBits sequence number
// Sequence numbers are unique per channel instance, so dedup needs no
// per-sender state. Every data receipt is (re-)acked — the previous ack may
// itself have been lost — and duplicates are suppressed before the caller
// sees them (at-most-once; audited by audit::check_at_most_once).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "fault/plan.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"

namespace reconfnet::fault {

// Retry/ack constants, pinned by tools/protocheck/protocol.toml.
inline constexpr std::uint64_t kReliableSeqBits = 32;
inline constexpr std::uint64_t kReliableHeaderBits = 1 + kReliableSeqBits;
inline constexpr std::uint64_t kReliableAckBits = 1 + kReliableSeqBits;
inline constexpr sim::Round kReliableInitialTimeoutRounds = 2;
inline constexpr sim::Round kReliableBackoffCapRounds = 16;

/// Ack/retry wrapper around one Bus. The caller drives the same synchronous
/// skeleton as a bare bus — receive(v) for every node, compute, send(...),
/// step() — and the channel retransmits unacked messages underneath.
template <typename Payload>
class ReliableChannel {
 public:
  /// On-the-wire message: a data copy or an ack for one sequence number.
  struct ReliableMsg {
    bool is_ack = false;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  struct Config {
    sim::Round initial_timeout = kReliableInitialTimeoutRounds;
    sim::Round backoff_cap = kReliableBackoffCapRounds;
    int max_retries = 0;  ///< 0 = retry until acked
    /// Wire width of the sequence number; sequence numbers wrap at 2^bits.
    /// The default matches the pinned wire format; tests shrink it to force
    /// the wraparound path without 2^32 sends.
    std::uint64_t seq_bits = kReliableSeqBits;
  };

  struct Counters {
    std::uint64_t data_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t abandoned = 0;   ///< pendings dropped before an ack came
    std::uint64_t resets = 0;      ///< explicit reset() calls
    std::uint64_t seq_wraps = 0;   ///< sequence space exhaustions survived
  };

  /// Why a queued send was given up on. Every abandonment is surfaced as a
  /// typed record (take_abandoned()), never just a counter bump.
  enum class AbandonReason {
    kRetryBudget,  ///< max_retries spent without an ack
    kReset,        ///< caller reset the channel with sends in flight
    kSeqWrap,      ///< sequence space wrapped; a stale era cannot be acked
  };

  /// One send the channel stopped retrying, with enough context for the
  /// caller to re-issue or escalate.
  struct AbandonedSend {
    sim::NodeId from = sim::kNoNode;
    sim::NodeId to = sim::kNoNode;
    std::uint64_t seq = 0;
    int retries = 0;
    AbandonReason reason = AbandonReason::kRetryBudget;
  };

 private:
  /// One in-flight (sent, not yet acked) message.
  struct Pending {
    sim::NodeId from = sim::kNoNode;
    sim::NodeId to = sim::kNoNode;
    ReliableMsg wire{};
    std::uint64_t bits = 0;      ///< full wire size, header included
    sim::Round next_retry = 0;   ///< bus round at which to retransmit
    sim::Round timeout = 0;      ///< current backoff interval
    int retries = 0;
  };

  // State precedes the methods: the protocol-conformance checker
  // (tools/protocheck) attributes send/inbox/step sites to the nearest
  // preceding Bus binding.
  sim::Bus<ReliableMsg> bus_;
  Config config_;
  /// seq -> in-flight send; ordered so the retransmit scan is deterministic.
  std::map<std::uint64_t, Pending> pending_;
  /// Sequence numbers accepted so far (lookup only, never iterated).
  std::unordered_set<std::uint64_t> accepted_;
  std::vector<audit::DeliveryRecord> delivery_log_;
  std::uint64_t next_seq_ = 0;
  Counters counters_;
  std::vector<AbandonedSend> abandoned_log_;

  [[nodiscard]] std::uint64_t seq_mask() const {
    return config_.seq_bits >= 64 ? ~0ull : (1ull << config_.seq_bits) - 1;
  }

  /// Drops one in-flight send, recording the typed reason.
  void abandon(const Pending& entry, AbandonReason reason) {
    abandoned_log_.push_back(
        {entry.from, entry.to, entry.wire.seq, entry.retries, reason});
    ++counters_.abandoned;
  }

 public:
  explicit ReliableChannel(sim::WorkMeter* meter = nullptr,
                           sim::DeliveryHook* fault_hook = nullptr,
                           Config config = {})
      : bus_(meter), config_(config) {
    bus_.set_fault_hook(fault_hook);
  }

  /// Queues one payload for reliable delivery. `payload_bits` is the bare
  /// payload's wire size; the channel adds its header on top.
  void send(sim::NodeId from, sim::NodeId to, Payload payload,
            std::uint64_t payload_bits) {
    const std::uint64_t data_bits = payload_bits + kReliableHeaderBits;
    if (next_seq_ > seq_mask()) {
      // Sequence space exhausted: start a fresh dedup era. Anything still
      // unacked is from 2^seq_bits sends ago — surface it as a typed
      // abandonment rather than risk its stale ack cancelling a reused
      // sequence number, and clear the dedup state so reused numbers are
      // not misread as duplicates.
      ++counters_.seq_wraps;
      for (auto& [seq, entry] : pending_) {
        abandon(entry, AbandonReason::kSeqWrap);
      }
      pending_.clear();
      accepted_.clear();
      delivery_log_.clear();
      next_seq_ = 0;
    }
    ReliableMsg wire;
    wire.seq = next_seq_++;
    wire.payload = std::move(payload);
    Pending entry;
    entry.from = from;
    entry.to = to;
    entry.wire = wire;
    entry.bits = data_bits;
    entry.next_retry = bus_.round() + config_.initial_timeout;
    entry.timeout = config_.initial_timeout;
    bus_.send(from, to, wire, data_bits);
    ++counters_.data_sent;
    pending_.emplace(entry.wire.seq, std::move(entry));
  }

  /// Drains `node`'s inbox: consumes acks, acks every data receipt, dedups,
  /// and returns the newly accepted payloads in arrival order.
  std::vector<sim::Envelope<Payload>> receive(sim::NodeId node) {
    std::vector<sim::Envelope<Payload>> fresh;
    for (const auto& envelope : bus_.inbox(node)) {
      const ReliableMsg& wire = envelope.payload;
      if (wire.is_ack) {
        pending_.erase(wire.seq);
        continue;
      }
      // Always ack, even duplicates: the previous ack may have been lost.
      ReliableMsg ack;
      ack.is_ack = true;
      ack.seq = wire.seq;
      bus_.send(node, envelope.from, ack, kReliableAckBits);
      ++counters_.acks_sent;
      if (!accepted_.insert(wire.seq).second) {
        ++counters_.duplicates_suppressed;
        continue;
      }
      ++counters_.delivered;
      delivery_log_.push_back({node, envelope.from, wire.seq});
      fresh.push_back({envelope.from, node, wire.payload});
    }
    return fresh;
  }

  /// Advances the round boundary: retransmits every in-flight message whose
  /// timeout expired (doubling it, capped at backoff_cap), drops the ones
  /// out of retries, then steps the underlying bus.
  void step(const sim::BlockedSet& blocked_sending,
            const sim::BlockedSet& blocked_delivery) {
    std::vector<std::uint64_t> expired;
    for (auto& [seq, entry] : pending_) {
      if (entry.next_retry > bus_.round()) continue;
      if (config_.max_retries > 0 && entry.retries >= config_.max_retries) {
        expired.push_back(seq);
        continue;
      }
      ++entry.retries;
      ++counters_.retransmissions;
      entry.timeout = std::min(entry.timeout * 2, config_.backoff_cap);
      entry.next_retry = bus_.round() + entry.timeout;
      bus_.send(entry.from, entry.to, entry.wire, entry.bits);
    }
    for (const std::uint64_t seq : expired) {
      const auto it = pending_.find(seq);
      abandon(it->second, AbandonReason::kRetryBudget);
      pending_.erase(it);
    }
    if (audit::enabled()) {
      audit::enforce(audit::check_at_most_once(delivery_log_));
    }
    bus_.step(blocked_sending, blocked_delivery);
  }

  /// Convenience for protocols that run without a DoS adversary.
  void step() {
    static const sim::BlockedSet kNone;
    step(kNone, kNone);
  }

  /// Flushes every in-flight send — each surfaced as a typed kReset
  /// abandonment — without disturbing the sequence counter: numbering stays
  /// monotone across the reset, so an ack still crossing the bus for a
  /// pre-reset send can never cancel a post-reset one (stale-ack immunity;
  /// regression-tested in tests/fault_test.cpp).
  void reset() {
    ++counters_.resets;
    for (auto& [seq, entry] : pending_) {
      abandon(entry, AbandonReason::kReset);
    }
    pending_.clear();
  }

  /// Typed abandonment records accumulated since the last call, oldest
  /// first. Draining them is how callers learn WHICH sends were given up,
  /// not just how many.
  [[nodiscard]] std::vector<AbandonedSend> take_abandoned() {
    return std::exchange(abandoned_log_, {});
  }

  /// In-flight messages still awaiting an ack.
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  /// Messages queued on the underlying bus for the current round.
  [[nodiscard]] std::size_t queued() const { return bus_.pending(); }
  [[nodiscard]] sim::Round round() const { return bus_.round(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Accepted deliveries in order, for audit::check_at_most_once.
  [[nodiscard]] const std::vector<audit::DeliveryRecord>& delivery_log()
      const {
    return delivery_log_;
  }
};

}  // namespace reconfnet::fault
