// Declarative description of an injected fault environment (DESIGN.md §10).
//
// The paper's model (Section 1.1) is perfectly synchronous and lossless: the
// only failures are adversarial churn and the DoS blocking rule. A FaultPlan
// describes everything the model leaves out — message loss (i.i.d. and
// bursty), bounded delay, duplication, reordering, node crashes, and
// correlated partitions — as plain data. The FaultInjector turns a plan plus
// a support::Rng into a deterministic sim::DeliveryHook; the same plan and
// seed always produce the same fault schedule, independent of --jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::fault {

/// Two-state Gilbert-Elliott loss channel, evaluated per directed (from, to)
/// pair and advanced once per message on that channel. Burst lengths are
/// geometric: the mean number of consecutive messages spent in the bad state
/// is 1 / exit_bad.
struct GilbertElliott {
  double enter_bad = 0.0;  ///< P(good -> bad) per message
  double exit_bad = 0.0;   ///< P(bad -> good) per message
  double loss_good = 0.0;  ///< loss probability while in the good state
  double loss_bad = 0.0;   ///< loss probability while in the bad state

  [[nodiscard]] bool active() const {
    return enter_bad > 0.0 || loss_good > 0.0 || loss_bad > 0.0;
  }
};

/// One correlated partition: from clock `start` (inclusive) until `heal`
/// (exclusive) every message crossing the cut is dropped. Sides are assigned
/// either by id threshold (`id_below` set: side A = ids below it) or by a
/// salted hash of the node id (a pseudo-random balanced cut).
struct PartitionEvent {
  sim::Round start = 0;
  sim::Round heal = 0;
  sim::NodeId id_below = sim::kNoNode;  ///< kNoNode = salted hash split
  std::uint64_t salt = 0;
};

/// One scripted crash: `node` is down from clock `at` (inclusive) until
/// `restart` (exclusive); restart < 0 means crash-stop (down forever). A
/// restarted node has lost all protocol state — the paper's model never
/// reuses ids (Section 1.1), so rejoining means the join procedure with a
/// fresh id; the injector only silences the old one.
struct CrashEvent {
  sim::NodeId node = sim::kNoNode;
  sim::Round at = 0;
  sim::Round restart = -1;
};

/// Composable description of the injected faults. All probabilities are per
/// message (crash_rate is per node per clock tick); every field defaults to
/// "off", and a default-constructed plan is the explicit no-fault environment.
struct FaultPlan {
  /// i.i.d. message loss probability.
  double loss = 0.0;
  /// Bursty loss on top of (evaluated before) the i.i.d. loss.
  GilbertElliott burst;
  /// Probability that a surviving message is duplicated (one extra copy).
  double duplicate = 0.0;
  /// Probability that a copy is delayed; the delay is uniform in
  /// [1, max_delay] rounds (bounded partial asynchrony).
  double delay = 0.0;
  sim::Round max_delay = 0;
  /// Permute every inbox uniformly at random each round.
  bool reorder = false;
  /// Per-node per-tick crash probability; a crashed node restarts after
  /// restart_after ticks (restart_after < 0 = crash-stop).
  double crash_rate = 0.0;
  sim::Round restart_after = -1;
  /// Scripted crashes and partitions, on top of the random ones.
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;

  /// The explicit no-fault environment: an injector driven by this plan is a
  /// byte-identical no-op (it consumes no randomness).
  [[nodiscard]] static FaultPlan none() { return {}; }

  [[nodiscard]] bool has_crashes() const {
    return crash_rate > 0.0 || !crashes.empty();
  }

  [[nodiscard]] bool enabled() const {
    return loss > 0.0 || burst.active() || duplicate > 0.0 ||
           (delay > 0.0 && max_delay > 0) || reorder || has_crashes() ||
           !partitions.empty();
  }

  // Builder-style helpers so benches read as one declarative expression.
  FaultPlan& with_loss(double p) {
    loss = p;
    return *this;
  }
  FaultPlan& with_burst(GilbertElliott ge) {
    burst = ge;
    return *this;
  }
  FaultPlan& with_duplication(double p) {
    duplicate = p;
    return *this;
  }
  FaultPlan& with_delay(double p, sim::Round max_rounds) {
    delay = p;
    max_delay = max_rounds;
    return *this;
  }
  FaultPlan& with_reordering() {
    reorder = true;
    return *this;
  }
  FaultPlan& with_crash_rate(double per_node_per_tick, sim::Round restart) {
    crash_rate = per_node_per_tick;
    restart_after = restart;
    return *this;
  }
  FaultPlan& with_crash(CrashEvent event) {
    crashes.push_back(event);
    return *this;
  }
  FaultPlan& with_partition(PartitionEvent event) {
    partitions.push_back(event);
    return *this;
  }
};

}  // namespace reconfnet::fault
