#include "fault/injector.hpp"

#include <algorithm>

namespace reconfnet::fault {

FaultInjector::FaultInjector(FaultPlan plan, support::Rng rng)
    : plan_(std::move(plan)), rng_(rng.split(0)) {
  // Hash salts come from a sibling stream so schedule queries never touch
  // the per-message stream, whatever the plan enables.
  support::Rng salts = rng.split(1);
  crash_salt_ = salts.next();
  partition_salt_ = salts.next();
}

void FaultInjector::on_message(sim::NodeId from, sim::NodeId to,
                               sim::Round /*round*/,
                               std::vector<sim::Round>& deliveries) {
  ++counters_.offered;
  // Every branch below guards its Rng draw behind the feature being enabled,
  // so disabled features consume nothing and a FaultPlan::none() injector is
  // a stream-neutral no-op.
  if (plan_.has_crashes() &&
      (is_crashed(from, clock_) || is_crashed(to, clock_ + 1))) {
    // A crashed sender cannot have sent this round; a receiver down in the
    // delivery round loses the message along with the rest of its state.
    ++counters_.crash_drops;
    return;
  }
  if (!plan_.partitions.empty() && partitioned(from, to, clock_)) {
    ++counters_.partition_drops;
    return;
  }
  if (plan_.burst.active()) {
    Channel& channel = channels_[{from, to}];
    const double p_loss =
        channel.bad ? plan_.burst.loss_bad : plan_.burst.loss_good;
    const bool lost = p_loss > 0.0 && rng_.bernoulli(p_loss);
    const double p_flip =
        channel.bad ? plan_.burst.exit_bad : plan_.burst.enter_bad;
    if (p_flip > 0.0 && rng_.bernoulli(p_flip)) channel.bad = !channel.bad;
    if (lost) {
      ++counters_.lost_burst;
      return;
    }
  }
  if (plan_.loss > 0.0 && rng_.bernoulli(plan_.loss)) {
    ++counters_.lost_iid;
    return;
  }
  const bool duplicated =
      plan_.duplicate > 0.0 && rng_.bernoulli(plan_.duplicate);
  if (duplicated) ++counters_.duplicated;
  const std::size_t copies = duplicated ? 2 : 1;
  for (std::size_t copy = 0; copy < copies; ++copy) {
    sim::Round delay = 0;
    if (plan_.delay > 0.0 && plan_.max_delay > 0 &&
        rng_.bernoulli(plan_.delay)) {
      delay = 1 + static_cast<sim::Round>(rng_.below(
                      static_cast<std::uint64_t>(plan_.max_delay)));
    }
    if (delay > 0) ++counters_.delayed_copies;
    deliveries.push_back(delay);
  }
}

bool FaultInjector::reorder(sim::NodeId /*node*/, sim::Round /*round*/,
                            std::size_t count,
                            std::vector<std::size_t>& perm) {
  // The bus asks in ascending node order (its touched list is sorted), so
  // the draws here are consumed in a reproducible order.
  if (!plan_.reorder || count < 2) return false;
  const std::vector<std::size_t> permutation = rng_.permutation(count);
  perm.assign(permutation.begin(), permutation.end());
  ++counters_.reordered_inboxes;
  return true;
}

void FaultInjector::on_step(sim::Round /*round*/) { ++clock_; }

bool FaultInjector::is_crashed(sim::NodeId node, sim::Round tick) const {
  for (const CrashEvent& event : plan_.crashes) {
    if (event.node != node || tick < event.at) continue;
    if (event.restart < 0 || tick < event.restart) return true;
  }
  if (plan_.crash_rate > 0.0) return randomly_crashed(node, tick);
  return false;
}

bool FaultInjector::randomly_crashed(sim::NodeId node, sim::Round tick) const {
  if (tick < 0) return false;
  if (plan_.restart_after >= 0) {
    // Crash-restart: down at `tick` iff some tick in the trailing window of
    // restart_after ticks drew a crash. O(window) pure draws per query.
    const sim::Round window = std::max<sim::Round>(plan_.restart_after, 1);
    const sim::Round begin = tick >= window ? tick - window + 1 : 0;
    for (sim::Round s = begin; s <= tick; ++s) {
      if (hash_uniform(crash_salt_, node, s) < plan_.crash_rate) return true;
    }
    return false;
  }
  // Crash-stop: down from the first crashing tick on, memoized per node.
  CrashScan& scan = crash_scan_[node];
  while (scan.first_crash < 0 && scan.scanned_to <= tick) {
    if (hash_uniform(crash_salt_, node, scan.scanned_to) < plan_.crash_rate) {
      scan.first_crash = scan.scanned_to;
    }
    ++scan.scanned_to;
  }
  return scan.first_crash >= 0 && scan.first_crash <= tick;
}

bool FaultInjector::partitioned(sim::NodeId a, sim::NodeId b,
                                sim::Round tick) const {
  for (const PartitionEvent& event : plan_.partitions) {
    if (tick < event.start || tick >= event.heal) continue;
    if (side_a(a, event) != side_a(b, event)) return true;
  }
  return false;
}

bool FaultInjector::side_a(sim::NodeId node,
                           const PartitionEvent& event) const {
  if (event.id_below != sim::kNoNode) return node < event.id_below;
  return hash_uniform(partition_salt_ ^ event.salt, node, 0) < 0.5;
}

double FaultInjector::hash_uniform(std::uint64_t salt, sim::NodeId node,
                                   sim::Round tick) const {
  std::uint64_t state = salt ^ (node * 0x9E3779B97F4A7C15ULL) ^
                        (static_cast<std::uint64_t>(tick) *
                         0xD1B54A32D192ED03ULL);
  const std::uint64_t bits = support::splitmix64(state);
  // 53 high-quality bits into [0, 1), same mapping as Rng::uniform.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace reconfnet::fault
