// Deterministic fault injector: turns a FaultPlan plus a support::Rng into a
// sim::DeliveryHook (DESIGN.md §10).
//
// Determinism discipline: every random decision is either (a) drawn from the
// injector's own Rng in message order — which the bus fixes: outbox order is
// send order — or (b) a pure splitmix64 hash of (salt, node, clock), so that
// schedule queries (is this node crashed now?) are independent of query
// order. A plan with a feature disabled draws nothing for that feature, so
// partially-enabled plans never shift the stream of the enabled ones, and
// FaultPlan::none() consumes no randomness at all.
//
// Clock semantics: round-indexed schedules (partitions, crashes) run on the
// injector's own clock, advanced once per observed Bus::step via on_step.
// Several buses sharing one injector (the churn pipeline runs one bus per
// phase) therefore see a single monotonic timeline of communication rounds.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::fault {

/// Implements the bus delivery hook for one FaultPlan. Attach with
/// Bus::set_fault_hook; one injector may serve several buses (they share the
/// fault clock and the loss channels).
class FaultInjector final : public sim::DeliveryHook {
 public:
  /// Event counts, for tests and bench reporting.
  struct Counters {
    std::uint64_t offered = 0;          ///< messages the bus consulted us on
    std::uint64_t lost_iid = 0;         ///< dropped by i.i.d. loss
    std::uint64_t lost_burst = 0;       ///< dropped by the Gilbert-Elliott channel
    std::uint64_t crash_drops = 0;      ///< endpoint crashed
    std::uint64_t partition_drops = 0;  ///< endpoints on opposite sides of a cut
    std::uint64_t duplicated = 0;       ///< messages that gained an extra copy
    std::uint64_t delayed_copies = 0;   ///< copies assigned a positive delay
    std::uint64_t reordered_inboxes = 0;
  };

  FaultInjector(FaultPlan plan, support::Rng rng);

  void on_message(sim::NodeId from, sim::NodeId to, sim::Round round,
                  std::vector<sim::Round>& deliveries) override;
  bool reorder(sim::NodeId node, sim::Round round, std::size_t count,
               std::vector<std::size_t>& perm) override;
  void on_step(sim::Round round) override;

  /// True iff `node` is down at injector-clock tick `tick` (scripted crashes
  /// plus the hash-scheduled random ones). Pure in (node, tick): answers do
  /// not depend on query order.
  [[nodiscard]] bool is_crashed(sim::NodeId node, sim::Round tick) const;

  /// True iff a partition separates `a` from `b` at tick `tick`.
  [[nodiscard]] bool partitioned(sim::NodeId a, sim::NodeId b,
                                 sim::Round tick) const;

  /// Which side of `event`'s cut `node` falls on.
  [[nodiscard]] bool side_a(sim::NodeId node,
                            const PartitionEvent& event) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// The injector's clock: number of Bus::step boundaries observed so far.
  [[nodiscard]] sim::Round ticks() const { return clock_; }

 private:
  /// Gilbert-Elliott channel state for one directed (from, to) pair.
  struct Channel {
    bool bad = false;
  };

  /// Memo for the crash-stop schedule of one node: ticks [0, scanned_to)
  /// have been examined; first_crash is the earliest crashing tick found,
  /// -1 if none yet. Purely a cache over pure hash draws, so query order
  /// cannot change any answer.
  struct CrashScan {
    sim::Round scanned_to = 0;
    sim::Round first_crash = -1;
  };

  /// Pure hash draw in [0, 1) for (salt, node, tick) triples.
  [[nodiscard]] double hash_uniform(std::uint64_t salt, sim::NodeId node,
                                    sim::Round tick) const;
  /// Random crash schedule: true iff the pure per-tick draws put `node` in a
  /// crashed window covering `tick`.
  [[nodiscard]] bool randomly_crashed(sim::NodeId node, sim::Round tick) const;

  FaultPlan plan_;
  support::Rng rng_;
  std::uint64_t crash_salt_ = 0;
  std::uint64_t partition_salt_ = 0;
  /// Ordered map so any future iteration is deterministic; lookups dominate.
  std::map<std::pair<sim::NodeId, sim::NodeId>, Channel> channels_;
  /// Lookup-only cache (never iterated) for the crash-stop schedule.
  mutable std::unordered_map<sim::NodeId, CrashScan> crash_scan_;
  Counters counters_;
  sim::Round clock_ = 0;
};

}  // namespace reconfnet::fault
