// The DoS-resistant overlay of Section 5. Nodes form groups representing the
// supernodes of a d-dimensional hypercube (d maximal with
// 2^d <= n / (c log n)) and rebuild the groups every Theta(log log n) rounds:
// the groups jointly simulate the rapid node sampling primitive (Algorithm 2)
// for their supernodes — every available representative executes the
// supernode's step and the lowest-id available node's version is adopted —
// and a final four-round phase reassigns every node to a uniformly random
// supernode. A (1/2 - eps)-bounded adversary that only sees topology
// information at least Omega(log log n) rounds old cannot tell which nodes
// currently share a group, so w.h.p. every group keeps an available node in
// every round and the non-blocked nodes stay connected (Theorem 6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adversary/dos.hpp"
#include "dos/group_table.hpp"
#include "sampling/schedule.hpp"
#include "sim/blocked.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::dos {

class DosOverlay {
 public:
  struct Config {
    std::size_t size = 1024;
    /// Group-size constant: dimension d is maximal with
    /// 2^d <= size / (group_c * log2 size).
    double group_c = 1.0;
    sampling::SamplingConfig sampling{};
    int size_estimate_slack = 0;
    std::uint64_t seed = 1;
  };

  /// One attack scenario: strategy, enforced lateness (rounds), and the
  /// blocked fraction r of an r-bounded adversary.
  struct Attack {
    adversary::DosAdversary* adversary = nullptr;  ///< nullptr: no attack
    int lateness = 0;
    double blocked_fraction = 0.0;
  };

  struct EpochReport {
    bool success = false;
    std::string failure_reason;
    bool reorganized = false;  ///< groups were rebuilt at the end
    sim::Round rounds = 0;
    /// (group, round) pairs in which no representative was available — each
    /// one is a violation of the Lemma 17 condition.
    std::size_t silenced_group_rounds = 0;
    /// Rounds in which the non-blocked nodes were disconnected (the paper's
    /// failure event).
    std::size_t disconnected_rounds = 0;
    /// min over (group, round) of (available nodes) / |group|.
    double min_available_fraction = 1.0;
    std::size_t min_group_size = 0;  ///< after the epoch
    std::size_t max_group_size = 0;
    std::uint64_t max_node_bits_per_round = 0;
  };

  explicit DosOverlay(const Config& config);

  /// Runs one full reconfiguration epoch under the given attack.
  EpochReport run_epoch(const Attack& attack);

  /// Baseline: runs `rounds` rounds with reconfiguration switched off (the
  /// groups never change), under the same attack and metrics. This is the
  /// static overlay the paper's introduction argues cannot survive once the
  /// adversary learns the topology.
  EpochReport run_static(const Attack& attack, sim::Round rounds);

  [[nodiscard]] const GroupTable& groups() const { return groups_; }
  /// Per-round topology snapshots (what a t-late adversary observes); also
  /// the reproducibility witness compared by the determinism tests.
  [[nodiscard]] const sim::SnapshotBuffer& snapshots() const {
    return snapshots_;
  }
  [[nodiscard]] int dimension() const { return groups_.dimension(); }
  [[nodiscard]] std::size_t size() const { return groups_.size(); }
  [[nodiscard]] sim::Round round() const { return round_; }

  /// Chooses the paper's dimension: max d with 2^d <= n / (c log2 n).
  static int choose_dimension(std::size_t n, double group_c);

 private:
  struct RoundStats {
    sim::BlockedSet blocked;
  };

  Config config_;
  support::Rng rng_;
  GroupTable groups_;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> edges_;  // current topology
  sim::SnapshotBuffer snapshots_;
  sim::BlockedSet blocked_prev_;
  sim::Round round_ = 0;

  void push_snapshot();
  /// Advances one overlay round: adversary blocks, availability and
  /// connectivity are evaluated, and the per-node communication work of the
  /// ongoing state broadcast (state_bits per group member) is charged.
  void advance_round(const Attack& attack, std::uint64_t state_bits,
                     std::uint64_t extra_group_bits, EpochReport& report);
};

}  // namespace reconfnet::dos
