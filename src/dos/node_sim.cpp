#include "dos/node_sim.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::dos {
namespace {

using Core = sampling::HypercubeSamplerCore;

/// A frozen supernode state after `seq` primitive rounds.
struct Snapshot {
  Core core;
  int seq;
  Snapshot(Core state, int sequence)
      : core(std::move(state)), seq(sequence) {}
};
using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// One supernode-level sampler message, tagged for deduplication (every
/// available group member forwards every message, so receivers see up to
/// |R(x)| identical copies).
struct SuperMsg {
  std::uint64_t src = 0;
  std::uint64_t dest = 0;
  int seq = 0;
  std::uint32_t index = 0;
  bool is_request = false;
  Core::Request request{};
  Core::Response response{};
};
using OutboxPtr = std::shared_ptr<const std::vector<SuperMsg>>;

struct WireMsg {
  enum class Kind {
    kCandidate,
    kStateBroadcast,
    kSuper,
    kAssign,
    kNewGroup,
    kNeighborGroup,
  };
  Kind kind = Kind::kStateBroadcast;
  // reconfnet-protocheck: allow(RNP307) shared immutable snapshot stands in
  // for a serialized state of state_bits(...) bits, charged at every send
  SnapshotPtr state;                   // candidate / broadcast
  // reconfnet-protocheck: allow(RNP307) shared immutable outbox models the
  // forwarded supernode messages, charged as outbox size * super_bits
  OutboxPtr outbox;                    // candidate
  SuperMsg super{};                    // super
  sim::NodeId assigned = sim::kNoNode; // assign
  std::uint64_t supernode = 0;         // assign / new-group / neighbor-group
  // reconfnet-protocheck: allow(RNP307) shared immutable member list models
  // a group_bits(size)-bit membership broadcast, charged at every send
  std::shared_ptr<const std::vector<sim::NodeId>> group;  // new/neighbor
};

/// Advances a supernode state by one primitive round. Odd seq = request
/// phase (accept last responses, emit this iteration's requests); even seq =
/// response phase (serve requests, discard consumed blocks). seq 2I+1 only
/// accepts the final responses.
std::pair<Snapshot, std::vector<SuperMsg>> advance(
    const Snapshot& prev, std::span<const SuperMsg> incoming,
    int total_iterations, support::Rng& rng) {
  Snapshot next{prev.core, prev.seq + 1};
  std::vector<SuperMsg> outbox;
  const int seq = next.seq;
  const std::uint64_t self = next.core.self();
  std::uint32_t index = 0;
  if (seq % 2 == 1) {
    // Request phase of iteration (seq+1)/2.
    for (const auto& msg : incoming) {
      if (!msg.is_request) next.core.accept(msg.response, rng);
    }
    const int iteration = (seq + 1) / 2;
    if (iteration <= total_iterations) {
      for (auto& [dest, request] : next.core.make_requests(iteration, rng)) {
        outbox.push_back(
            {self, dest, seq, index++, true, request, {}});
      }
    }
  } else {
    // Response phase of iteration seq/2.
    const int iteration = seq / 2;
    for (const auto& msg : incoming) {
      if (msg.is_request) {
        const auto response = next.core.serve(msg.request, iteration, rng);
        outbox.push_back({self, msg.request.requester, seq, index++, false,
                          {}, response});
      }
    }
    next.core.discard_consumed(iteration);
  }
  return {std::move(next), std::move(outbox)};
}

}  // namespace

NodeLevelReport run_node_level_epoch(
    const GroupTable& groups, const NodeLevelConfig& config,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  NodeLevelReport report;
  const std::size_t n = groups.size();
  const int d = groups.dimension();
  const double avg_group =
      static_cast<double>(n) / static_cast<double>(groups.supernodes());

  // Schedule, with the samples-per-supernode requirement of the final phase.
  const auto estimate =
      sampling::SizeEstimate::from_true_size(n, config.size_estimate_slack);
  auto sampling_config = config.sampling;
  const double needed_c = static_cast<double>(groups.max_group_size() + 1) /
                          static_cast<double>(estimate.log_n_estimate());
  sampling_config.c = std::max(sampling_config.c, needed_c);
  sampling_config.beta = std::min(sampling_config.beta, sampling_config.c);
  const auto schedule =
      sampling::hypercube_schedule(estimate, d, sampling_config);
  const int primitive_rounds = 2 * schedule.iterations + 1;

  // Wire sizes (bits). A snapshot carries every multiset entry as a
  // supernode label plus references to that supernode's representatives.
  const auto state_bits = [&](const Snapshot& snap) -> std::uint64_t {
    std::size_t entries = 0;
    for (int j = 1; j <= d; ++j) entries += snap.core.block(j).size();
    const double per_entry =
        static_cast<double>(d) + avg_group * 64.0;
    return 32 + static_cast<std::uint64_t>(
                    static_cast<double>(entries) * per_entry);
  };
  const std::uint64_t super_bits = 64 + 16;
  const auto group_bits = [](std::size_t members) -> std::uint64_t {
    return static_cast<std::uint64_t>(members) * 64 + 16;
  };

  // Per-node state.
  struct NodeState {
    std::uint64_t supernode = 0;
    SnapshotPtr state;
    support::Rng rng{0};
  };
  std::unordered_map<sim::NodeId, NodeState> nodes;
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    for (sim::NodeId id : groups.group(x)) {
      NodeState state;
      state.supernode = x;
      Core core(d, x, schedule);
      // Phase 1 (local coin flips) must agree across the group: the paper
      // seeds it from the initial synchronized state, which we model by a
      // per-supernode stream.
      auto init_rng = rng.split(0xA000 + x);
      core.init(init_rng);
      state.state = std::make_shared<Snapshot>(std::move(core), 0);
      state.rng = rng.split(0xB0000 + id);
      nodes.emplace(id, std::move(state));
    }
  }

  sim::WorkMeter meter;
  sim::Bus<WireMsg> bus(&meter);
  bus.set_fault_hook(config.fault_hook);

  static const sim::BlockedSet kNone;
  const auto blocked_at = [&](sim::Round r) -> const sim::BlockedSet& {
    const auto index = static_cast<std::size_t>(r);
    return index < blocked_per_round.size() ? blocked_per_round[index]
                                            : kNone;
  };
  const auto is_available = [&](sim::NodeId id, sim::Round r) {
    if (blocked_at(r).contains(id)) return false;
    return r == 0 || !blocked_at(r - 1).contains(id);
  };
  const auto note_availability = [&](sim::Round r) {
    for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
      bool any = false;
      for (sim::NodeId id : groups.group(x)) {
        if (is_available(id, r)) {
          any = true;
          break;
        }
      }
      if (!any) ++report.silenced_group_rounds;
    }
  };
  const auto step_bus = [&]() {
    note_availability(bus.round());
    bus.step(blocked_at(bus.round()), blocked_at(bus.round() + 1));
  };

  // --- Sampler simulation: 2 overlay rounds per primitive round -------------
  for (int seq = 1; seq <= primitive_rounds; ++seq) {
    // Simulation round: resync, apply supernode messages, advance, send
    // candidates.
    for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
      for (sim::NodeId id : groups.group(x)) {
        if (!is_available(id, bus.round())) continue;
        auto& node = nodes.at(id);
        // Resynchronize from the freshest state seen (own or broadcast).
        SnapshotPtr best = node.state;
        std::map<std::pair<std::uint64_t, std::uint32_t>, SuperMsg> incoming;
        for (const auto& envelope : bus.inbox(id)) {
          const auto& payload = envelope.payload;
          if (payload.kind == WireMsg::Kind::kStateBroadcast &&
              (best == nullptr || payload.state->seq > best->seq)) {
            best = payload.state;
          } else if (payload.kind == WireMsg::Kind::kSuper &&
                     payload.super.seq == seq - 1) {
            incoming.emplace(
                std::make_pair(payload.super.src, payload.super.index),
                payload.super);
          }
        }
        if (best->seq > node.state->seq) {
          ++report.resyncs;
          node.state = best;
        }
        if (node.state->seq != seq - 1) continue;  // still stale: sit out
        std::vector<SuperMsg> deduped;
        deduped.reserve(incoming.size());
        for (auto& [key, msg] : incoming) deduped.push_back(msg);
        auto [next, outbox] = advance(*node.state, deduped,
                                      schedule.iterations, node.rng);
        auto candidate_state = std::make_shared<Snapshot>(std::move(next));
        auto candidate_outbox =
            std::make_shared<std::vector<SuperMsg>>(std::move(outbox));
        const auto bits =
            state_bits(*candidate_state) +
            static_cast<std::uint64_t>(candidate_outbox->size()) *
                super_bits;
        for (sim::NodeId member : groups.group(x)) {
          WireMsg msg;
          msg.kind = WireMsg::Kind::kCandidate;
          msg.state = candidate_state;
          msg.outbox = candidate_outbox;
          bus.send(id, member, std::move(msg), bits);
        }
      }
    }
    step_bus();

    // Synchronization round: adopt the lowest-id available candidate,
    // forward the supernode's messages, rebroadcast the adopted state.
    for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
      for (sim::NodeId id : groups.group(x)) {
        if (!is_available(id, bus.round())) continue;
        auto& node = nodes.at(id);
        SnapshotPtr winner;
        OutboxPtr winner_outbox;
        sim::NodeId winner_id = sim::kNoNode;
        for (const auto& envelope : bus.inbox(id)) {
          const auto& payload = envelope.payload;
          if (payload.kind != WireMsg::Kind::kCandidate) continue;
          const bool better =
              winner == nullptr || payload.state->seq > winner->seq ||
              (payload.state->seq == winner->seq &&
               envelope.from < winner_id);
          if (better) {
            winner = payload.state;
            winner_outbox = payload.outbox;
            winner_id = envelope.from;
          }
        }
        if (winner == nullptr) continue;  // group silent this step
        if (node.state->seq < winner->seq &&
            node.state->seq != winner->seq - 1) {
          ++report.resyncs;
        }
        node.state = winner;
        // Forward x's outgoing messages to every member of each target
        // group, and rebroadcast the adopted state.
        for (const auto& super : *winner_outbox) {
          for (sim::NodeId target : groups.group(super.dest)) {
            WireMsg msg;
            msg.kind = WireMsg::Kind::kSuper;
            msg.super = super;
            bus.send(id, target, std::move(msg), super_bits);
          }
        }
        const auto broadcast_bits = state_bits(*winner);
        for (sim::NodeId member : groups.group(x)) {
          WireMsg msg;
          msg.kind = WireMsg::Kind::kStateBroadcast;
          msg.state = winner;
          bus.send(id, member, std::move(msg), broadcast_bits);
        }
      }
    }
    step_bus();
  }

  // --- Reorganization (four overlay rounds) ---------------------------------
  // Round A: assignments fan out. The i-th member (by id) of R(x) goes to
  // the i-th sampled supernode; every available member of R(x) informs the
  // old group of that supernode.
  bool sample_shortage = false;
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    for (sim::NodeId id : groups.group(x)) {
      if (!is_available(id, bus.round())) continue;
      const auto& node = nodes.at(id);
      if (node.state->seq != primitive_rounds) continue;
      const auto& samples = node.state->core.samples();
      const auto& members = groups.group(x);
      if (samples.size() < members.size()) {
        sample_shortage = true;
        continue;
      }
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (sim::NodeId target : groups.group(samples[i])) {
          WireMsg msg;
          msg.kind = WireMsg::Kind::kAssign;
          msg.assigned = members[i];
          msg.supernode = samples[i];
          bus.send(id, target, std::move(msg), 64 + 16);
        }
      }
    }
  }
  step_bus();

  // Round B: each old group collects its new membership R'(x) and gossips it
  // to the new members and to the neighboring old groups.
  std::unordered_map<sim::NodeId,
                     std::shared_ptr<const std::vector<sim::NodeId>>>
      collected_new_group;  // per old-group member: R'(its supernode)
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    for (sim::NodeId id : groups.group(x)) {
      if (!is_available(id, bus.round())) continue;
      std::unordered_set<sim::NodeId> assigned;
      for (const auto& envelope : bus.inbox(id)) {
        if (envelope.payload.kind == WireMsg::Kind::kAssign &&
            envelope.payload.supernode == x) {
          assigned.insert(envelope.payload.assigned);
        }
      }
      auto fresh = std::make_shared<std::vector<sim::NodeId>>(
          assigned.begin(), assigned.end());
      std::sort(fresh->begin(), fresh->end());
      collected_new_group[id] = fresh;
      const auto bits = group_bits(fresh->size());
      // To the new members...
      for (sim::NodeId member : *fresh) {
        WireMsg msg;
        msg.kind = WireMsg::Kind::kNewGroup;
        msg.supernode = x;
        msg.group = fresh;
        bus.send(id, member, std::move(msg), bits);
      }
      // ...and to the old neighboring groups for neighbor forwarding.
      for (int bit = 0; bit < d; ++bit) {
        const std::uint64_t y = x ^ (std::uint64_t{1} << bit);
        for (sim::NodeId member : groups.group(y)) {
          WireMsg msg;
          msg.kind = WireMsg::Kind::kNewGroup;
          msg.supernode = x;
          msg.group = fresh;
          bus.send(id, member, std::move(msg), bits);
        }
      }
    }
  }
  step_bus();

  // Round C: a node receiving R'(x') that *contains its own id* has learned
  // its new group; old-group members additionally forward the neighbor
  // groups' new memberships to their own new members.
  struct Knowledge {
    std::shared_ptr<const std::vector<sim::NodeId>> own_group;
    std::uint64_t own_supernode = 0;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const std::vector<sim::NodeId>>>
        neighbors;
  };
  std::unordered_map<sim::NodeId, Knowledge> knowledge;
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    for (sim::NodeId id : groups.group(x)) {
      if (!is_available(id, bus.round())) continue;
      const auto own = collected_new_group.find(id);
      for (const auto& envelope : bus.inbox(id)) {
        const auto& payload = envelope.payload;
        if (payload.kind != WireMsg::Kind::kNewGroup) continue;
        // New-member role: this is my new group iff it lists me.
        if (std::binary_search(payload.group->begin(), payload.group->end(),
                               id)) {
          auto& know = knowledge[id];
          know.own_group = payload.group;
          know.own_supernode = payload.supernode;
        }
        // Old-member role: forward neighbor groups to my old supernode's
        // new members.
        if (payload.supernode != x && own != collected_new_group.end()) {
          for (sim::NodeId member : *own->second) {
            WireMsg msg;
            msg.kind = WireMsg::Kind::kNeighborGroup;
            msg.supernode = payload.supernode;
            msg.group = payload.group;
            bus.send(id, member, std::move(msg),
                     group_bits(payload.group->size()));
          }
        }
      }
    }
  }
  step_bus();

  // Round D: the new members collect their neighbor groups.
  // reconfnet-lint: allow(RNL005) each node reads only its own inbox and
  // writes only its own knowledge entry; nodes are independent
  for (const auto& [id, node] : nodes) {
    for (const auto& envelope : bus.inbox(id)) {
      const auto& payload = envelope.payload;
      if (payload.kind == WireMsg::Kind::kNeighborGroup) {
        knowledge[id].neighbors[payload.supernode] = payload.group;
      }
    }
  }
  step_bus();

  report.rounds = bus.round();
  report.max_node_bits_per_round = meter.max_node_bits_any_round();

  // Bus-level conservation audit (Section 1.1): over every finished round,
  // messages delivered never exceed messages sent and dropped messages
  // account exactly for the difference. The per-delivery blocking rule is
  // audited inside Bus::step itself.
  if (audit::enabled()) {
    audit::enforce(audit::check_bus_conservation(meter));
  }

  if (report.silenced_group_rounds > 0) {
    report.failure_reason = "a group was silenced";
    return report;
  }
  if (sample_shortage) {
    report.failure_reason = "too few samples for a group";
    return report;
  }

  // Ground truth: the canonical final state per supernode is whatever the
  // group's members adopted (they must all agree once they reached the final
  // primitive round), and the new groups follow from its samples.
  std::vector<std::vector<sim::NodeId>> fresh_groups(groups.supernodes());
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    const Snapshot* canonical = nullptr;
    for (sim::NodeId id : groups.group(x)) {
      const auto& state = nodes.at(id).state;
      if (state->seq != primitive_rounds) continue;
      if (canonical == nullptr) {
        canonical = state.get();
      } else if (canonical->core.samples() != state->core.samples()) {
        report.failure_reason = "replicas of a supernode state diverged";
        return report;
      }
    }
    if (canonical == nullptr) {
      report.failure_reason = "no replica completed the simulation";
      return report;
    }
    const auto& members = groups.group(x);
    const auto& samples = canonical->core.samples();
    for (std::size_t i = 0; i < members.size(); ++i) {
      fresh_groups[samples[i]].push_back(members[i]);
    }
  }
  for (auto& members : fresh_groups) std::sort(members.begin(), members.end());

  // Lemma 15 postcondition: every node that could receive in the final
  // rounds knows its correct new group and all its correct neighbor groups.
  bool consistent = true;
  const sim::Round round_c = report.rounds - 2;
  const sim::Round round_d = report.rounds - 1;
  // reconfnet-lint: allow(RNL005) AND-reduction of per-node consistency;
  // order cannot change the verdict
  for (const auto& [id, node] : nodes) {
    if (!is_available(id, round_c) || !is_available(id, round_d)) continue;
    const auto it = knowledge.find(id);
    if (it == knowledge.end() || it->second.own_group == nullptr) {
      consistent = false;
      continue;
    }
    const auto& know = it->second;
    if (*know.own_group != fresh_groups[know.own_supernode]) {
      consistent = false;
    }
    for (int bit = 0; bit < d; ++bit) {
      const std::uint64_t y = know.own_supernode ^ (std::uint64_t{1} << bit);
      const auto neighbor = know.neighbors.find(y);
      if (neighbor == know.neighbors.end() ||
          *neighbor->second != fresh_groups[y]) {
        consistent = false;
      }
    }
  }
  report.knowledge_consistent = consistent;
  if (!consistent) {
    report.failure_reason = "inconsistent group knowledge";
    return report;
  }
  if (std::any_of(fresh_groups.begin(), fresh_groups.end(),
                  [](const auto& members) { return members.empty(); })) {
    report.failure_reason = "reassignment left a supernode empty";
    return report;
  }
  report.new_groups.emplace(d, std::move(fresh_groups));
  report.success = true;
  return report;
}

}  // namespace reconfnet::dos
