#include "dos/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "graph/connectivity.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sim/stale_view.hpp"

namespace reconfnet::dos {
namespace {

/// Wire size of one supernode-level message replicated to a whole group.
constexpr std::uint64_t kIdBits = 64;

std::vector<sim::NodeId> make_ids(std::size_t n) {
  std::vector<sim::NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

}  // namespace

int DosOverlay::choose_dimension(std::size_t n, double group_c) {
  const double log_n = std::log2(static_cast<double>(n));
  const double budget = static_cast<double>(n) / (group_c * log_n);
  int d = 1;
  while ((static_cast<double>(std::uint64_t{1} << (d + 1))) <= budget &&
         d < 30) {
    ++d;
  }
  return d;
}

DosOverlay::DosOverlay(const Config& config)
    : config_(config),
      rng_(config.seed),
      groups_(GroupTable::random(choose_dimension(config.size,
                                                  config.group_c),
                                 make_ids(config.size), rng_)) {
  edges_ = groups_.overlay_edges();
  push_snapshot();
}

void DosOverlay::push_snapshot() {
  sim::TopologySnapshot snap;
  snap.round = round_;
  snap.nodes = groups_.all_nodes();
  snap.edges = edges_;
  snapshots_.push(std::move(snap));
}

void DosOverlay::advance_round(const Attack& attack,
                               std::uint64_t state_bits,
                               std::uint64_t extra_group_bits,
                               EpochReport& report) {
  const std::size_t n = groups_.size();
  sim::BlockedSet blocked;
  if (attack.adversary != nullptr) {
    const auto budget = static_cast<std::size_t>(
        attack.blocked_fraction * static_cast<double>(n));
    snapshots_.ensure_lateness_horizon(attack.lateness);
    const sim::StaleSnapshotView stale =
        sim::serve_stale(snapshots_, round_, attack.lateness);
    // The id space is public knowledge; the secret is the group structure.
    const auto universe = groups_.all_nodes();
    blocked = attack.adversary->choose(stale, universe, budget, round_);
    // Round-boundary audit: an r-bounded adversary must respect its budget
    // and may only block existing nodes (Section 1.1).
    if (audit::enabled()) {
      audit::enforce(
          audit::check_blocked_budget(blocked, budget, universe));
    }
  }

  std::uint64_t max_bits = 0;
  for (std::uint64_t x = 0; x < groups_.supernodes(); ++x) {
    const auto& members = groups_.group(x);
    const auto g = members.size();
    std::size_t available = 0;
    for (sim::NodeId node : members) {
      // Available in round i: non-blocked in rounds i-1 and i (it can both
      // receive the previous round's messages and act now).
      if (!blocked.contains(node) && !blocked_prev_.contains(node)) {
        ++available;
      }
    }
    if (available == 0) ++report.silenced_group_rounds;
    report.min_available_fraction =
        std::min(report.min_available_fraction,
                 static_cast<double>(available) / static_cast<double>(g));
    // Communication work: every available node broadcasts the supernode
    // state S(x) to all |R(x)| members and receives the broadcasts of the
    // other available members; during synchronization rounds it additionally
    // relays the supernode's outgoing messages (extra_group_bits).
    const std::uint64_t per_node_bits =
        (static_cast<std::uint64_t>(g) + available) * state_bits +
        extra_group_bits;
    max_bits = std::max(max_bits, per_node_bits);
  }
  report.max_node_bits_per_round =
      std::max(report.max_node_bits_per_round, max_bits);

  // Connectivity of the overlay restricted to non-blocked nodes.
  if (!graph::is_connected_excluding(groups_.all_nodes(), edges_, blocked)) {
    ++report.disconnected_rounds;
  }

  blocked_prev_ = std::move(blocked);
  ++round_;
  ++report.rounds;
}

DosOverlay::EpochReport DosOverlay::run_static(const Attack& attack,
                                               sim::Round rounds) {
  EpochReport report;
  // Keepalive broadcast only: one id per group member.
  const auto state_bits =
      static_cast<std::uint64_t>(groups_.max_group_size()) * kIdBits;
  for (sim::Round r = 0; r < rounds; ++r) {
    advance_round(attack, state_bits, 0, report);
  }
  report.success = report.disconnected_rounds == 0;
  if (!report.success) report.failure_reason = "disconnected";
  report.min_group_size = groups_.min_group_size();
  report.max_group_size = groups_.max_group_size();
  return report;
}

DosOverlay::EpochReport DosOverlay::run_epoch(const Attack& attack) {
  EpochReport report;
  const std::size_t n = groups_.size();
  const int d = groups_.dimension();
  const auto supernode_count = groups_.supernodes();
  const double avg_group = static_cast<double>(n) /
                           static_cast<double>(supernode_count);

  // The final phase assigns the i-th representative of R(x) to the i-th
  // sampled supernode, so every supernode needs at least max |R(x)| samples
  // (beta = 2(1+delta)c in Lemma 16's terms). Raise the schedule constant
  // adaptively.
  const auto estimate = sampling::SizeEstimate::from_true_size(
      n, config_.size_estimate_slack);
  auto sampling_config = config_.sampling;
  const double needed_c =
      static_cast<double>(groups_.max_group_size() + 1) /
      static_cast<double>(estimate.log_n_estimate());
  sampling_config.c = std::max(sampling_config.c, needed_c);
  sampling_config.beta = std::min(sampling_config.beta, sampling_config.c);
  const auto schedule =
      sampling::hypercube_schedule(estimate, d, sampling_config);

  // One sampler core per supernode; its execution is what the group
  // replicates (Lemma 14). Randomness is injected per supernode.
  std::vector<sampling::HypercubeSamplerCore> cores;
  std::vector<support::Rng> core_rngs;
  cores.reserve(supernode_count);
  core_rngs.reserve(supernode_count);
  auto epoch_rng = rng_.split(static_cast<std::uint64_t>(round_) + 3);
  for (std::uint64_t x = 0; x < supernode_count; ++x) {
    cores.emplace_back(d, x, schedule);
    core_rngs.push_back(epoch_rng.split(x));
    cores.back().init(core_rngs.back());
  }

  // S(x) carries the sampler state: every block entry is a supernode label
  // plus references to that supernode's representatives.
  auto state_bits_now = [&]() -> std::uint64_t {
    std::size_t entries = 0;
    for (int j = 1; j <= d; ++j) entries += cores[0].block(j).size();
    const double per_entry =
        static_cast<double>(d) + avg_group * static_cast<double>(kIdBits);
    return 16 +
           static_cast<std::uint64_t>(static_cast<double>(entries) *
                                      per_entry) +
           static_cast<std::uint64_t>(avg_group) * kIdBits;
  };

  // Per-supernode scratch reused across sampling iterations; `outgoing`
  // entries are overwritten wholesale, `responses` entries are cleared
  // (capacity retained) at the top of each iteration.
  std::vector<std::vector<
      std::pair<std::uint64_t, sampling::HypercubeSamplerCore::Request>>>
      outgoing(supernode_count);
  std::vector<std::vector<sampling::HypercubeSamplerCore::Response>>
      responses(supernode_count);
  for (int i = 1; i <= schedule.iterations; ++i) {
    const auto state_bits = state_bits_now();
    const auto extra = static_cast<std::uint64_t>(
        static_cast<double>(schedule.m[static_cast<std::size_t>(i)]) *
        avg_group * static_cast<double>(kIdBits));
    // Primitive request round = simulation round + synchronization round.
    advance_round(attack, state_bits, 0, report);
    advance_round(attack, state_bits, extra, report);
    for (std::uint64_t x = 0; x < supernode_count; ++x) {
      outgoing[x] = cores[x].make_requests(i, core_rngs[x]);
    }
    // Primitive response round = simulation round + synchronization round.
    advance_round(attack, state_bits, 0, report);
    advance_round(attack, state_bits, extra, report);
    for (auto& per_node : responses) per_node.clear();
    for (std::uint64_t x = 0; x < supernode_count; ++x) {
      for (const auto& [dest, request] : outgoing[x]) {
        responses[request.requester].push_back(
            cores[dest].serve(request, i, core_rngs[dest]));
      }
    }
    for (std::uint64_t x = 0; x < supernode_count; ++x) {
      cores[x].discard_consumed(i);
    }
    for (std::uint64_t x = 0; x < supernode_count; ++x) {
      for (const auto& response : responses[x]) {
        cores[x].accept(response, core_rngs[x]);
      }
    }
  }

  // Final reorganization phase: four rounds of group-to-group traffic
  // (assignments out, new groups gathered, neighbor groups exchanged, new
  // views delivered).
  {
    const auto reorg_bits = static_cast<std::uint64_t>(
        avg_group * avg_group * static_cast<double>(d + 1) *
        static_cast<double>(kIdBits));
    for (int r = 0; r < 4; ++r) {
      advance_round(attack, state_bits_now(), reorg_bits, report);
    }
  }

  // Lemma 14/15 require at least one available node per group per round; if
  // the adversary ever silenced a whole group, the epoch's simulation is not
  // trustworthy and the old groups stay.
  if (report.silenced_group_rounds > 0) {
    report.success = false;
    report.failure_reason = "a group was silenced";
    report.min_group_size = groups_.min_group_size();
    report.max_group_size = groups_.max_group_size();
    return report;
  }
  std::size_t dry = 0;
  for (const auto& core : cores) dry += core.dry_events();
  if (dry > 0) {
    report.success = false;
    report.failure_reason = "supernode sampling ran dry";
    report.min_group_size = groups_.min_group_size();
    report.max_group_size = groups_.max_group_size();
    return report;
  }

  // Reassign: the i-th representative (by id) of R(x) moves to the i-th
  // sampled supernode of x.
  std::vector<std::vector<sim::NodeId>> new_groups(supernode_count);
  bool shortage = false;
  for (std::uint64_t x = 0; x < supernode_count; ++x) {
    const auto& members = groups_.group(x);  // already sorted by id
    const auto& samples = cores[x].samples();
    if (samples.size() < members.size()) {
      shortage = true;
      break;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      new_groups[samples[i]].push_back(members[i]);
    }
  }
  const bool empty_group =
      !shortage &&
      std::any_of(new_groups.begin(), new_groups.end(),
                  [](const auto& members) { return members.empty(); });
  if (shortage || empty_group) {
    report.success = false;
    report.failure_reason =
        shortage ? "too few samples for a group (|R(x)| > beta log n)"
                 : "reassignment left a supernode empty";
    report.min_group_size = groups_.min_group_size();
    report.max_group_size = groups_.max_group_size();
    return report;
  }

  groups_ = GroupTable(d, std::move(new_groups));
  edges_ = groups_.overlay_edges();
  // Epoch-boundary audit (Section 5): the rebuilt groups partition the node
  // set with Theta(log n) representatives each, and the overlay edge list is
  // a well-formed undirected graph.
  if (audit::enabled()) {
    auto violations = audit::check_group_table(groups_, config_.group_c);
    for (auto& violation :
         audit::check_edge_symmetry(groups_.all_nodes(), edges_)) {
      // reconfnet-hotcheck: allow(RNH404) audit-only path, sizes unknowable
      violations.push_back(std::move(violation));
    }
    audit::enforce(std::move(violations));
  }
  push_snapshot();

  report.success = report.disconnected_rounds == 0;
  if (!report.success) report.failure_reason = "disconnected";
  report.reorganized = true;
  report.min_group_size = groups_.min_group_size();
  report.max_group_size = groups_.max_group_size();
  return report;
}

}  // namespace reconfnet::dos
