#include "dos/group_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace reconfnet::dos {

GroupTable::GroupTable(int dimension,
                       std::vector<std::vector<sim::NodeId>> groups)
    : dimension_(dimension), groups_(std::move(groups)) {
  if (dimension < 1 || dimension > 30) {
    throw std::invalid_argument("GroupTable: dimension out of range");
  }
  if (groups_.size() != supernodes()) {
    throw std::invalid_argument("GroupTable: need exactly 2^d groups");
  }
  for (std::uint64_t x = 0; x < supernodes(); ++x) {
    auto& members = groups_[x];
    if (members.empty()) {
      throw std::invalid_argument("GroupTable: empty group");
    }
    std::sort(members.begin(), members.end());
    for (sim::NodeId node : members) {
      if (!node_to_supernode_.emplace(node, x).second) {
        throw std::invalid_argument("GroupTable: node in two groups");
      }
    }
  }
}

GroupTable GroupTable::random(int dimension,
                              std::span<const sim::NodeId> nodes,
                              support::Rng& rng) {
  const std::uint64_t count = std::uint64_t{1} << dimension;
  if (nodes.size() < count) {
    throw std::invalid_argument("GroupTable: fewer nodes than supernodes");
  }
  std::vector<std::vector<sim::NodeId>> groups(count);
  for (sim::NodeId node : nodes) {
    groups[rng.below(count)].push_back(node);
  }
  // A supernode cannot exist without representatives; when the uniform
  // assignment leaves a group empty (likely only for very small groups),
  // rebalance from the largest group.
  for (auto& members : groups) {
    if (!members.empty()) continue;
    auto largest = std::max_element(
        groups.begin(), groups.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    members.push_back(largest->back());
    largest->pop_back();
  }
  return GroupTable(dimension, std::move(groups));
}

std::size_t GroupTable::min_group_size() const {
  std::size_t best = groups_.front().size();
  for (const auto& members : groups_) best = std::min(best, members.size());
  return best;
}

std::size_t GroupTable::max_group_size() const {
  std::size_t best = 0;
  for (const auto& members : groups_) best = std::max(best, members.size());
  return best;
}

std::vector<sim::NodeId> GroupTable::all_nodes() const {
  std::vector<sim::NodeId> nodes;
  nodes.reserve(size());
  for (const auto& members : groups_) {
    nodes.insert(nodes.end(), members.begin(), members.end());
  }
  return nodes;
}

std::vector<std::pair<sim::NodeId, sim::NodeId>> GroupTable::overlay_edges()
    const {
  std::vector<std::pair<sim::NodeId, sim::NodeId>> edges;
  for (std::uint64_t x = 0; x < supernodes(); ++x) {
    const auto& members = groups_[x];
    // Clique inside the group.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        edges.emplace_back(members[i], members[j]);
      }
    }
    // Complete bipartite graph to each neighboring group (count each
    // supernode edge once).
    for (int bit = 0; bit < dimension_; ++bit) {
      const std::uint64_t y = x ^ (std::uint64_t{1} << bit);
      if (y < x) continue;
      for (sim::NodeId a : members) {
        for (sim::NodeId b : groups_[y]) {
          edges.emplace_back(a, b);
        }
      }
    }
  }
  return edges;
}

}  // namespace reconfnet::dos
