// Supernode groups (Section 5): the overlay organizes its n nodes into the
// 2^d supernodes of a d-dimensional hypercube, where each supernode x is
// represented by a group R(x) of Theta(log n) nodes. With no node blocked,
// each group forms a clique and neighboring groups form complete bipartite
// graphs.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::dos {

class GroupTable {
 public:
  /// groups[x] lists the members of supernode x; members are sorted by id
  /// internally (the protocol's tie-breaking order). Every node must appear
  /// in exactly one group and every group must be non-empty.
  GroupTable(int dimension, std::vector<std::vector<sim::NodeId>> groups);

  /// Assigns each node to a supernode independently and uniformly at random
  /// (the paper's initial configuration). Rare empty groups are rebalanced
  /// from the largest group, since a supernode cannot exist without
  /// representatives. Requires at least one node per supernode.
  static GroupTable random(int dimension, std::span<const sim::NodeId> nodes,
                           support::Rng& rng);

  [[nodiscard]] int dimension() const { return dimension_; }
  [[nodiscard]] std::uint64_t supernodes() const {
    return std::uint64_t{1} << dimension_;
  }
  [[nodiscard]] std::size_t size() const { return node_to_supernode_.size(); }

  /// Members of R(x), ascending by id.
  [[nodiscard]] const std::vector<sim::NodeId>& group(std::uint64_t x) const {
    return groups_[x];
  }
  [[nodiscard]] std::uint64_t supernode_of(sim::NodeId node) const {
    return node_to_supernode_.at(node);
  }

  [[nodiscard]] std::size_t min_group_size() const;
  [[nodiscard]] std::size_t max_group_size() const;

  [[nodiscard]] std::vector<sim::NodeId> all_nodes() const;

  /// The overlay edge set: cliques inside groups plus complete bipartite
  /// connections between groups of adjacent supernodes. This is both what
  /// the DoS adversary observes and what connectivity is checked on.
  [[nodiscard]] std::vector<std::pair<sim::NodeId, sim::NodeId>>
  overlay_edges() const;

 private:
  int dimension_;
  std::vector<std::vector<sim::NodeId>> groups_;
  std::unordered_map<sim::NodeId, std::uint64_t> node_to_supernode_;
};

}  // namespace reconfnet::dos
