// Full message-level implementation of the Section 5 group simulation: the
// replicated-state-machine protocol by which a group R(x) executes the rapid
// node sampling primitive on behalf of its supernode x.
//
// Every *primitive* round of Algorithm 2 is simulated in two overlay rounds:
//
//   Simulation round   Every available node of R(x) applies the supernode
//                      messages that arrived for x, advances x's sampler
//                      state by one primitive round using its own
//                      randomness, and sends its candidate new state (with
//                      x's outgoing messages) to all of R(x).
//
//   Synchronization    Every available node adopts the candidate of the
//   round              lowest-id available sender (the paper's rule),
//                      forwards each of x's outgoing messages to all
//                      members of the destination group, and rebroadcasts
//                      the adopted state so nodes that were blocked can
//                      rejoin the simulation.
//
// Afterwards the groups reorganize in four message rounds: assignments fan
// out to the sampled supernodes' old groups, the new groups R'(x) are
// gossiped back to the assigned nodes and to the neighboring groups, and
// every node ends up knowing its new group and its neighbors' groups
// (Lemma 15). Blocking follows the paper's delivery rule throughout, via
// sim::Bus, and communication work is metered for real.
//
// This is the high-fidelity counterpart of DosOverlay's group-level fast
// path; tests cross-validate the two (identical success conditions,
// consistent group statistics, agreeing state machines).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dos/group_table.hpp"
#include "sampling/schedule.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::dos {

struct NodeLevelConfig {
  sampling::SamplingConfig sampling{};
  int size_estimate_slack = 0;
  /// Optional fault-injection hook attached to the epoch's bus.
  sim::DeliveryHook* fault_hook = nullptr;
};

struct NodeLevelReport {
  bool success = false;
  std::string failure_reason;
  sim::Round rounds = 0;
  /// Real metered communication work: max bits sent+received by any node in
  /// any round.
  std::uint64_t max_node_bits_per_round = 0;
  /// (group, round) pairs with no available member — Lemma 14 violations.
  std::size_t silenced_group_rounds = 0;
  /// Times a node had to resynchronize from a state broadcast after being
  /// blocked (the mechanism the per-round S(x) broadcast exists for).
  std::size_t resyncs = 0;
  /// The reorganized groups (present iff success).
  std::optional<GroupTable> new_groups;
  /// Every member of every new group learned the same group and the same
  /// neighbor groups (the Lemma 15 postcondition).
  bool knowledge_consistent = false;
};

/// Runs one full epoch (sampler simulation + reorganization) at message
/// granularity. `blocked_per_round[r]` is the DoS adversary's blocked set in
/// overlay round r (missing entries = nothing blocked). Availability follows
/// the paper's rule: a node is available in round r iff it is non-blocked in
/// rounds r-1 and r.
NodeLevelReport run_node_level_epoch(
    const GroupTable& groups, const NodeLevelConfig& config,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng);

}  // namespace reconfnet::dos
