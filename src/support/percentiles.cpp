#include "support/percentiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reconfnet::support {

Percentiles::Percentiles(std::uint64_t max_value)
    : buckets_(static_cast<std::size_t>(max_value) + 1, 0) {
  if (max_value == 0) {
    throw std::invalid_argument("Percentiles: max_value must be positive");
  }
}

void Percentiles::merge(const Percentiles& other) {
  if (other.buckets_.size() != buckets_.size()) {
    throw std::invalid_argument("Percentiles::merge: max_value mismatch");
  }
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (total_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  total_ += other.total_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

std::uint64_t Percentiles::percentile(double q) const {
  if (q <= 0.0 || q > 1.0) {
    throw std::invalid_argument("Percentiles::percentile: q must be in (0,1]");
  }
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t v = 0; v < buckets_.size(); ++v) {
    seen += buckets_[v];
    if (seen >= target) return static_cast<std::uint64_t>(v);
  }
  return static_cast<std::uint64_t>(buckets_.size()) - 1;
}

double Percentiles::mean() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(total_);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace reconfnet::support
