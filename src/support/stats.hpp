// Statistical tooling used by the validation suite: goodness-of-fit tests for
// "samples are (almost) uniform" claims (Lemmas 2/3, 10), total-variation
// distance, and summary statistics for the bench tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace reconfnet::support {

/// Summary statistics of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes summary statistics; empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Result of a chi-square goodness-of-fit test against given expected counts.
struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t degrees_of_freedom = 0;
  double p_value = 1.0;  ///< Upper tail: Pr[X >= statistic] under H0.
};

/// Chi-square test of observed counts against uniform expected counts.
/// Requires at least two categories and a positive total count.
ChiSquareResult chi_square_uniform(std::span<const std::uint64_t> observed);

/// Chi-square test against arbitrary expected counts (same length, positive).
ChiSquareResult chi_square(std::span<const std::uint64_t> observed,
                           std::span<const double> expected);

/// Total variation distance between the empirical distribution induced by
/// `observed` counts and the uniform distribution over the same categories.
/// Result is in [0, 1]; 0 means exactly uniform.
double tv_distance_from_uniform(std::span<const std::uint64_t> observed);

/// Upper regularized incomplete gamma function Q(a, x) = Γ(a,x)/Γ(a),
/// used for chi-square p-values. Accurate to ~1e-10 for the ranges we need.
double regularized_gamma_q(double a, double x);

/// Chernoff upper-tail bound from Lemma 1 of the paper:
/// Pr[X >= (1+delta) mu] <= exp(-min(delta^2, delta) * mu / 3).
double chernoff_upper_bound(double mu, double delta);

/// Chernoff lower-tail bound from Lemma 1: for 0 < delta < 1,
/// Pr[X <= (1-delta) mu] <= exp(-delta^2 mu / 2).
double chernoff_lower_bound(double mu, double delta);

/// Running histogram over integer values; used by benches to report
/// distributions (e.g. group sizes, empty-segment lengths).
class Histogram {
 public:
  void add(std::int64_t value);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Number of observations equal to `value`.
  [[nodiscard]] std::uint64_t at(std::int64_t value) const;
  /// Sorted distinct observed values.
  [[nodiscard]] std::vector<std::int64_t> values() const;

 private:
  std::vector<std::pair<std::int64_t, std::uint64_t>> buckets_;  // sorted
  std::size_t total_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace reconfnet::support
