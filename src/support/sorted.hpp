// Canonical sorted extraction from unordered containers.
//
// Iterating an unordered_map/unordered_set directly leaks the hash table's
// bucket order — implementation-defined and different across standard
// libraries — into whatever the loop produces (reconfnet-lint rule RNL005).
// Call sites that need the elements in a reproducible order go through these
// helpers instead: extract, sort, then iterate the vector.
#pragma once

#include <algorithm>
#include <vector>

namespace reconfnet::support {

/// The elements of `set` as a sorted vector.
template <typename Set>
[[nodiscard]] std::vector<typename Set::key_type> sorted(const Set& set) {
  std::vector<typename Set::key_type> out;
  out.reserve(set.size());
  for (const auto& key : set) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

/// The keys of `map` as a sorted vector.
template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> out;
  out.reserve(map.size());
  for (const auto& [key, value] : map) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace reconfnet::support
