#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace reconfnet::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "  " << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::to_csv(std::ostream& os) const {
  const auto write_cell = [&os](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char c : cell) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      write_cell(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::num(std::int64_t value) { return std::to_string(value); }
std::string Table::num(std::uint64_t value) { return std::to_string(value); }
std::string Table::num(int value) { return std::to_string(value); }

}  // namespace reconfnet::support
