// Minimal fixed-width table printer for the bench harnesses. Keeps all bench
// binaries printing in one consistent, diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace reconfnet::support {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t({"n", "rounds", "success"});
///   t.add_row({"1024", "11", "1.000"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  /// RFC-4180-style CSV: header row first, cells containing commas, quotes,
  /// or newlines are double-quoted with embedded quotes doubled. Lets scripts
  /// consume bench tables without scraping the aligned-column format.
  void to_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& cells() const {
    return rows_;
  }

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double value, int precision = 3);
  /// Formats an integer.
  static std::string num(std::int64_t value);
  static std::string num(std::uint64_t value);
  static std::string num(int value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reconfnet::support
