// Minimal fixed-width table printer for the bench harnesses. Keeps all bench
// binaries printing in one consistent, diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace reconfnet::support {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t({"n", "rounds", "success"});
///   t.add_row({"1024", "11", "1.000"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with the given precision (fixed notation).
  static std::string num(double value, int precision = 3);
  /// Formats an integer.
  static std::string num(std::int64_t value);
  static std::string num(std::uint64_t value);
  static std::string num(int value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reconfnet::support
