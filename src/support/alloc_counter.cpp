// Counting replacements for the global operator new/delete pairs. See
// alloc_counter.hpp for the linking contract: this TU is only pulled into
// binaries that link reconfnet_alloccount.
//
// All forms forward to malloc/free (aligned forms to posix_memalign), which
// keeps the replacement sanitizer-compatible: ASan intercepts malloc, so
// leak and bounds checking still see every block.
#include "support/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the harness reads the counters only from the thread
// that runs the measured scope, and totals need no ordering with the
// allocations themselves.
// reconfnet-racecheck: allow(RNR505) single-thread harness reads the tally
std::atomic<std::uint64_t> g_allocations{0};
// reconfnet-racecheck: allow(RNR505) single-thread harness reads the tally
std::atomic<std::uint64_t> g_deallocations{0};
// reconfnet-racecheck: allow(RNR505) single-thread harness reads the tally
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* ptr = nullptr;
  const std::size_t alignment = static_cast<std::size_t>(align);
  if (posix_memalign(&ptr, alignment < sizeof(void*) ? sizeof(void*)
                                                     : alignment,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return ptr;
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

namespace reconfnet::support {

AllocTotals alloc_totals() {
  return {g_allocations.load(std::memory_order_relaxed),
          g_deallocations.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

bool alloc_counting_available() {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  // A direct call to the allocation function — unlike a new-expression, it
  // can never be elided by the optimizer ([expr.new] allows eliding only
  // allocations coming from new-expressions).
  void* probe = ::operator new(1);
  // Hide the pointer's provenance: the compiler otherwise pairs the direct
  // operator-new call with the free() inside the replacement and warns.
  asm volatile("" : "+r"(probe));
  ::operator delete(probe);
  return g_allocations.load(std::memory_order_relaxed) > before;
}

}  // namespace reconfnet::support

// ---------------------------------------------------------------------------
// Global replacements. User-provided definitions take precedence over the
// toolchain's at link time ([new.delete] replaceable functions).

void* operator new(std::size_t size) {
  void* ptr = counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = counted_alloc_aligned(size, align);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = counted_alloc_aligned(size, align);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, align);
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t, std::size_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t, std::size_t) noexcept {
  counted_free(ptr);
}
