// Process-wide allocation counting for the allocation-budget harness
// (tests/allocbudget_test.cpp; budgets declared in
// tools/hotcheck/hotpaths.toml).
//
// The counters only move when the translation unit alloc_counter.cpp is
// linked into the binary: it replaces the global operator new/delete pairs
// with counting forwarders. That object lives in its own static library
// (reconfnet_alloccount) which ONLY the budget test links, so every other
// target keeps the toolchain allocator untouched. alloc_counting_available()
// reports at runtime whether the replacement is active, letting shared test
// code degrade gracefully if the link ever changes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reconfnet::support {

/// Monotonic process-wide totals since program start.
struct AllocTotals {
  std::uint64_t allocations = 0;    ///< operator new calls
  std::uint64_t deallocations = 0;  ///< operator delete calls
  std::uint64_t bytes = 0;          ///< bytes requested through operator new
};

/// Snapshot of the process-wide counters (all zero when the counting
/// allocator is not linked in).
AllocTotals alloc_totals();

/// True when the counting operator new/delete replacement is linked into
/// this binary (verified by a live probe allocation, not a build flag).
bool alloc_counting_available();

/// RAII measurement scope: captures the totals at construction; delta()
/// reports the traffic since then.
class AllocCounter {
 public:
  AllocCounter() : start_(alloc_totals()) {}

  /// Allocation traffic between construction and now.
  [[nodiscard]] AllocTotals delta() const {
    const AllocTotals now = alloc_totals();
    return {now.allocations - start_.allocations,
            now.deallocations - start_.deallocations,
            now.bytes - start_.bytes};
  }

 private:
  AllocTotals start_;
};

}  // namespace reconfnet::support
