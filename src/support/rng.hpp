// Deterministic, splittable pseudo-random number generation.
//
// Every protocol node in reconfnet owns an independent Rng split off a master
// seed, so simulation results are reproducible from a single 64-bit seed and
// independent of node iteration order.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace reconfnet::support {

/// SplitMix64 step: used for seeding and for deriving independent streams.
/// Passes through the full 64-bit state space; never returns the same value
/// twice for distinct inputs.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator. Small, fast, and of far higher quality than
/// std::minstd_rand; state is seeded via SplitMix64 so that any 64-bit seed
/// yields a well-mixed initial state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0xC0FFEE0DDF00DULL) noexcept;

  /// Derives an independent generator. Streams split from distinct indices of
  /// the same parent are statistically independent for simulation purposes.
  [[nodiscard]] Rng split(std::uint64_t stream_index) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  /// UniformRandomBitGenerator interface so <random> distributions work too.
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless rejection method, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Fair coin flip.
  bool coin() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of the given span.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// A uniformly random permutation of {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
};

}  // namespace reconfnet::support
