#include "support/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace reconfnet::support {
namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("--" + key + ": expected " + expected +
                              ", got '" + value + "'");
}

}  // namespace

Args::Args(int argc, const char* const* argv, int start,
           const std::vector<std::string>& switches,
           const std::vector<std::string>& optional_value) {
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + key);
    }
    key = key.substr(2);
    const bool is_switch =
        std::find(switches.begin(), switches.end(), key) != switches.end();
    const bool is_optional =
        std::find(optional_value.begin(), optional_value.end(), key) !=
        optional_value.end();
    if (is_switch) {
      // Materializing the std::string before the assignment sidesteps a
      // gcc-12 -Wrestrict false positive (PR 105329) on assigning a char
      // literal into the map at -O3.
      values_.insert_or_assign(key, std::string("1"));
    } else if (is_optional &&
               (i + 1 >= argc ||
                std::string(argv[i + 1]).rfind("--", 0) == 0)) {
      values_.insert_or_assign(key, std::string());
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + key);
      }
      values_[key] = argv[++i];
    }
  }
}

const std::string* Args::find(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

std::size_t Args::get_size(const std::string& key,
                           std::size_t fallback) const {
  return static_cast<std::size_t>(get_u64(key, fallback));
}

std::uint64_t Args::get_u64(const std::string& key,
                            std::uint64_t fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  // std::stoull silently accepts "-5" (wrapping it) and "12abc" (ignoring
  // the tail); reject both so the error points at the flag, not the crash.
  if (raw->empty() || (*raw)[0] == '-') {
    bad_value(key, *raw, "an unsigned integer");
  }
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(*raw, &consumed);
    if (consumed != raw->size()) bad_value(key, *raw, "an unsigned integer");
    return value;
  } catch (const std::invalid_argument&) {
    bad_value(key, *raw, "an unsigned integer");
  } catch (const std::out_of_range&) {
    bad_value(key, *raw, "an unsigned integer in range");
  }
}

int Args::get_int(const std::string& key, int fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(*raw, &consumed);
    if (consumed != raw->size()) bad_value(key, *raw, "an integer");
    return value;
  } catch (const std::invalid_argument&) {
    bad_value(key, *raw, "an integer");
  } catch (const std::out_of_range&) {
    bad_value(key, *raw, "an integer in range");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string* raw = find(key);
  if (raw == nullptr) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*raw, &consumed);
    if (consumed != raw->size()) bad_value(key, *raw, "a number");
    return value;
  } catch (const std::invalid_argument&) {
    bad_value(key, *raw, "a number");
  } catch (const std::out_of_range&) {
    bad_value(key, *raw, "a number in range");
  }
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const std::string* raw = find(key);
  return raw == nullptr ? fallback : *raw;
}

}  // namespace reconfnet::support
