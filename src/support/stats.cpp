#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "support/percentiles.hpp"

namespace reconfnet::support {
namespace {

// Lower regularized incomplete gamma P(a, x) by series expansion; valid for
// x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 1000; ++n) {
    term *= x / (a + n);
    sum += term;
    if (term < sum * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper regularized incomplete gamma Q(a, x) by continued fraction; valid for
// x >= a + 1.
double gamma_q_contfrac(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double regularized_gamma_q(double a, double x) {
  if (x < 0.0 || a <= 0.0) throw std::invalid_argument("gamma_q domain");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_contfrac(a, x);
}

ChiSquareResult chi_square(std::span<const std::uint64_t> observed,
                           std::span<const double> expected) {
  if (observed.size() != expected.size() || observed.size() < 2) {
    throw std::invalid_argument("chi_square: need >=2 matching categories");
  }
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument("chi_square: expected counts must be > 0");
    }
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  ChiSquareResult r;
  r.statistic = stat;
  r.degrees_of_freedom = observed.size() - 1;
  r.p_value = regularized_gamma_q(
      static_cast<double>(r.degrees_of_freedom) / 2.0, stat / 2.0);
  return r;
}

ChiSquareResult chi_square_uniform(std::span<const std::uint64_t> observed) {
  const auto total = std::accumulate(observed.begin(), observed.end(),
                                     std::uint64_t{0});
  if (total == 0) throw std::invalid_argument("chi_square_uniform: no data");
  const double expected_each =
      static_cast<double>(total) / static_cast<double>(observed.size());
  std::vector<double> expected(observed.size(), expected_each);
  return chi_square(observed, expected);
}

double tv_distance_from_uniform(std::span<const std::uint64_t> observed) {
  const auto total = std::accumulate(observed.begin(), observed.end(),
                                     std::uint64_t{0});
  if (total == 0 || observed.empty()) return 0.0;
  const double uniform_p = 1.0 / static_cast<double>(observed.size());
  double tv = 0.0;
  for (auto count : observed) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    tv += std::abs(p - uniform_p);
  }
  return tv / 2.0;
}

double chernoff_upper_bound(double mu, double delta) {
  assert(mu >= 0.0 && delta > 0.0);
  return std::exp(-std::min(delta * delta, delta) * mu / 3.0);
}

double chernoff_lower_bound(double mu, double delta) {
  assert(mu >= 0.0 && delta > 0.0 && delta < 1.0);
  return std::exp(-delta * delta * mu / 2.0);
}

void Histogram::add(std::int64_t value) {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), value,
      [](const auto& bucket, std::int64_t v) { return bucket.first < v; });
  if (it != buckets_.end() && it->first == value) {
    ++it->second;
  } else {
    buckets_.insert(it, {value, 1});
  }
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_;
  sum_ += static_cast<double>(value);
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [value, count] : other.buckets_) {
    for (std::uint64_t i = 0; i < count; ++i) add(value);
  }
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::uint64_t Histogram::at(std::int64_t value) const {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), value,
      [](const auto& bucket, std::int64_t v) { return bucket.first < v; });
  return (it != buckets_.end() && it->first == value) ? it->second : 0;
}

std::vector<std::int64_t> Histogram::values() const {
  std::vector<std::int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& [value, count] : buckets_) out.push_back(value);
  return out;
}

}  // namespace reconfnet::support
