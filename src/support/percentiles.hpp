// Fixed-bucket percentile accumulator shared by the workload engine's
// latency histogram and the bench tables (ISSUE 7 satellite: one reusable
// helper instead of ad-hoc sorting in bench code).
//
// The accumulator counts exact occurrences of every integer value in
// [0, max_value] plus one overflow bucket, so percentile(q) is *exact* for
// in-range values (the smallest value whose CDF reaches q), merge() is a
// plain bucket sum (mergeable across trials and threads), and add() touches
// one counter — no allocation, no sort, O(1) per observation. Values are
// expected to be small non-negative integers (latencies in rounds, group
// sizes); anything above max_value clamps into the overflow bucket and is
// visible through overflow().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace reconfnet::support {

class Percentiles {
 public:
  /// Buckets cover [0, max_value]; larger observations clamp into the
  /// overflow bucket (reported as max_value by percentile()).
  explicit Percentiles(std::uint64_t max_value = 4095);

  /// Records one observation. Allocation-free: the bucket table is sized at
  /// construction (pinned by the workload.steady_request budget).
  void add(std::uint64_t value) noexcept {
    ++total_;
    sum_ += value;
    if (total_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    if (value >= buckets_.size()) {
      ++overflow_;
      ++buckets_.back();
      return;
    }
    ++buckets_[static_cast<std::size_t>(value)];
  }

  /// Adds every observation of `other` (bucket-wise; requires the same
  /// max_value). Exact: merging then querying equals querying the union.
  void merge(const Percentiles& other);

  /// Exact q-quantile of the recorded values: the smallest value v whose
  /// cumulative count reaches ceil(q * count). Requires 0 < q <= 1; an empty
  /// accumulator yields 0. Values clamped into the overflow bucket report
  /// max_value.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  [[nodiscard]] std::uint64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p99() const { return percentile(0.99); }
  [[nodiscard]] std::uint64_t p999() const { return percentile(0.999); }

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  /// Observations clamped into the overflow bucket.
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t max_value() const {
    return static_cast<std::uint64_t>(buckets_.size()) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;  // [0, max_value] + shared overflow
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

/// Linear-interpolation percentile of an already-sorted sample, the exact
/// scheme support::summarize always used (q * (n-1) positional rank).
/// Shared so bench code and stats.cpp agree on one definition.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

}  // namespace reconfnet::support
