#include "support/rng.hpp"

#include <numeric>

namespace reconfnet::support {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::split(std::uint64_t stream_index) noexcept {
  // Mix the stream index into a fresh seed derived from this generator's
  // current state without consuming from the main stream more than once.
  std::uint64_t mix = next() ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1));
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   below(range));
}

double Rng::uniform() noexcept {
  // 53 high bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::coin() noexcept { return (next() >> 63) != 0; }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  shuffle(std::span<std::size_t>(perm));
  return perm;
}

}  // namespace reconfnet::support
