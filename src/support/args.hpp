// Tiny command-line flag parser shared by the bench harness and the
// reconfnet_sim tool: --key value pairs, boolean switches, and
// optional-value flags (--json [path]).
//
// All numeric getters validate their input and throw std::invalid_argument
// naming the offending flag, so a typo like `--n foo` produces a usage
// message instead of an uncaught std::stoull exception.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reconfnet::support {

class Args {
 public:
  /// Parses argv[start..argc). Flags listed in `switches` take no value;
  /// flags listed in `optional_value` consume the next token only when it
  /// does not itself start with "--" (otherwise their value is "").
  /// Throws std::invalid_argument on a token that is not a flag or on a
  /// value flag with no value.
  Args(int argc, const char* const* argv, int start,
       const std::vector<std::string>& switches = {},
       const std::vector<std::string>& optional_value = {});

  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  [[nodiscard]] const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace reconfnet::support
