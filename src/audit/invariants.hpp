// Invariant checkers for the audit layer (see audit/audit.hpp). Every
// checker is a pure function from observable protocol state to the list of
// violations found, so the overlays can enforce them at round boundaries and
// tests can run them against deliberately corrupted inputs.
//
// The checks map directly onto the paper's guarantees:
//   - H-graph structure (Section 2.2, Algorithm 3): the topology is a union
//     of oriented Hamilton cycles with consistent successor/predecessor maps.
//   - Group-size bounds (Section 5): every supernode group holds Theta(log n)
//     representatives and the groups partition the node set.
//   - Supernode label consistency (Section 6): the live labels form a
//     complete prefix-free code and every group satisfies Equation (1).
//   - Bus conservation (Section 1.1): messages delivered never exceed
//     messages sent, dropped messages account for the difference, and the
//     DoS blocking rule is respected on every delivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "combined/labels.hpp"
#include "sim/blocked.hpp"
#include "sim/types.hpp"

namespace reconfnet::graph {
class HGraph;
}
namespace reconfnet::dos {
class GroupTable;
}
namespace reconfnet::combined {
class SuperGroups;
}
namespace reconfnet::sim {
class WorkMeter;
struct RoundWork;
}  // namespace reconfnet::sim

namespace reconfnet::audit {

// --- H-graph structure (Section 2.2, Algorithm 3) --------------------------

/// Each successor map must be a permutation of {0,...,n-1} forming a single
/// n-cycle (an oriented Hamilton cycle).
[[nodiscard]] std::vector<Violation> check_hamilton_cycles(
    std::size_t n, const std::vector<std::vector<std::size_t>>& successors);

/// Full H-graph audit: degree() == 2 * num_cycles() == expected_degree, each
/// cycle is a Hamilton cycle, and pred is the inverse of succ on every cycle.
[[nodiscard]] std::vector<Violation> check_hgraph(const graph::HGraph& graph,
                                                  int expected_degree);

/// An undirected, deduplicated overlay edge list: no self-loops, no dangling
/// endpoints, and no edge listed twice (in either orientation).
[[nodiscard]] std::vector<Violation> check_edge_symmetry(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges);

// --- Supernode groups (Section 5) ------------------------------------------

/// The groups partition a node set of the expected size: every node appears
/// in exactly one group and no group is empty.
[[nodiscard]] std::vector<Violation> check_group_partition(
    const std::vector<std::vector<sim::NodeId>>& groups,
    std::size_t expected_total);

/// Every group size lies in [lo_factor * log2 n, hi_factor * log2 n] where n
/// is the total node count. The paper requires |R(x)| = Theta(gamma * log n)
/// (Section 5); because nodes are assigned to groups uniformly at random, the
/// audit checks the constant-factor envelope of the gamma * log n target, not
/// the exact [gamma log n, 2 gamma log n] ideal — callers pass a lo/hi with
/// enough slack for binomial fluctuation (see kGroupSizeLoFactor below).
[[nodiscard]] std::vector<Violation> check_group_size_bounds(
    const std::vector<std::vector<sim::NodeId>>& groups,
    std::size_t total_nodes, double lo_factor, double hi_factor);

/// Default slack envelope around the gamma * log2 n group-size target used
/// by the overlay hooks: a healthy uniform assignment concentrates within
/// these factors w.h.p. while genuinely degenerate tables fall outside.
inline constexpr double kGroupSizeLoFactor = 0.2;
inline constexpr double kGroupSizeHiFactor = 6.0;

/// Combined GroupTable audit: partition plus size bounds, with lo/hi scaled
/// by `gamma` (the overlay's group_c constant).
[[nodiscard]] std::vector<Violation> check_group_table(
    const dos::GroupTable& groups, double gamma);

// --- Supernode labels and Equation (1) (Section 6) -------------------------

/// The labels form a complete prefix-free code: no label is a prefix of
/// another and the Kraft sum of 2^{-d(x)} is exactly 1 (equivalently, the
/// labels are the leaves of a full binary tree).
[[nodiscard]] std::vector<Violation> check_complete_code(
    const std::vector<combined::Label>& labels);

/// Equation (1) of Section 6 for every live supernode x. Audited as the
/// closed envelope c * d(x) - c <= |R(x)| <= 2 * c * d(x): enforce()'s
/// split/merge triggers are strict, so a healthy group may rest exactly on a
/// boundary (Lemma 18 keeps it inside the envelope from then on).
[[nodiscard]] std::vector<Violation> check_equation1(
    const combined::SuperGroups& super, double c);

/// Full split/merge consistency audit: complete code over the live labels,
/// Equation (1), non-empty groups, and node-set partitioning.
[[nodiscard]] std::vector<Violation> check_supergroups(
    const combined::SuperGroups& super, double c);

// --- Bus conservation (Section 1.1, extended for fault injection) ----------

/// Conservation for one finished round: every message entering the round
/// boundary (sent + hook-duplicated + released from the delay queue) is
/// delivered, dropped by the blocking rule, dropped by the fault hook, or
/// deferred — and deliveries never exceed the messages that entered. With the
/// fault counters at zero this is the paper's delivered + dropped == sent.
[[nodiscard]] std::vector<Violation> check_round_conservation(
    const sim::RoundWork& round);

/// Conservation over a meter's whole history.
[[nodiscard]] std::vector<Violation> check_bus_conservation(
    const sim::WorkMeter& meter);

/// No phantom deliveries: in no round does the number of delivered messages
/// exceed the number that legitimately entered its boundary (sent, duplicated
/// by the hook, or released from the delay queue). Message loss alone can
/// never raise the delivered count.
[[nodiscard]] std::vector<Violation> check_no_phantom_deliveries(
    const sim::WorkMeter& meter);

/// The Section 1.1 blocking rule for one *delivered* message: the sender must
/// be non-blocked in the sending round and the receiver non-blocked in both
/// the sending and the delivery round. Takes BlockedSet (membership queries
/// only) so no caller has to expose raw unordered state.
[[nodiscard]] std::vector<Violation> check_blocking_rule(
    sim::NodeId from, sim::NodeId to, const sim::BlockedSet& blocked_sending,
    const sim::BlockedSet& blocked_delivery);

// --- Recovery-protocol contract (fault::ReliableChannel, DESIGN.md §10) ----

/// One accepted (post-deduplication) delivery of a reliable-channel message.
struct DeliveryRecord {
  sim::NodeId receiver = sim::kNoNode;
  sim::NodeId sender = sim::kNoNode;
  std::uint64_t seq = 0;  ///< channel-unique sequence number
};

/// At-most-once delivery under duplication + dedup: no sequence number is
/// accepted twice by the same receiver.
[[nodiscard]] std::vector<Violation> check_at_most_once(
    std::span<const DeliveryRecord> log);

// --- Adversary contract ----------------------------------------------------

/// An r-bounded adversary may never block more nodes than its budget, and
/// only nodes that exist (Section 1.1).
[[nodiscard]] std::vector<Violation> check_blocked_budget(
    const sim::BlockedSet& blocked, std::size_t budget,
    std::span<const sim::NodeId> universe);

/// Same contract with the known id space given as a set. Under churn a
/// t-late adversary legitimately targets ids from a stale snapshot that have
/// since left, so the combined overlay audits against the ever-member set
/// (ids are never reused, Section 1.1) rather than the current members.
[[nodiscard]] std::vector<Violation> check_blocked_budget(
    const sim::BlockedSet& blocked, std::size_t budget,
    const std::unordered_set<sim::NodeId>& known_ids);

/// The Section 1.1 t-lateness contract: an adversary acting at round `now`
/// may only read snapshots at least `lateness` rounds stale, i.e.
/// now - snapshot_round >= lateness. Enforced on every snapshot read through
/// sim::StaleSnapshotView when audit::oracle_enabled() (RECONFNET_ORACLEAUDIT)
/// is set; the static half of the seam is reconfnet_oraclecheck.
[[nodiscard]] std::vector<Violation> check_adversary_lateness(
    sim::Round now, sim::Round snapshot_round, sim::Round lateness);

// --- Workload request conservation (DESIGN.md §12) --------------------------

/// Open-loop request accounting: every issued request is completed, failed,
/// or still in flight — issued == completed + failed + in_flight. The
/// workload driver enforces this at every round boundary, passing its
/// physical queue occupancy as `in_flight`, so a request leaked between the
/// queue and the tracker fails loudly instead of skewing the latency tail.
[[nodiscard]] std::vector<Violation> check_request_conservation(
    std::uint64_t issued, std::uint64_t completed, std::uint64_t failed,
    std::uint64_t in_flight);

}  // namespace reconfnet::audit
