#include "audit/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "combined/split_merge.hpp"
#include "dos/group_table.hpp"
#include "graph/hgraph.hpp"
#include "sim/metrics.hpp"
#include "support/sorted.hpp"

namespace reconfnet::audit {
namespace {

/// Checkers stop accumulating after this many violations; a corrupted
/// structure usually violates the same invariant everywhere and the first few
/// reports carry all the signal.
constexpr std::size_t kMaxViolations = 16;

void add(std::vector<Violation>& out, std::string check, std::string detail) {
  if (out.size() < kMaxViolations) {
    out.push_back({std::move(check), std::move(detail)});
  }
}

}  // namespace

std::vector<Violation> check_hamilton_cycles(
    std::size_t n, const std::vector<std::vector<std::size_t>>& successors) {
  std::vector<Violation> out;
  for (std::size_t c = 0; c < successors.size(); ++c) {
    const auto& succ = successors[c];
    const std::string cycle_name = "cycle " + std::to_string(c);
    if (succ.size() != n) {
      add(out, "hgraph.cycle",
          cycle_name + " has " + std::to_string(succ.size()) +
              " entries, expected " + std::to_string(n));
      continue;
    }
    std::vector<char> target_seen(n, 0);
    bool well_formed = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (succ[v] >= n) {
        add(out, "hgraph.cycle",
            cycle_name + ": succ(" + std::to_string(v) + ") = " +
                std::to_string(succ[v]) + " is out of range");
        well_formed = false;
        break;
      }
      if (target_seen[succ[v]] != 0) {
        add(out, "hgraph.cycle",
            cycle_name + ": vertex " + std::to_string(succ[v]) +
                " has two predecessors (not a permutation)");
        well_formed = false;
        break;
      }
      target_seen[succ[v]] = 1;
    }
    if (!well_formed || n == 0) continue;
    // A permutation is a single n-cycle iff the orbit of vertex 0 has size n.
    std::size_t v = 0;
    std::size_t steps = 0;
    do {
      v = succ[v];
      ++steps;
    } while (v != 0 && steps <= n);
    if (steps != n) {
      add(out, "hgraph.cycle",
          cycle_name + ": orbit of vertex 0 has length " +
              std::to_string(steps) + ", expected a single " +
              std::to_string(n) + "-cycle");
    }
  }
  return out;
}

std::vector<Violation> check_hgraph(const graph::HGraph& graph,
                                    int expected_degree) {
  std::vector<Violation> out;
  const std::size_t n = graph.size();
  if (graph.degree() != expected_degree) {
    add(out, "hgraph.degree",
        "degree is " + std::to_string(graph.degree()) + ", expected " +
            std::to_string(expected_degree));
  }
  if (graph.degree() != 2 * graph.num_cycles()) {
    add(out, "hgraph.degree",
        "degree " + std::to_string(graph.degree()) + " != 2 * " +
            std::to_string(graph.num_cycles()) + " cycles");
  }
  std::vector<std::vector<std::size_t>> successors(
      static_cast<std::size_t>(graph.num_cycles()));
  for (int c = 0; c < graph.num_cycles(); ++c) {
    auto& succ = successors[static_cast<std::size_t>(c)];
    succ.resize(n);
    for (std::size_t v = 0; v < n; ++v) succ[v] = graph.succ(c, v);
  }
  for (auto& violation : check_hamilton_cycles(n, successors)) {
    add(out, violation.check, std::move(violation.detail));
  }
  // Edge symmetry of the oriented cycles: pred must invert succ.
  for (int c = 0; c < graph.num_cycles(); ++c) {
    for (std::size_t v = 0; v < n; ++v) {
      if (graph.pred(c, graph.succ(c, v)) != v) {
        add(out, "hgraph.symmetry",
            "cycle " + std::to_string(c) + ": pred(succ(" +
                std::to_string(v) + ")) != " + std::to_string(v));
      }
    }
  }
  return out;
}

std::vector<Violation> check_edge_symmetry(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges) {
  std::vector<Violation> out;
  const std::unordered_set<sim::NodeId> node_set(nodes.begin(), nodes.end());
  std::set<std::pair<sim::NodeId, sim::NodeId>> seen;
  for (const auto& [a, b] : edges) {
    if (a == b) {
      add(out, "edges.self_loop",
          "self-loop at node " + std::to_string(a));
      continue;
    }
    if (!node_set.contains(a) || !node_set.contains(b)) {
      add(out, "edges.dangling",
          "edge (" + std::to_string(a) + ", " + std::to_string(b) +
              ") references a node outside the overlay");
      continue;
    }
    const std::pair<sim::NodeId, sim::NodeId> key = std::minmax(a, b);
    if (!seen.insert(key).second) {
      add(out, "edges.duplicate",
          "edge {" + std::to_string(key.first) + ", " +
              std::to_string(key.second) +
              "} listed twice in an undirected edge list");
    }
  }
  return out;
}

std::vector<Violation> check_group_partition(
    const std::vector<std::vector<sim::NodeId>>& groups,
    std::size_t expected_total) {
  std::vector<Violation> out;
  std::unordered_set<sim::NodeId> seen;
  std::size_t total = 0;
  for (std::size_t x = 0; x < groups.size(); ++x) {
    if (groups[x].empty()) {
      add(out, "groups.empty",
          "group " + std::to_string(x) + " has no representatives");
    }
    for (sim::NodeId node : groups[x]) {
      ++total;
      if (!seen.insert(node).second) {
        add(out, "groups.duplicate",
            "node " + std::to_string(node) +
                " appears in more than one group");
      }
    }
  }
  if (total != expected_total) {
    add(out, "groups.partition",
        "groups hold " + std::to_string(total) + " placements, expected " +
            std::to_string(expected_total));
  }
  return out;
}

std::vector<Violation> check_group_size_bounds(
    const std::vector<std::vector<sim::NodeId>>& groups,
    std::size_t total_nodes, double lo_factor, double hi_factor) {
  std::vector<Violation> out;
  if (total_nodes < 2) return out;
  const double log_n = std::log2(static_cast<double>(total_nodes));
  const double lo = lo_factor * log_n;
  const double hi = hi_factor * log_n;
  for (std::size_t x = 0; x < groups.size(); ++x) {
    const auto size = static_cast<double>(groups[x].size());
    if (size < lo || size > hi) {
      add(out, "groups.size",
          "group " + std::to_string(x) + " has " +
              std::to_string(groups[x].size()) +
              " representatives, outside [" + std::to_string(lo) + ", " +
              std::to_string(hi) + "] = [lo, hi] * log2 n");
    }
  }
  return out;
}

std::vector<Violation> check_group_table(const dos::GroupTable& groups,
                                         double gamma) {
  std::vector<std::vector<sim::NodeId>> raw;
  raw.reserve(groups.supernodes());
  for (std::uint64_t x = 0; x < groups.supernodes(); ++x) {
    raw.push_back(groups.group(x));
  }
  auto out = check_group_partition(raw, groups.size());
  for (auto& violation : check_group_size_bounds(
           raw, groups.size(), gamma * kGroupSizeLoFactor,
           gamma * kGroupSizeHiFactor)) {
    if (out.size() < kMaxViolations) out.push_back(std::move(violation));
  }
  return out;
}

std::vector<Violation> check_complete_code(
    const std::vector<combined::Label>& labels) {
  std::vector<Violation> out;
  if (labels.empty()) {
    add(out, "labels.complete", "no live supernode labels");
    return out;
  }
  int max_length = 0;
  for (const auto& label : labels) {
    max_length = std::max(max_length, label.length);
  }
  // Prefix-freeness (duplicates are prefixes of themselves).
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = 0; j < labels.size(); ++j) {
      if (i == j) continue;
      if (labels[i].is_prefix_of(labels[j])) {
        add(out, "labels.prefix",
            "label " + labels[i].to_string() + " is a prefix of " +
                labels[j].to_string());
      }
    }
  }
  // Completeness via the Kraft sum: sum over labels of 2^{-d(x)} must be
  // exactly 1, i.e. sum of 2^{max - d(x)} == 2^max in integers.
  const auto full = std::uint64_t{1} << max_length;
  std::uint64_t kraft = 0;
  bool overflow = false;
  for (const auto& label : labels) {
    const auto term = std::uint64_t{1} << (max_length - label.length);
    if (kraft > full - term) {
      overflow = true;
      break;
    }
    kraft += term;
  }
  if (overflow || kraft != full) {
    add(out, "labels.complete",
        "Kraft sum of the live labels is " +
            (overflow ? std::string("> 1") : std::to_string(kraft) + "/" +
                                                 std::to_string(full)) +
            ", expected exactly 1 (labels must be the leaves of a full "
            "binary tree)");
  }
  return out;
}

std::vector<Violation> check_equation1(const combined::SuperGroups& super,
                                       double c) {
  std::vector<Violation> out;
  for (const auto& [key, entry] : super.groups()) {
    const auto& [label, members] = entry;
    const double d = label.dimension();
    const auto size = static_cast<double>(members.size());
    // enforce() splits only when |R| > 2cd and merges only when |R| < cd - c,
    // so healthy groups may rest exactly on either boundary of Equation (1);
    // the audited envelope is therefore the closed interval.
    if (!(c * d - c <= size && size <= 2.0 * c * d)) {
      add(out, "supergroups.equation1",
          "supernode " + label.to_string() + " (d=" +
              std::to_string(label.dimension()) + ") has " +
              std::to_string(members.size()) +
              " representatives, outside the Equation (1) envelope "
              "[c*d - c, 2*c*d] with c=" +
              std::to_string(c));
    }
  }
  return out;
}

std::vector<Violation> check_supergroups(const combined::SuperGroups& super,
                                         double c) {
  std::vector<Violation> out;
  std::vector<combined::Label> labels;
  std::vector<std::vector<sim::NodeId>> raw;
  labels.reserve(super.supernode_count());
  raw.reserve(super.supernode_count());
  for (const auto& [key, entry] : super.groups()) {
    labels.push_back(entry.first);
    raw.push_back(entry.second);
  }
  for (auto& violation : check_complete_code(labels)) {
    add(out, violation.check, std::move(violation.detail));
  }
  for (auto& violation : check_group_partition(raw, super.node_count())) {
    add(out, violation.check, std::move(violation.detail));
  }
  for (auto& violation : check_equation1(super, c)) {
    add(out, violation.check, std::move(violation.detail));
  }
  return out;
}

std::vector<Violation> check_round_conservation(const sim::RoundWork& round) {
  std::vector<Violation> out;
  const std::string prefix = "round " + std::to_string(round.round) + ": ";
  // Messages entering this round boundary: handed to the bus this round,
  // created by the fault hook as duplicates, or released from the delay
  // queue. Deliveries beyond that total are phantoms.
  const std::uint64_t entered = round.sent_messages +
                                round.duplicated_messages +
                                round.released_messages;
  if (round.total_messages > entered) {
    add(out, "bus.conservation",
        prefix + std::to_string(round.total_messages) +
            " messages delivered but only " + std::to_string(entered) +
            " entered the round (sent + duplicated + released)");
  }
  if (round.total_messages + round.dropped_messages + round.injected_drops +
          round.deferred_messages !=
      entered) {
    add(out, "bus.conservation",
        prefix + "delivered (" + std::to_string(round.total_messages) +
            ") + dropped (" + std::to_string(round.dropped_messages) +
            ") + injected drops (" + std::to_string(round.injected_drops) +
            ") + deferred (" + std::to_string(round.deferred_messages) +
            ") != sent (" + std::to_string(round.sent_messages) +
            ") + duplicated (" + std::to_string(round.duplicated_messages) +
            ") + released (" + std::to_string(round.released_messages) + ")");
  }
  return out;
}

std::vector<Violation> check_bus_conservation(const sim::WorkMeter& meter) {
  std::vector<Violation> out;
  for (const auto& round : meter.history()) {
    for (auto& violation : check_round_conservation(round)) {
      add(out, violation.check, std::move(violation.detail));
    }
    if (out.size() >= kMaxViolations) break;
  }
  return out;
}

std::vector<Violation> check_no_phantom_deliveries(
    const sim::WorkMeter& meter) {
  std::vector<Violation> out;
  for (const auto& round : meter.history()) {
    const std::uint64_t entered = round.sent_messages +
                                  round.duplicated_messages +
                                  round.released_messages;
    if (round.total_messages > entered) {
      add(out, "bus.phantom",
          "round " + std::to_string(round.round) + ": " +
              std::to_string(round.total_messages) +
              " messages delivered but only " + std::to_string(entered) +
              " entered the round");
    }
    if (out.size() >= kMaxViolations) break;
  }
  return out;
}

std::vector<Violation> check_at_most_once(std::span<const DeliveryRecord> log) {
  std::vector<Violation> out;
  // (receiver, seq) pairs in delivery order; within one channel the sequence
  // number is globally unique, so a repeat means dedup failed.
  std::set<std::pair<sim::NodeId, std::uint64_t>> seen;
  for (const auto& record : log) {
    if (!seen.insert({record.receiver, record.seq}).second) {
      add(out, "fault.at_most_once",
          "receiver " + std::to_string(record.receiver) +
              " accepted sequence number " + std::to_string(record.seq) +
              " (from " + std::to_string(record.sender) + ") twice");
      if (out.size() >= kMaxViolations) break;
    }
  }
  return out;
}

std::vector<Violation> check_blocking_rule(
    sim::NodeId from, sim::NodeId to, const sim::BlockedSet& blocked_sending,
    const sim::BlockedSet& blocked_delivery) {
  std::vector<Violation> out;
  if (blocked_sending.contains(from)) {
    add(out, "bus.blocking",
        "message from " + std::to_string(from) +
            " delivered although the sender was blocked in the sending "
            "round");
  }
  if (blocked_sending.contains(to)) {
    add(out, "bus.blocking",
        "message to " + std::to_string(to) +
            " delivered although the receiver was blocked in the sending "
            "round");
  }
  if (blocked_delivery.contains(to)) {
    add(out, "bus.blocking",
        "message to " + std::to_string(to) +
            " delivered although the receiver was blocked in the delivery "
            "round");
  }
  return out;
}

std::vector<Violation> check_blocked_budget(
    const sim::BlockedSet& blocked, std::size_t budget,
    std::span<const sim::NodeId> universe) {
  const std::unordered_set<sim::NodeId> known(universe.begin(),
                                              universe.end());
  return check_blocked_budget(blocked, budget, known);
}

std::vector<Violation> check_blocked_budget(
    const sim::BlockedSet& blocked, std::size_t budget,
    const std::unordered_set<sim::NodeId>& known_ids) {
  std::vector<Violation> out;
  if (blocked.size() > budget) {
    add(out, "adversary.budget",
        "adversary blocked " + std::to_string(blocked.size()) +
            " nodes, exceeding its budget of " + std::to_string(budget));
  }
  // sorted_ids() so the reported node (and thus the AuditError text) is the
  // same on every standard library, not whichever bucket comes first.
  for (sim::NodeId node : blocked.sorted_ids()) {
    if (!known_ids.contains(node)) {
      add(out, "adversary.budget",
          "adversary blocked node " + std::to_string(node) +
              ", which was never a member of the overlay");
      break;
    }
  }
  return out;
}

std::vector<Violation> check_adversary_lateness(sim::Round now,
                                                sim::Round snapshot_round,
                                                sim::Round lateness) {
  std::vector<Violation> out;
  if (now - snapshot_round < lateness) {
    add(out, "adversary.lateness",
        "adversary acting at round " + std::to_string(now) +
            " read a snapshot from round " + std::to_string(snapshot_round) +
            " (only " + std::to_string(now - snapshot_round) +
            " rounds stale), violating the configured lateness t=" +
            std::to_string(lateness));
  }
  return out;
}

std::vector<Violation> check_request_conservation(std::uint64_t issued,
                                                  std::uint64_t completed,
                                                  std::uint64_t failed,
                                                  std::uint64_t in_flight) {
  std::vector<Violation> out;
  if (issued != completed + failed + in_flight) {
    add(out, "workload.conservation",
        "request accounting broken: issued " + std::to_string(issued) +
            " != completed " + std::to_string(completed) + " + failed " +
            std::to_string(failed) + " + in-flight " +
            std::to_string(in_flight));
  }
  return out;
}

}  // namespace reconfnet::audit
