// Runtime invariant-audit layer. The overlays validate protocol invariants
// (H-graph structure, group-size bounds, supernode label consistency, bus
// conservation) at round and epoch boundaries, so a silent simulator bug
// fails loudly instead of quietly poisoning experiment results.
//
// Auditing is gated at runtime: it is off by default, switched on by the
// RECONFNET_AUDIT environment variable (or by default when the tree is
// configured with -DRECONFNET_AUDIT=ON), and can always be toggled
// programmatically via set_enabled(). Checks themselves live in
// audit/invariants.hpp; they are pure functions over observable state that
// return the list of violations found, so tests can run them against
// deliberately corrupted inputs.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reconfnet::audit {

/// One violated invariant, as reported by a checker in invariants.hpp.
struct Violation {
  /// Stable dotted identifier of the check, e.g. "hgraph.cycle".
  std::string check;
  /// Human-readable description including the offending values.
  std::string detail;
};

/// Thrown by enforce() when auditing is enabled and a checker reported at
/// least one violation.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(std::vector<Violation> violations)
      : std::runtime_error(format(violations)),
        violations_(std::move(violations)) {}

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  static std::string format(const std::vector<Violation>& violations) {
    std::string out = "invariant audit failed (" +
                      std::to_string(violations.size()) + " violation" +
                      (violations.size() == 1 ? "" : "s") + ")";
    for (const auto& violation : violations) {
      out += "\n  [" + violation.check + "] " + violation.detail;
    }
    return out;
  }

  std::vector<Violation> violations_;
};

/// Counters of audit activity since the last reset_stats().
struct Stats {
  std::uint64_t checks_run = 0;
  std::uint64_t violations_found = 0;
};

namespace detail {

// reconfnet-racecheck: allow(RNR505) on/off flag read by workers; never data
inline std::atomic<bool>& enabled_flag() {
  // reconfnet-racecheck: allow(RNR505) written once before workers exist
  static std::atomic<bool> flag = [] {
#ifdef RECONFNET_AUDIT_DEFAULT_ON
    bool on = true;
#else
    bool on = false;
#endif
    // The environment read happens once inside this function-local static's
    // initializer, which the runtime serialises before any worker thread can
    // reach the flag.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded static init
    if (const char* env = std::getenv("RECONFNET_AUDIT")) {
      const std::string_view value(env);
      on = !(value == "0" || value == "off" || value == "false" ||
             value.empty());
    }
    return on;
  }();
  return flag;
}

// reconfnet-racecheck: allow(RNR505) on/off flag read by workers; never data
inline std::atomic<bool>& oracle_enabled_flag() {
  // reconfnet-racecheck: allow(RNR505) written once before workers exist
  static std::atomic<bool> flag = [] {
    bool on = false;
    // Same single-threaded static-init discipline as enabled_flag() above.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded static init
    if (const char* env = std::getenv("RECONFNET_ORACLEAUDIT")) {
      const std::string_view value(env);
      on = !(value == "0" || value == "off" || value == "false" ||
             value.empty());
    }
    return on;
  }();
  return flag;
}

// reconfnet-racecheck: allow(RNR505) relaxed diagnostic tally, not a result
inline std::atomic<std::uint64_t>& checks_counter() {
  // reconfnet-racecheck: allow(RNR505) monotonic; order never observed
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

// reconfnet-racecheck: allow(RNR505) relaxed diagnostic tally, not a result
inline std::atomic<std::uint64_t>& violations_counter() {
  // reconfnet-racecheck: allow(RNR505) monotonic; order never observed
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace detail

/// Whether audit hooks should run. Overlays consult this before paying for a
/// check, so disabled audits cost one relaxed atomic load per hook.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Whether the adversary information-flow audit should run. Gated separately
/// from enabled(): the lateness assertion fires on *every* snapshot read
/// through sim::StaleSnapshotView, which is far hotter than round-boundary
/// invariant checks. Switched on by RECONFNET_ORACLEAUDIT.
[[nodiscard]] inline bool oracle_enabled() noexcept {
  return detail::oracle_enabled_flag().load(std::memory_order_relaxed);
}

inline void set_oracle_enabled(bool on) noexcept {
  detail::oracle_enabled_flag().store(on, std::memory_order_relaxed);
}

[[nodiscard]] inline Stats stats() noexcept {
  return {detail::checks_counter().load(std::memory_order_relaxed),
          detail::violations_counter().load(std::memory_order_relaxed)};
}

inline void reset_stats() noexcept {
  detail::checks_counter().store(0, std::memory_order_relaxed);
  detail::violations_counter().store(0, std::memory_order_relaxed);
}

/// RAII audit toggle, mainly for tests.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnable() { set_enabled(previous_); }

  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ScopedEnable(ScopedEnable&&) = delete;
  ScopedEnable& operator=(ScopedEnable&&) = delete;

 private:
  bool previous_;
};

/// RAII oracle-audit toggle, mirroring ScopedEnable for the adversary
/// information-flow checks.
class ScopedOracleEnable {
 public:
  explicit ScopedOracleEnable(bool on = true) : previous_(oracle_enabled()) {
    set_oracle_enabled(on);
  }
  ~ScopedOracleEnable() { set_oracle_enabled(previous_); }

  ScopedOracleEnable(const ScopedOracleEnable&) = delete;
  ScopedOracleEnable& operator=(const ScopedOracleEnable&) = delete;
  ScopedOracleEnable(ScopedOracleEnable&&) = delete;
  ScopedOracleEnable& operator=(ScopedOracleEnable&&) = delete;

 private:
  bool previous_;
};

/// Records that one check ran and throws AuditError if it found violations.
/// The canonical hook shape is:
///
///   if (audit::enabled()) {
///     audit::enforce(audit::check_hgraph(topology_, config_.degree));
///   }
inline void enforce(std::vector<Violation> violations) {
  detail::checks_counter().fetch_add(1, std::memory_order_relaxed);
  if (violations.empty()) return;
  detail::violations_counter().fetch_add(violations.size(),
                                         std::memory_order_relaxed);
  throw AuditError(std::move(violations));
}

}  // namespace reconfnet::audit
