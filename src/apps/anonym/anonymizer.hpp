// Robust anonymous routing (Section 7.1). The servers form the DoS-resistant
// grouped hypercube of Section 5; each server s has a destination group
// D(s) = R(x) \ {s} for the supernode x it represents. A user request enters
// at any non-blocked server s, fans out to D(s), and exits towards the
// destination user from servers that — thanks to the uniformly random group
// reassignment — are uniformly distributed over V from the attacker's point
// of view (Corollary 2): robustness, anonymity, and O(1) rounds per request.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dos/overlay.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::apps {

/// One user-to-user message routed through the server overlay.
struct AnonymousRequest {
  std::uint64_t from_user = 0;
  std::uint64_t to_user = 0;
};

struct AnonymizerReport {
  std::size_t requests = 0;
  std::size_t delivered = 0;       ///< reached the destination user
  std::size_t replied = 0;         ///< reply made it back to the source
  sim::Round rounds = 0;           ///< pipeline length (constant)
  /// One uniformly chosen exit server per delivered request; Corollary 2's
  /// anonymity property says these are uniform over V.
  std::vector<sim::NodeId> exit_servers;
};

/// Routes a batch of user requests through the server overlay under the
/// given per-round blocked sets (index r = blocked set in pipeline round r;
/// missing entries mean nothing blocked). Users are never blocked; servers
/// follow the paper's availability rule.
AnonymizerReport route_anonymous_batch(
    const dos::GroupTable& servers,
    std::span<const AnonymousRequest> requests,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng);

/// Number of pipeline rounds used per request (request: user -> s -> D -> w,
/// reply: w -> D -> v).
inline constexpr sim::Round kAnonymizerPipelineRounds = 5;

}  // namespace reconfnet::apps
