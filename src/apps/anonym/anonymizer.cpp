#include "apps/anonym/anonymizer.hpp"

#include <algorithm>

namespace reconfnet::apps {
namespace {

const sim::BlockedSet kNoneBlocked;

const sim::BlockedSet& blocked_at(
    std::span<const sim::BlockedSet> blocked_per_round, std::size_t round) {
  return round < blocked_per_round.size() ? blocked_per_round[round]
                                          : kNoneBlocked;
}

/// A server is available in round r if it is non-blocked in rounds r-1 and r
/// (the paper's availability rule; round 0 only needs round 0).
bool available(std::span<const sim::BlockedSet> blocked, std::size_t round,
               sim::NodeId server) {
  if (blocked_at(blocked, round).contains(server)) return false;
  if (round > 0 && blocked_at(blocked, round - 1).contains(server)) {
    return false;
  }
  return true;
}

}  // namespace

AnonymizerReport route_anonymous_batch(
    const dos::GroupTable& servers,
    std::span<const AnonymousRequest> requests,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  AnonymizerReport report;
  report.requests = requests.size();
  report.rounds = kAnonymizerPipelineRounds;

  const auto all = servers.all_nodes();
  // Round 0: the user contacts a non-blocked entry server s(v). Users can
  // probe servers freely, so we draw uniformly among the non-blocked ones.
  std::vector<sim::NodeId> entry_pool;
  entry_pool.reserve(all.size());
  for (sim::NodeId server : all) {
    if (!blocked_at(blocked_per_round, 0).contains(server)) {
      entry_pool.push_back(server);
    }
  }
  if (entry_pool.empty()) return report;

  for (const auto& request : requests) {
    (void)request;  // user identities do not influence routing
    const sim::NodeId entry = entry_pool[rng.below(entry_pool.size())];
    const auto x = servers.supernode_of(entry);
    // Round 1: entry forwards the message to its destination group
    // D(entry) = R(x) \ {entry}; a member receives it if the entry was
    // non-blocked when sending (guaranteed) and the member is available.
    std::vector<sim::NodeId> holders;
    for (sim::NodeId member : servers.group(x)) {
      if (member != entry && available(blocked_per_round, 1, member)) {
        holders.push_back(member);
      }
    }
    // Round 2: the holders forward to the destination user w (users are
    // never blocked) if they are non-blocked when sending.
    std::vector<sim::NodeId> exits;
    for (sim::NodeId holder : holders) {
      if (!blocked_at(blocked_per_round, 2).contains(holder)) {
        exits.push_back(holder);
      }
    }
    if (exits.empty()) continue;
    ++report.delivered;
    // The exit server "chosen by a rule that ignores server properties".
    report.exit_servers.push_back(exits[rng.below(exits.size())]);
    // Rounds 3-4: w replies to the servers it heard from; each needs to be
    // available in round 3 to receive and non-blocked in round 4 to forward
    // the reply back to the source user.
    const bool reply = std::any_of(
        exits.begin(), exits.end(), [&](sim::NodeId holder) {
          return available(blocked_per_round, 3, holder) &&
                 !blocked_at(blocked_per_round, 4).contains(holder);
        });
    if (reply) ++report.replied;
  }
  return report;
}

}  // namespace reconfnet::apps
