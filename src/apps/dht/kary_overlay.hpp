// The k-ary grouped hypercube overlay for the robust DHT (Section 7.2). The
// servers represent the vertices of a d-dimensional k-ary hypercube
// (Definition 1) through groups, reconfigured exactly like the binary overlay
// of Section 5. For k a power of two, a k-ary vertex is the concatenation of
// its digits' bits, so the rapid sampling primitive of Algorithm 2 runs over
// the d * log2(k) binary coordinates unchanged — only the adjacency relation
// (one *digit* may differ, coarser than one bit) distinguishes the k-ary
// overlay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adversary/dos.hpp"
#include "graph/kary_hypercube.hpp"
#include "sampling/schedule.hpp"
#include "sim/blocked.hpp"
#include "sim/bus.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::apps {

class KaryGroupedOverlay {
 public:
  struct Config {
    std::size_t size = 1024;
    int arity = 4;  ///< k; must be a power of two >= 2
    double group_c = 1.0;
    sampling::SamplingConfig sampling{};
    int size_estimate_slack = 0;
    std::uint64_t seed = 1;
    /// Materialize edge lists in topology snapshots. The full edge list is
    /// Theta((n/d * log n)^2 * d) pairs — gigabytes at n = 10^5 — and only
    /// stale-view adversaries read it, so large-scale workload runs without
    /// an epoch adversary turn it off.
    bool snapshot_edges = true;
  };

  struct Attack {
    adversary::DosAdversary* adversary = nullptr;
    int lateness = 0;
    double blocked_fraction = 0.0;
  };

  struct EpochReport {
    bool success = false;
    std::string failure_reason;
    bool reorganized = false;
    sim::Round rounds = 0;
    std::size_t silenced_group_rounds = 0;
    std::size_t disconnected_rounds = 0;
    double min_available_fraction = 1.0;
    std::size_t min_group_size = 0;
    std::size_t max_group_size = 0;
    /// Sampler requests/responses lost to the fault hook (DESIGN.md §10).
    std::size_t fault_dropped_messages = 0;
  };

  explicit KaryGroupedOverlay(const Config& config);

  /// Attaches (or detaches, with nullptr) a fault-injection hook to the
  /// epoch's sampler exchange: every request and response leg is offered to
  /// the hook, and the hook's clock ticks once per epoch round. The hook
  /// must outlive the overlay's epochs.
  void set_fault_hook(sim::DeliveryHook* hook) { fault_hook_ = hook; }

  /// One reconfiguration epoch (group-level Algorithm 2 simulation plus the
  /// four-round reorganization), under the given attack.
  EpochReport run_epoch(const Attack& attack);

  [[nodiscard]] const graph::KaryHypercube& cube() const { return cube_; }
  [[nodiscard]] std::size_t size() const { return config_.size; }
  [[nodiscard]] sim::Round round() const { return round_; }

  [[nodiscard]] const std::vector<sim::NodeId>& group(std::uint64_t x) const {
    return groups_[x];
  }
  [[nodiscard]] std::uint64_t supernode_of(sim::NodeId node) const {
    return node_to_supernode_.at(node);
  }
  [[nodiscard]] std::vector<sim::NodeId> all_nodes() const;
  [[nodiscard]] std::vector<std::pair<sim::NodeId, sim::NodeId>>
  overlay_edges() const;
  [[nodiscard]] std::size_t min_group_size() const;
  [[nodiscard]] std::size_t max_group_size() const;

  /// Deterministic key-to-supernode placement for the DHT layer.
  [[nodiscard]] std::uint64_t supernode_of_key(std::uint64_t key_hash) const {
    return key_hash % cube_.size();
  }

  /// True iff at least one member of R(x) is available in pipeline round
  /// `round` of `blocked_per_round` (the paper's rule: non-blocked in the
  /// round and its predecessor).
  [[nodiscard]] bool group_available(
      std::uint64_t x, std::size_t round,
      std::span<const sim::BlockedSet> blocked_per_round) const;

  /// Chooses d maximal with k^d <= n / (c log2 n), at least 1.
  static int choose_dimension(std::size_t n, int arity, double group_c);

 private:
  Config config_;
  support::Rng rng_;
  graph::KaryHypercube cube_;
  int bits_per_digit_;
  std::vector<std::vector<sim::NodeId>> groups_;  // by k-ary vertex
  std::unordered_map<sim::NodeId, std::uint64_t> node_to_supernode_;
  sim::SnapshotBuffer snapshots_;
  sim::BlockedSet blocked_prev_;
  sim::Round round_ = 0;
  sim::DeliveryHook* fault_hook_ = nullptr;
  std::vector<sim::Round> fate_;  ///< fault-hook scratch

  void rebuild_index();
  void push_snapshot();
  void advance_round(const Attack& attack, EpochReport& report);
  /// Offers one sampler-exchange message to the fault hook; true = lost
  /// (dropped outright or delayed past the exchange window).
  bool message_lost(std::uint64_t from, std::uint64_t to);
};

}  // namespace reconfnet::apps
