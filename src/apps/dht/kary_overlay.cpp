#include "apps/dht/kary_overlay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sim/stale_view.hpp"

namespace reconfnet::apps {
namespace {

bool is_power_of_two(int value) {
  return value >= 2 && (value & (value - 1)) == 0;
}

int log2_exact(int value) {
  int bits = 0;
  while ((1 << bits) < value) ++bits;
  return bits;
}

}  // namespace

int KaryGroupedOverlay::choose_dimension(std::size_t n, int arity,
                                         double group_c) {
  const double budget = static_cast<double>(n) /
                        (group_c * std::log2(static_cast<double>(n)));
  int d = 1;
  double next = static_cast<double>(arity) * arity;
  while (next <= budget && d < 20) {
    ++d;
    next *= arity;
  }
  return d;
}

KaryGroupedOverlay::KaryGroupedOverlay(const Config& config)
    : config_(config),
      rng_(config.seed),
      cube_(config.arity,
            choose_dimension(config.size, config.arity, config.group_c)),
      bits_per_digit_(0) {
  if (!is_power_of_two(config.arity)) {
    throw std::invalid_argument(
        "KaryGroupedOverlay: arity must be a power of two");
  }
  bits_per_digit_ = log2_exact(config.arity);
  groups_.resize(cube_.size());
  for (std::size_t i = 0; i < config.size; ++i) {
    groups_[rng_.below(cube_.size())].push_back(
        static_cast<sim::NodeId>(i));
  }
  for (auto& members : groups_) {
    if (members.empty()) {
      auto largest = std::max_element(
          groups_.begin(), groups_.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      members.push_back(largest->back());
      largest->pop_back();
    }
    std::sort(members.begin(), members.end());
  }
  rebuild_index();
  push_snapshot();
}

void KaryGroupedOverlay::rebuild_index() {
  node_to_supernode_.clear();
  for (std::uint64_t x = 0; x < groups_.size(); ++x) {
    for (sim::NodeId node : groups_[x]) node_to_supernode_[node] = x;
  }
}

std::vector<sim::NodeId> KaryGroupedOverlay::all_nodes() const {
  std::vector<sim::NodeId> nodes;
  nodes.reserve(config_.size);
  for (const auto& members : groups_) {
    nodes.insert(nodes.end(), members.begin(), members.end());
  }
  return nodes;
}

std::vector<std::pair<sim::NodeId, sim::NodeId>>
KaryGroupedOverlay::overlay_edges() const {
  std::vector<std::pair<sim::NodeId, sim::NodeId>> edges;
  for (std::uint64_t x = 0; x < groups_.size(); ++x) {
    const auto& members = groups_[x];
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        edges.emplace_back(members[i], members[j]);
      }
    }
    for (std::uint64_t y : cube_.neighbors(x)) {
      if (y < x) continue;
      for (sim::NodeId a : members) {
        for (sim::NodeId b : groups_[y]) edges.emplace_back(a, b);
      }
    }
  }
  return edges;
}

std::size_t KaryGroupedOverlay::min_group_size() const {
  std::size_t best = groups_.front().size();
  for (const auto& members : groups_) best = std::min(best, members.size());
  return best;
}

std::size_t KaryGroupedOverlay::max_group_size() const {
  std::size_t best = 0;
  for (const auto& members : groups_) best = std::max(best, members.size());
  return best;
}

bool KaryGroupedOverlay::group_available(
    std::uint64_t x, std::size_t round,
    std::span<const sim::BlockedSet> blocked_per_round) const {
  static const sim::BlockedSet kNone;
  const auto& now =
      round < blocked_per_round.size() ? blocked_per_round[round] : kNone;
  const auto& before = (round > 0 && round - 1 < blocked_per_round.size())
                           ? blocked_per_round[round - 1]
                           : kNone;
  return std::any_of(groups_[x].begin(), groups_[x].end(),
                     [&](sim::NodeId node) {
                       return !now.contains(node) && !before.contains(node);
                     });
}

void KaryGroupedOverlay::push_snapshot() {
  sim::TopologySnapshot snap;
  snap.round = round_;
  snap.nodes = all_nodes();
  if (config_.snapshot_edges) snap.edges = overlay_edges();
  snapshots_.push(std::move(snap));
}

bool KaryGroupedOverlay::message_lost(std::uint64_t from, std::uint64_t to) {
  fate_.clear();
  fault_hook_->on_message(static_cast<sim::NodeId>(from),
                          static_cast<sim::NodeId>(to), round_, fate_);
  if (fate_.empty()) return true;
  for (const sim::Round delay : fate_) {
    if (delay == 0) return false;
  }
  // All copies delayed past the synchronous exchange window.
  return true;
}

void KaryGroupedOverlay::advance_round(const Attack& attack,
                                       EpochReport& report) {
  sim::BlockedSet blocked;
  if (attack.adversary != nullptr) {
    const auto budget = static_cast<std::size_t>(
        attack.blocked_fraction * static_cast<double>(config_.size));
    snapshots_.ensure_lateness_horizon(attack.lateness);
    const sim::StaleSnapshotView stale =
        sim::serve_stale(snapshots_, round_, attack.lateness);
    const auto universe = all_nodes();
    blocked = attack.adversary->choose(stale, universe, budget, round_);
  }
  for (const auto& members : groups_) {
    std::size_t available = 0;
    for (sim::NodeId node : members) {
      if (!blocked.contains(node) && !blocked_prev_.contains(node)) {
        ++available;
      }
    }
    if (available == 0) ++report.silenced_group_rounds;
    report.min_available_fraction =
        std::min(report.min_available_fraction,
                 static_cast<double>(available) /
                     static_cast<double>(members.size()));
  }
  // A fully unblocked overlay is trivially connected (every group is
  // non-empty and the hypercube is connected), so skip materializing the
  // quadratic edge list — the dominant cost at n = 10^5 — in quiet rounds.
  if (!blocked.empty() &&
      !graph::is_connected_excluding(all_nodes(), overlay_edges(), blocked)) {
    ++report.disconnected_rounds;
  }
  blocked_prev_ = std::move(blocked);
  if (fault_hook_ != nullptr) fault_hook_->on_step(round_);
  ++round_;
  ++report.rounds;
}

KaryGroupedOverlay::EpochReport KaryGroupedOverlay::run_epoch(
    const Attack& attack) {
  EpochReport report;
  // k-ary vertices are sampled through the binary hypercube over
  // d * log2(k) coordinates (identity vertex encoding for k = 2^j).
  const int binary_dims = cube_.dimension() * bits_per_digit_;

  const auto estimate = sampling::SizeEstimate::from_true_size(
      config_.size, config_.size_estimate_slack);
  auto sampling_config = config_.sampling;
  const double needed_c = static_cast<double>(max_group_size() + 1) /
                          static_cast<double>(estimate.log_n_estimate());
  sampling_config.c = std::max(sampling_config.c, needed_c);
  sampling_config.beta = std::min(sampling_config.beta, sampling_config.c);
  const auto schedule =
      sampling::hypercube_schedule(estimate, binary_dims, sampling_config);

  std::vector<sampling::HypercubeSamplerCore> cores;
  std::vector<support::Rng> core_rngs;
  auto epoch_rng = rng_.split(static_cast<std::uint64_t>(round_) + 11);
  for (std::uint64_t x = 0; x < cube_.size(); ++x) {
    cores.emplace_back(binary_dims, x, schedule);
    core_rngs.push_back(epoch_rng.split(x));
    cores.back().init(core_rngs.back());
  }

  for (int i = 1; i <= schedule.iterations; ++i) {
    advance_round(attack, report);
    advance_round(attack, report);
    std::vector<std::vector<
        std::pair<std::uint64_t, sampling::HypercubeSamplerCore::Request>>>
        outgoing(cube_.size());
    for (std::uint64_t x = 0; x < cube_.size(); ++x) {
      outgoing[x] = cores[x].make_requests(i, core_rngs[x]);
    }
    advance_round(attack, report);
    advance_round(attack, report);
    std::vector<std::vector<sampling::HypercubeSamplerCore::Response>>
        responses(cube_.size());
    for (std::uint64_t x = 0; x < cube_.size(); ++x) {
      for (const auto& [dest, request] : outgoing[x]) {
        // Request and response legs of the sampler exchange are ordinary
        // wire traffic to the fault layer; a lost leg starves the requester
        // (and may fail the epoch through the dry-sampler check below).
        if (fault_hook_ != nullptr && message_lost(x, dest)) {
          ++report.fault_dropped_messages;
          continue;
        }
        auto response = cores[dest].serve(request, i, core_rngs[dest]);
        if (fault_hook_ != nullptr &&
            message_lost(dest, request.requester)) {
          ++report.fault_dropped_messages;
          continue;
        }
        responses[request.requester].push_back(std::move(response));
      }
    }
    for (std::uint64_t x = 0; x < cube_.size(); ++x) {
      cores[x].discard_consumed(i);
    }
    for (std::uint64_t x = 0; x < cube_.size(); ++x) {
      for (const auto& response : responses[x]) {
        cores[x].accept(response, core_rngs[x]);
      }
    }
  }
  for (int r = 0; r < 4; ++r) advance_round(attack, report);

  auto finish = [&](bool success, std::string reason) {
    report.success = success;
    report.failure_reason = std::move(reason);
    report.min_group_size = min_group_size();
    report.max_group_size = max_group_size();
    return report;
  };

  if (report.silenced_group_rounds > 0) {
    return finish(false, "a group was silenced");
  }
  std::size_t dry = 0;
  for (const auto& core : cores) dry += core.dry_events();
  if (dry > 0) return finish(false, "supernode sampling ran dry");

  std::vector<std::vector<sim::NodeId>> fresh(cube_.size());
  for (std::uint64_t x = 0; x < cube_.size(); ++x) {
    const auto& members = groups_[x];
    const auto& samples = cores[x].samples();
    if (samples.size() < members.size()) {
      return finish(false, "too few samples for a group");
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      fresh[samples[i]].push_back(members[i]);
    }
  }
  if (std::any_of(fresh.begin(), fresh.end(),
                  [](const auto& members) { return members.empty(); })) {
    return finish(false, "reassignment left a supernode empty");
  }
  for (auto& members : fresh) std::sort(members.begin(), members.end());
  groups_ = std::move(fresh);
  rebuild_index();
  push_snapshot();
  report.reorganized = true;
  return finish(report.disconnected_rounds == 0,
                report.disconnected_rounds == 0 ? "" : "disconnected");
}

}  // namespace reconfnet::apps
