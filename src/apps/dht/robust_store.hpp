// RoBuSt-lite: a robust distributed storage layer (Section 7.2) over the
// reconfiguring k-ary grouped hypercube. Every key has a home supernode; its
// record is replicated across the home group (logarithmic redundancy).
// Requests are routed group-to-group by fixing one k-ary digit per hop;
// under DoS blocking a hop succeeds as long as the source and destination
// groups each keep an available representative — exactly the Section 5
// condition. The original RoBuSt [11] is a black box we substitute: this
// layer satisfies its external contract (serve any batch of reads/writes
// with O(1) requests per non-blocked server at polylog work) on top of our
// own reconfiguration machinery.
//
// Deviation from the paper, documented in DESIGN.md: RoBuSt keeps data on
// fixed servers so reconfiguration never moves data; RoBuSt-lite replicates
// per group and hands records to the new groups at each reorganization. The
// handover piggy-backs on the reorganization messages, so it succeeds
// exactly when the epoch does.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "apps/dht/kary_overlay.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::apps {

class RobustStore {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  struct Request {
    bool is_write = false;
    Key key = 0;
    Value value = 0;
  };

  struct BatchReport {
    std::size_t reads = 0;
    std::size_t writes = 0;
    std::size_t read_ok = 0;   ///< value found and returned
    std::size_t write_ok = 0;  ///< value durably stored
    std::size_t not_found = 0; ///< read reached the home group, no record
    std::size_t routing_failures = 0;  ///< some hop had no available group
    sim::Round rounds = 0;             ///< longest request pipeline
    std::size_t max_group_congestion = 0;  ///< hops through busiest group
  };

  /// Outcome of one individually routed request (serve_one).
  struct ServeResult {
    bool ok = false;     ///< every hop had an available group
    bool found = false;  ///< reads only: record was present
    Value value = 0;
    sim::Round rounds = 0;  ///< pipeline rounds consumed (hops + serve)
  };

  explicit RobustStore(KaryGroupedOverlay* overlay);

  /// Serves one batch of requests under per-round blocking. Each request is
  /// routed from a uniformly random entry group to the key's home group by
  /// fixing one digit per hop (at most `dimension` hops) plus one round to
  /// serve.
  BatchReport execute(std::span<const Request> requests,
                      std::span<const sim::BlockedSet> blocked_per_round,
                      support::Rng& rng);

  /// Routes and serves a single request entering at `entry_group` (the
  /// workload driver draws the entry itself so it can account per-group
  /// capacity). Same digit-fixing route and blocking rule as execute().
  ServeResult serve_one(const Request& request, std::uint64_t entry_group,
                        std::span<const sim::BlockedSet> blocked_per_round);

  /// Runs one reconfiguration epoch of the underlying overlay. Records are
  /// replicated per group, so they survive exactly when the epoch succeeds
  /// (no group silenced).
  KaryGroupedOverlay::EpochReport reconfigure(
      const KaryGroupedOverlay::Attack& attack);

  /// Test/bench helper: direct lookup bypassing routing and blocking.
  [[nodiscard]] std::optional<Value> peek(Key key) const;

  [[nodiscard]] std::uint64_t home_supernode(Key key) const;
  [[nodiscard]] std::size_t record_count() const;

  /// Mixes a raw key into the placement hash space.
  static std::uint64_t hash_key(Key key);

  /// Home supernode of `key` on a plain d-dimensional hypercube (the
  /// Section 5 topology the transport layer deploys, as opposed to this
  /// store's k-ary overlay): the low `dimension` bits of the placement hash.
  static std::uint64_t hypercube_home(Key key, int dimension);

  /// The overlay this store runs on.
  [[nodiscard]] const KaryGroupedOverlay& overlay() const {
    return *overlay_;
  }

  /// Stores a record directly at its home shard. Only for protocols that
  /// have already routed the payload to the home group and paid the
  /// communication (e.g. the aggregated publish of Section 7.3).
  void deposit(Key key, Value value);

 private:
  /// Greedy digit-fixing route from `at` to `home` under per-round blocking;
  /// returns false when some hop (or the final serve round) had no available
  /// group. `rounds` receives the pipeline rounds consumed either way;
  /// per-group hop counts accumulate into `congestion` when non-null.
  bool route_to_home(std::uint64_t at, std::uint64_t home,
                     std::span<const sim::BlockedSet> blocked_per_round,
                     std::size_t& rounds,
                     std::unordered_map<std::uint64_t, std::size_t>* congestion)
      const;

  KaryGroupedOverlay* overlay_;
  /// shard per home supernode; the whole home group replicates it.
  std::unordered_map<std::uint64_t, std::unordered_map<Key, Value>> shards_;
};

}  // namespace reconfnet::apps
