#include "apps/dht/robust_store.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace reconfnet::apps {

RobustStore::RobustStore(KaryGroupedOverlay* overlay) : overlay_(overlay) {}

std::uint64_t RobustStore::hash_key(Key key) {
  std::uint64_t state = key ^ 0xA0761D6478BD642FULL;
  return support::splitmix64(state);
}

std::uint64_t RobustStore::hypercube_home(Key key, int dimension) {
  return hash_key(key) & ((std::uint64_t{1} << dimension) - 1);
}

std::uint64_t RobustStore::home_supernode(Key key) const {
  return overlay_->supernode_of_key(hash_key(key));
}

std::optional<RobustStore::Value> RobustStore::peek(Key key) const {
  const auto shard = shards_.find(home_supernode(key));
  if (shard == shards_.end()) return std::nullopt;
  const auto record = shard->second.find(key);
  if (record == shard->second.end()) return std::nullopt;
  return record->second;
}

std::size_t RobustStore::record_count() const {
  std::size_t total = 0;
  // reconfnet-lint: allow(RNL005) commutative sum over shard sizes
  for (const auto& [supernode, shard] : shards_) total += shard.size();
  return total;
}

void RobustStore::deposit(Key key, Value value) {
  shards_[home_supernode(key)][key] = value;
}

bool RobustStore::route_to_home(
    std::uint64_t at, std::uint64_t home,
    std::span<const sim::BlockedSet> blocked_per_round, std::size_t& rounds,
    std::unordered_map<std::uint64_t, std::size_t>* congestion) const {
  const auto& cube = overlay_->cube();
  // Greedy digit-fixing route; hop h occupies pipeline round h.
  bool routed = true;
  std::size_t round = 0;
  if (congestion != nullptr) ++(*congestion)[at];
  if (!overlay_->group_available(at, round, blocked_per_round)) {
    routed = false;
  }
  while (routed && at != home) {
    std::uint64_t next = at;
    for (int digit = 0; digit < cube.dimension(); ++digit) {
      const int want = cube.digit(home, digit);
      if (cube.digit(at, digit) != want) {
        next = cube.with_digit(at, digit, want);
        break;
      }
    }
    ++round;
    if (congestion != nullptr) ++(*congestion)[next];
    if (!overlay_->group_available(next, round, blocked_per_round)) {
      routed = false;
      break;
    }
    at = next;
  }
  // One final round for the home group to serve the request.
  ++round;
  if (routed && !overlay_->group_available(home, round, blocked_per_round)) {
    routed = false;
  }
  rounds = round;
  return routed;
}

RobustStore::ServeResult RobustStore::serve_one(
    const Request& request, std::uint64_t entry_group,
    std::span<const sim::BlockedSet> blocked_per_round) {
  ServeResult result;
  const std::uint64_t home = home_supernode(request.key);
  std::size_t rounds = 0;
  result.ok =
      route_to_home(entry_group, home, blocked_per_round, rounds, nullptr);
  result.rounds = static_cast<sim::Round>(rounds);
  if (!result.ok) return result;
  if (request.is_write) {
    shards_[home][request.key] = request.value;
    return result;
  }
  const auto shard = shards_.find(home);
  if (shard != shards_.end()) {
    const auto record = shard->second.find(request.key);
    if (record != shard->second.end()) {
      result.found = true;
      result.value = record->second;
    }
  }
  return result;
}

RobustStore::BatchReport RobustStore::execute(
    std::span<const Request> requests,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  BatchReport report;
  const auto& cube = overlay_->cube();
  std::unordered_map<std::uint64_t, std::size_t> congestion;

  for (const auto& request : requests) {
    (request.is_write ? report.writes : report.reads) += 1;
    // The request enters the overlay at a uniformly random group.
    const std::uint64_t at = rng.below(cube.size());
    const std::uint64_t home = home_supernode(request.key);
    std::size_t round = 0;
    const bool routed =
        route_to_home(at, home, blocked_per_round, round, &congestion);
    report.rounds = std::max(report.rounds, static_cast<sim::Round>(round));
    if (!routed) {
      ++report.routing_failures;
      continue;
    }
    if (request.is_write) {
      shards_[home][request.key] = request.value;
      ++report.write_ok;
    } else {
      const auto shard = shards_.find(home);
      const bool found = shard != shards_.end() &&
                         shard->second.contains(request.key);
      if (found) {
        ++report.read_ok;
      } else {
        ++report.not_found;
      }
    }
  }
  // reconfnet-lint: allow(RNL005) max-reduction; order cannot change the max
  for (const auto& [group, hops] : congestion) {
    report.max_group_congestion = std::max(report.max_group_congestion, hops);
  }
  return report;
}

KaryGroupedOverlay::EpochReport RobustStore::reconfigure(
    const KaryGroupedOverlay::Attack& attack) {
  // Shards are keyed by supernode and replicated across the (changing) home
  // group, so a successful epoch hands every record to the new group along
  // with the reorganization messages; a failed epoch keeps the old groups
  // and the old replicas.
  return overlay_->run_epoch(attack);
}

}  // namespace reconfnet::apps
