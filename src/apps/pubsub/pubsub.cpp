#include "apps/pubsub/pubsub.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace reconfnet::apps {

PubSub::PubSub(RobustStore* store) : store_(store) {}

RobustStore::Key PubSub::counter_key(Topic topic) {
  std::uint64_t state = topic ^ 0xC2B2AE3D27D4EB4FULL;
  return support::splitmix64(state);
}

RobustStore::Key PubSub::entry_key(Topic topic, std::uint64_t index) {
  std::uint64_t state = topic * 0x9E3779B97F4A7C15ULL + index;
  return support::splitmix64(state);
}

PubSub::PublishReport PubSub::publish(
    Topic topic, std::span<const Payload> payloads,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  PublishReport report;
  report.requested = payloads.size();
  if (payloads.empty()) return report;

  // Step 1: read the current counter m(k). A missing record means zero
  // publications so far.
  const RobustStore::Key ckey = counter_key(topic);
  std::vector<RobustStore::Request> read_counter{{false, ckey, 0}};
  const auto counter_read =
      store_->execute(read_counter, blocked_per_round, rng);
  report.rounds += counter_read.rounds;
  if (counter_read.routing_failures > 0) return report;
  const std::uint64_t base = store_->peek(ckey).value_or(0);

  // Step 2: store every payload under its assigned index.
  std::vector<RobustStore::Request> writes;
  writes.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    writes.push_back({true, entry_key(topic, base + 1 + i), payloads[i]});
  }
  const auto stored = store_->execute(writes, blocked_per_round, rng);
  report.rounds += stored.rounds;
  // Step 3: advance the counter over the stored prefix only, so fetchers
  // never chase a hole. Entries after a failed write are dropped.
  std::uint64_t stored_prefix = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (store_->peek(entry_key(topic, base + 1 + i)).has_value()) {
      stored_prefix = i + 1;
    } else {
      break;
    }
  }
  if (stored_prefix == 0) return report;
  std::vector<RobustStore::Request> bump{
      {true, ckey, base + stored_prefix}};
  const auto bumped = store_->execute(bump, blocked_per_round, rng);
  report.rounds += bumped.rounds;
  if (bumped.write_ok == 1) report.published = stored_prefix;
  return report;
}

PubSub::FetchResult PubSub::fetch_since(
    Topic topic, std::uint64_t since,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  FetchResult result;
  const RobustStore::Key ckey = counter_key(topic);
  std::vector<RobustStore::Request> read_counter{{false, ckey, 0}};
  const auto counter_read =
      store_->execute(read_counter, blocked_per_round, rng);
  result.rounds += counter_read.rounds;
  if (counter_read.routing_failures > 0) return result;
  result.latest = store_->peek(ckey).value_or(0);
  if (result.latest <= since) {
    result.complete = true;
    return result;
  }

  std::vector<RobustStore::Request> reads;
  for (std::uint64_t index = since + 1; index <= result.latest; ++index) {
    reads.push_back({false, entry_key(topic, index), 0});
  }
  const auto fetched = store_->execute(reads, blocked_per_round, rng);
  result.rounds += fetched.rounds;
  result.complete = fetched.read_ok == reads.size();
  for (std::uint64_t index = since + 1; index <= result.latest; ++index) {
    const auto value = store_->peek(entry_key(topic, index));
    if (value.has_value()) result.payloads.push_back(*value);
  }
  return result;
}

PubSub::AggregateReport PubSub::aggregate_publish(
    std::span<const BatchPublication> batch,
    std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng) {
  (void)rng;
  AggregateReport report;
  report.requested = batch.size();
  if (batch.empty()) return report;
  const auto& overlay = store_->overlay();
  const auto& cube = overlay.cube();

  // In-flight aggregates: (group, topic) -> payloads (with combining, one
  // message per topic per group regardless of how many publications merged).
  struct Flight {
    std::vector<Payload> payloads;
  };
  std::map<std::pair<std::uint64_t, Topic>, Flight> flights;
  std::unordered_map<std::uint64_t, std::size_t> combined_congestion;
  std::unordered_map<std::uint64_t, std::size_t> naive_congestion;

  const auto home_of = [&](Topic topic) {
    return store_->home_supernode(counter_key(topic));
  };
  for (const auto& publication : batch) {
    flights[{publication.origin_group, publication.topic}]
        .payloads.push_back(publication.payload);
    // Naive baseline: every publication is its own message at the origin.
    ++naive_congestion[publication.origin_group];
    ++combined_congestion[publication.origin_group];
  }
  // Correct the combined origin tally: one message per (group, topic).
  // reconfnet-lint: allow(RNL005) writes the same value to every entry
  for (auto& [group_id, count] : combined_congestion) count = 0;
  for (const auto& [key, flight] : flights) ++combined_congestion[key.first];

  // Lockstep digit-fixing hops with in-network combining. Unavailable
  // source or destination groups drop the aggregate (group redundancy makes
  // this rare; the report carries the loss).
  std::map<Topic, std::vector<Payload>> arrived;
  std::size_t round = 0;
  while (!flights.empty() && round < static_cast<std::size_t>(
                                 cube.dimension()) + 2) {
    std::map<std::pair<std::uint64_t, Topic>, Flight> next_flights;
    for (auto& [key, flight] : flights) {
      const auto [group_id, topic] = key;
      const std::uint64_t home = home_of(topic);
      if (group_id == home) {
        auto& sink = arrived[topic];
        sink.insert(sink.end(), flight.payloads.begin(),
                    flight.payloads.end());
        continue;
      }
      std::uint64_t next = group_id;
      for (int digit = 0; digit < cube.dimension(); ++digit) {
        const int want = cube.digit(home, digit);
        if (cube.digit(group_id, digit) != want) {
          next = cube.with_digit(group_id, digit, want);
          break;
        }
      }
      if (!overlay.group_available(group_id, round, blocked_per_round) ||
          !overlay.group_available(next, round + 1, blocked_per_round)) {
        continue;  // aggregate lost to blocking
      }
      auto& merged = next_flights[{next, topic}];
      merged.payloads.insert(merged.payloads.end(), flight.payloads.begin(),
                             flight.payloads.end());
      ++combined_congestion[next];
      naive_congestion[next] += flight.payloads.size();
    }
    flights = std::move(next_flights);
    ++round;
  }
  report.rounds = static_cast<sim::Round>(round) + 1;

  // Home groups assign consecutive indices and store the entries locally
  // (they already hold the shard).
  for (auto& [topic, payloads] : arrived) {
    const RobustStore::Key ckey = counter_key(topic);
    const std::uint64_t base = store_->peek(ckey).value_or(0);
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      store_->deposit(entry_key(topic, base + 1 + i), payloads[i]);
    }
    store_->deposit(ckey, base + payloads.size());
    report.published += payloads.size();
  }
  // reconfnet-lint: allow(RNL005) max-reduction; order cannot change the max
  for (const auto& [group_id, load] : combined_congestion) {
    report.combined_congestion = std::max(report.combined_congestion, load);
  }
  // reconfnet-lint: allow(RNL005) max-reduction; order cannot change the max
  for (const auto& [group_id, load] : naive_congestion) {
    report.naive_congestion = std::max(report.naive_congestion, load);
  }
  return report;
}

}  // namespace reconfnet::apps
