// Robust publish-subscribe (Section 7.3), emulated on the robust DHT: each
// topic key k stores a publication counter m(k); a batch of publications
// first reads the counter, assigns the consecutive indices
// m(k)+1 ... m(k)+j, stores publication i under the derived key (k, i), and
// finally bumps the counter. Subscribers fetch m(k) and then request every
// entry up to it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/dht/robust_store.hpp"
#include "sim/bus.hpp"
#include "support/rng.hpp"

namespace reconfnet::apps {

class PubSub {
 public:
  using Topic = std::uint64_t;
  using Payload = RobustStore::Value;

  explicit PubSub(RobustStore* store);

  struct PublishReport {
    std::size_t requested = 0;
    std::size_t published = 0;  ///< payloads durably stored and indexed
    sim::Round rounds = 0;
  };

  /// Publishes a batch of payloads under one topic (the paper's aggregated
  /// publication scheme). Under blocking, the batch succeeds or fails
  /// atomically per payload; the counter only advances over stored entries.
  PublishReport publish(Topic topic, std::span<const Payload> payloads,
                        std::span<const sim::BlockedSet> blocked_per_round,
                        support::Rng& rng);

  struct FetchResult {
    std::vector<Payload> payloads;  ///< entries since the given index
    std::uint64_t latest = 0;       ///< m(k) as read
    bool complete = false;          ///< all requested entries retrieved
    sim::Round rounds = 0;
  };

  /// One publication of the aggregated batch scheme: the server (group) it
  /// originates at and what it publishes.
  struct BatchPublication {
    std::uint64_t origin_group = 0;  ///< k-ary vertex the publisher sits in
    Topic topic = 0;
    Payload payload = 0;
  };

  struct AggregateReport {
    std::size_t requested = 0;
    std::size_t published = 0;
    sim::Round rounds = 0;
    /// Congestion (messages handled by the busiest group) with in-network
    /// combining — the Ranade-style aggregation of Section 7.3 ...
    std::size_t combined_congestion = 0;
    /// ... and what the same batch would cost routed naively, one message
    /// per publication with no combining.
    std::size_t naive_congestion = 0;
  };

  /// The paper's aggregated publication scheme (Section 7.3): a batch with
  /// at most O(1) publications per server routes toward each topic's home
  /// digit by digit; messages for the same topic *combine* at every
  /// intermediate group, so the per-group congestion stays bounded even when
  /// every server publishes to the same topic. The home group then assigns
  /// the consecutive indices m(k)+1.. and stores the entries.
  AggregateReport aggregate_publish(
      std::span<const BatchPublication> batch,
      std::span<const sim::BlockedSet> blocked_per_round, support::Rng& rng);

  /// Retrieves all publications with index > `since`.
  FetchResult fetch_since(Topic topic, std::uint64_t since,
                          std::span<const sim::BlockedSet> blocked_per_round,
                          support::Rng& rng);

  /// Key of the topic's publication counter m(k).
  static RobustStore::Key counter_key(Topic topic);
  /// Key of publication `index` of the topic.
  static RobustStore::Key entry_key(Topic topic, std::uint64_t index);

 private:
  RobustStore* store_;
};

}  // namespace reconfnet::apps
