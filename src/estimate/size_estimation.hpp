// Distributed network-size estimation — an extension that closes the
// paper's Section 4 assumption. The paper grants every node an oracle upper
// bound k on log log n (additive slack); here the nodes *compute* such a
// bound themselves with a Flajolet–Martin-style protocol on the H-graph:
//
//   1. Every node draws `slots` independent geometric random variables
//      (the number of leading zero bits of fresh 64-bit hashes).
//   2. The per-slot maxima are flooded over the overlay edges; max-merge is
//      idempotent, so the flood converges after diameter-many rounds
//      (O(log n) on an expander — a bootstrap cost paid rarely, amortized
//      over many O(log log n) reconfiguration epochs).
//   3. Each slot's maximum estimates log2 n up to an additive constant;
//      averaging the slots and adding a safety margin yields an upper bound
//      on log2 n, hence k = ceil(log2(that bound)) bounds log log n.
//
// The result plugs directly into sampling::SizeEstimate, replacing the
// oracle: see the EstimationFeedsSampling integration test.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/hgraph.hpp"
#include "sampling/schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::estimate {

struct SizeEstimationConfig {
  /// Independent geometric sketches per node; more slots reduce the variance
  /// of the log2 n estimate (stddev ~ 1.12 / sqrt(slots) in FM terms).
  int slots = 16;
  /// Additive safety margin on the log2 n estimate before taking the upper
  /// bound (absorbs the sketch's downward fluctuations).
  double margin = 1.0;
  /// Hard cap on flooding rounds (the diameter is O(log n) w.h.p.; the cap
  /// only guards against pathological inputs).
  int max_rounds = 256;
};

struct SizeEstimationResult {
  bool converged = false;  ///< the flood reached a global fixed point
  sim::Round rounds = 0;
  std::uint64_t max_node_bits_per_round = 0;
  /// Per node: the estimate of log2 n (slot-averaged, margin applied).
  std::vector<double> log_n_upper;
  /// Per node: the derived upper bound k on log log n — the oracle value.
  std::vector<int> loglog_upper;
};

/// Runs the estimation protocol at message level over the H-graph's edges.
SizeEstimationResult estimate_size(const graph::HGraph& graph,
                                   const SizeEstimationConfig& config,
                                   support::Rng& rng);

/// Convenience: the SizeEstimate oracle object node `v` would construct from
/// the protocol's result.
sampling::SizeEstimate oracle_of(const SizeEstimationResult& result,
                                 std::size_t node);

}  // namespace reconfnet::estimate
