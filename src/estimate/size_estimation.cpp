#include "estimate/size_estimation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "sim/bus.hpp"
#include "sim/metrics.hpp"

namespace reconfnet::estimate {
namespace {

/// Geometric variable: leading-zero count of a fresh 64-bit draw, capped.
int geometric_draw(support::Rng& rng) {
  const std::uint64_t draw = rng.next();
  return draw == 0 ? 64 : std::countl_zero(draw);
}

/// The flooded message: a node's current per-slot maxima.
struct SketchMsg {
  std::vector<std::uint8_t> maxima;
};

}  // namespace

SizeEstimationResult estimate_size(const graph::HGraph& graph,
                                   const SizeEstimationConfig& config,
                                   support::Rng& rng) {
  if (config.slots < 1) {
    throw std::invalid_argument("estimate_size: need at least one slot");
  }
  const std::size_t n = graph.size();
  const auto slots = static_cast<std::size_t>(config.slots);

  // Local sketches.
  std::vector<std::vector<std::uint8_t>> sketch(
      n, std::vector<std::uint8_t>(slots, 0));
  for (std::size_t v = 0; v < n; ++v) {
    auto node_rng = rng.split(v);
    for (std::size_t s = 0; s < slots; ++s) {
      sketch[v][s] = static_cast<std::uint8_t>(geometric_draw(node_rng));
    }
  }

  sim::WorkMeter meter;
  sim::Bus<SketchMsg> bus(&meter);
  const std::uint64_t bits_per_msg = slots * 8;

  SizeEstimationResult result;
  bool changed = true;
  int quiet_rounds = 0;
  for (int round = 0; round < config.max_rounds && quiet_rounds < 1;
       ++round) {
    // Nodes whose sketch changed last round (or everyone in round 0)
    // re-broadcast to all neighbors; max-merge on receipt.
    for (std::size_t v = 0; v < n; ++v) {
      for (int port = 0; port < graph.degree(); ++port) {
        bus.send(v, graph.neighbor(v, port), SketchMsg{sketch[v]},
                 bits_per_msg);
      }
    }
    bus.step();
    changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& envelope : bus.inbox(v)) {
        for (std::size_t s = 0; s < slots; ++s) {
          if (envelope.payload.maxima[s] > sketch[v][s]) {
            sketch[v][s] = envelope.payload.maxima[s];
            changed = true;
          }
        }
      }
    }
    quiet_rounds = changed ? 0 : quiet_rounds + 1;
  }
  result.converged = !changed;
  result.rounds = bus.round();
  result.max_node_bits_per_round = meter.max_node_bits_any_round();

  // Estimate: the expected slot maximum for n draws is ~ log2(n) + 0.33;
  // averaging slots and adding the margin gives the upper bound.
  result.log_n_upper.resize(n);
  result.loglog_upper.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    double sum = 0.0;
    for (std::size_t s = 0; s < slots; ++s) {
      sum += static_cast<double>(sketch[v][s]);
    }
    const double log_n =
        sum / static_cast<double>(slots) - 0.33 + config.margin;
    result.log_n_upper[v] = std::max(log_n, 1.0);
    result.loglog_upper[v] = std::max(
        1, static_cast<int>(std::ceil(std::log2(result.log_n_upper[v]))));
  }
  return result;
}

sampling::SizeEstimate oracle_of(const SizeEstimationResult& result,
                                 std::size_t node) {
  return sampling::SizeEstimate(result.loglog_upper.at(node));
}

}  // namespace reconfnet::estimate
