// Work-stealing thread pool for the experiment runtime.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm) and
// steals FIFO from a sibling when its deque runs dry, so an uneven trial
// grid still keeps every core busy. Submission round-robins across the
// deques to seed the initial spread.
//
// The pool itself makes no determinism promises — tasks run in whatever
// order stealing produces. Determinism is the TrialRunner's job: it derives
// each trial's RNG from the trial index alone and collects results in
// submission order, so the schedule cannot leak into the output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace reconfnet::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1). The pool is ready immediately.
  explicit ThreadPool(std::size_t workers);

  /// Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — wrap the body and capture the
  /// exception if it can (TrialRunner does). Throws std::runtime_error if
  /// the pool is already stopping.
  void submit(std::function<void()> task);

  /// Enqueues a task onto a specific worker's deque (modulo workers()),
  /// bypassing the round-robin spread. The racecheck replay harness funnels
  /// every task through queue 0 to force a steal-heavy schedule; results
  /// must not depend on placement.
  void submit_to(std::size_t queue, std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void wait_idle();

  [[nodiscard]] std::size_t workers() const { return queues_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may be 0).
  static std::size_t hardware_workers();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_acquire(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // `queued_` (tasks sitting in deques) and `pending_` (queued + running)
  // are only modified under `mutex_`, which also guards the wake-up
  // conditions, so sleepers can never miss a submission.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t queued_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::size_t next_queue_ = 0;
};

/// Runs fn(i) for every i in [0, count) on the pool and rethrows the
/// exception of the lowest failing index (deterministic choice) after all
/// iterations finished.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace reconfnet::runtime
