#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/racecheck.hpp"
#include "support/rng.hpp"

namespace reconfnet::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(workers, 1);
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is stopping");
    }
    const std::size_t target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    {
      std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    ++queued_;
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::submit_to(std::size_t queue, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit_to: pool is stopping");
    }
    const std::size_t target = queue % queues_.size();
    {
      std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    ++queued_;
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t ThreadPool::hardware_workers() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& task) {
  // Own queue first, newest task first (cache-warm); then steal the oldest
  // task from a sibling, scanning from the next worker around the ring.
  for (std::size_t offset = 0; offset < queues_.size(); ++offset) {
    const std::size_t victim = (self + offset) % queues_.size();
    WorkerQueue& queue = *queues_[victim];
    {
      std::lock_guard<std::mutex> queue_lock(queue.mutex);
      if (queue.tasks.empty()) continue;
      if (victim == self) {
        task = std::move(queue.tasks.back());
        queue.tasks.pop_back();
      } else {
        task = std::move(queue.tasks.front());
        queue.tasks.pop_front();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --queued_;
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (try_acquire(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) return;
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  // Submission order: natural in production. The racecheck replay harness
  // perturbs it (reverse / seeded shuffle / steal storm) — the determinism
  // contract says the schedule cannot leak into the results, and
  // tests/racecheck_replay_test.cpp holds the runtime to it.
  const racecheck::Schedule schedule = racecheck::schedule();
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  if (schedule == racecheck::Schedule::kReverse) {
    std::reverse(order.begin(), order.end());
  } else if (schedule == racecheck::Schedule::kSeeded) {
    support::Rng shuffle_rng(racecheck::schedule_seed());
    shuffle_rng.shuffle(std::span<std::size_t>(order));
  }

  const std::size_t region = racecheck::on_region_begin(count);
  for (const std::size_t i : order) {
    auto task = [&, i, region] {
      racecheck::TaskScope scope(region, i);
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          // reconfnet-racecheck: allow(RNR501) mutex-guarded min reduction
          first_error_index = i;
          // reconfnet-racecheck: allow(RNR501) keyed by index: deterministic
          first_error = std::current_exception();
        }
      }
    };
    if (schedule == racecheck::Schedule::kStealStorm) {
      pool.submit_to(0, std::move(task));
    } else {
      pool.submit(std::move(task));
    }
  }
  pool.wait_idle();
  const std::vector<std::string> violations = racecheck::on_region_end(region);
  if (first_error) std::rethrow_exception(first_error);
  if (!violations.empty()) {
    throw std::logic_error("parallel_for: ownership violation: " +
                           violations.front());
  }
}

}  // namespace reconfnet::runtime
