#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

namespace reconfnet::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(workers, 1);
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is stopping");
    }
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    {
      std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    ++queued_;
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t ThreadPool::hardware_workers() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& task) {
  // Own queue first, newest task first (cache-warm); then steal the oldest
  // task from a sibling, scanning from the next worker around the ring.
  for (std::size_t offset = 0; offset < queues_.size(); ++offset) {
    const std::size_t victim = (self + offset) % queues_.size();
    WorkerQueue& queue = *queues_[victim];
    {
      std::lock_guard<std::mutex> queue_lock(queue.mutex);
      if (queue.tasks.empty()) continue;
      if (victim == self) {
        task = std::move(queue.tasks.back());
        queue.tasks.pop_back();
      } else {
        task = std::move(queue.tasks.front());
        queue.tasks.pop_front();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --queued_;
    }
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    std::function<void()> task;
    if (try_acquire(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) all_done_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) return;
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace reconfnet::runtime
