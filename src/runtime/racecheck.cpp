#include "runtime/racecheck.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace reconfnet::runtime::racecheck {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
#ifdef RECONFNET_RACECHECK_DEFAULT_ON
    bool on = true;
#else
    bool on = false;
#endif
    // Read once inside the function-local static's initializer, which the
    // runtime serialises before any worker thread can reach the flag.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded static init
    if (const char* env = std::getenv("RECONFNET_RACECHECK")) {
      const std::string_view value(env);
      on = !(value == "0" || value == "off" || value == "false" ||
             value.empty());
    }
    return on;
  }();
  return flag;
}

std::atomic<Schedule> g_schedule{Schedule::kNatural};
std::atomic<std::uint64_t> g_schedule_seed{0};

/// One open parallel region: which slots have been written, and what went
/// wrong. Regions form a stack (fan-outs nest) but are looked up by id so an
/// inner region closing out of order cannot corrupt an outer one.
struct RegionState {
  std::size_t id = 0;
  std::vector<std::uint8_t> written;  // one flag per shard slot
  std::vector<std::string> violations;
};

struct Tracker {
  std::mutex mutex;
  std::vector<RegionState> open;  // innermost last
  std::size_t next_id = 1;
};

Tracker& tracker() {
  static Tracker instance;
  return instance;
}

/// The innermost (region, shard index) frames of the current thread. Plain
/// thread_local state: every pool worker and the submitting thread each see
/// only their own stack.
thread_local std::vector<std::pair<std::size_t, std::size_t>> t_frames;

RegionState* find_region(Tracker& t, std::size_t id) {
  for (auto it = t.open.rbegin(); it != t.open.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void set_schedule(Schedule schedule, std::uint64_t seed) {
  g_schedule.store(schedule, std::memory_order_relaxed);
  g_schedule_seed.store(seed, std::memory_order_relaxed);
}

Schedule schedule() { return g_schedule.load(std::memory_order_relaxed); }

std::uint64_t schedule_seed() {
  return g_schedule_seed.load(std::memory_order_relaxed);
}

std::size_t on_region_begin(std::size_t task_count) {
  if (!enabled()) return kNoRegion;
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mutex);
  RegionState region;
  region.id = t.next_id++;
  region.written.assign(task_count, 0);
  t.open.push_back(std::move(region));
  return t.open.back().id;
}

std::vector<std::string> on_region_end(std::size_t region) {
  if (region == kNoRegion) return {};
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mutex);
  for (auto it = t.open.begin(); it != t.open.end(); ++it) {
    if (it->id != region) continue;
    std::vector<std::string> violations = std::move(it->violations);
    t.open.erase(it);
    return violations;
  }
  return {};
}

TaskScope::TaskScope(std::size_t region, std::size_t index) {
  if (region == kNoRegion) return;
  t_frames.emplace_back(region, index);
  pushed_ = true;
}

TaskScope::~TaskScope() {
  if (pushed_) t_frames.pop_back();
}

void note_slot_write(std::size_t slot) {
  if (!enabled() || t_frames.empty()) return;
  const auto [region_id, index] = t_frames.back();
  Tracker& t = tracker();
  std::lock_guard<std::mutex> lock(t.mutex);
  RegionState* region = find_region(t, region_id);
  if (region == nullptr) return;  // region already closed (stale frame)
  if (slot != index) {
    region->violations.push_back(
        "racecheck: task " + std::to_string(index) + " wrote slot " +
        std::to_string(slot) + " it does not own");
    return;
  }
  if (slot < region->written.size() && region->written[slot] != 0) {
    region->violations.push_back("racecheck: slot " + std::to_string(slot) +
                                 " written more than once in its region");
    return;
  }
  if (slot < region->written.size()) region->written[slot] = 1;
}

}  // namespace reconfnet::runtime::racecheck
