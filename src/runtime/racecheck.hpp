// Dynamic half of the concurrency-safety checker (the static half is
// tools/racecheck/, DESIGN.md §13).
//
// Two facilities, both off by default and toggled at runtime:
//
//   1. Logical ownership tracker. parallel_for() opens a *region* per
//      fan-out; every task runs inside a thread-local frame carrying its
//      (region, shard index). Registered per-shard slot writes call
//      note_slot_write(slot), which asserts the PR-2 ownership discipline:
//      slot i is written exactly once, by task i. Violations are collected
//      per region and thrown as std::logic_error from the submitting thread
//      when the region closes — turning a silent race into a deterministic
//      test failure.
//
//   2. Schedule perturbation. set_schedule() changes the order in which
//      parallel_for feeds tasks to the pool: reversed, seed-shuffled, or
//      funnelled through a single queue so every other worker must steal
//      (kStealStorm). The determinism contract says the schedule cannot leak
//      into results; tests/racecheck_replay_test.cpp replays the runtime's
//      parallel regions under all of them and asserts byte-identical output.
//
// Enabling: RECONFNET_RACECHECK=1 in the environment, set_enabled(true), or
// building with -DRECONFNET_RACECHECK=ON (which flips the default). The
// hooks are a relaxed atomic load when disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reconfnet::runtime::racecheck {

/// Whether the ownership tracker is active. Reads RECONFNET_RACECHECK from
/// the environment once (before any worker thread exists), like the audit
/// layer's flag.
bool enabled();

/// Flips the tracker at runtime (tests use this; takes effect at the next
/// region begin).
void set_enabled(bool on);

/// Task-submission orders parallel_for can replay a region under. kNatural
/// is the production order; the others are adversarial schedules for the
/// replay harness.
enum class Schedule : std::uint8_t {
  kNatural,     ///< submission order 0, 1, ..., n-1 (production)
  kReverse,     ///< n-1, ..., 1, 0 — late shards run first
  kSeeded,      ///< a seed-derived shuffle of the submission order
  kStealStorm,  ///< natural order, but every task lands on worker 0's queue
                ///< so all other workers only ever steal
};

/// Selects the submission schedule (and the shuffle seed for kSeeded).
/// Applies to every subsequent parallel_for; independent of enabled().
void set_schedule(Schedule schedule, std::uint64_t seed = 0);
Schedule schedule();
std::uint64_t schedule_seed();

/// Sentinel returned by on_region_begin when the tracker is disabled.
inline constexpr std::size_t kNoRegion = static_cast<std::size_t>(-1);

/// Opens an ownership region of `task_count` shards; returns its id (or
/// kNoRegion when disabled). Regions nest (a task may fan out again).
std::size_t on_region_begin(std::size_t task_count);

/// Closes the region and returns the ownership violations it accumulated
/// (empty when clean or disabled). The caller decides how to fail; the
/// runtime throws std::logic_error from the submitting thread.
std::vector<std::string> on_region_end(std::size_t region);

/// RAII thread-local frame tying the current thread to (region, shard
/// index) for the duration of one task. No-op for kNoRegion.
class TaskScope {
 public:
  TaskScope(std::size_t region, std::size_t index);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  bool pushed_ = false;
};

/// Records that the current task wrote per-shard slot `slot`. Flags a
/// violation when `slot` is not the task's own shard index or the slot was
/// already written in this region. Ignored outside a task frame (serial
/// helper paths) or when disabled.
void note_slot_write(std::size_t slot);

}  // namespace reconfnet::runtime::racecheck
