// Structured results for the experiment suite: everything a bench binary
// prints as a human-readable table is also recorded here and exported as
// BENCH_<experiment-id>.json, so the perf trajectory of the repo is
// machine-readable across commits.
//
// Schema (schema id "reconfnet-bench-v1"):
//   {
//     "schema": "reconfnet-bench-v1",
//     "experiment": "<short id>",         // e.g. "T5_dos"
//     "title": "...", "claim": "...",
//     "meta": { "seed": u64, "reps": n, "git": "...", ... },
//     "tables": [ {"name": ..., "header": [...], "rows": [[...], ...]} ],
//     "metrics": [ {"group": ..., "name": ..., "values": [...],
//                   "summary": {count,min,max,mean,stddev,p50,p95,p99}} ],
//     "notes": [ "..." ],
//     "exit_code": 0,
//     "timing": { "jobs": n, "wall_seconds": s, "generated_at": iso8601 }
//   }
// Everything outside "timing" is a pure function of (binary, flags, seed):
// strip "timing" and the file is byte-stable — the determinism tests and
// the --jobs N == --jobs 1 guarantee rely on that split, so nothing
// nondeterministic may ever be recorded outside "timing".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "runtime/json.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace reconfnet::runtime {

class BenchResults {
 public:
  BenchResults(std::string experiment_id, std::string title,
               std::string claim);

  [[nodiscard]] const std::string& experiment_id() const {
    return experiment_id_;
  }

  /// Arbitrary deterministic run metadata (seed, reps, config knobs).
  void set_meta(const std::string& key, Json value);

  /// Records a printed table verbatim (header + all cell strings).
  void add_table(const std::string& name, const support::Table& table);

  /// Records a metric series (e.g. one value per repetition) under a group
  /// label, with aggregate statistics computed via support::summarize.
  /// Returns the computed summary so callers can print it without redoing
  /// the math.
  support::Summary add_metric(const std::string& group,
                              const std::string& name,
                              std::span<const double> values);

  /// Records an interpretation / free-text note.
  void add_note(const std::string& text);

  void set_exit_code(int code) { exit_code_ = code; }

  /// Wall-clock info; lives in the "timing" section, the only part of the
  /// file allowed to differ between --jobs 1 and --jobs N runs.
  void set_timing(std::size_t jobs, double wall_seconds);

  [[nodiscard]] Json to_json() const;
  void write(std::ostream& os) const;
  /// Writes the file; throws std::runtime_error if the path is not writable.
  void write_file(const std::string& path) const;

 private:
  std::string experiment_id_;
  std::string title_;
  std::string claim_;
  Json meta_ = Json::object();
  Json tables_ = Json::array();
  Json metrics_ = Json::array();
  Json notes_ = Json::array();
  int exit_code_ = 0;
  std::size_t jobs_ = 1;
  double wall_seconds_ = 0.0;
};

/// The `git describe` of the checkout at configure time ("unknown" outside a
/// git checkout). Baked in by CMake; goes stale until the next reconfigure,
/// which is fine for a perf-trajectory label.
std::string build_git_describe();

/// Current UTC time formatted as ISO-8601 (timing metadata only).
std::string iso8601_utc_now();

}  // namespace reconfnet::runtime
