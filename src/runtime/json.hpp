// Zero-dependency JSON value type for the structured-results layer.
//
// Writing is the primary job: BENCH_*.json files must be byte-stable for a
// fixed seed, so objects preserve insertion order and numbers print via
// shortest-round-trip formatting (std::to_chars). A small strict parser is
// included so tests (and tools) can round-trip what the writer emits.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reconfnet::runtime {

class Json {
 public:
  enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() = default;  // null
  Json(bool value) : type_(Type::Bool), bool_(value) {}
  Json(int value) : type_(Type::Int), int_(value) {}
  Json(std::int64_t value) : type_(Type::Int), int_(value) {}
  Json(std::uint64_t value) : type_(Type::Uint), uint_(value) {}
  Json(double value) : type_(Type::Double), double_(value) {}
  Json(const char* value) : type_(Type::String), string_(value) {}
  Json(std::string value) : type_(Type::String), string_(std::move(value)) {}

  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }

  /// Object access: inserts a null member if the key is missing. Converts a
  /// null value into an object on first use. Preserves insertion order.
  Json& operator[](std::string_view key);
  /// Read-only lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Removes a member if present; no-op otherwise. Used by tests to compare
  /// results modulo the timing section.
  void erase(std::string_view key);

  /// Array append. Converts a null value into an array on first use.
  void push_back(Json value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return object_;
  }

  /// Serializes. indent < 0 is compact; indent >= 0 pretty-prints with that
  /// many spaces per level. Non-finite doubles emit null (JSON has no NaN).
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Strict recursive-descent parse of a complete JSON document; throws
  /// std::runtime_error with an offset on malformed input.
  static Json parse(std::string_view text);

  /// JSON string escaping (without the surrounding quotes).
  static std::string escape(std::string_view raw);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace reconfnet::runtime
