#include "runtime/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace reconfnet::runtime {
namespace {

void dump_double(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Shortest representation that round-trips; locale-independent.
  std::array<char, 32> buffer{};
  const auto [end, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  os.write(buffer.data(), end - buffer.data());
  if (ec != std::errc()) os << "0";  // unreachable for finite doubles
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[key] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (the writer only emits \u00XX;
          // surrogate pairs are out of scope for this tooling format).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (is_integer) {
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [end, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && end == token.data() + token.size()) {
          return Json(value);
        }
      } else {
        std::uint64_t value = 0;
        const auto [end, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && end == token.data() + token.size()) {
          // Small positives stay Int so writer output matches parser output.
          if (value <= static_cast<std::uint64_t>(
                           std::numeric_limits<std::int64_t>::max())) {
            return Json(static_cast<std::int64_t>(value));
          }
          return Json(value);
        }
      }
      // Out-of-range integer literal: fall through to double.
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json value;
  value.type_ = Type::Array;
  return value;
}

Json Json::object() {
  Json value;
  value.type_ = Type::Object;
  return value;
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) {
    throw std::logic_error("Json::operator[]: not an object");
  }
  for (auto& [name, value] : object_) {
    if (name == key) return value;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::erase(std::string_view key) {
  if (type_ != Type::Object) return;
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return;
    }
  }
}

void Json::push_back(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) {
    throw std::logic_error("Json::push_back: not an array");
  }
  array_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::Array || index >= array_.size()) {
    throw std::out_of_range("Json::at: bad array index");
  }
  return array_[index];
}

std::int64_t Json::as_int() const {
  if (type_ == Type::Uint) return static_cast<std::int64_t>(uint_);
  if (type_ == Type::Double) return static_cast<std::int64_t>(double_);
  return int_;
}

std::uint64_t Json::as_uint() const {
  if (type_ == Type::Int) return static_cast<std::uint64_t>(int_);
  if (type_ == Type::Double) return static_cast<std::uint64_t>(double_);
  return uint_;
}

double Json::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(int_);
  if (type_ == Type::Uint) return static_cast<double>(uint_);
  return double_;
}

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer.data();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_and_pad = [&os, indent](int level) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent * level; ++i) os << ' ';
  };
  switch (type_) {
    case Type::Null:
      os << "null";
      break;
    case Type::Bool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::Int:
      os << int_;
      break;
    case Type::Uint:
      os << uint_;
      break;
    case Type::Double:
      dump_double(os, double_);
      break;
    case Type::String:
      os << '"' << escape(string_) << '"';
      break;
    case Type::Array: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) os << ',';
        newline_and_pad(depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      if (!array_.empty()) newline_and_pad(depth);
      os << ']';
      break;
    }
    case Type::Object: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) os << ',';
        newline_and_pad(depth + 1);
        os << '"' << escape(object_[i].first) << "\":";
        if (indent >= 0) os << ' ';
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      if (!object_.empty()) newline_and_pad(depth);
      os << '}';
      break;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  dump(out, indent);
  return out.str();
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace reconfnet::runtime
