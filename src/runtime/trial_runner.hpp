// Deterministic fan-out of a trial grid across a thread pool.
//
// The determinism contract (DESIGN.md §7):
//   1. Trial i's randomness is Rng(master_seed).split(i) — a pure function
//      of (master_seed, i), independent of which worker runs the trial and
//      of how many workers exist.
//   2. Results are collected into slot i of the output vector, so the
//      returned sequence is in submission order no matter how the scheduler
//      interleaved execution.
// Consequence: run(trials, fn) with jobs=N is byte-identical to jobs=1 for
// any fn that only reads shared state. tests/determinism_test.cpp pins this.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/racecheck.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace reconfnet::runtime {

/// Everything a trial body may depend on: its index in the grid and its
/// private RNG stream.
struct TrialContext {
  std::size_t index = 0;
  support::Rng rng;

  /// A fresh 64-bit seed drawn from the trial's stream, for components that
  /// take a seed rather than an Rng (overlay Configs).
  std::uint64_t derive_seed() { return rng.next(); }
};

class TrialRunner {
 public:
  TrialRunner(std::uint64_t master_seed, std::size_t jobs)
      : master_seed_(master_seed), jobs_(jobs == 0 ? 1 : jobs) {}

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }
  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// The trial RNG is derived from a throwaway master generator so the
  /// derivation never mutates shared state (Rng::split advances its parent).
  static support::Rng trial_rng(std::uint64_t master_seed,
                                std::size_t trial_index) {
    support::Rng master(master_seed);
    return master.split(trial_index);
  }

  /// Runs fn(TrialContext&) for every trial; returns results in trial-index
  /// order. jobs=1 executes inline (the serial reference path); jobs>1 fans
  /// out over a work-stealing pool. On failure the exception of the
  /// lowest-index failing trial is rethrown after all trials finished.
  template <typename Fn>
  auto run(std::size_t trials, Fn&& fn)
      -> std::vector<decltype(fn(std::declval<TrialContext&>()))> {
    using Result = decltype(fn(std::declval<TrialContext&>()));
    std::vector<std::optional<Result>> slots(trials);
    auto run_one = [&](std::size_t i) {
      TrialContext context{i, trial_rng(master_seed_, i)};
      racecheck::note_slot_write(i);
      slots[i].emplace(fn(context));
    };
    if (jobs_ <= 1 || trials <= 1) {
      // The serial reference path runs under the same ownership tracking as
      // the pool path, so a nested runner inside a parallel trial checks its
      // own slots instead of inheriting the outer task's frame.
      const std::size_t region = racecheck::on_region_begin(trials);
      for (std::size_t i = 0; i < trials; ++i) {
        racecheck::TaskScope scope(region, i);
        run_one(i);
      }
      const std::vector<std::string> violations =
          racecheck::on_region_end(region);
      if (!violations.empty()) {
        throw std::logic_error("TrialRunner: ownership violation: " +
                               violations.front());
      }
    } else {
      ThreadPool pool(std::min(jobs_, trials));
      parallel_for(pool, trials, run_one);
    }
    std::vector<Result> results;
    results.reserve(trials);
    for (auto& slot : slots) {
      if (!slot.has_value()) {
        throw std::logic_error("TrialRunner: trial produced no result");
      }
      results.push_back(std::move(*slot));
    }
    return results;
  }

 private:
  std::uint64_t master_seed_;
  std::size_t jobs_;
};

}  // namespace reconfnet::runtime
