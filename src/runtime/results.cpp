#include "runtime/results.hpp"

// The two time headers feed iso8601_utc_now() only — the `timing` block of
// BENCH_*.json is explicitly excluded from the determinism contract (the
// bench-smoke CI job strips it before comparing --jobs 1 to --jobs N).
// reconfnet-lint: allow(RNL003) timing metadata section
#include <chrono>
// reconfnet-lint: allow(RNL003) timing metadata section
#include <ctime>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "support/stats.hpp"

#ifndef RECONFNET_GIT_DESCRIBE
#define RECONFNET_GIT_DESCRIBE "unknown"
#endif

namespace reconfnet::runtime {

BenchResults::BenchResults(std::string experiment_id, std::string title,
                           std::string claim)
    : experiment_id_(std::move(experiment_id)),
      title_(std::move(title)),
      claim_(std::move(claim)) {}

void BenchResults::set_meta(const std::string& key, Json value) {
  meta_[key] = std::move(value);
}

void BenchResults::add_table(const std::string& name,
                             const support::Table& table) {
  Json entry = Json::object();
  entry["name"] = name;
  Json header = Json::array();
  for (const auto& cell : table.header()) header.push_back(cell);
  entry["header"] = std::move(header);
  Json rows = Json::array();
  for (const auto& row : table.cells()) {
    Json cells = Json::array();
    for (const auto& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  entry["rows"] = std::move(rows);
  tables_.push_back(std::move(entry));
}

support::Summary BenchResults::add_metric(const std::string& group,
                                          const std::string& name,
                                          std::span<const double> values) {
  Json entry = Json::object();
  entry["group"] = group;
  entry["name"] = name;
  Json raw = Json::array();
  for (const double v : values) raw.push_back(v);
  entry["values"] = std::move(raw);
  const support::Summary summary = support::summarize(values);
  Json stats = Json::object();
  stats["count"] = static_cast<std::uint64_t>(summary.count);
  stats["min"] = summary.min;
  stats["max"] = summary.max;
  stats["mean"] = summary.mean;
  stats["stddev"] = summary.stddev;
  stats["p50"] = summary.p50;
  stats["p95"] = summary.p95;
  stats["p99"] = summary.p99;
  entry["summary"] = std::move(stats);
  metrics_.push_back(std::move(entry));
  return summary;
}

void BenchResults::add_note(const std::string& text) {
  notes_.push_back(text);
}

void BenchResults::set_timing(std::size_t jobs, double wall_seconds) {
  jobs_ = jobs;
  wall_seconds_ = wall_seconds;
}

Json BenchResults::to_json() const {
  Json root = Json::object();
  root["schema"] = "reconfnet-bench-v1";
  root["experiment"] = experiment_id_;
  root["title"] = title_;
  root["claim"] = claim_;
  root["meta"] = meta_;
  root["tables"] = tables_;
  root["metrics"] = metrics_;
  root["notes"] = notes_;
  root["exit_code"] = exit_code_;
  Json timing = Json::object();
  timing["jobs"] = static_cast<std::uint64_t>(jobs_);
  timing["wall_seconds"] = wall_seconds_;
  timing["generated_at"] = iso8601_utc_now();
  root["timing"] = std::move(timing);
  return root;
}

void BenchResults::write(std::ostream& os) const {
  to_json().dump(os, 2);
  os << '\n';
}

void BenchResults::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("BenchResults: cannot write " + path);
  }
  write(out);
}

std::string build_git_describe() { return RECONFNET_GIT_DESCRIBE; }

std::string iso8601_utc_now() {
  // The generated_at stamp sits in the timing block, outside the
  // deterministic result payload.
  const std::time_t now =
      // reconfnet-lint: allow(RNL003) continuation of the timing stamp read
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  // reconfnet-lint: allow(RNL003) formatting of the timing stamp above
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

}  // namespace reconfnet::runtime
