// Synchronous message bus implementing the paper's communication model
// (Section 1.1) including the DoS blocking rule (Section 1.1, "Adversarial
// DoS-attacks"): a message sent from v to w in round i is received iff
//   - v is non-blocked in round i, and
//   - w is non-blocked in rounds i and i+1.
//
// The bus is the single place where messages cross node boundaries, so it is
// also where communication work is metered and where the fault-injection
// layer (src/fault/, DESIGN.md §10) interposes: an optional DeliveryHook
// decides the fate of every message that survives the blocking rule — drop,
// deliver now, deliver k rounds late, or duplicate — and may permute each
// inbox. With no hook attached the bus behaves exactly as before the hook
// existed (byte-identical deliveries and metering).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "sim/blocked.hpp"
#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace reconfnet::sim {

/// A message in flight.
template <typename Msg>
struct Envelope {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Msg payload{};
};

/// Interposes on Bus delivery (the fault-injection hook point). The bus
/// consults the hook only for messages that already passed the blocking rule,
/// so injected faults compose with — never mask — the adversary's drops.
class DeliveryHook {
 public:
  DeliveryHook() = default;
  DeliveryHook(const DeliveryHook&) = delete;
  DeliveryHook& operator=(const DeliveryHook&) = delete;
  DeliveryHook(DeliveryHook&&) = delete;
  DeliveryHook& operator=(DeliveryHook&&) = delete;
  virtual ~DeliveryHook() = default;

  /// Decides the fate of one message crossing the boundary of `round`.
  /// Append one entry per copy to deliver: 0 = deliver at the next round as
  /// usual, k > 0 = deliver k rounds late. Leaving `deliveries` empty drops
  /// the message. The first entry is the message itself; every further entry
  /// is an injected duplicate.
  virtual void on_message(NodeId from, NodeId to, Round round,
                          std::vector<Round>& deliveries) = 0;

  /// Optionally permutes the inbox of `node` for the round now beginning.
  /// Return true and fill `perm` with a permutation of [0, count) to reorder;
  /// return false to keep arrival order.
  virtual bool reorder(NodeId node, Round round, std::size_t count,
                       std::vector<std::size_t>& perm) = 0;

  /// Called once per step() so hooks with round-indexed schedules (partitions,
  /// crashes) can advance a clock that is shared across several buses.
  virtual void on_step(Round round) = 0;
};

/// Synchronous message bus for one message type. A protocol round proceeds:
///   1. read inbox(v) for every node v (messages delivered at this round),
///   2. compute,
///   3. send(from, to, msg, bits) for each outgoing message,
///   4. step(blocked_now, blocked_next) to advance the round boundary.
///
/// step() applies the paper's blocking rule: messages from blocked senders or
/// to receivers blocked in the sending round are dropped immediately; messages
/// to receivers blocked in the delivery round are dropped at delivery. A
/// delayed copy re-checks the receiver side of the rule in its actual
/// delivery round.
template <typename Msg>
class Bus {
 public:
  explicit Bus(WorkMeter* meter = nullptr) : meter_(meter) {}

  /// Attaches (or detaches, with nullptr) the fault-injection hook. The hook
  /// must outlive the bus.
  void set_fault_hook(DeliveryHook* hook) { hook_ = hook; }
  [[nodiscard]] DeliveryHook* fault_hook() const { return hook_; }

  /// Queues a message from `from` to `to` in the current round. `bits` is the
  /// wire size charged to both endpoints' communication work.
  void send(NodeId from, NodeId to, Msg payload, std::uint64_t bits) {
    if (meter_ != nullptr) meter_->note_sent(from, bits);
    outbox_.push_back(
        {Envelope<Msg>{from, to, std::move(payload)}, bits});
  }

  /// Advances the round boundary. `blocked_sending` is the adversary's
  /// blocked set for the round that just ended; `blocked_delivery` is the
  /// blocked set for the round about to begin.
  void step(const BlockedSet& blocked_sending,
            const BlockedSet& blocked_delivery) {
    // Deterministic inbox turnover: only the inboxes that received a
    // delivery last round hold messages, and `touched_` lists exactly those,
    // sorted. clear() keeps each vector's capacity, so steady-state rounds
    // recycle every buffer (pinned by tests/allocbudget_test.cpp).
    for (const NodeId node : touched_) {
      inboxes_[static_cast<std::size_t>(node)].clear();
    }
    touched_.clear();
    release_delayed(blocked_delivery);
    for (auto& [envelope, bits] : outbox_) {
      const bool delivered = !blocked_sending.contains(envelope.from) &&
                             !blocked_sending.contains(envelope.to) &&
                             !blocked_delivery.contains(envelope.to);
      if (!delivered) {
        if (meter_ != nullptr) meter_->note_dropped();
        continue;
      }
      if (audit::enabled()) {
        audit::enforce(audit::check_blocking_rule(
            envelope.from, envelope.to, blocked_sending, blocked_delivery));
      }
      if (hook_ == nullptr) {
        deliver(std::move(envelope), bits);
        continue;
      }
      fate_.clear();
      hook_->on_message(envelope.from, envelope.to, round_, fate_);
      if (fate_.empty()) {
        if (meter_ != nullptr) meter_->note_injected_drop();
        continue;
      }
      for (std::size_t copy = 0; copy + 1 < fate_.size(); ++copy) {
        if (meter_ != nullptr) meter_->note_duplicated();
        route(Envelope<Msg>{envelope}, bits, fate_[copy]);
      }
      route(std::move(envelope), bits, fate_.back());
    }
    std::sort(touched_.begin(), touched_.end());
    apply_reorder();
    outbox_.clear();
    if (hook_ != nullptr) hook_->on_step(round_);
    if (meter_ != nullptr) meter_->finish_round(round_);
    ++round_;
  }

  /// Convenience for protocols that run without a DoS adversary.
  void step() {
    static const BlockedSet kNone;
    step(kNone, kNone);
  }

  /// Messages delivered to `node` at the start of the current round.
  [[nodiscard]] std::span<const Envelope<Msg>> inbox(NodeId node) const {
    const auto index = static_cast<std::size_t>(node);
    if (index >= inboxes_.size()) return {};
    return {inboxes_[index].data(), inboxes_[index].size()};
  }

  /// Index of the current round (number of step() calls so far).
  [[nodiscard]] Round round() const { return round_; }

  /// Number of messages queued in the current round so far.
  [[nodiscard]] std::size_t pending() const { return outbox_.size(); }

  /// Number of hook-delayed copies still waiting for their delivery round.
  [[nodiscard]] std::size_t delayed_pending() const { return delayed_.size(); }

 private:
  struct Delayed {
    Envelope<Msg> envelope;
    std::uint64_t bits = 0;
    Round due = 0;  ///< value of round_ at whose step() this copy lands
  };

  /// Appends a delivery to its inbox and the touched list, with metering.
  /// Growing the inbox table is a one-time cost per new high NodeId (ids are
  /// dense and monotonic, sim/types.hpp); steady state never resizes.
  void deliver(Envelope<Msg> envelope, std::uint64_t bits) {
    if (meter_ != nullptr) meter_->note_received(envelope.to, bits);
    const auto index = static_cast<std::size_t>(envelope.to);
    if (index >= inboxes_.size()) inboxes_.resize(index + 1);
    auto& inbox = inboxes_[index];
    if (inbox.empty()) touched_.push_back(envelope.to);
    inbox.push_back(std::move(envelope));
  }

  /// Sends one hook-approved copy on its way: immediately, or into the delay
  /// queue when the hook deferred it.
  void route(Envelope<Msg> envelope, std::uint64_t bits, Round delay) {
    if (delay <= 0) {
      deliver(std::move(envelope), bits);
      return;
    }
    if (meter_ != nullptr) meter_->note_deferred();
    delayed_.push_back({std::move(envelope), bits, round_ + delay});
  }

  /// Delivers every delayed copy due at this boundary. The sender's side of
  /// the blocking rule was checked in the sending round; the receiver must be
  /// non-blocked in the (late) delivery round.
  void release_delayed(const BlockedSet& blocked_delivery) {
    if (delayed_.empty()) return;
    std::size_t kept = 0;
    for (auto& entry : delayed_) {
      if (entry.due != round_) {
        delayed_[kept++] = std::move(entry);
        continue;
      }
      if (meter_ != nullptr) meter_->note_released();
      if (blocked_delivery.contains(entry.envelope.to)) {
        if (meter_ != nullptr) meter_->note_dropped();
        continue;
      }
      if (audit::enabled()) {
        static const BlockedSet kNoBlocked;
        audit::enforce(audit::check_blocking_rule(
            entry.envelope.from, entry.envelope.to, kNoBlocked,
            blocked_delivery));
      }
      deliver(std::move(entry.envelope), entry.bits);
    }
    delayed_.resize(kept);
  }

  /// Lets the hook permute each touched inbox (fault-injected reordering).
  void apply_reorder() {
    if (hook_ == nullptr) return;
    for (const NodeId node : touched_) {
      auto& inbox = inboxes_[static_cast<std::size_t>(node)];
      perm_.clear();
      if (!hook_->reorder(node, round_, inbox.size(), perm_)) continue;
      if (perm_.size() != inbox.size()) continue;
      scratch_.clear();
      scratch_.reserve(inbox.size());
      for (const std::size_t index : perm_) {
        scratch_.push_back(std::move(inbox[index]));
      }
      inbox.swap(scratch_);
    }
  }

  std::vector<std::pair<Envelope<Msg>, std::uint64_t>> outbox_;
  /// Index-addressed by NodeId (dense, monotonic — sim/types.hpp), grown on
  /// demand in deliver(); cleared-not-shrunk so buffers recycle each round.
  std::vector<std::vector<Envelope<Msg>>> inboxes_;
  /// Nodes whose inbox received a delivery in the round that just ended,
  /// sorted by id; the next step() clears exactly these.
  std::vector<NodeId> touched_;
  std::vector<Delayed> delayed_;
  /// Scratch buffers reused across rounds.
  std::vector<Round> fate_;
  std::vector<std::size_t> perm_;
  std::vector<Envelope<Msg>> scratch_;
  WorkMeter* meter_;
  DeliveryHook* hook_ = nullptr;
  Round round_ = 0;
};

}  // namespace reconfnet::sim
