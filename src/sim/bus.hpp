// Synchronous message bus implementing the paper's communication model
// (Section 1.1) including the DoS blocking rule (Section 1.1, "Adversarial
// DoS-attacks"): a message sent from v to w in round i is received iff
//   - v is non-blocked in round i, and
//   - w is non-blocked in rounds i and i+1.
//
// The bus is the single place where messages cross node boundaries, so it is
// also where communication work is metered.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace reconfnet::sim {

/// The set of nodes blocked by the DoS adversary in one round.
class BlockedSet {
 public:
  BlockedSet() = default;
  explicit BlockedSet(std::unordered_set<NodeId> blocked)
      : blocked_(std::move(blocked)) {}

  [[nodiscard]] bool contains(NodeId node) const {
    return blocked_.contains(node);
  }
  [[nodiscard]] std::size_t size() const { return blocked_.size(); }
  [[nodiscard]] const std::unordered_set<NodeId>& ids() const {
    return blocked_;
  }

  void insert(NodeId node) { blocked_.insert(node); }
  void clear() { blocked_.clear(); }

 private:
  std::unordered_set<NodeId> blocked_;
};

/// A message in flight.
template <typename Msg>
struct Envelope {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Msg payload{};
};

/// Synchronous message bus for one message type. A protocol round proceeds:
///   1. read inbox(v) for every node v (messages delivered at this round),
///   2. compute,
///   3. send(from, to, msg, bits) for each outgoing message,
///   4. step(blocked_now, blocked_next) to advance the round boundary.
///
/// step() applies the paper's blocking rule: messages from blocked senders or
/// to receivers blocked in the sending round are dropped immediately; messages
/// to receivers blocked in the delivery round are dropped at delivery.
template <typename Msg>
class Bus {
 public:
  explicit Bus(WorkMeter* meter = nullptr) : meter_(meter) {}

  /// Queues a message from `from` to `to` in the current round. `bits` is the
  /// wire size charged to both endpoints' communication work.
  void send(NodeId from, NodeId to, Msg payload, std::uint64_t bits) {
    if (meter_ != nullptr) meter_->note_sent(from, bits);
    outbox_.push_back(
        {Envelope<Msg>{from, to, std::move(payload)}, bits});
  }

  /// Advances the round boundary. `blocked_sending` is the adversary's
  /// blocked set for the round that just ended; `blocked_delivery` is the
  /// blocked set for the round about to begin.
  void step(const BlockedSet& blocked_sending,
            const BlockedSet& blocked_delivery) {
    // Deterministic inbox turnover: only the inboxes that received a
    // delivery last round hold messages, and `touched_` lists exactly those,
    // sorted — no iteration over the unordered map.
    for (const NodeId node : touched_) inboxes_[node].clear();
    touched_.clear();
    for (auto& [envelope, bits] : outbox_) {
      const bool delivered = !blocked_sending.contains(envelope.from) &&
                             !blocked_sending.contains(envelope.to) &&
                             !blocked_delivery.contains(envelope.to);
      if (delivered) {
        if (audit::enabled()) {
          audit::enforce(audit::check_blocking_rule(
              envelope.from, envelope.to, blocked_sending.ids(),
              blocked_delivery.ids()));
        }
        if (meter_ != nullptr) meter_->note_received(envelope.to, bits);
        auto& inbox = inboxes_[envelope.to];
        if (inbox.empty()) touched_.push_back(envelope.to);
        inbox.push_back(std::move(envelope));
      } else if (meter_ != nullptr) {
        meter_->note_dropped();
      }
    }
    std::sort(touched_.begin(), touched_.end());
    outbox_.clear();
    if (meter_ != nullptr) meter_->finish_round(round_);
    ++round_;
  }

  /// Convenience for protocols that run without a DoS adversary.
  void step() {
    static const BlockedSet kNone;
    step(kNone, kNone);
  }

  /// Messages delivered to `node` at the start of the current round.
  [[nodiscard]] std::span<const Envelope<Msg>> inbox(NodeId node) const {
    auto it = inboxes_.find(node);
    if (it == inboxes_.end()) return {};
    return {it->second.data(), it->second.size()};
  }

  /// Index of the current round (number of step() calls so far).
  [[nodiscard]] Round round() const { return round_; }

  /// Number of messages queued in the current round so far.
  [[nodiscard]] std::size_t pending() const { return outbox_.size(); }

 private:
  std::vector<std::pair<Envelope<Msg>, std::uint64_t>> outbox_;
  std::unordered_map<NodeId, std::vector<Envelope<Msg>>> inboxes_;
  /// Nodes whose inbox received a delivery in the round that just ended,
  /// sorted by id; the next step() clears exactly these.
  std::vector<NodeId> touched_;
  WorkMeter* meter_;
  Round round_ = 0;
};

}  // namespace reconfnet::sim
