// Access-audited stale-snapshot view — the only object a DoS adversary is
// handed (Section 1.1). Wraps the TopologySnapshot served by
// SnapshotBuffer::stale_view(now - t) together with the round it was served
// in and the configured lateness t, and logs every read. Under
// RECONFNET_ORACLEAUDIT (audit::oracle_enabled()) each read re-asserts the
// information-flow contract now - snapshot.round >= t via
// audit::check_adversary_lateness, so an adversary that somehow obtained a
// too-fresh view fails loudly on first use instead of silently invalidating
// the T/A/W experiment families. The static half of the same seam is
// reconfnet_oraclecheck (tools/oraclecheck/, DESIGN.md §14).
//
// Layering: this file sits with sim/bus.hpp ABOVE src/audit/ (it hosts audit
// hooks), unlike the passive sim-core value types in snapshot.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace reconfnet::sim {

/// The adversary-facing view of a (possibly absent) stale snapshot. All
/// snapshot accessors count as reads and are lateness-audited; has_snapshot()
/// and the metadata accessors are free (they reveal nothing about topology).
class StaleSnapshotView {
 public:
  /// An empty view: no snapshot old enough exists yet.
  StaleSnapshotView() = default;

  /// Wraps `snapshot` (may be nullptr) as served to an adversary acting at
  /// round `now` under configured lateness `lateness`.
  StaleSnapshotView(const TopologySnapshot* snapshot, Round now,
                    Round lateness)
      : snapshot_(snapshot), now_(now), lateness_(lateness) {}

  [[nodiscard]] bool has_snapshot() const { return snapshot_ != nullptr; }

  /// Round the adversary is acting in (public knowledge).
  [[nodiscard]] Round now() const { return now_; }
  /// The enforced lateness t (part of the adversary's own parameters).
  [[nodiscard]] Round lateness() const { return lateness_; }

  /// Round the snapshot was taken in. Audited read; requires has_snapshot().
  [[nodiscard]] Round round() const {
    audit_read();
    return snapshot_->round;
  }

  /// Node set of the stale topology. Audited read; requires has_snapshot().
  [[nodiscard]] std::span<const NodeId> nodes() const {
    audit_read();
    return snapshot_->nodes;
  }

  /// Edge set of the stale topology. Audited read; requires has_snapshot().
  [[nodiscard]] std::span<const std::pair<NodeId, NodeId>> edges() const {
    audit_read();
    return snapshot_->edges;
  }

  /// Number of audited reads performed through this view (the access log the
  /// leak-probe tests and the oracle-audit CI leg inspect).
  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 private:
  void audit_read() const {
    ++reads_;
    if (audit::oracle_enabled()) {
      audit::enforce(audit::check_adversary_lateness(now_, snapshot_->round,
                                                     lateness_));
    }
  }

  const TopologySnapshot* snapshot_ = nullptr;
  Round now_ = 0;
  Round lateness_ = 0;
  mutable std::uint64_t reads_ = 0;
};

/// The one sanctioned way a harness serves an adversary its view: the
/// freshest snapshot at least `lateness` rounds older than `now`, wrapped for
/// access auditing. reconfnet_oraclecheck pins every call site of this
/// function ([[servesite]] in oracle.toml, rule RNO604) so the staleness
/// arithmetic cannot drift toward literals or stale_view(now).
[[nodiscard]] inline StaleSnapshotView serve_stale(const SnapshotBuffer& buffer,
                                                   Round now, Round lateness) {
  return {buffer.stale_view(now - lateness), now, lateness};
}

}  // namespace reconfnet::sim
