// The DoS adversary's blocked set for one round (paper Section 1.1).
//
// The raw unordered storage is intentionally never exposed: callers either
// query membership via contains() or take a sorted snapshot via sorted_ids(),
// so hash-bucket iteration order can never leak into protocol decisions or
// reported results (reconfnet-lint RNL005).
#pragma once

#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/types.hpp"
#include "support/sorted.hpp"

namespace reconfnet::sim {

/// The set of nodes blocked by the DoS adversary in one round.
class BlockedSet {
 public:
  BlockedSet() = default;
  explicit BlockedSet(std::unordered_set<NodeId> blocked)
      : blocked_(std::move(blocked)) {}

  [[nodiscard]] bool contains(NodeId node) const {
    return blocked_.contains(node);
  }
  [[nodiscard]] std::size_t size() const { return blocked_.size(); }
  [[nodiscard]] bool empty() const { return blocked_.empty(); }

  /// Deterministic snapshot of the blocked ids, ascending.
  [[nodiscard]] std::vector<NodeId> sorted_ids() const {
    return support::sorted(blocked_);
  }

  void insert(NodeId node) { blocked_.insert(node); }
  void clear() { blocked_.clear(); }

 private:
  std::unordered_set<NodeId> blocked_;
};

}  // namespace reconfnet::sim
