#include "sim/snapshot.hpp"

#include <algorithm>

namespace reconfnet::sim {
namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * byte)));
  }
}

}  // namespace

std::vector<std::uint8_t> serialize(const TopologySnapshot& snapshot) {
  std::vector<std::uint8_t> out;
  out.reserve(8 * (3 + snapshot.nodes.size() + 2 * snapshot.edges.size()));
  append_u64(out, static_cast<std::uint64_t>(snapshot.round));
  append_u64(out, snapshot.nodes.size());
  for (NodeId node : snapshot.nodes) append_u64(out, node);
  append_u64(out, snapshot.edges.size());
  for (const auto& [a, b] : snapshot.edges) {
    append_u64(out, a);
    append_u64(out, b);
  }
  return out;
}

SnapshotBuffer::SnapshotBuffer(std::size_t capacity) : capacity_(capacity) {}

void SnapshotBuffer::ensure_lateness_horizon(Round lateness) {
  if (lateness > horizon_) horizon_ = lateness;
}

void SnapshotBuffer::push(TopologySnapshot snapshot) {
  buffer_.push_back(std::move(snapshot));
  // Capacity-driven eviction, bounded by the lateness horizon: the front
  // snapshot may only go if the snapshot behind it is still old enough to
  // serve stale_view(newest - horizon) — i.e. the front is not the last
  // snapshot at or before the horizon boundary. When capacity and horizon
  // conflict, the horizon wins (the buffer grows past capacity) so a t-late
  // adversary never silently degrades to a no-information one.
  const Round boundary = buffer_.back().round - horizon_;
  while (buffer_.size() > capacity_ && buffer_.size() > 1 &&
         buffer_[1].round <= boundary) {
    buffer_.pop_front();
  }
}

const TopologySnapshot* SnapshotBuffer::stale_view(Round round) const {
  // Snapshots are pushed in ascending round order; find the last one with
  // snapshot.round <= round.
  auto it = std::upper_bound(
      buffer_.begin(), buffer_.end(), round,
      [](Round r, const TopologySnapshot& snap) { return r < snap.round; });
  if (it == buffer_.begin()) return nullptr;
  return &*std::prev(it);
}

}  // namespace reconfnet::sim
