#include "sim/snapshot.hpp"

#include <algorithm>

namespace reconfnet::sim {

SnapshotBuffer::SnapshotBuffer(std::size_t capacity) : capacity_(capacity) {}

void SnapshotBuffer::push(TopologySnapshot snapshot) {
  buffer_.push_back(std::move(snapshot));
  while (buffer_.size() > capacity_) buffer_.pop_front();
}

const TopologySnapshot* SnapshotBuffer::stale_view(Round round) const {
  // Snapshots are pushed in ascending round order; find the last one with
  // snapshot.round <= round.
  auto it = std::upper_bound(
      buffer_.begin(), buffer_.end(), round,
      [](Round r, const TopologySnapshot& snap) { return r < snap.round; });
  if (it == buffer_.begin()) return nullptr;
  return &*std::prev(it);
}

}  // namespace reconfnet::sim
