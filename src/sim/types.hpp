// Fundamental identifiers for the synchronous message-passing model
// (Section 1.1 of the paper).
#pragma once

#include <cstdint>
#include <limits>

namespace reconfnet::sim {

/// Globally unique node identifier. The paper requires ids of size O(log n)
/// that are never reused (every id enters and leaves the system at most once);
/// we model them as monotonically allocated 64-bit integers.
using NodeId = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Round counter of the synchronous model. Each round consists of
/// (1) receive, (2) local computation, (3) send.
using Round = std::int64_t;

/// Allocates fresh node ids; ids are never reused, matching the paper's
/// assumption that every id can be used at most once.
class IdAllocator {
 public:
  explicit IdAllocator(NodeId first = 0) : next_(first) {}

  NodeId allocate() { return next_++; }

  /// Number of ids handed out so far.
  [[nodiscard]] NodeId allocated() const { return next_; }

 private:
  NodeId next_;
};

/// Number of bits needed to encode one node id in a system whose id space has
/// been populated up to `max_id`. Used for communication-work accounting in
/// bits, as the paper defines communication work.
[[nodiscard]] constexpr std::uint64_t id_bits(NodeId max_id) {
  std::uint64_t bits = 1;
  while ((max_id >> bits) != 0) ++bits;
  return bits;
}

}  // namespace reconfnet::sim
