#include "sim/metrics.hpp"

#include <algorithm>

namespace reconfnet::sim {

NodeWork& WorkMeter::slot(NodeId node) {
  const auto index = static_cast<std::size_t>(node);
  if (index >= current_.size()) current_.resize(index + 1);
  NodeWork& work = current_[index];
  // Every note_* call increments a message counter, so all-zero counters
  // mean this is the node's first touch of the round.
  if (work.messages_sent == 0 && work.messages_received == 0) {
    touched_.push_back(node);
  }
  return work;
}

void WorkMeter::note_sent(NodeId node, std::uint64_t bits) {
  NodeWork& work = slot(node);
  work.bits_sent += bits;
  ++work.messages_sent;
}

void WorkMeter::note_received(NodeId node, std::uint64_t bits) {
  NodeWork& work = slot(node);
  work.bits_received += bits;
  ++work.messages_received;
}

void WorkMeter::note_dropped() { ++current_dropped_; }

void WorkMeter::note_injected_drop() { ++current_injected_drops_; }

void WorkMeter::note_duplicated() { ++current_duplicated_; }

void WorkMeter::note_deferred() { ++current_deferred_; }

void WorkMeter::note_released() { ++current_released_; }

void WorkMeter::finish_round(Round round) {
  RoundWork agg;
  agg.round = round;
  agg.dropped_messages = current_dropped_;
  agg.injected_drops = current_injected_drops_;
  agg.duplicated_messages = current_duplicated_;
  agg.deferred_messages = current_deferred_;
  agg.released_messages = current_released_;
  // Aggregation is commutative (max and sums), so first-touch order is as
  // good as any; resetting entries instead of erasing them keeps the table's
  // storage across rounds.
  for (const NodeId node : touched_) {
    NodeWork& work = current_[static_cast<std::size_t>(node)];
    agg.max_node_bits = std::max(agg.max_node_bits, work.bits_total());
    agg.total_bits += work.bits_total();
    agg.sent_messages += work.messages_sent;
    agg.total_messages += work.messages_received;
    work = NodeWork{};
  }
  history_.push_back(agg);
  touched_.clear();
  current_dropped_ = 0;
  current_injected_drops_ = 0;
  current_duplicated_ = 0;
  current_deferred_ = 0;
  current_released_ = 0;
}

std::uint64_t WorkMeter::max_node_bits_any_round() const {
  std::uint64_t best = 0;
  for (const auto& round_work : history_) {
    best = std::max(best, round_work.max_node_bits);
  }
  return best;
}

std::uint64_t WorkMeter::total_bits() const {
  std::uint64_t total = 0;
  for (const auto& round_work : history_) total += round_work.total_bits;
  return total;
}

void WorkMeter::clear() {
  current_.clear();
  touched_.clear();
  current_dropped_ = 0;
  current_injected_drops_ = 0;
  current_duplicated_ = 0;
  current_deferred_ = 0;
  current_released_ = 0;
  history_.clear();
}

}  // namespace reconfnet::sim
