// Communication-work accounting. The paper measures the communication work of
// a node in a round as the total number of bits it sends and receives, and all
// its theorems bound the worst case over nodes per round; these meters record
// exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::sim {

/// Per-node communication counters for a single round.
struct NodeWork {
  std::uint64_t bits_sent = 0;
  std::uint64_t bits_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;

  [[nodiscard]] std::uint64_t bits_total() const {
    return bits_sent + bits_received;
  }
};

/// Aggregated view of one finished round.
struct RoundWork {
  Round round = 0;
  std::uint64_t max_node_bits = 0;    ///< max over nodes of bits sent+received
  std::uint64_t total_bits = 0;       ///< sum over nodes
  std::uint64_t sent_messages = 0;    ///< messages handed to the bus
  std::uint64_t total_messages = 0;   ///< messages delivered
  std::uint64_t dropped_messages = 0; ///< lost to the blocking rule
  // Fault-injection accounting (src/fault/, DESIGN.md §10). Injected losses
  // are counted separately from blocking-rule drops so the audit layer can
  // tell adversarial silence from environmental faults; all four stay zero
  // when no DeliveryHook is attached.
  std::uint64_t injected_drops = 0;      ///< dropped by the fault hook
  std::uint64_t duplicated_messages = 0; ///< extra copies the hook created
  std::uint64_t deferred_messages = 0;   ///< copies parked in the delay queue
  std::uint64_t released_messages = 0;   ///< delayed copies leaving the queue

  /// Bus conservation (Section 1.1, extended for fault injection): every
  /// message entering a round boundary — sent this round, duplicated by the
  /// hook, or released from the delay queue — is delivered, dropped by the
  /// blocking rule, dropped by the hook, or deferred; never two of those and
  /// never silently created. With the fault counters at zero this reduces to
  /// the paper's delivered + dropped == sent.
  [[nodiscard]] bool conserved() const {
    return total_messages + dropped_messages + injected_drops +
               deferred_messages ==
           sent_messages + duplicated_messages + released_messages;
  }
};

/// Collects per-node work within the current round and a per-round history.
/// Protocol drivers call note_sent/note_received during a round and
/// finish_round() at the round boundary.
class WorkMeter {
 public:
  void note_sent(NodeId node, std::uint64_t bits);
  void note_received(NodeId node, std::uint64_t bits);
  void note_dropped();

  // Fault-injection events (see RoundWork): a copy dropped by the hook, an
  // extra copy created by the hook, a copy parked in the bus delay queue,
  // and a delayed copy leaving the queue at its delivery round.
  void note_injected_drop();
  void note_duplicated();
  void note_deferred();
  void note_released();

  /// Closes the current round: aggregates counters into the history and
  /// resets the per-node state.
  void finish_round(Round round);

  [[nodiscard]] const std::vector<RoundWork>& history() const {
    return history_;
  }

  /// Maximum over all finished rounds of the per-node per-round bit count.
  [[nodiscard]] std::uint64_t max_node_bits_any_round() const;

  /// Total bits over all finished rounds.
  [[nodiscard]] std::uint64_t total_bits() const;

  /// Number of finished rounds.
  [[nodiscard]] std::size_t rounds() const { return history_.size(); }

  void clear();

 private:
  /// Grows `current_` to cover `node` and returns its slot, recording first
  /// touches of the round in `touched_`.
  NodeWork& slot(NodeId node);

  /// Index-addressed by NodeId (dense, monotonic — sim/types.hpp). Entries
  /// are reset, not erased, at finish_round(), so the table and the
  /// `touched_` scratch recycle their storage across rounds.
  std::vector<NodeWork> current_;
  /// Nodes with nonzero counters this round, in first-touch order.
  std::vector<NodeId> touched_;
  std::uint64_t current_dropped_ = 0;
  std::uint64_t current_injected_drops_ = 0;
  std::uint64_t current_duplicated_ = 0;
  std::uint64_t current_deferred_ = 0;
  std::uint64_t current_released_ = 0;
  std::vector<RoundWork> history_;
};

}  // namespace reconfnet::sim
