// Topology snapshots for t-late DoS adversaries (Section 1.1). The adversary
// may only see the overlay's topology — never node state or message contents —
// and only as it was at least t rounds ago. The simulator records a snapshot
// per round and serves the adversary the freshest snapshot that is old enough.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::sim {

/// What a DoS adversary is allowed to observe: the node set and the edge set
/// of the overlay graph at some round. Edges are undirected and deduplicated.
struct TopologySnapshot {
  Round round = 0;
  std::vector<NodeId> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Canonical little-endian byte encoding of a snapshot (round, then
/// length-prefixed node and edge lists). Two runs of a deterministic
/// simulation from the same master seed must produce byte-identical
/// serializations — this is what the reproducibility tests compare.
[[nodiscard]] std::vector<std::uint8_t> serialize(
    const TopologySnapshot& snapshot);

/// Ring buffer of per-round snapshots with bounded memory.
///
/// Retention policy (pinned in tools/oraclecheck/oracle.toml): eviction is
/// capacity-driven but may never drop the freshest snapshot that is at least
/// `lateness_horizon()` rounds older than the newest one — that snapshot is
/// exactly what stale_view(now - t) serves a t-late adversary, and silently
/// evicting it would turn a t-late adversary into a no-information one
/// mid-run. When the horizon demands more history than `capacity` allows,
/// the horizon wins and the buffer grows past capacity.
class SnapshotBuffer {
 public:
  /// Keeps at most `capacity` snapshots, subject to the lateness horizon.
  explicit SnapshotBuffer(std::size_t capacity = 256);

  void push(TopologySnapshot snapshot);

  /// The freshest snapshot taken at or before `round`, or nullptr if none is
  /// retained that old. A t-late adversary acting at round r is served
  /// stale_view(r - t).
  [[nodiscard]] const TopologySnapshot* stale_view(Round round) const;

  /// The most recent snapshot, or nullptr if none was pushed yet.
  [[nodiscard]] const TopologySnapshot* latest() const {
    return buffer_.empty() ? nullptr : &buffer_.back();
  }

  /// Raises the lateness horizon to at least `lateness` rounds: from now on
  /// eviction keeps whatever snapshot stale_view(newest - lateness) needs.
  /// Harnesses call this when an attack's lateness is configured; the horizon
  /// only ever grows (the strongest adversary seen pins the history).
  void ensure_lateness_horizon(Round lateness);

  [[nodiscard]] Round lateness_horizon() const { return horizon_; }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::size_t capacity_;
  Round horizon_ = 0;
  std::deque<TopologySnapshot> buffer_;  // ascending round order
};

}  // namespace reconfnet::sim
