// Topology snapshots for t-late DoS adversaries (Section 1.1). The adversary
// may only see the overlay's topology — never node state or message contents —
// and only as it was at least t rounds ago. The simulator records a snapshot
// per round and serves the adversary the freshest snapshot that is old enough.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::sim {

/// What a DoS adversary is allowed to observe: the node set and the edge set
/// of the overlay graph at some round. Edges are undirected and deduplicated.
struct TopologySnapshot {
  Round round = 0;
  std::vector<NodeId> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Canonical little-endian byte encoding of a snapshot (round, then
/// length-prefixed node and edge lists). Two runs of a deterministic
/// simulation from the same master seed must produce byte-identical
/// serializations — this is what the reproducibility tests compare.
[[nodiscard]] std::vector<std::uint8_t> serialize(
    const TopologySnapshot& snapshot);

/// Ring buffer of per-round snapshots with bounded memory.
class SnapshotBuffer {
 public:
  /// Keeps at most `capacity` snapshots (old ones are evicted).
  explicit SnapshotBuffer(std::size_t capacity = 256);

  void push(TopologySnapshot snapshot);

  /// The freshest snapshot taken at or before `round`, or nullptr if none is
  /// retained that old. A t-late adversary acting at round r is served
  /// stale_view(r - t).
  [[nodiscard]] const TopologySnapshot* stale_view(Round round) const;

  /// The most recent snapshot, or nullptr if none was pushed yet.
  [[nodiscard]] const TopologySnapshot* latest() const {
    return buffer_.empty() ? nullptr : &buffer_.back();
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::size_t capacity_;
  std::deque<TopologySnapshot> buffer_;  // ascending round order
};

}  // namespace reconfnet::sim
