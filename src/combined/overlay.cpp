#include "combined/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "graph/connectivity.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sim/stale_view.hpp"
#include "support/sorted.hpp"

namespace reconfnet::combined {
namespace {

constexpr std::uint64_t kIdBits = 64;

}  // namespace

int CombinedOverlay::initial_dimension(std::size_t n, double group_c) {
  // Lemma 18: the unique d with 2^d * 2cd < n <= 2^{d+1} * 2c(d+1).
  for (int d = 1; d < 30; ++d) {
    const double low = std::ldexp(2.0 * group_c * d, d);
    const double high = std::ldexp(2.0 * group_c * (d + 1), d + 1);
    if (low < static_cast<double>(n) && static_cast<double>(n) <= high) {
      return d;
    }
  }
  return 1;
}

SuperGroups CombinedOverlay::bootstrap(const Config& config,
                                       support::Rng& rng,
                                       sim::IdAllocator& ids) {
  const int d = initial_dimension(config.initial_size, config.group_c);
  const std::uint64_t count = std::uint64_t{1} << d;
  std::vector<std::vector<sim::NodeId>> groups(count);
  for (std::size_t i = 0; i < config.initial_size; ++i) {
    groups[rng.below(count)].push_back(ids.allocate());
  }
  // A uniform assignment can leave rare outliers outside Equation (1); the
  // enforce pass immediately after construction repairs them.
  for (auto& members : groups) {
    if (members.empty()) {
      // Vanishingly rare at sane sizes: steal a node from the largest group.
      auto largest = std::max_element(
          groups.begin(), groups.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      members.push_back(largest->back());
      largest->pop_back();
    }
  }
  auto super = SuperGroups::uniform(d, std::move(groups));
  support::Rng enforce_rng = rng.split(42);
  super.enforce(config.group_c, enforce_rng);
  return super;
}

CombinedOverlay::CombinedOverlay(const Config& config)
    : config_(config),
      rng_(config.seed),
      super_(bootstrap(config, rng_, ids_)) {
  for (sim::NodeId id : super_.all_nodes()) ever_members_.insert(id);
  edges_ = super_.overlay_edges();
  push_snapshot();
}

void CombinedOverlay::push_snapshot() {
  sim::TopologySnapshot snap;
  snap.round = round_;
  snap.nodes = super_.all_nodes();
  snap.edges = edges_;
  snapshots_.push(std::move(snap));
}

void CombinedOverlay::poll_churn(adversary::ChurnAdversary& churn) {
  const auto members = super_.all_nodes();
  std::unordered_set<sim::NodeId> member_set(members.begin(), members.end());
  std::vector<sim::NodeId> departing(staged_leaves_.begin(),
                                     staged_leaves_.end());
  departing.insert(departing.end(), epoch_departing_.begin(),
                   epoch_departing_.end());
  adversary::ChurnView view{round_, members, departing};
  const auto batch = churn.next(view, ids_);
  for (const auto& [fresh, sponsor] : batch.joins) {
    if (!member_set.contains(sponsor) || staged_leaves_.contains(sponsor)) {
      throw std::logic_error("churn adversary violated the sponsor rule");
    }
    if (ever_members_.contains(fresh)) {
      throw std::logic_error("churn adversary reused a node id");
    }
    ever_members_.insert(fresh);
    staged_joins_[sponsor].push_back(fresh);
  }
  for (sim::NodeId leaver : batch.leaves) {
    if (!member_set.contains(leaver)) {
      throw std::logic_error("churn adversary removed a non-member");
    }
    staged_leaves_.insert(leaver);
  }
}

void CombinedOverlay::crash(sim::NodeId node) {
  const auto members = super_.all_nodes();
  if (std::find(members.begin(), members.end(), node) == members.end()) {
    throw std::invalid_argument("crash: node is not a member");
  }
  if (!crashed_.insert(node).second) {
    throw std::invalid_argument("crash: node already crashed");
  }
  // The group emulates the crashed node's departure: it is staged to leave
  // exactly like an announced leave, and it never communicates again.
  staged_leaves_.insert(node);
}

void CombinedOverlay::advance_round(adversary::ChurnAdversary& churn,
                                    const Attack& attack,
                                    std::uint64_t state_bits,
                                    EpochReport& report) {
  const std::size_t n = super_.node_count();
  sim::BlockedSet blocked;
  if (attack.adversary != nullptr) {
    const auto budget = static_cast<std::size_t>(
        attack.blocked_fraction * static_cast<double>(n));
    snapshots_.ensure_lateness_horizon(attack.lateness);
    const sim::StaleSnapshotView stale =
        sim::serve_stale(snapshots_, round_, attack.lateness);
    const auto universe = super_.all_nodes();
    blocked = attack.adversary->choose(stale, universe, budget, round_);
    // Round-boundary audit: the r-bounded adversary must respect its budget
    // and may only block ids that ever existed — a t-late adversary working
    // from a stale snapshot legitimately wastes budget on nodes that have
    // since churned out (Section 1.1; ids are never reused).
    if (audit::enabled()) {
      audit::enforce(
          audit::check_blocked_budget(blocked, budget, ever_members_));
    }
  }
  // Crashed members are silent forever, on top of any adversary budget.
  // reconfnet-lint: allow(RNL005) set union into a BlockedSet; the result's
  // contents do not depend on the iteration order
  for (sim::NodeId node : crashed_) blocked.insert(node);

  std::uint64_t max_bits = 0;
  for (const auto& [key, entry] : super_.groups()) {
    const auto& members = entry.second;
    std::size_t available = 0;
    for (sim::NodeId node : members) {
      if (!blocked.contains(node) && !blocked_prev_.contains(node)) {
        ++available;
      }
    }
    if (available == 0) ++report.silenced_group_rounds;
    report.min_available_fraction = std::min(
        report.min_available_fraction,
        static_cast<double>(available) / static_cast<double>(members.size()));
    const std::uint64_t per_node_bits =
        (static_cast<std::uint64_t>(members.size()) + available) * state_bits;
    max_bits = std::max(max_bits, per_node_bits);
  }
  report.max_node_bits_per_round =
      std::max(report.max_node_bits_per_round, max_bits);

  if (!graph::is_connected_excluding(super_.all_nodes(), edges_, blocked)) {
    ++report.disconnected_rounds;
  }

  poll_churn(churn);
  blocked_prev_ = std::move(blocked);
  ++round_;
  ++report.rounds;
}

CombinedOverlay::EpochReport CombinedOverlay::run_epoch(
    adversary::ChurnAdversary& churn, const Attack& attack) {
  EpochReport report;

  // Snapshot the staged churn for this epoch.
  auto epoch_joins = std::move(staged_joins_);
  auto epoch_leaves = std::move(staged_leaves_);
  staged_joins_.clear();
  staged_leaves_.clear();
  epoch_departing_ = epoch_leaves;

  // Classes: the supernodes projected onto the common prefix d_min. Every
  // class is simulated by the union of its groups.
  const int d_min = super_.min_dimension();
  const std::uint64_t class_count = std::uint64_t{1} << d_min;
  std::vector<std::vector<sim::NodeId>> class_members(class_count);
  std::size_t join_count = 0;
  for (const auto& [key, entry] : super_.groups()) {
    const auto& [label, members] = entry;
    auto& bucket = class_members[label.prefix(d_min).bits];
    for (sim::NodeId node : members) {
      if (epoch_leaves.contains(node)) {
        ++report.leaves_applied;  // leavers participate but are not placed
      } else {
        // reconfnet-hotcheck: allow(RNH404) class sizes are churn-dependent;
        // buckets are built once per epoch, not per round
        bucket.push_back(node);
      }
      // A leaver still places the joiners that were introduced to it before
      // it was prescribed to leave (Section 4's rule carries over).
      auto it = epoch_joins.find(node);
      if (it != epoch_joins.end()) {
        for (sim::NodeId joiner : it->second) {
          // reconfnet-hotcheck: allow(RNH404) once-per-epoch class assembly
          bucket.push_back(joiner);
          ++join_count;
        }
      }
    }
  }
  report.joins_applied = join_count;
  std::size_t placed_total = 0;
  std::size_t max_class = 0;
  for (auto& bucket : class_members) {
    std::sort(bucket.begin(), bucket.end());
    placed_total += bucket.size();
    max_class = std::max(max_class, bucket.size());
  }

  auto fail = [&](std::string reason) {
    report.success = false;
    report.failure_reason = std::move(reason);
    // Re-stage the snapshot so no churn is lost.
    for (auto& [sponsor, list] : epoch_joins) {
      // reconfnet-hotcheck: allow(RNH403) failure-path re-staging only
      auto& dest = staged_joins_[sponsor];
      dest.insert(dest.end(), list.begin(), list.end());
    }
    staged_leaves_.insert(epoch_leaves.begin(), epoch_leaves.end());
    epoch_departing_.clear();
    report.min_dimension = super_.min_dimension();
    report.max_dimension = super_.max_dimension();
    report.members_after = super_.node_count();
    report.min_group_size = super_.min_group_size();
    report.max_group_size = super_.max_group_size();
    return report;
  };

  if (placed_total < 4) return fail("fewer than 4 nodes would remain");

  // Schedule over the class hypercube; every class needs enough samples for
  // all its placements.
  const auto estimate = sampling::SizeEstimate::from_true_size(
      std::max<std::size_t>(placed_total, 4), config_.size_estimate_slack);
  auto sampling_config = config_.sampling;
  const double needed_c = static_cast<double>(max_class + 1) /
                          static_cast<double>(estimate.log_n_estimate());
  sampling_config.c = std::max(sampling_config.c, needed_c);
  sampling_config.beta = std::min(sampling_config.beta, sampling_config.c);
  const auto schedule =
      sampling::hypercube_schedule(estimate, std::max(d_min, 1),
                                   sampling_config);

  std::vector<sampling::HypercubeSamplerCore> cores;
  std::vector<support::Rng> core_rngs;
  cores.reserve(class_count);
  core_rngs.reserve(class_count);
  auto epoch_rng = rng_.split(static_cast<std::uint64_t>(round_) + 5);
  const int cube_dim = std::max(d_min, 1);
  for (std::uint64_t x = 0; x < class_count; ++x) {
    cores.emplace_back(cube_dim, x, schedule);
    core_rngs.push_back(epoch_rng.split(x));
    cores.back().init(core_rngs.back());
  }

  const double avg_group =
      static_cast<double>(super_.node_count()) /
      static_cast<double>(super_.supernode_count());
  auto state_bits_now = [&]() -> std::uint64_t {
    std::size_t entries = 0;
    for (int j = 1; j <= cube_dim; ++j) entries += cores[0].block(j).size();
    const double per_entry = static_cast<double>(cube_dim) +
                             avg_group * static_cast<double>(kIdBits);
    return 16 +
           static_cast<std::uint64_t>(static_cast<double>(entries) *
                                      per_entry) +
           static_cast<std::uint64_t>(avg_group) * kIdBits;
  };

  // Per-class scratch reused across sampling iterations; `outgoing` entries
  // are overwritten wholesale, `responses` entries are cleared (capacity
  // retained) at the top of each iteration.
  std::vector<std::vector<
      std::pair<std::uint64_t, sampling::HypercubeSamplerCore::Request>>>
      outgoing(class_count);
  std::vector<std::vector<sampling::HypercubeSamplerCore::Response>>
      responses(class_count);
  for (int i = 1; i <= schedule.iterations; ++i) {
    const auto state_bits = state_bits_now();
    advance_round(churn, attack, state_bits, report);
    advance_round(churn, attack, state_bits, report);
    for (std::uint64_t x = 0; x < class_count; ++x) {
      outgoing[x] = cores[x].make_requests(i, core_rngs[x]);
    }
    advance_round(churn, attack, state_bits, report);
    advance_round(churn, attack, state_bits, report);
    for (auto& per_class : responses) per_class.clear();
    for (std::uint64_t x = 0; x < class_count; ++x) {
      for (const auto& [dest, request] : outgoing[x]) {
        responses[request.requester].push_back(
            cores[dest].serve(request, i, core_rngs[dest]));
      }
    }
    for (std::uint64_t x = 0; x < class_count; ++x) {
      cores[x].discard_consumed(i);
    }
    for (std::uint64_t x = 0; x < class_count; ++x) {
      for (const auto& response : responses[x]) {
        cores[x].accept(response, core_rngs[x]);
      }
    }
  }

  // Refinement round: each sampled class vertex is extended to a concrete
  // supernode by the owning class (constant work), then four reorganization
  // rounds as in Section 5.
  for (int r = 0; r < 5; ++r) {
    advance_round(churn, attack, state_bits_now(), report);
  }

  if (report.silenced_group_rounds > 0) {
    return fail("a group was silenced");
  }
  std::size_t dry = 0;
  for (const auto& core : cores) dry += core.dry_events();
  if (dry > 0) return fail("class sampling ran dry");

  // Assignment: the i-th placement of class x goes to the supernode obtained
  // by refining the i-th sample of x. The table is keyed by prefix-code label
  // bits (sparse in the key space), built and consumed once per epoch.
  std::unordered_map<std::uint64_t, std::vector<sim::NodeId>> fresh;
  for (const auto& [key, entry] : super_.groups()) {
    // reconfnet-hotcheck: allow(RNH401, RNH403) once-per-epoch label remap
    fresh.emplace(key, std::vector<sim::NodeId>{});
  }
  for (std::uint64_t x = 0; x < class_count; ++x) {
    const auto& placements = class_members[x];
    const auto& samples = cores[x].samples();
    if (samples.size() < placements.size()) {
      return fail("too few samples for a class");
    }
    auto refine_rng = epoch_rng.split(0xF000 + x);
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const std::uint64_t class_bits = samples[i];
      const Label target = super_.descend([&](int depth) {
        return depth < d_min
                   ? static_cast<int>((class_bits >> depth) & 1)
                   : (refine_rng.coin() ? 1 : 0);
      });
      // reconfnet-hotcheck: allow(RNH403) once-per-epoch label remap
      fresh[target.key()].push_back(placements[i]);
    }
  }
  std::vector<std::pair<Label, std::vector<sim::NodeId>>> fresh_groups;
  fresh_groups.reserve(fresh.size());
  for (const auto& [key, entry] : super_.groups()) {
    // reconfnet-hotcheck: allow(RNH403) once-per-epoch label remap
    auto it = fresh.find(key);
    fresh_groups.emplace_back(entry.first, std::move(it->second));
  }
  try {
    // A shrinking network can transiently empty a supernode; the enforce()
    // pass below merges it away.
    super_.reassign(fresh_groups, /*allow_empty=*/true);
  } catch (const std::runtime_error& error) {
    return fail(error.what());
  }

  // Split/merge maintenance (Equation (1)); a constant number of organized
  // rounds per Lemma 18 — we charge two overlay rounds per sweep.
  auto enforce_rng = epoch_rng.split(0xE000);
  try {
    report.split_merge = super_.enforce(config_.group_c, enforce_rng);
  } catch (const std::runtime_error& error) {
    return fail(error.what());
  }
  if (super_.min_group_size() == 0) {
    return fail("split/merge left an empty supernode");
  }
  edges_ = super_.overlay_edges();
  // Epoch-boundary audit (Section 6): after split/merge maintenance the live
  // labels must form a complete prefix-free code, every supernode must
  // satisfy Equation (1), the groups must partition the members, and the
  // overlay edge list must be a well-formed undirected graph.
  if (audit::enabled()) {
    auto violations = audit::check_supergroups(super_, config_.group_c);
    for (auto& violation :
         audit::check_edge_symmetry(super_.all_nodes(), edges_)) {
      // reconfnet-hotcheck: allow(RNH404) audit-only path, sizes unknowable
      violations.push_back(std::move(violation));
    }
    audit::enforce(std::move(violations));
  }
  for (int r = 0; r < 2 * report.split_merge.sweeps; ++r) {
    advance_round(churn, attack, state_bits_now(), report);
  }
  push_snapshot();

  epoch_departing_.clear();
  // Delegate joins staged during this epoch whose sponsor just left.
  const auto member_list = super_.all_nodes();
  std::unordered_set<sim::NodeId> member_set(member_list.begin(),
                                             member_list.end());
  // Sorted sponsor order: each orphan draws a delegate from the overlay
  // RNG, so hash-bucket order must not pick the processing sequence.
  std::vector<sim::NodeId> orphaned;
  for (sim::NodeId sponsor : support::sorted_keys(staged_joins_)) {
    // reconfnet-hotcheck: allow(RNH404) once per epoch, usually a handful
    if (!member_set.contains(sponsor)) orphaned.push_back(sponsor);
  }
  for (sim::NodeId sponsor : orphaned) {
    // Staged joins are keyed by sponsor id, which survives renumbering and is
    // sparse in the id space; the table is touched once per epoch boundary.
    // reconfnet-hotcheck: allow(RNH403) sparse sponsor-id staging table
    auto list = std::move(staged_joins_[sponsor]);
    // reconfnet-hotcheck: allow(RNH403) sparse sponsor-id staging table
    staged_joins_.erase(sponsor);
    const sim::NodeId delegate = member_list[rng_.below(member_list.size())];
    // reconfnet-hotcheck: allow(RNH403) sparse sponsor-id staging table
    auto& dest = staged_joins_[delegate];
    dest.insert(dest.end(), list.begin(), list.end());
  }
  std::erase_if(staged_leaves_, [&member_set](sim::NodeId node) {
    return !member_set.contains(node);
  });
  // Crashed nodes that have now left the overlay need no further emulation.
  std::erase_if(crashed_, [&member_set](sim::NodeId node) {
    return !member_set.contains(node);
  });

  report.success = report.disconnected_rounds == 0;
  if (!report.success) report.failure_reason = "disconnected";
  report.reorganized = true;
  report.min_dimension = super_.min_dimension();
  report.max_dimension = super_.max_dimension();
  report.members_after = super_.node_count();
  report.min_group_size = super_.min_group_size();
  report.max_group_size = super_.max_group_size();
  return report;
}

}  // namespace reconfnet::combined
