// The combined churn+DoS-resistant overlay of Section 6: the grouped
// hypercube of Section 5 with variable-dimension supernodes that split and
// merge to track the churning node count (Equation (1), Lemma 18). It
// withstands a (1/2 - eps)-bounded Omega(log log n)-late DoS adversary and
// simultaneous adversarial churn with rate gamma^{1/Theta(log log n)}
// (Theorem 7).
//
// Sampling with variable dimensions: Algorithm 2 runs over the common label
// prefix d_min (the "classes"), then each sample is refined by one
// constant-work round in which the owning class extends the sample uniformly
// over its <= 4 descendant supernodes — yielding Pr[x] = 2^{-d(x)} exactly
// (see DESIGN.md's substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "combined/split_merge.hpp"
#include "sampling/schedule.hpp"
#include "sim/blocked.hpp"
#include "sim/snapshot.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::combined {

class CombinedOverlay {
 public:
  struct Config {
    std::size_t initial_size = 1024;
    /// Equation (1) constant: c*d(x) - c < |R(x)| < 2*c*d(x).
    double group_c = 2.0;
    sampling::SamplingConfig sampling{};
    int size_estimate_slack = 0;
    std::uint64_t seed = 1;
  };

  struct Attack {
    adversary::DosAdversary* adversary = nullptr;
    int lateness = 0;
    double blocked_fraction = 0.0;
  };

  struct EpochReport {
    bool success = false;
    std::string failure_reason;
    bool reorganized = false;
    sim::Round rounds = 0;
    std::size_t silenced_group_rounds = 0;
    std::size_t disconnected_rounds = 0;
    double min_available_fraction = 1.0;
    /// Lemma 18 observables.
    int min_dimension = 0;
    int max_dimension = 0;
    SplitMergeOps split_merge;
    std::size_t joins_applied = 0;
    std::size_t leaves_applied = 0;
    std::size_t members_after = 0;
    std::size_t min_group_size = 0;
    std::size_t max_group_size = 0;
    std::uint64_t max_node_bits_per_round = 0;
  };

  explicit CombinedOverlay(const Config& config);

  /// One reconfiguration epoch under simultaneous churn and DoS attack.
  /// Both adversaries act every round; churn staged during this epoch takes
  /// effect at the end of the next one.
  EpochReport run_epoch(adversary::ChurnAdversary& churn,
                        const Attack& attack);

  /// Crash-failure extension (Section 6's closing discussion): when crashes
  /// are distinguishable from DoS blocking, the crashed node's group
  /// emulates its departure. The node stops sending and receiving
  /// permanently (it behaves as blocked in every round) and its group
  /// stages a leave on its behalf, so it is excluded at the next epoch
  /// boundary. Crashing a non-member or an already-crashed node throws.
  void crash(sim::NodeId node);

  [[nodiscard]] const std::unordered_set<sim::NodeId>& crashed() const {
    return crashed_;
  }

  [[nodiscard]] const SuperGroups& supernodes() const { return super_; }
  /// Per-round topology snapshots (what a t-late adversary observes); also
  /// the reproducibility witness compared by the determinism tests.
  [[nodiscard]] const sim::SnapshotBuffer& snapshots() const {
    return snapshots_;
  }
  [[nodiscard]] std::size_t size() const { return super_.node_count(); }
  [[nodiscard]] sim::Round round() const { return round_; }
  [[nodiscard]] sim::IdAllocator& ids() { return ids_; }
  [[nodiscard]] std::vector<sim::NodeId> members() const {
    return super_.all_nodes();
  }

  /// The initial dimension for n nodes per Lemma 18: the unique d with
  /// 2^d * 2cd < n <= 2^{d+1} * 2c(d+1).
  static int initial_dimension(std::size_t n, double group_c);

 private:
  Config config_;
  support::Rng rng_;
  sim::IdAllocator ids_;
  SuperGroups super_;
  std::vector<std::pair<sim::NodeId, sim::NodeId>> edges_;
  sim::SnapshotBuffer snapshots_;
  sim::BlockedSet blocked_prev_;
  sim::Round round_ = 0;

  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> staged_joins_;
  std::unordered_set<sim::NodeId> staged_leaves_;
  std::unordered_set<sim::NodeId> epoch_departing_;
  std::unordered_set<sim::NodeId> ever_members_;
  std::unordered_set<sim::NodeId> crashed_;

  static SuperGroups bootstrap(const Config& config, support::Rng& rng,
                               sim::IdAllocator& ids);

  void push_snapshot();
  void advance_round(adversary::ChurnAdversary& churn, const Attack& attack,
                     std::uint64_t state_bits, EpochReport& report);
  void poll_churn(adversary::ChurnAdversary& churn);
};

}  // namespace reconfnet::combined
