// Variable-length supernode labels for the combined churn+DoS overlay
// (Section 6). A supernode x is a binary string (b_1, ..., b_l); splitting
// turns x into x0 and x1, merging turns siblings x0, x1 back into x. The
// live supernodes therefore always form the leaves of a binary tree rooted
// at the empty string — a complete prefix-free code. Two supernodes x, y
// with d(x) <= d(y) are connected iff the first d(x) bits of their labels
// differ in exactly one coordinate.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace reconfnet::combined {

/// A supernode label: `length` coordinates, bit i-1 of `bits` holding
/// coordinate i (the paper's b_i).
struct Label {
  std::uint64_t bits = 0;
  int length = 0;

  /// d(x), the paper's dimension of the supernode.
  [[nodiscard]] int dimension() const { return length; }

  /// Canonical integer encoding 2^length + bits; unique across all lengths,
  /// usable as a hash-map key.
  [[nodiscard]] std::uint64_t key() const {
    return (std::uint64_t{1} << length) + bits;
  }

  /// Child with coordinate length+1 set to `bit` (the split operation maps
  /// x to child(0) and child(1)).
  [[nodiscard]] Label child(int bit) const {
    if (length >= 62) throw std::invalid_argument("Label: too long");
    return {bits | (static_cast<std::uint64_t>(bit & 1) << length),
            length + 1};
  }

  /// The label with the last coordinate dropped (the merge target).
  [[nodiscard]] Label parent() const {
    if (length == 0) throw std::invalid_argument("Label: root has no parent");
    return {bits & ~(std::uint64_t{1} << (length - 1)), length - 1};
  }

  /// The label differing only in the last coordinate.
  [[nodiscard]] Label sibling() const {
    if (length == 0)
      throw std::invalid_argument("Label: root has no sibling");
    return {bits ^ (std::uint64_t{1} << (length - 1)), length};
  }

  /// First `count` coordinates as a shorter label.
  [[nodiscard]] Label prefix(int count) const {
    if (count < 0 || count > length) {
      throw std::invalid_argument("Label: bad prefix length");
    }
    const std::uint64_t mask =
        count == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
    return {bits & mask, count};
  }

  /// True iff this label is a prefix of `other`.
  [[nodiscard]] bool is_prefix_of(const Label& other) const {
    return other.length >= length && other.prefix(length) == *this;
  }

  friend bool operator==(const Label&, const Label&) = default;

  /// "0b..." rendering for diagnostics, most significant coordinate last
  /// (coordinate order b_1 b_2 ... b_l).
  [[nodiscard]] std::string to_string() const {
    std::string out;
    out.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) {
      out.push_back(((bits >> i) & 1) != 0 ? '1' : '0');
    }
    return out.empty() ? "<root>" : out;
  }
};

/// The paper's connectivity rule for variable-dimension supernodes: with
/// d(x) <= d(y), x and y are connected iff the first d(x) coordinates differ
/// in exactly one position.
[[nodiscard]] inline bool labels_connected(const Label& x, const Label& y) {
  const int common = x.length <= y.length ? x.length : y.length;
  if (common == 0) return false;
  const std::uint64_t mask = (std::uint64_t{1} << common) - 1;
  const std::uint64_t diff = (x.bits ^ y.bits) & mask;
  return diff != 0 && (diff & (diff - 1)) == 0;  // exactly one bit set
}

}  // namespace reconfnet::combined

template <>
struct std::hash<reconfnet::combined::Label> {
  std::size_t operator()(const reconfnet::combined::Label& label) const {
    return std::hash<std::uint64_t>{}(label.key());
  }
};
