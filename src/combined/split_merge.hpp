// Split/merge maintenance of the variable-dimension supernode set
// (Section 6). Every supernode x must satisfy Equation (1):
//
//     c * d(x) - c < |R(x)| < 2 * c * d(x)
//
// A too-large supernode splits (its representatives divided uniformly at
// random between the two children); a too-small one merges with its sibling,
// forcing the sibling's subtree to collapse first if the sibling itself was
// split. Lemma 18 shows that this keeps all dimensions within a window of
// width 2 and that the process terminates in a constant number of organized
// merge/split sweeps.
#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "combined/labels.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace reconfnet::combined {

struct SplitMergeOps {
  int splits = 0;
  int merges = 0;
  int sweeps = 0;  ///< full passes over the supernode set
};

/// The live supernodes and their representative groups. Maintains the
/// complete prefix-free code invariant.
class SuperGroups {
 public:
  /// Builds from explicit groups; validates the prefix-free complete code
  /// property and that groups are non-empty.
  explicit SuperGroups(std::vector<std::pair<Label, std::vector<sim::NodeId>>>
                           groups);

  /// Seeds `count` supernodes of dimension ceil(log2 count)... more
  /// precisely: the unique complete code in which every label has dimension
  /// `dimension`, i.e. the plain hypercube of 2^dimension supernodes.
  static SuperGroups uniform(int dimension,
                             std::vector<std::vector<sim::NodeId>> groups);

  /// Enforces Equation (1) with constant `c` by splitting and merging until
  /// stable. Throws std::runtime_error if no stable configuration is reached
  /// within a generous sweep budget (cannot happen for valid inputs per
  /// Lemma 18 but is guarded anyway).
  SplitMergeOps enforce(double c, support::Rng& rng);

  [[nodiscard]] std::size_t supernode_count() const { return groups_.size(); }
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] int min_dimension() const;
  [[nodiscard]] int max_dimension() const;

  /// All (label, members) pairs, members sorted by id, labels sorted by key.
  [[nodiscard]] const std::map<std::uint64_t,
                               std::pair<Label, std::vector<sim::NodeId>>>&
  groups() const {
    return groups_;
  }

  /// The unique live supernode whose label prefixes the given bit source;
  /// `bit_at(i)` must return coordinate i+1 of an (arbitrarily long) random
  /// string. Selecting with iid fair bits yields Pr[x] = 2^{-d(x)}.
  [[nodiscard]] Label descend(const std::function<int(int)>& bit_at) const;

  /// Uniform supernode selection with probability 2^{-d(x)}.
  [[nodiscard]] Label sample(support::Rng& rng) const;

  /// Replaces the members of all groups with a fresh assignment; the
  /// assignment maps each node to the supernode chosen by `sample`-style
  /// descent. Empty groups are rejected unless `allow_empty` is set (a
  /// shrinking network legitimately empties supernodes transiently; enforce()
  /// merges them away and must run before the epoch ends).
  void reassign(const std::vector<std::pair<Label, std::vector<sim::NodeId>>>&
                    fresh_groups,
                bool allow_empty = false);

  /// Overlay edges under the Section 6 connectivity rule (group cliques plus
  /// bipartite links between connected supernodes).
  [[nodiscard]] std::vector<std::pair<sim::NodeId, sim::NodeId>>
  overlay_edges() const;

  [[nodiscard]] std::vector<sim::NodeId> all_nodes() const;
  [[nodiscard]] std::size_t min_group_size() const;
  [[nodiscard]] std::size_t max_group_size() const;

 private:
  // key() -> (label, members). Ordered map so iteration order is
  // deterministic.
  std::map<std::uint64_t, std::pair<Label, std::vector<sim::NodeId>>> groups_;

  void validate() const;
  void split(const Label& label, support::Rng& rng);
  /// Merges `label` with its sibling; if the sibling was split, first forces
  /// the sibling's subtree to collapse (recursively merging deepest pairs).
  void merge_with_sibling(Label label, SplitMergeOps& ops);
};

}  // namespace reconfnet::combined
