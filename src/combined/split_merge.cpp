#include "combined/split_merge.hpp"

#include <algorithm>
#include <stdexcept>

namespace reconfnet::combined {

SuperGroups::SuperGroups(
    std::vector<std::pair<Label, std::vector<sim::NodeId>>> groups) {
  for (auto& [label, members] : groups) {
    std::sort(members.begin(), members.end());
    if (!groups_.emplace(label.key(),
                         std::make_pair(label, std::move(members)))
             .second) {
      throw std::invalid_argument("SuperGroups: duplicate label");
    }
  }
  validate();
}

SuperGroups SuperGroups::uniform(
    int dimension, std::vector<std::vector<sim::NodeId>> groups) {
  if (dimension < 0 || dimension > 30) {
    throw std::invalid_argument("SuperGroups: dimension out of range");
  }
  const std::uint64_t count = std::uint64_t{1} << dimension;
  if (groups.size() != count) {
    throw std::invalid_argument("SuperGroups: need 2^dimension groups");
  }
  std::vector<std::pair<Label, std::vector<sim::NodeId>>> labeled;
  labeled.reserve(count);
  for (std::uint64_t bits = 0; bits < count; ++bits) {
    labeled.emplace_back(Label{bits, dimension}, std::move(groups[bits]));
  }
  return SuperGroups(std::move(labeled));
}

void SuperGroups::validate() const {
  if (groups_.empty()) {
    throw std::invalid_argument("SuperGroups: no supernodes");
  }
  // Prefix-free and complete: the 2^{-length} measures must sum to exactly 1
  // and no label may prefix another.
  // Sum of 2^{62-length} over all leaves must equal 2^62 exactly; the sum
  // fits in 64 bits for any valid code and overflow on invalid input still
  // fails the equality check with overwhelming probability.
  std::uint64_t measure = 0;
  for (const auto& [key, entry] : groups_) {
    const auto& [label, members] = entry;
    if (label.length > 62) {
      throw std::invalid_argument("SuperGroups: label too long");
    }
    if (members.empty()) {
      throw std::invalid_argument("SuperGroups: empty group");
    }
    measure += std::uint64_t{1} << (62 - label.length);
  }
  if (measure != (std::uint64_t{1} << 62)) {
    throw std::invalid_argument(
        "SuperGroups: labels are not a complete prefix-free code");
  }
  for (const auto& [ka, entry_a] : groups_) {
    for (const auto& [kb, entry_b] : groups_) {
      if (ka != kb && entry_a.first.is_prefix_of(entry_b.first)) {
        throw std::invalid_argument("SuperGroups: label prefixes another");
      }
    }
  }
}

std::size_t SuperGroups::node_count() const {
  std::size_t total = 0;
  for (const auto& [key, entry] : groups_) total += entry.second.size();
  return total;
}

int SuperGroups::min_dimension() const {
  int best = 63;
  for (const auto& [key, entry] : groups_) {
    best = std::min(best, entry.first.length);
  }
  return best;
}

int SuperGroups::max_dimension() const {
  int best = 0;
  for (const auto& [key, entry] : groups_) {
    best = std::max(best, entry.first.length);
  }
  return best;
}

void SuperGroups::split(const Label& label, support::Rng& rng) {
  auto node = groups_.extract(label.key());
  auto members = std::move(node.mapped().second);
  std::vector<sim::NodeId> low, high;
  for (sim::NodeId member : members) {
    (rng.coin() ? high : low).push_back(member);
  }
  // A supernode must keep at least one representative; rebalance the
  // (exponentially unlikely) empty side.
  if (low.empty() && !high.empty()) {
    low.push_back(high.back());
    high.pop_back();
  } else if (high.empty() && !low.empty()) {
    high.push_back(low.back());
    low.pop_back();
  }
  groups_.emplace(label.child(0).key(),
                  std::make_pair(label.child(0), std::move(low)));
  groups_.emplace(label.child(1).key(),
                  std::make_pair(label.child(1), std::move(high)));
}

void SuperGroups::merge_with_sibling(Label label, SplitMergeOps& ops) {
  if (label.length == 0) return;  // the root cannot merge
  const Label sibling = label.sibling();
  // Force the sibling's subtree to collapse into a single leaf first: merge
  // the deepest leaf under the sibling with *its* sibling (which, being at
  // maximal depth, is also a leaf) until `sibling` itself is a leaf.
  while (!groups_.contains(sibling.key())) {
    const Label* deepest = nullptr;
    for (const auto& [key, entry] : groups_) {
      if (sibling.is_prefix_of(entry.first) &&
          (deepest == nullptr || entry.first.length > deepest->length)) {
        deepest = &entry.first;
      }
    }
    if (deepest == nullptr) {
      throw std::runtime_error("SuperGroups: sibling subtree missing");
    }
    merge_with_sibling(*deepest, ops);
  }
  auto mine = groups_.extract(label.key());
  auto theirs = groups_.extract(sibling.key());
  auto members = std::move(mine.mapped().second);
  auto& other = theirs.mapped().second;
  members.insert(members.end(), other.begin(), other.end());
  std::sort(members.begin(), members.end());
  const Label parent = label.parent();
  groups_.emplace(parent.key(), std::make_pair(parent, std::move(members)));
  ++ops.merges;
}

SplitMergeOps SuperGroups::enforce(double c, support::Rng& rng) {
  if (c <= 0.0) throw std::invalid_argument("SuperGroups: c must be > 0");
  SplitMergeOps ops;
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    ++ops.sweeps;
    bool changed = false;
    // Splits: |R(x)| > 2 c d(x).
    std::vector<Label> to_split;
    for (const auto& [key, entry] : groups_) {
      const auto& [label, members] = entry;
      if (static_cast<double>(members.size()) >
          2.0 * c * static_cast<double>(std::max(label.length, 1))) {
        to_split.push_back(label);
      }
    }
    for (const Label& label : to_split) {
      split(label, rng);
      ++ops.splits;
      changed = true;
    }
    // Merges: |R(x)| < c d(x) - c; an empty group always merges (a
    // supernode without representatives cannot exist).
    std::vector<Label> to_merge;
    for (const auto& [key, entry] : groups_) {
      const auto& [label, members] = entry;
      const bool undersized =
          static_cast<double>(members.size()) <
          c * static_cast<double>(label.length) - c;
      if ((undersized || members.empty()) && label.length > 0) {
        to_merge.push_back(label);
      }
    }
    for (const Label& label : to_merge) {
      // The label may already have been consumed by an earlier merge in this
      // sweep.
      if (!groups_.contains(label.key())) continue;
      merge_with_sibling(label, ops);
      changed = true;
    }
    if (!changed) return ops;
  }
  throw std::runtime_error("SuperGroups: split/merge did not stabilize");
}

Label SuperGroups::descend(const std::function<int(int)>& bit_at) const {
  Label current{0, 0};
  for (int depth = 0; depth <= 62; ++depth) {
    if (groups_.contains(current.key())) return current;
    current = current.child(bit_at(current.length));
  }
  throw std::runtime_error("SuperGroups: descent did not reach a leaf");
}

Label SuperGroups::sample(support::Rng& rng) const {
  return descend([&rng](int) { return rng.coin() ? 1 : 0; });
}

void SuperGroups::reassign(
    const std::vector<std::pair<Label, std::vector<sim::NodeId>>>&
        fresh_groups,
    bool allow_empty) {
  if (fresh_groups.size() != groups_.size()) {
    throw std::runtime_error("SuperGroups: reassignment changes label set");
  }
  std::map<std::uint64_t, std::pair<Label, std::vector<sim::NodeId>>> fresh;
  for (const auto& [label, members] : fresh_groups) {
    if (!groups_.contains(label.key())) {
      throw std::runtime_error("SuperGroups: unknown label in reassignment");
    }
    if (members.empty() && !allow_empty) {
      throw std::runtime_error("SuperGroups: reassignment empties a group");
    }
    auto sorted = members;
    std::sort(sorted.begin(), sorted.end());
    fresh.emplace(label.key(), std::make_pair(label, std::move(sorted)));
  }
  if (fresh.size() != groups_.size()) {
    throw std::runtime_error("SuperGroups: reassignment misses labels");
  }
  groups_ = std::move(fresh);
}

std::vector<std::pair<sim::NodeId, sim::NodeId>> SuperGroups::overlay_edges()
    const {
  std::vector<std::pair<sim::NodeId, sim::NodeId>> edges;
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    const auto& [label_a, members_a] = it->second;
    for (std::size_t i = 0; i < members_a.size(); ++i) {
      for (std::size_t j = i + 1; j < members_a.size(); ++j) {
        edges.emplace_back(members_a[i], members_a[j]);
      }
    }
    for (auto jt = std::next(it); jt != groups_.end(); ++jt) {
      const auto& [label_b, members_b] = jt->second;
      if (!labels_connected(label_a, label_b)) continue;
      for (sim::NodeId a : members_a) {
        for (sim::NodeId b : members_b) {
          edges.emplace_back(a, b);
        }
      }
    }
  }
  return edges;
}

std::vector<sim::NodeId> SuperGroups::all_nodes() const {
  std::vector<sim::NodeId> nodes;
  for (const auto& [key, entry] : groups_) {
    nodes.insert(nodes.end(), entry.second.begin(), entry.second.end());
  }
  return nodes;
}

std::size_t SuperGroups::min_group_size() const {
  std::size_t best = groups_.begin()->second.second.size();
  for (const auto& [key, entry] : groups_) {
    best = std::min(best, entry.second.size());
  }
  return best;
}

std::size_t SuperGroups::max_group_size() const {
  std::size_t best = 0;
  for (const auto& [key, entry] : groups_) {
    best = std::max(best, entry.second.size());
  }
  return best;
}

}  // namespace reconfnet::combined
