// The d-dimensional binary hypercube (Section 2.2): vertices are the binary
// d-tuples, and two vertices are adjacent iff they differ in exactly one
// coordinate. Used directly by the rapid sampling primitive of Section 3.2
// and, at the supernode level, by the DoS-resistant overlay of Section 5.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace reconfnet::graph {

/// Vertices are encoded as integers in [0, 2^d); bit j holds coordinate j+1
/// in the paper's 1-indexed notation.
class Hypercube {
 public:
  explicit Hypercube(int dimension) : dimension_(dimension) {
    if (dimension < 1 || dimension > 62) {
      throw std::invalid_argument("Hypercube: dimension out of range");
    }
  }

  [[nodiscard]] int dimension() const { return dimension_; }
  [[nodiscard]] std::uint64_t size() const {
    return std::uint64_t{1} << dimension_;
  }

  /// The paper's n_j(v): v with coordinate j flipped. j is 1-indexed as in
  /// the paper (1 <= j <= dimension).
  [[nodiscard]] std::uint64_t flip(std::uint64_t v, int j) const {
    if (j < 1 || j > dimension_) {
      throw std::invalid_argument("Hypercube: coordinate out of range");
    }
    return v ^ (std::uint64_t{1} << (j - 1));
  }

  /// All d neighbors of v.
  [[nodiscard]] std::vector<std::uint64_t> neighbors(std::uint64_t v) const {
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(dimension_));
    for (int j = 1; j <= dimension_; ++j) out.push_back(flip(v, j));
    return out;
  }

  /// Hamming distance between vertices, i.e. their hypercube distance.
  [[nodiscard]] static int distance(std::uint64_t a, std::uint64_t b) {
    return __builtin_popcountll(a ^ b);
  }

 private:
  int dimension_;
};

}  // namespace reconfnet::graph
