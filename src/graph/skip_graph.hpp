// Skip graphs — the Section 1.2 alternative substrate. A skip graph over
// nodes with random keys is an expander w.h.p. [Aspnes & Wieder], and
// reconfiguration can be reduced to routing: every node draws a fresh random
// key and routes a message to the node currently closest to it, after which
// the old structure assembles the new one. The catch the paper leans on:
// routing takes Theta(log n) rounds, so this reconfiguration path can never
// beat the O(log log n) epochs of Algorithm 3. We implement the substrate
// and its greedy routing to measure exactly that (experiment F4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/rng.hpp"

namespace reconfnet::graph {

inline constexpr std::size_t kNoSkipNode =
    std::numeric_limits<std::size_t>::max();

/// A skip graph over n nodes with uniformly random 64-bit keys and random
/// membership vectors. Level 0 is the sorted doubly-linked list of all
/// nodes; level l links the nodes sharing the first l membership bits.
class SkipGraph {
 public:
  /// Builds with fresh random keys and membership vectors.
  static SkipGraph random(std::size_t n, support::Rng& rng);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] std::uint64_t key(std::size_t v) const { return keys_[v]; }

  /// Number of levels node v participates in (its lists become singletons
  /// above that).
  [[nodiscard]] int height(std::size_t v) const {
    return heights_[v];
  }

  /// Left/right neighbor of v in its level-l list (kNoSkipNode at the ends).
  [[nodiscard]] std::size_t left(std::size_t v, int level) const;
  [[nodiscard]] std::size_t right(std::size_t v, int level) const;

  /// All distinct neighbors over all levels (the overlay degree).
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t v) const;

  /// Greedy skip-graph search from `from` toward `target`: returns the hop
  /// path (excluding `from`, including the final node). The final node is
  /// the member with the largest key <= target, or the smallest-key member
  /// if target precedes every key. Each hop is one communication round.
  [[nodiscard]] std::vector<std::size_t> route(std::size_t from,
                                               std::uint64_t target) const;

  /// Ground truth for route(): the node route must end at.
  [[nodiscard]] std::size_t closest(std::uint64_t target) const;

 private:
  SkipGraph() = default;

  std::vector<std::uint64_t> keys_;
  std::vector<int> heights_;
  /// links_[l][v] = (left, right) of v in its level-l list; kNoSkipNode if v
  /// is not in a non-trivial list at level l.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> links_;
};

}  // namespace reconfnet::graph
