// Spectral-gap estimation for d-regular multigraphs. Corollary 1 of the paper
// states that a uniformly random H-graph satisfies |lambda_i| <= 2*sqrt(d) for
// all i > 1 w.h.p., which makes the simple random walk rapidly mixing
// (Lemma 2). We verify this empirically by estimating the second-largest
// absolute eigenvalue of the adjacency matrix with deflated power iteration.
#pragma once

#include <cstddef>

#include "graph/hgraph.hpp"
#include "support/rng.hpp"

namespace reconfnet::graph {

/// Estimates max_{i>1} |lambda_i| of the adjacency matrix of `graph` by power
/// iteration on the component orthogonal to the all-ones vector (the known
/// top eigenvector of a regular graph). The estimate converges from below;
/// `iterations` around 200 gives ~2 correct digits, plenty for the expansion
/// check 2*sqrt(d) vs d.
double second_eigenvalue_estimate(const HGraph& graph, support::Rng& rng,
                                  std::size_t iterations = 200);

}  // namespace reconfnet::graph
