#include "graph/hgraph.hpp"

#include <stdexcept>
#include <utility>

namespace reconfnet::graph {

std::vector<std::size_t> random_hamilton_cycle(std::size_t n,
                                               support::Rng& rng) {
  const std::vector<std::size_t> order = rng.permutation(n);
  std::vector<std::size_t> succ(n);
  for (std::size_t i = 0; i < n; ++i) {
    succ[order[i]] = order[(i + 1) % n];
  }
  return succ;
}

HGraph::HGraph(std::size_t n,
               std::vector<std::vector<std::size_t>> successors)
    : n_(n), succ_(std::move(successors)) {
  if (n_ < 3) throw std::invalid_argument("HGraph: need at least 3 vertices");
  if (succ_.empty()) throw std::invalid_argument("HGraph: need >= 1 cycle");
  pred_.resize(succ_.size());
  for (std::size_t c = 0; c < succ_.size(); ++c) {
    const auto& succ_of = succ_[c];
    if (succ_of.size() != n_) {
      throw std::invalid_argument("HGraph: successor table size mismatch");
    }
    // Verify the permutation is one n-cycle while building predecessors.
    auto& pred_of = pred_[c];
    pred_of.assign(n_, n_);
    std::size_t v = 0;
    for (std::size_t steps = 0; steps < n_; ++steps) {
      const std::size_t next = succ_of[v];
      if (next >= n_ || pred_of[next] != n_) {
        throw std::invalid_argument("HGraph: not a single Hamilton cycle");
      }
      pred_of[next] = v;
      v = next;
    }
    if (v != 0) {
      throw std::invalid_argument("HGraph: not a single Hamilton cycle");
    }
  }
}

HGraph HGraph::random(std::size_t n, int degree, support::Rng& rng) {
  if (degree < 2 || degree % 2 != 0) {
    throw std::invalid_argument("HGraph: degree must be even and >= 2");
  }
  std::vector<std::vector<std::size_t>> cycles;
  cycles.reserve(static_cast<std::size_t>(degree / 2));
  for (int c = 0; c < degree / 2; ++c) {
    cycles.push_back(random_hamilton_cycle(n, rng));
  }
  return HGraph(n, std::move(cycles));
}

std::size_t HGraph::neighbor(std::size_t v, int port) const {
  const int cycle = port / 2;
  return (port % 2 == 0) ? succ(cycle, v) : pred(cycle, v);
}

std::vector<std::size_t> HGraph::neighbors(std::size_t v) const {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(degree()));
  for (int p = 0; p < degree(); ++p) out.push_back(neighbor(v, p));
  return out;
}

}  // namespace reconfnet::graph
