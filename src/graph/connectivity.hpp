// Connectivity checks. The paper's central correctness property is that the
// overlay (restricted to non-blocked nodes, under DoS attack) stays connected;
// these helpers verify it on both dense-index graphs and NodeId edge lists.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/blocked.hpp"
#include "sim/types.hpp"

namespace reconfnet::graph {

/// Callback enumerating the neighbors of a dense vertex index.
using NeighborVisitor =
    std::function<void(std::size_t v, const std::function<void(std::size_t)>&)>;

/// True iff the graph over {0,...,n-1} described by `visit` is connected.
/// n == 0 counts as connected.
bool is_connected(std::size_t n, const NeighborVisitor& visit);

/// Number of connected components of the dense-index graph.
std::size_t count_components(std::size_t n, const NeighborVisitor& visit);

/// Connectivity of a NodeId graph given as node and undirected edge lists.
/// Edges with endpoints not present in `nodes` are ignored. An empty node set
/// counts as connected.
bool is_connected(std::span<const sim::NodeId> nodes,
                  std::span<const std::pair<sim::NodeId, sim::NodeId>> edges);

/// Same, but first removes `excluded` nodes (e.g. the blocked set) and all
/// their incident edges. This is the paper's "connected under a DoS-attack":
/// the network restricted to its non-blocked nodes is connected.
bool is_connected_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const std::unordered_set<sim::NodeId>& excluded);

/// Same, excluding the adversary's BlockedSet directly (membership queries
/// only — no caller has to expose the set's unordered storage).
bool is_connected_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const sim::BlockedSet& excluded);

/// Number of connected components of a NodeId graph after removing `excluded`.
std::size_t count_components_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const std::unordered_set<sim::NodeId>& excluded);

}  // namespace reconfnet::graph
