#include "graph/connectivity.hpp"

#include <numeric>
#include <unordered_map>

namespace reconfnet::graph {
namespace {

/// Union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra != rb) {
      parent_[ra] = rb;
      --components_;
    }
  }

  [[nodiscard]] std::size_t components() const { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::size_t components_;
};

std::size_t components_of_id_graph(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const std::unordered_set<sim::NodeId>& excluded) {
  std::unordered_map<sim::NodeId, std::size_t> index;
  index.reserve(nodes.size());
  for (sim::NodeId node : nodes) {
    if (!excluded.contains(node)) {
      index.emplace(node, index.size());
    }
  }
  if (index.empty()) return 0;
  UnionFind uf(index.size());
  for (const auto& [a, b] : edges) {
    const auto ia = index.find(a);
    const auto ib = index.find(b);
    if (ia != index.end() && ib != index.end()) {
      uf.unite(ia->second, ib->second);
    }
  }
  return uf.components();
}

}  // namespace

std::size_t count_components(std::size_t n, const NeighborVisitor& visit) {
  if (n == 0) return 0;
  UnionFind uf(n);
  for (std::size_t v = 0; v < n; ++v) {
    visit(v, [&](std::size_t w) { uf.unite(v, w); });
  }
  return uf.components();
}

bool is_connected(std::size_t n, const NeighborVisitor& visit) {
  return count_components(n, visit) <= 1;
}

bool is_connected(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges) {
  static const std::unordered_set<sim::NodeId> kNone;
  return components_of_id_graph(nodes, edges, kNone) <= 1;
}

bool is_connected_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const std::unordered_set<sim::NodeId>& excluded) {
  return components_of_id_graph(nodes, edges, excluded) <= 1;
}

bool is_connected_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const sim::BlockedSet& excluded) {
  // The sorted snapshot costs O(|blocked| log |blocked|); connectivity checks
  // run once per round on sets bounded by the adversary budget.
  const auto ids = excluded.sorted_ids();
  const std::unordered_set<sim::NodeId> as_set(ids.begin(), ids.end());
  return components_of_id_graph(nodes, edges, as_set) <= 1;
}

std::size_t count_components_excluding(
    std::span<const sim::NodeId> nodes,
    std::span<const std::pair<sim::NodeId, sim::NodeId>> edges,
    const std::unordered_set<sim::NodeId>& excluded) {
  return components_of_id_graph(nodes, edges, excluded);
}

}  // namespace reconfnet::graph
