#include "graph/spectral.hpp"

#include <cmath>
#include <vector>

namespace reconfnet::graph {
namespace {

void remove_mean(std::vector<double>& x) {
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

double norm(const std::vector<double>& x) {
  double sq = 0.0;
  for (double v : x) sq += v * v;
  return std::sqrt(sq);
}

}  // namespace

double second_eigenvalue_estimate(const HGraph& graph, support::Rng& rng,
                                  std::size_t iterations) {
  const std::size_t n = graph.size();
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform() - 0.5;
  remove_mean(x);

  std::vector<double> y(n);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    const double nx = norm(x);
    if (nx == 0.0) return 0.0;
    for (double& v : x) v /= nx;
    // y = A * x over the multigraph: each port contributes one edge endpoint.
    for (std::size_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (int p = 0; p < graph.degree(); ++p) {
        sum += x[graph.neighbor(v, p)];
      }
      y[v] = sum;
    }
    remove_mean(y);  // re-project: numerical drift back toward all-ones
    lambda = norm(y);
    x.swap(y);
  }
  // |lambda_2| of A; since we track the norm growth after normalization, the
  // last norm is the Rayleigh-quotient-style estimate.
  return lambda;
}

}  // namespace reconfnet::graph
