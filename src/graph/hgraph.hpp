// H-graphs (Section 2.2): undirected d-regular multigraphs formed as the
// union of d/2 oriented Hamilton cycles over the node set. A uniformly random
// H-graph is an expander w.h.p. (Friedman's theorem, Corollary 1 of the
// paper), which is what makes the random-walk sampling of Sections 2.3 and 3.1
// rapidly mixing.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace reconfnet::graph {

/// A d-regular multigraph over vertices {0, ..., n-1} given by d/2 oriented
/// Hamilton cycles. Vertices are dense indices; overlays map them to NodeIds.
class HGraph {
 public:
  /// Builds an H-graph from explicit successor permutations, one per cycle.
  /// Each permutation must be a single n-cycle; throws std::invalid_argument
  /// otherwise.
  HGraph(std::size_t n, std::vector<std::vector<std::size_t>> successors);

  /// Samples a graph uniformly from H_n: each of the d/2 Hamilton cycles is
  /// chosen independently and uniformly at random. Requires even degree >= 2
  /// and n >= 3 (the paper uses d >= 8; smaller degrees are allowed here for
  /// tests). For uniformly random cycles the graph is an expander w.h.p.
  static HGraph random(std::size_t n, int degree, support::Rng& rng);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int degree() const { return static_cast<int>(2 * succ_.size()); }
  [[nodiscard]] int num_cycles() const { return static_cast<int>(succ_.size()); }

  /// Successor of v in the orientation of cycle `cycle`.
  [[nodiscard]] std::size_t succ(int cycle, std::size_t v) const {
    return succ_[static_cast<std::size_t>(cycle)][v];
  }
  /// Predecessor of v in the orientation of cycle `cycle`.
  [[nodiscard]] std::size_t pred(int cycle, std::size_t v) const {
    return pred_[static_cast<std::size_t>(cycle)][v];
  }

  /// Neighbor of v through port p in [0, degree): even ports are successors,
  /// odd ports are predecessors of cycle p/2. Ports enumerate the multigraph
  /// edge endpoints at v, so a simple random walk picks a port uniformly.
  [[nodiscard]] std::size_t neighbor(std::size_t v, int port) const;

  /// All degree() neighbors of v, with multiplicity.
  [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t v) const;

 private:
  std::size_t n_;
  std::vector<std::vector<std::size_t>> succ_;  // [cycle][vertex]
  std::vector<std::vector<std::size_t>> pred_;  // [cycle][vertex]
};

/// Builds a uniformly random single Hamilton cycle as a successor permutation.
std::vector<std::size_t> random_hamilton_cycle(std::size_t n,
                                               support::Rng& rng);

}  // namespace reconfnet::graph
