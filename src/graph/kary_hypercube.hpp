// The d-dimensional k-ary hypercube (Definition 1, Section 7.2): vertices are
// tuples in {0,...,k-1}^d, adjacent iff they differ in exactly one coordinate.
// It has k^d vertices, degree (k-1)*d and diameter d, and is the substrate of
// the robust DHT application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reconfnet::graph {

/// Vertices are encoded as base-k integers: coordinate i (0-indexed) is the
/// i-th base-k digit.
class KaryHypercube {
 public:
  /// Requires k >= 2, d >= 1 and k^d <= 2^62.
  KaryHypercube(int k, int d);

  [[nodiscard]] int arity() const { return k_; }
  [[nodiscard]] int dimension() const { return d_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] int degree() const { return (k_ - 1) * d_; }

  /// Digit i (0-indexed coordinate) of vertex v.
  [[nodiscard]] int digit(std::uint64_t v, int i) const;

  /// Vertex v with coordinate i set to value (0 <= value < k).
  [[nodiscard]] std::uint64_t with_digit(std::uint64_t v, int i,
                                         int value) const;

  /// All (k-1)*d neighbors of v.
  [[nodiscard]] std::vector<std::uint64_t> neighbors(std::uint64_t v) const;

  /// Number of coordinates in which a and b differ (routing distance).
  [[nodiscard]] int distance(std::uint64_t a, std::uint64_t b) const;

  /// Decodes v into its d coordinates.
  [[nodiscard]] std::vector<int> coordinates(std::uint64_t v) const;

  /// Encodes coordinates into a vertex id. Requires exactly d digits in
  /// [0, k).
  [[nodiscard]] std::uint64_t encode(const std::vector<int>& coords) const;

 private:
  int k_;
  int d_;
  std::uint64_t size_;
  std::vector<std::uint64_t> pow_;  // pow_[i] = k^i
};

}  // namespace reconfnet::graph
