#include "graph/kary_hypercube.hpp"

#include <stdexcept>

namespace reconfnet::graph {

KaryHypercube::KaryHypercube(int k, int d) : k_(k), d_(d) {
  if (k < 2 || d < 1) {
    throw std::invalid_argument("KaryHypercube: need k >= 2 and d >= 1");
  }
  pow_.resize(static_cast<std::size_t>(d) + 1);
  pow_[0] = 1;
  for (int i = 1; i <= d; ++i) {
    if (pow_[static_cast<std::size_t>(i - 1)] >
        (std::uint64_t{1} << 62) / static_cast<std::uint64_t>(k)) {
      throw std::invalid_argument("KaryHypercube: k^d too large");
    }
    pow_[static_cast<std::size_t>(i)] =
        pow_[static_cast<std::size_t>(i - 1)] * static_cast<std::uint64_t>(k);
  }
  size_ = pow_[static_cast<std::size_t>(d)];
}

int KaryHypercube::digit(std::uint64_t v, int i) const {
  if (i < 0 || i >= d_) {
    throw std::invalid_argument("KaryHypercube: coordinate out of range");
  }
  return static_cast<int>((v / pow_[static_cast<std::size_t>(i)]) %
                          static_cast<std::uint64_t>(k_));
}

std::uint64_t KaryHypercube::with_digit(std::uint64_t v, int i,
                                        int value) const {
  if (value < 0 || value >= k_) {
    throw std::invalid_argument("KaryHypercube: digit value out of range");
  }
  const int old = digit(v, i);
  const auto scale = pow_[static_cast<std::size_t>(i)];
  return v + (static_cast<std::uint64_t>(value) - static_cast<std::uint64_t>(old)) * scale;
}

std::vector<std::uint64_t> KaryHypercube::neighbors(std::uint64_t v) const {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(degree()));
  for (int i = 0; i < d_; ++i) {
    const int current = digit(v, i);
    for (int value = 0; value < k_; ++value) {
      if (value != current) out.push_back(with_digit(v, i, value));
    }
  }
  return out;
}

int KaryHypercube::distance(std::uint64_t a, std::uint64_t b) const {
  int diff = 0;
  for (int i = 0; i < d_; ++i) {
    if (digit(a, i) != digit(b, i)) ++diff;
  }
  return diff;
}

std::vector<int> KaryHypercube::coordinates(std::uint64_t v) const {
  std::vector<int> out(static_cast<std::size_t>(d_));
  for (int i = 0; i < d_; ++i) out[static_cast<std::size_t>(i)] = digit(v, i);
  return out;
}

std::uint64_t KaryHypercube::encode(const std::vector<int>& coords) const {
  if (coords.size() != static_cast<std::size_t>(d_)) {
    throw std::invalid_argument("KaryHypercube: wrong number of coordinates");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < d_; ++i) {
    const int value = coords[static_cast<std::size_t>(i)];
    if (value < 0 || value >= k_) {
      throw std::invalid_argument("KaryHypercube: digit value out of range");
    }
    v += static_cast<std::uint64_t>(value) * pow_[static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace reconfnet::graph
