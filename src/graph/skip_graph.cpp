#include "graph/skip_graph.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace reconfnet::graph {

SkipGraph SkipGraph::random(std::size_t n, support::Rng& rng) {
  SkipGraph graph;
  graph.keys_.resize(n);
  std::vector<std::uint64_t> membership(n);
  std::unordered_set<std::uint64_t> used;
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t key = rng.next();
    while (!used.insert(key).second) key = rng.next();
    graph.keys_[v] = key;
    membership[v] = rng.next();
  }
  graph.heights_.assign(n, 0);

  // Level 0: all nodes sorted by key; level l+1 splits every list by
  // membership bit l, preserving key order.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.keys_[a] < graph.keys_[b];
  });
  std::vector<std::vector<std::size_t>> lists{order};
  for (int level = 0; level < 64 && !lists.empty(); ++level) {
    graph.links_.emplace_back(
        n, std::make_pair(kNoSkipNode, kNoSkipNode));
    auto& links = graph.links_.back();
    std::vector<std::vector<std::size_t>> next;
    for (const auto& list : lists) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (i > 0) links[list[i]].first = list[i - 1];
        if (i + 1 < list.size()) links[list[i]].second = list[i + 1];
        if (list.size() >= 2) graph.heights_[list[i]] = level + 1;
      }
      if (list.size() < 2) continue;
      std::vector<std::size_t> zeros, ones;
      for (std::size_t v : list) {
        (((membership[v] >> level) & 1) != 0 ? ones : zeros).push_back(v);
      }
      if (zeros.size() >= 2) next.push_back(std::move(zeros));
      if (ones.size() >= 2) next.push_back(std::move(ones));
    }
    lists = std::move(next);
  }
  return graph;
}

std::size_t SkipGraph::left(std::size_t v, int level) const {
  if (level < 0 || static_cast<std::size_t>(level) >= links_.size()) {
    return kNoSkipNode;
  }
  return links_[static_cast<std::size_t>(level)][v].first;
}

std::size_t SkipGraph::right(std::size_t v, int level) const {
  if (level < 0 || static_cast<std::size_t>(level) >= links_.size()) {
    return kNoSkipNode;
  }
  return links_[static_cast<std::size_t>(level)][v].second;
}

std::vector<std::size_t> SkipGraph::neighbors(std::size_t v) const {
  std::unordered_set<std::size_t> unique;
  for (int level = 0; level < height(v); ++level) {
    if (left(v, level) != kNoSkipNode) unique.insert(left(v, level));
    if (right(v, level) != kNoSkipNode) unique.insert(right(v, level));
  }
  return {unique.begin(), unique.end()};
}

std::size_t SkipGraph::closest(std::uint64_t target) const {
  // Largest key <= target, or the minimum-key node if none.
  std::size_t best = kNoSkipNode;
  std::size_t minimum = 0;
  for (std::size_t v = 0; v < keys_.size(); ++v) {
    if (keys_[v] < keys_[minimum]) minimum = v;
    if (keys_[v] <= target &&
        (best == kNoSkipNode || keys_[v] > keys_[best])) {
      best = v;
    }
  }
  return best == kNoSkipNode ? minimum : best;
}

std::vector<std::size_t> SkipGraph::route(std::size_t from,
                                          std::uint64_t target) const {
  std::vector<std::size_t> path;
  std::size_t current = from;
  for (int level = std::max(height(from) - 1, 0); level >= 0; --level) {
    if (keys_[current] <= target) {
      // Move right as far as possible without overshooting.
      for (std::size_t r = right(current, level);
           r != kNoSkipNode && keys_[r] <= target;
           r = right(current, level)) {
        current = r;
        path.push_back(current);
      }
    } else {
      // Move left until we are at or below the target (or hit the end).
      for (std::size_t l = left(current, level);
           keys_[current] > target && l != kNoSkipNode;
           l = left(current, level)) {
        current = l;
        path.push_back(current);
      }
    }
  }
  return path;
}

}  // namespace reconfnet::graph
