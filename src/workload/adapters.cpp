#include "workload/adapters.hpp"

#include <algorithm>
#include <span>

namespace reconfnet::workload {

namespace {

apps::KaryGroupedOverlay::Config kary_config(std::size_t size, int arity,
                                             double group_c,
                                             bool snapshot_edges,
                                             std::uint64_t seed) {
  apps::KaryGroupedOverlay::Config config;
  config.size = size;
  config.arity = arity;
  config.group_c = group_c;
  config.seed = seed;
  config.snapshot_edges = snapshot_edges;
  return config;
}

}  // namespace

// --- DhtAdapter -------------------------------------------------------------

DhtAdapter::DhtAdapter(const DhtAdapterConfig& config)
    : config_(config),
      overlay_(kary_config(config.size, config.arity, config.group_c,
                           config.snapshot_edges, config.seed)),
      store_(&overlay_),
      epoch_adversary_(support::Rng(config.seed ^ 0xD05ADD0ULL)) {
  for (std::uint64_t key = 0; key < config_.prefill_keys; ++key) {
    store_.deposit(key, prefill_value(key));
  }
}

std::uint64_t DhtAdapter::prefill_value(std::uint64_t key) {
  return support::splitmix64(key) | 1;  // nonzero, key-determined
}

std::size_t DhtAdapter::group_count() const { return overlay_.cube().size(); }

std::size_t DhtAdapter::node_count() const { return overlay_.size(); }

std::size_t DhtAdapter::pipeline_depth() const {
  // At most `dimension` digit-fixing hops, one serve round, one slack round.
  return static_cast<std::size_t>(overlay_.cube().dimension()) + 2;
}

std::uint64_t DhtAdapter::home_group(const Op& op) const {
  return store_.home_supernode(op.key);
}

ServeOutcome DhtAdapter::serve(const Op& op, std::uint64_t entry_group,
                               std::span<const sim::BlockedSet> blocked,
                               support::Rng& rng) {
  (void)rng;  // the route is deterministic given the entry group
  const apps::RobustStore::Request request{op.is_write, op.key, op.value};
  const auto result = store_.serve_one(request, entry_group, blocked);
  ServeOutcome outcome;
  outcome.ok = result.ok;
  outcome.found = result.found;
  outcome.value = result.value;
  outcome.rounds = result.rounds;
  return outcome;
}

EpochOutcome DhtAdapter::run_epoch(support::Rng& rng) {
  (void)rng;  // the overlay's own rng drives the epoch
  apps::KaryGroupedOverlay::Attack attack;
  if (config_.epoch_blocked_fraction > 0.0) {
    attack.adversary = &epoch_adversary_;
    attack.lateness = config_.epoch_lateness;
    attack.blocked_fraction = config_.epoch_blocked_fraction;
  }
  const auto report = store_.reconfigure(attack);
  return EpochOutcome{report.success, report.rounds};
}

void DhtAdapter::set_fault_hook(sim::DeliveryHook* hook) {
  overlay_.set_fault_hook(hook);
}

bool DhtAdapter::peek(std::uint64_t key, std::uint64_t& value) {
  const auto record = store_.peek(key);
  if (!record.has_value()) return false;
  value = *record;
  return true;
}

// --- PubSubAdapter ----------------------------------------------------------

PubSubAdapter::PubSubAdapter(const PubSubAdapterConfig& config)
    : config_(config),
      overlay_(kary_config(config.size, config.arity, config.group_c,
                           config.snapshot_edges, config.seed)),
      store_(&overlay_),
      pubsub_(&store_),
      cursors_(config.topics, 0),
      epoch_adversary_(support::Rng(config.seed ^ 0xD05ADD0ULL)) {}

std::size_t PubSubAdapter::group_count() const {
  return overlay_.cube().size();
}

std::size_t PubSubAdapter::node_count() const { return overlay_.size(); }

std::size_t PubSubAdapter::pipeline_depth() const {
  // Publish = counter read + entry store + counter bump, each a full route.
  return 3 * (static_cast<std::size_t>(overlay_.cube().dimension()) + 2);
}

std::uint64_t PubSubAdapter::home_group(const Op& op) const {
  const auto topic = op.key % config_.topics;
  return store_.home_supernode(apps::PubSub::counter_key(topic));
}

ServeOutcome PubSubAdapter::serve(const Op& op, std::uint64_t entry_group,
                                  std::span<const sim::BlockedSet> blocked,
                                  support::Rng& rng) {
  (void)entry_group;  // pub-sub draws its own entries per store round-trip
  const auto topic = op.key % config_.topics;
  ServeOutcome outcome;
  if (op.is_write) {
    const apps::PubSub::Payload payloads[] = {op.value};
    const auto report = pubsub_.publish(topic, payloads, blocked, rng);
    outcome.ok = report.published == 1;
    outcome.rounds = std::max<sim::Round>(1, report.rounds);
    return outcome;
  }
  auto fetch = pubsub_.fetch_since(topic, cursors_[topic], blocked, rng);
  outcome.ok = fetch.complete;
  outcome.rounds = std::max<sim::Round>(1, fetch.rounds);
  if (fetch.complete) {
    cursors_[topic] = fetch.latest;
    if (!fetch.payloads.empty()) {
      outcome.found = true;
      outcome.value = fetch.payloads.back();
    }
  }
  return outcome;
}

EpochOutcome PubSubAdapter::run_epoch(support::Rng& rng) {
  (void)rng;
  apps::KaryGroupedOverlay::Attack attack;
  if (config_.epoch_blocked_fraction > 0.0) {
    attack.adversary = &epoch_adversary_;
    attack.lateness = config_.epoch_lateness;
    attack.blocked_fraction = config_.epoch_blocked_fraction;
  }
  const auto report = store_.reconfigure(attack);
  return EpochOutcome{report.success, report.rounds};
}

void PubSubAdapter::set_fault_hook(sim::DeliveryHook* hook) {
  overlay_.set_fault_hook(hook);
}

// --- AnonymAdapter ----------------------------------------------------------

AnonymAdapter::AnonymAdapter(const AnonymAdapterConfig& config)
    : config_(config),
      overlay_([&] {
        dos::DosOverlay::Config overlay;
        overlay.size = config.size;
        overlay.group_c = config.group_c;
        overlay.seed = config.seed;
        return overlay;
      }()),
      epoch_adversary_(support::Rng(config.seed ^ 0xD05ADD0ULL)) {}

std::size_t AnonymAdapter::group_count() const {
  return static_cast<std::size_t>(overlay_.groups().supernodes());
}

std::size_t AnonymAdapter::node_count() const { return overlay_.size(); }

std::size_t AnonymAdapter::pipeline_depth() const {
  return static_cast<std::size_t>(apps::kAnonymizerPipelineRounds) + 1;
}

std::uint64_t AnonymAdapter::home_group(const Op& op) const {
  // The destination user pins the exit group's load for capacity accounting.
  std::uint64_t state = op.key % config_.users;
  return support::splitmix64(state) % overlay_.groups().supernodes();
}

ServeOutcome AnonymAdapter::serve(const Op& op, std::uint64_t entry_group,
                                  std::span<const sim::BlockedSet> blocked,
                                  support::Rng& rng) {
  (void)entry_group;  // the anonymizer picks its own entry server
  const apps::AnonymousRequest request{op.value % config_.users,
                                       op.key % config_.users};
  const auto report = apps::route_anonymous_batch(
      overlay_.groups(), std::span<const apps::AnonymousRequest>(&request, 1),
      blocked, rng);
  ServeOutcome outcome;
  outcome.ok = report.delivered == 1 && report.replied == 1;
  outcome.rounds = apps::kAnonymizerPipelineRounds;
  return outcome;
}

EpochOutcome AnonymAdapter::run_epoch(support::Rng& rng) {
  (void)rng;
  dos::DosOverlay::Attack attack;
  if (config_.epoch_blocked_fraction > 0.0) {
    attack.adversary = &epoch_adversary_;
    attack.lateness = config_.epoch_lateness;
    attack.blocked_fraction = config_.epoch_blocked_fraction;
  }
  const auto report = overlay_.run_epoch(attack);
  return EpochOutcome{report.success, report.rounds};
}

}  // namespace reconfnet::workload
