// Per-request lifecycle tracking for the workload engine (DESIGN.md §12).
//
// Every request gets an id when issued (recording its issue round) and is
// later completed or failed; latency-in-rounds lands in a fixed-bucket
// LatencyHistogram (support::Percentiles — exact p50/p99/p999, mergeable).
// Ids are recycled through a free list, so after a warmup that reaches the
// high-water mark of in-flight requests the steady-state issue/complete/fail
// path allocates nothing — pinned statically by the workload-request-leaves
// hotpath entry and dynamically by the workload.steady_request budget
// (tools/hotcheck/hotpaths.toml, tests/allocbudget_test.cpp).
//
// Conservation: issued == completed + failed + in_flight at every round
// boundary, audited via audit::check_request_conservation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "support/percentiles.hpp"

namespace reconfnet::workload {

/// Latencies are measured in communication rounds; the histogram is exact
/// per-round up to its bucket cap (overflow clamps, see Percentiles).
using LatencyHistogram = support::Percentiles;

using RequestId = std::uint32_t;

class RequestTracker {
 public:
  /// `max_latency_rounds` caps the histogram (larger latencies clamp);
  /// `capacity_hint` pre-sizes the slot pool to the expected in-flight
  /// high-water mark so steady state never grows it.
  explicit RequestTracker(std::uint64_t max_latency_rounds = 4095,
                          std::size_t capacity_hint = 1024)
      : latency_(max_latency_rounds) {
    issue_round_.reserve(capacity_hint);
    free_.reserve(capacity_hint);
  }

  /// Issues a new request at `round`; returns its id. Steady-state
  /// allocation-free (recycles a free slot when one exists).
  [[nodiscard]] RequestId issue(sim::Round round) noexcept {
    ++issued_;
    ++live_;
    if (!free_.empty()) {
      const RequestId id = free_.back();
      free_.pop_back();
      issue_round_[id] = round;
      return id;
    }
    const auto id = static_cast<RequestId>(issue_round_.size());
    issue_round_.push_back(round);
    return id;
  }

  /// Marks the request completed at `round` and records its latency.
  void complete(RequestId id, sim::Round round) noexcept {
    ++completed_;
    --live_;
    const sim::Round waited = round - issue_round_[id];
    latency_.add(waited >= 0 ? static_cast<std::uint64_t>(waited) : 0);
    free_.push_back(id);
  }

  /// Marks the request permanently failed (retries exhausted) at `round`.
  void fail(RequestId id, sim::Round round) noexcept {
    (void)round;
    ++failed_;
    --live_;
    free_.push_back(id);
  }

  [[nodiscard]] sim::Round issue_round(RequestId id) const {
    return issue_round_[id];
  }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }
  /// Physically counted (incremented on issue, decremented on completion or
  /// failure) rather than derived, so conserved() is a real cross-check.
  [[nodiscard]] std::uint64_t in_flight() const { return live_; }
  /// The conservation invariant the audit layer enforces.
  [[nodiscard]] bool conserved() const {
    return issued_ == completed_ + failed_ + live_;
  }

  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  std::vector<sim::Round> issue_round_;  // slot pool, indexed by RequestId
  std::vector<RequestId> free_;          // recycled slots
  LatencyHistogram latency_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t live_ = 0;
};

}  // namespace reconfnet::workload
