// Deterministic open-loop workload driver (DESIGN.md §12): pumps a keyed
// read/write mix — Zipfian or uniform keys, fixed-rate or Poisson arrivals —
// into one of the Section 7 applications while churn epochs, round-level DoS
// blocking, and an injected FaultPlan run concurrently.
//
// Time model: one virtual round per serving round; a reconfiguration epoch
// advances the virtual clock by the epoch's communication rounds while
// arrivals keep accumulating and nothing is served — exactly the p999 spike
// the W-benches measure. Per round the driver issues arrivals, then walks the
// pending queue once: each request draws a uniform entry group, optionally
// takes the hot-key fast path (hot_key.hpp), otherwise consumes one unit of
// its home group's per-round capacity and is served through the app adapter.
// Requests that find their home group at capacity wait (no head-of-line
// blocking of other groups); requests lost to faults or failed serves retry
// up to max_attempts, then fail.
//
// Determinism: every random decision draws from a dedicated split of the
// trial's master Rng (keys, arrivals, ops, blocking, serving, epochs,
// faults), so reports are byte-identical across --jobs. Request conservation
// (issued == completed + failed + in-flight) is enforced against the
// physical queue occupancy at every round boundary via
// audit::check_request_conservation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "sim/blocked.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/hot_key.hpp"
#include "workload/key_dist.hpp"
#include "workload/tracker.hpp"

namespace reconfnet::workload {

/// One workload request: a keyed read or write.
struct Op {
  bool is_write = false;
  std::uint64_t key = 0;
  std::uint64_t value = 0;  ///< payload for writes; scratch for reads
};

/// Result of serving one request through an application.
struct ServeOutcome {
  bool ok = false;     ///< routed and served (retries otherwise)
  bool found = false;  ///< reads: key was present
  std::uint64_t value = 0;
  sim::Round rounds = 0;  ///< pipeline latency consumed
};

/// Result of one reconfiguration epoch.
struct EpochOutcome {
  bool ok = false;
  sim::Round rounds = 0;  ///< communication rounds the epoch consumed
};

/// Adapter interface the driver pumps requests through; implementations for
/// the three Section 7 applications live in workload/adapters.hpp.
class AppAdapter {
 public:
  AppAdapter() = default;
  AppAdapter(const AppAdapter&) = delete;
  AppAdapter& operator=(const AppAdapter&) = delete;
  AppAdapter(AppAdapter&&) = delete;
  AppAdapter& operator=(AppAdapter&&) = delete;
  virtual ~AppAdapter() = default;

  /// Number of supernode groups (capacity is budgeted per group per round).
  [[nodiscard]] virtual std::size_t group_count() const = 0;
  /// Number of overlay nodes (the DoS adversary blocks node ids).
  [[nodiscard]] virtual std::size_t node_count() const = 0;
  /// Rounds a request pipeline spans: the driver keeps this many per-round
  /// blocked sets rolling.
  [[nodiscard]] virtual std::size_t pipeline_depth() const = 0;
  /// The group that owns this operation's key.
  [[nodiscard]] virtual std::uint64_t home_group(const Op& op) const = 0;
  /// Serves one request entering at `entry_group` under the rolling blocked
  /// window (blocked[i] = blocked set of pipeline round i).
  virtual ServeOutcome serve(const Op& op, std::uint64_t entry_group,
                             std::span<const sim::BlockedSet> blocked,
                             support::Rng& rng) = 0;
  /// Runs one reconfiguration epoch (membership churn + epoch attack).
  virtual EpochOutcome run_epoch(support::Rng& rng) = 0;
  /// Attaches the fault hook to the application's epoch wire traffic
  /// (request-leg faults are applied by the driver itself). Optional.
  virtual void set_fault_hook(sim::DeliveryHook* hook) { (void)hook; }
  /// Local value lookup for hot-key replication (no wire traffic). Returns
  /// false for applications without a readable store.
  virtual bool peek(std::uint64_t key, std::uint64_t& value) {
    (void)key;
    (void)value;
    return false;
  }
};

struct DriverConfig {
  /// Serving rounds to run (epoch rounds come on top of these).
  std::size_t rounds = 256;
  double write_fraction = 0.05;
  KeyDistConfig keys;
  ArrivalConfig arrivals;
  /// Requests one group can serve per round (saturation knee control).
  std::uint32_t per_group_capacity = 4;
  /// Serve/fault retries before a request counts as failed.
  std::uint32_t max_attempts = 3;
  /// Run a reconfiguration epoch every this many serving rounds (0 = never).
  std::size_t epoch_every = 0;
  /// Fraction of nodes the round-level DoS adversary blocks each round.
  double blocked_fraction = 0.0;
  /// Injected fault environment for request legs, epochs, and hot-key floods.
  fault::FaultPlan faults;
  MitigationConfig mitigation;
  /// Latency histogram cap in rounds (larger latencies clamp).
  std::uint64_t max_latency_rounds = 4095;
  /// Enforce request conservation every round (audit::ScopedEnable is still
  /// required for the checks to throw).
  bool audit = true;
};

/// Everything one workload run measures. All counts are exact and
/// deterministic; latencies are in virtual rounds.
struct WorkloadReport {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t in_flight = 0;  ///< still queued when the run ended
  std::uint64_t retries = 0;
  std::uint64_t fault_lost_legs = 0;  ///< request/response legs lost to faults
  std::uint64_t rounds = 0;           ///< virtual rounds (serving + epochs)
  std::uint64_t epoch_rounds = 0;
  std::uint64_t epochs_run = 0;
  std::uint64_t epochs_ok = 0;
  std::uint64_t max_queue = 0;
  double throughput = 0.0;  ///< completed per virtual round
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max_latency = 0;
  double mean_latency = 0.0;
  MitigationStats mitigation;
};

class WorkloadDriver {
 public:
  /// The adapter must outlive the driver.
  WorkloadDriver(DriverConfig config, AppAdapter* adapter);

  /// Runs the configured workload; `master` seeds every random stream.
  [[nodiscard]] WorkloadReport run(support::Rng& master);

 private:
  struct Pending {
    RequestId id = 0;
    Op op;
    std::uint32_t attempts = 0;
  };

  struct Streams;  // per-run Rng splits + fault injector (driver.cpp)

  void issue_arrivals(Streams& streams, sim::Round now);
  void run_serving_round(Streams& streams, sim::Round now);
  [[nodiscard]] bool leg_lost(Streams& streams, std::uint64_t entry_group,
                              std::uint64_t home_group, sim::Round now);

  DriverConfig config_;
  AppAdapter* adapter_;

  // Per-run state, reset at the top of run(); members so the steady-state
  // serving round recycles every buffer (workload-driver-round hotpath).
  KeyDist keys_;
  ArrivalProcess arrivals_;
  RequestTracker tracker_;
  HotKeyMitigator mitigator_;
  std::vector<Pending> queue_;
  std::vector<sim::BlockedSet> window_;  ///< rolling per-round blocked sets
  std::vector<std::uint32_t> group_load_;
  std::vector<sim::Round> fate_;  ///< fault-hook scratch
  WorkloadReport report_;
};

/// Convenience: construct, run, report.
[[nodiscard]] WorkloadReport run_workload(const DriverConfig& config,
                                          AppAdapter& adapter,
                                          support::Rng& master);

}  // namespace reconfnet::workload
