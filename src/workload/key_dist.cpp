#include "workload/key_dist.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace reconfnet::workload {

KeyDist::KeyDist(const KeyDistConfig& config) : config_(config) {
  if (config_.keyspace == 0) {
    throw std::invalid_argument("KeyDist: keyspace must be positive");
  }
  if (config_.theta < 0.0) {
    throw std::invalid_argument("KeyDist: theta must be non-negative");
  }
  const int bits = static_cast<int>(std::bit_width(config_.keyspace - 1));
  mask_ = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
  shift_ = std::max(1, bits / 2);
  if (config_.theta == 0.0) return;  // uniform: no table needed
  cum_.reserve(static_cast<std::size_t>(config_.keyspace));
  double running = 0.0;
  for (std::uint64_t r = 0; r < config_.keyspace; ++r) {
    running += std::pow(static_cast<double>(r + 1), -config_.theta);
    cum_.push_back(running);
  }
}

std::uint64_t KeyDist::next_rank(support::Rng& rng) noexcept {
  if (cum_.empty()) return rng.below(config_.keyspace);
  const double u = rng.uniform() * cum_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cum_.begin());
  return rank < config_.keyspace ? rank : config_.keyspace - 1;
}

std::uint64_t KeyDist::key_of_rank(std::uint64_t rank) const noexcept {
  if (!config_.scramble) return rank;
  // Cycle-walking bijection: each pass (odd-constant multiply + xorshift,
  // both invertible mod 2^bits) permutes [0, mask_ + 1); walking until the
  // image lands below keyspace restricts it to a permutation of
  // [0, keyspace). The walk revisits at most the orbit of `rank`, and since
  // keyspace > (mask_ + 1) / 2 it takes < 2 passes in expectation.
  std::uint64_t x = rank;
  do {
    x = (x * 0x9E3779B97F4A7C15ULL) & mask_;
    x ^= x >> shift_;
    x = (x * 0xBF58476D1CE4E5B9ULL) & mask_;
    x ^= x >> shift_;
  } while (x >= config_.keyspace);
  return x;
}

double KeyDist::expected_fraction(std::uint64_t rank) const {
  if (rank >= config_.keyspace) return 0.0;
  if (cum_.empty()) return 1.0 / static_cast<double>(config_.keyspace);
  return std::pow(static_cast<double>(rank + 1), -config_.theta) /
         cum_.back();
}

}  // namespace reconfnet::workload
