#include "workload/driver.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "audit/audit.hpp"
#include "audit/invariants.hpp"
#include "fault/injector.hpp"

namespace reconfnet::workload {

namespace {

/// Slot-pool pre-size for the request tracker: a generous multiple of the
/// per-round arrival rate so steady state never grows the pool.
[[nodiscard]] std::size_t capacity_hint(const DriverConfig& config) {
  const auto per_round = static_cast<std::size_t>(config.arrivals.rate) + 1;
  return std::max<std::size_t>(1024, 64 * per_round);
}

}  // namespace

/// Per-run random streams. Every decision kind draws from its own split of
/// the master seed, so e.g. enabling faults never shifts the key sequence.
struct WorkloadDriver::Streams {
  support::Rng keys;
  support::Rng arrivals;
  support::Rng ops;
  support::Rng blocked;
  support::Rng serve;
  support::Rng epochs;
  fault::FaultInjector injector;
  bool faults;

  Streams(const DriverConfig& config, support::Rng& master)
      : keys(master.split(1)),
        arrivals(master.split(2)),
        ops(master.split(3)),
        blocked(master.split(4)),
        serve(master.split(5)),
        epochs(master.split(6)),
        injector(config.faults, master.split(7)),
        faults(config.faults.enabled()) {}
};

WorkloadDriver::WorkloadDriver(DriverConfig config, AppAdapter* adapter)
    : config_(std::move(config)),
      adapter_(adapter),
      keys_(config_.keys),
      arrivals_(config_.arrivals),
      tracker_(config_.max_latency_rounds, capacity_hint(config_)),
      mitigator_(config_.mitigation,
                 adapter != nullptr ? adapter->group_count() : 1) {
  if (adapter_ == nullptr) {
    throw std::invalid_argument("WorkloadDriver: adapter == nullptr");
  }
  if (config_.per_group_capacity == 0) {
    throw std::invalid_argument("WorkloadDriver: per_group_capacity == 0");
  }
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("WorkloadDriver: max_attempts == 0");
  }
  if (config_.write_fraction < 0.0 || config_.write_fraction > 1.0) {
    throw std::invalid_argument("WorkloadDriver: write_fraction out of [0,1]");
  }
}

WorkloadReport WorkloadDriver::run(support::Rng& master) {
  Streams streams(config_, master);
  // Reset per-run state so one driver can run several trials.
  keys_ = KeyDist(config_.keys);
  arrivals_ = ArrivalProcess(config_.arrivals);
  tracker_ = RequestTracker(config_.max_latency_rounds, capacity_hint(config_));
  mitigator_ = HotKeyMitigator(config_.mitigation, adapter_->group_count());
  report_ = {};
  queue_.clear();
  group_load_.assign(adapter_->group_count(), 0);
  window_.resize(std::max<std::size_t>(adapter_->pipeline_depth(), 1));
  if (streams.faults) {
    mitigator_.set_fault_hook(&streams.injector);
    adapter_->set_fault_hook(&streams.injector);
  }

  // window_[j] holds the blocked set of virtual round now + j; each serving
  // round retires the oldest set and draws the one entering the horizon.
  const auto refresh = [&](sim::BlockedSet& set) {
    set.clear();
    if (config_.blocked_fraction <= 0.0) return;
    const std::size_t nodes = adapter_->node_count();
    for (std::size_t node = 0; node < nodes; ++node) {
      if (streams.blocked.bernoulli(config_.blocked_fraction)) {
        set.insert(static_cast<sim::NodeId>(node));
      }
    }
  };
  for (auto& set : window_) refresh(set);

  sim::Round now = 0;
  for (std::size_t r = 0; r < config_.rounds; ++r) {
    if (config_.epoch_every > 0 && r > 0 && r % config_.epoch_every == 0) {
      // The app reconfigures and serves nothing; open-loop arrivals keep
      // accumulating through every epoch round (the p999 spike).
      const EpochOutcome epoch = adapter_->run_epoch(streams.epochs);
      ++report_.epochs_run;
      if (epoch.ok) ++report_.epochs_ok;
      report_.epoch_rounds += static_cast<std::uint64_t>(epoch.rounds);
      for (sim::Round e = 0; e < epoch.rounds; ++e) {
        ++now;
        issue_arrivals(streams, now);
      }
      for (auto& set : window_) refresh(set);  // the window scrolled past
    }
    ++now;
    std::rotate(window_.begin(), window_.begin() + 1, window_.end());
    refresh(window_.back());
    issue_arrivals(streams, now);
    run_serving_round(streams, now);
    streams.injector.on_step(now);
    if (config_.audit && audit::enabled()) {
      audit::enforce(audit::check_request_conservation(
          tracker_.issued(), tracker_.completed(), tracker_.failed(),
          queue_.size()));
    }
  }

  // The injector dies with this frame; detach everything that borrowed it.
  mitigator_.set_fault_hook(nullptr);
  adapter_->set_fault_hook(nullptr);

  report_.issued = tracker_.issued();
  report_.completed = tracker_.completed();
  report_.failed = tracker_.failed();
  report_.in_flight = tracker_.in_flight();
  report_.rounds = static_cast<std::uint64_t>(now);
  report_.throughput =
      now > 0 ? static_cast<double>(report_.completed) / static_cast<double>(now)
              : 0.0;
  const LatencyHistogram& latency = tracker_.latency();
  if (latency.count() > 0) {
    report_.p50 = latency.p50();
    report_.p99 = latency.p99();
    report_.p999 = latency.p999();
    report_.max_latency = latency.max();
    report_.mean_latency = latency.mean();
  }
  report_.mitigation = mitigator_.stats();
  return report_;
}

void WorkloadDriver::issue_arrivals(Streams& streams, sim::Round now) {
  const std::uint64_t count = arrivals_.next(streams.arrivals);
  queue_.reserve(queue_.size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Pending pending;
    pending.op.is_write = streams.ops.bernoulli(config_.write_fraction);
    pending.op.key = keys_.next(streams.keys);
    pending.op.value = streams.ops.next();
    pending.id = tracker_.issue(now);
    queue_.push_back(pending);
  }
  report_.max_queue = std::max<std::uint64_t>(report_.max_queue, queue_.size());
}

void WorkloadDriver::run_serving_round(Streams& streams, sim::Round now) {
  std::fill(group_load_.begin(), group_load_.end(), 0);
  const std::span<const sim::BlockedSet> window(window_.data(), window_.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Pending pending = queue_[i];
    const std::uint64_t entry = streams.serve.below(group_load_.size());
    // Hot-key fast path: a read that hits the entry group's cache or an
    // activated replica completes in one round, charging the entry group.
    if (!pending.op.is_write && mitigator_.enabled() &&
        group_load_[entry] < config_.per_group_capacity) {
      std::uint64_t cached = 0;
      if (mitigator_.serve_cached(pending.op.key, entry, now, cached)) {
        ++group_load_[entry];
        tracker_.complete(pending.id, now + 1);
        continue;
      }
    }
    const std::uint64_t home = adapter_->home_group(pending.op);
    if (group_load_[home] >= config_.per_group_capacity) {
      queue_[kept++] = pending;  // home group saturated; wait, don't block others
      continue;
    }
    ++group_load_[home];
    bool lost = false;
    if (streams.faults) {
      // Request and response legs between the entry and home groups are
      // ordinary wire traffic to the fault layer.
      lost = leg_lost(streams, entry, home, now) ||
             leg_lost(streams, home, entry, now);
    }
    ServeOutcome outcome;
    if (lost) {
      ++report_.fault_lost_legs;
    } else {
      outcome = adapter_->serve(pending.op, entry, window, streams.serve);
    }
    if (lost || !outcome.ok) {
      ++pending.attempts;
      ++report_.retries;
      if (pending.attempts >= config_.max_attempts) {
        tracker_.fail(pending.id, now);
      } else {
        queue_[kept++] = pending;
      }
      continue;
    }
    tracker_.complete(pending.id, now + outcome.rounds);
    if (!mitigator_.enabled()) continue;
    if (pending.op.is_write) {
      mitigator_.on_write(pending.op.key, pending.op.value, now);
      continue;
    }
    mitigator_.fill_cache(pending.op.key, outcome.value, entry, now);
    if (mitigator_.observe(pending.op.key)) {
      std::uint64_t current = 0;
      if (adapter_->peek(pending.op.key, current)) {
        mitigator_.replicate(pending.op.key, current, home, now);
      }
    }
  }
  queue_.resize(kept);
}

bool WorkloadDriver::leg_lost(Streams& streams, std::uint64_t from,
                              std::uint64_t to, sim::Round now) {
  fate_.clear();
  streams.injector.on_message(static_cast<sim::NodeId>(from),
                              static_cast<sim::NodeId>(to), now, fate_);
  if (fate_.empty()) return true;
  for (const sim::Round delay : fate_) {
    if (delay == 0) return false;
  }
  // Every copy was delayed past the request's serve window: effectively lost
  // (the request retries next round).
  return true;
}

WorkloadReport run_workload(const DriverConfig& config, AppAdapter& adapter,
                            support::Rng& master) {
  WorkloadDriver driver(config, &adapter);
  return driver.run(master);
}

}  // namespace reconfnet::workload
