// Hot-key mitigation for the workload engine (DESIGN.md §12), extending the
// T8b combining result from publishes to reads: under a Zipfian key
// distribution the hottest key's home group saturates long before the
// aggregate capacity does, so the engine (1) tracks the top-k keys with a
// space-saving counter sketch, (2) replicates a key that crosses the
// observation threshold to every group via a dimension-order flood over the
// group hypercube (d rounds, 2^d - 1 messages, subject to the fault hook
// like any other wire traffic), and (3) keeps a small direct-mapped TTL
// cache per entry group filled by ordinary read completions. Reads that hit
// a cache line or an activated replica are served at their entry group in
// one round instead of routing dimension-many hops to the home group.
//
// Staleness contract: replicas are updated write-through (on_write), cache
// lines expire after cache_ttl rounds — a cached read may return a value up
// to cache_ttl rounds old (bounded staleness, documented in DESIGN.md §12).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bus.hpp"
#include "sim/types.hpp"

namespace reconfnet::workload {

/// Wire cost of one replication-flood message: key + value + header
/// (registered in tools/protocheck/protocol.toml).
inline constexpr std::uint64_t kHotKeyReplicaBits = 64 + 64 + 16;

struct MitigationConfig {
  bool enabled = false;
  /// Replica slots: at most this many keys are ever replicated.
  std::size_t top_k = 8;
  /// Observed reads of one key before it is replicated.
  std::uint64_t replicate_threshold = 64;
  /// Direct-mapped cache lines per entry group (0 disables the cache).
  std::size_t cache_slots = 4;
  /// Rounds a cache line stays valid (bounded staleness).
  sim::Round cache_ttl = 16;
};

struct MitigationStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t replica_hits = 0;
  std::uint64_t replications = 0;      ///< floods run (first copy + refresh)
  std::uint64_t replica_messages = 0;  ///< flood messages sent
  std::uint64_t replica_bits = 0;      ///< flood communication work
  std::uint64_t replica_drops = 0;     ///< flood messages lost to faults
};

class HotKeyMitigator {
 public:
  /// `groups` is the number of entry groups (the overlay's supernode count).
  HotKeyMitigator(const MitigationConfig& config, std::size_t groups);

  /// Attaches the fault-injection hook consulted by the replication flood
  /// (nullptr = lossless). The hook must outlive the mitigator.
  void set_fault_hook(sim::DeliveryHook* hook) { hook_ = hook; }

  /// Records one served read. Returns true when the key just crossed the
  /// replication threshold and holds no replica yet — the caller should look
  /// the value up and call replicate().
  [[nodiscard]] bool observe(std::uint64_t key);

  /// Floods (key, value) from its home group to every group. Groups missed
  /// by fault-dropped flood messages do not receive the replica; the rest
  /// serve it from round + flood_rounds() on.
  void replicate(std::uint64_t key, std::uint64_t value,
                 std::uint64_t home_group, sim::Round round);

  /// Write-through refresh: updates an existing replica's value everywhere
  /// it landed and charges one flood of communication work. No-op for keys
  /// without a replica.
  void on_write(std::uint64_t key, std::uint64_t value, sim::Round round);

  /// Fast path for one read arriving at `entry_group`: returns true and
  /// fills `value` when a live cache line or an activated replica serves it.
  [[nodiscard]] bool serve_cached(std::uint64_t key, std::uint64_t entry_group,
                                  sim::Round round, std::uint64_t& value);

  /// Installs the result of an ordinary (routed) read into the entry group's
  /// cache with the configured TTL.
  void fill_cache(std::uint64_t key, std::uint64_t value,
                  std::uint64_t entry_group, sim::Round round);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  /// Rounds one flood takes: log2(groups), or 1 for the star fallback.
  [[nodiscard]] sim::Round flood_rounds() const { return flood_rounds_; }
  [[nodiscard]] const MitigationStats& stats() const { return stats_; }
  [[nodiscard]] const MitigationConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::size_t replica_slot(std::uint64_t key) const;

  MitigationConfig config_;
  std::size_t groups_;
  sim::Round flood_rounds_ = 0;
  sim::DeliveryHook* hook_ = nullptr;

  // Space-saving top-k sketch (fixed arrays, linear scan: top_k is small).
  std::vector<std::uint64_t> counter_key_;
  std::vector<std::uint64_t> counter_count_;
  std::vector<std::uint8_t> counter_replicated_;

  // Replica table: slot-major arrays; replica_has_[slot * groups_ + g].
  std::vector<std::uint64_t> replica_key_;
  std::vector<std::uint64_t> replica_value_;
  std::vector<sim::Round> replica_active_;  ///< first round the replica serves
  std::vector<std::uint8_t> replica_has_;
  std::size_t replica_used_ = 0;

  // Direct-mapped per-group cache: cache_*[g * cache_slots + line].
  std::vector<std::uint64_t> cache_key_;
  std::vector<std::uint64_t> cache_value_;
  std::vector<sim::Round> cache_expire_;

  MitigationStats stats_;
};

}  // namespace reconfnet::workload
