#include "workload/hot_key.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace reconfnet::workload {

/// Replication-flood payload (registered in tools/protocheck/protocol.toml).
/// One (key, value) pair pushed from the hot key's home group to every other
/// group over the group hypercube.
struct ReplicaMsg {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

namespace {

/// Fault-delayed flood copies land at most this many extra bus steps late;
/// anything still pending after the drain window counts as dropped.
constexpr std::size_t kMaxDrainSteps = 128;

[[nodiscard]] std::size_t cache_line_of(std::uint64_t key, std::size_t slots) {
  return static_cast<std::size_t>(support::splitmix64(key) %
                                  static_cast<std::uint64_t>(slots));
}

}  // namespace

HotKeyMitigator::HotKeyMitigator(const MitigationConfig& config,
                                 std::size_t groups)
    : config_(config), groups_(groups) {
  if (!config_.enabled) return;
  if (groups_ == 0) throw std::invalid_argument("HotKeyMitigator: groups == 0");
  if (config_.top_k == 0) {
    throw std::invalid_argument("HotKeyMitigator: top_k == 0");
  }
  // log2(groups) when groups is a power of two; otherwise the star fallback
  // pushes every copy directly from the home group in a single round.
  if ((groups_ & (groups_ - 1)) == 0) {
    while ((std::size_t{1} << flood_rounds_) < groups_) ++flood_rounds_;
  } else {
    flood_rounds_ = 1;
  }
  const std::size_t counters = 2 * config_.top_k;
  counter_key_.assign(counters, 0);
  counter_count_.assign(counters, 0);
  counter_replicated_.assign(counters, 0);
  replica_key_.assign(config_.top_k, 0);
  replica_value_.assign(config_.top_k, 0);
  replica_active_.assign(config_.top_k, 0);
  replica_has_.assign(config_.top_k * groups_, 0);
  if (config_.cache_slots > 0) {
    cache_key_.assign(groups_ * config_.cache_slots, 0);
    cache_value_.assign(groups_ * config_.cache_slots, 0);
    cache_expire_.assign(groups_ * config_.cache_slots, 0);
  }
}

std::size_t HotKeyMitigator::replica_slot(std::uint64_t key) const {
  for (std::size_t slot = 0; slot < replica_used_; ++slot) {
    if (replica_key_[slot] == key) return slot;
  }
  return replica_used_;
}

bool HotKeyMitigator::observe(std::uint64_t key) {
  if (!config_.enabled) return false;
  // Space-saving sketch: an unseen key takes over the minimum-count slot and
  // inherits its count (+1), so a persistently hot key's count is at most
  // min-count too high — more than precise enough for a replicate trigger.
  std::size_t found = counter_key_.size();
  std::size_t min_slot = 0;
  for (std::size_t slot = 0; slot < counter_key_.size(); ++slot) {
    if (counter_count_[slot] > 0 && counter_key_[slot] == key) {
      found = slot;
      break;
    }
    if (counter_count_[slot] < counter_count_[min_slot]) min_slot = slot;
  }
  if (found == counter_key_.size()) {
    found = min_slot;
    counter_key_[found] = key;
    counter_count_[found] = counter_count_[found] + 1;
    counter_replicated_[found] = 0;
  } else {
    ++counter_count_[found];
  }
  if (counter_count_[found] < config_.replicate_threshold) return false;
  if (counter_replicated_[found] != 0) return false;
  if (replica_slot(key) < replica_used_) {
    // Already replicated under an earlier counter incarnation (the sketch
    // evicted and re-admitted the key); just restore the flag.
    counter_replicated_[found] = 1;
    return false;
  }
  if (replica_used_ >= config_.top_k) return false;  // table full
  counter_replicated_[found] = 1;
  return true;
}

void HotKeyMitigator::replicate(std::uint64_t key, std::uint64_t value,
                                std::uint64_t home_group, sim::Round round) {
  if (!config_.enabled) return;
  std::size_t slot = replica_slot(key);
  if (slot == replica_used_) {
    if (replica_used_ >= config_.top_k) return;
    slot = replica_used_++;
    replica_key_[slot] = key;
  }
  replica_value_[slot] = value;
  ++stats_.replications;
  std::uint8_t* has = &replica_has_[slot * groups_];
  std::fill(has, has + groups_, std::uint8_t{0});
  has[home_group] = 1;

  // The flood is real wire traffic: it runs on its own bus with the same
  // fault hook as the rest of the workload, so lossy environments leave
  // replica holes (groups that fall through to the routed slow path).
  sim::Bus<ReplicaMsg> bus;
  bus.set_fault_hook(hook_);
  std::uint64_t sent = 0;
  std::uint64_t landed = 0;
  const auto absorb = [&](std::uint64_t group) {
    for (const auto& envelope :
         bus.inbox(static_cast<sim::NodeId>(group))) {
      (void)envelope;
      ++landed;
      has[group] = 1;
    }
  };
  if ((groups_ & (groups_ - 1)) == 0) {
    // Dimension-order hypercube broadcast: in round i every holder forwards
    // across dimension i, doubling the holder set — d rounds, 2^d - 1
    // messages when lossless.
    for (sim::Round dim = 0; dim < flood_rounds_; ++dim) {
      for (std::uint64_t group = 0; group < groups_; ++group) absorb(group);
      const std::uint64_t flip = std::uint64_t{1} << dim;
      for (std::uint64_t group = 0; group < groups_; ++group) {
        if (has[group] == 0) continue;
        bus.send(static_cast<sim::NodeId>(group),
                 static_cast<sim::NodeId>(group ^ flip),
                 ReplicaMsg{key, value}, kHotKeyReplicaBits);
        ++sent;
      }
      bus.step();
    }
  } else {
    // Star fallback for non-power-of-two group counts.
    for (std::uint64_t group = 0; group < groups_; ++group) {
      if (group == home_group) continue;
      bus.send(static_cast<sim::NodeId>(home_group),
               static_cast<sim::NodeId>(group), ReplicaMsg{key, value},
               kHotKeyReplicaBits);
      ++sent;
    }
    bus.step();
  }
  // Absorb the final round's deliveries plus any fault-delayed copies.
  for (std::size_t extra = 0;; ++extra) {
    for (std::uint64_t group = 0; group < groups_; ++group) absorb(group);
    if (bus.delayed_pending() == 0 || extra >= kMaxDrainSteps) break;
    bus.step();
  }
  stats_.replica_messages += sent;
  stats_.replica_bits += sent * kHotKeyReplicaBits;
  if (sent > landed) stats_.replica_drops += sent - landed;
  replica_active_[slot] = round + flood_rounds_;
}

void HotKeyMitigator::on_write(std::uint64_t key, std::uint64_t value,
                               sim::Round round) {
  if (!config_.enabled) return;
  const std::size_t slot = replica_slot(key);
  if (slot == replica_used_) return;
  // Write-through refresh, modelled in place: the value updates everywhere
  // the replica landed and one flood's worth of communication is charged.
  // (A lost refresh would only extend the staleness the TTL contract already
  // permits, so the refresh itself is not fault-exposed.)
  replica_value_[slot] = value;
  ++stats_.replications;
  const std::uint64_t charged = groups_ > 0 ? groups_ - 1 : 0;
  stats_.replica_messages += charged;
  stats_.replica_bits += charged * kHotKeyReplicaBits;
  (void)round;
}

bool HotKeyMitigator::serve_cached(std::uint64_t key, std::uint64_t entry_group,
                                   sim::Round round, std::uint64_t& value) {
  if (!config_.enabled) return false;
  if (config_.cache_slots > 0) {
    const std::size_t line = cache_line_of(key, config_.cache_slots);
    const std::size_t index =
        static_cast<std::size_t>(entry_group) * config_.cache_slots + line;
    if (cache_expire_[index] > round && cache_key_[index] == key) {
      value = cache_value_[index];
      ++stats_.cache_hits;
      return true;
    }
  }
  const std::size_t slot = replica_slot(key);
  if (slot < replica_used_ && replica_active_[slot] <= round &&
      replica_has_[slot * groups_ + entry_group] != 0) {
    value = replica_value_[slot];
    ++stats_.replica_hits;
    return true;
  }
  return false;
}

void HotKeyMitigator::fill_cache(std::uint64_t key, std::uint64_t value,
                                 std::uint64_t entry_group, sim::Round round) {
  if (!config_.enabled || config_.cache_slots == 0) return;
  const std::size_t line = cache_line_of(key, config_.cache_slots);
  const std::size_t index =
      static_cast<std::size_t>(entry_group) * config_.cache_slots + line;
  cache_key_[index] = key;
  cache_value_[index] = value;
  cache_expire_[index] = round + config_.cache_ttl;
}

}  // namespace reconfnet::workload
