// AppAdapter implementations binding the workload driver to the three
// Section 7 applications (DESIGN.md §12):
//   DhtAdapter    — RoBuSt-lite reads/writes on the k-ary grouped hypercube
//                   (Section 7.2); the only adapter with a peek(), so hot-key
//                   replication is available here.
//   PubSubAdapter — publish / fetch-since on the robust pub-sub (Section
//                   7.3); each adapter keeps a per-topic subscriber cursor so
//                   fetches retrieve only new entries.
//   AnonymAdapter — user-to-user messages through the anonymizer pipeline
//                   (Section 7.1) on the binary DoS overlay.
//
// Epoch attacks: each adapter owns a RandomDos adversary seeded from its
// config; epoch_blocked_fraction > 0 turns it on for reconfiguration epochs
// (the driver's blocked_fraction covers serving rounds separately).
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/dos.hpp"
#include "apps/anonym/anonymizer.hpp"
#include "apps/dht/kary_overlay.hpp"
#include "apps/dht/robust_store.hpp"
#include "apps/pubsub/pubsub.hpp"
#include "dos/overlay.hpp"
#include "workload/driver.hpp"

namespace reconfnet::workload {

struct DhtAdapterConfig {
  std::size_t size = 1024;
  int arity = 4;
  double group_c = 2.0;
  /// Keys [0, prefill_keys) are deposited up front so reads hit.
  std::uint64_t prefill_keys = 0;
  /// Epoch-time DoS: fraction blocked by the adapter's RandomDos (0 = none).
  double epoch_blocked_fraction = 0.0;
  int epoch_lateness = 2;
  /// See KaryGroupedOverlay::Config::snapshot_edges; turn off at large n.
  bool snapshot_edges = true;
  std::uint64_t seed = 1;
};

class DhtAdapter final : public AppAdapter {
 public:
  explicit DhtAdapter(const DhtAdapterConfig& config);

  [[nodiscard]] std::size_t group_count() const override;
  [[nodiscard]] std::size_t node_count() const override;
  [[nodiscard]] std::size_t pipeline_depth() const override;
  [[nodiscard]] std::uint64_t home_group(const Op& op) const override;
  ServeOutcome serve(const Op& op, std::uint64_t entry_group,
                     std::span<const sim::BlockedSet> blocked,
                     support::Rng& rng) override;
  EpochOutcome run_epoch(support::Rng& rng) override;
  void set_fault_hook(sim::DeliveryHook* hook) override;
  bool peek(std::uint64_t key, std::uint64_t& value) override;

  /// The value prefilled under `key` (tests check read correctness).
  [[nodiscard]] static std::uint64_t prefill_value(std::uint64_t key);

  [[nodiscard]] const apps::RobustStore& store() const { return store_; }

 private:
  DhtAdapterConfig config_;
  apps::KaryGroupedOverlay overlay_;
  apps::RobustStore store_;
  adversary::RandomDos epoch_adversary_;
};

struct PubSubAdapterConfig {
  std::size_t size = 1024;
  int arity = 4;
  double group_c = 2.0;
  /// Topic space; workload keys map onto it modulo `topics`.
  std::uint64_t topics = 64;
  double epoch_blocked_fraction = 0.0;
  int epoch_lateness = 2;
  bool snapshot_edges = true;
  std::uint64_t seed = 2;
};

class PubSubAdapter final : public AppAdapter {
 public:
  explicit PubSubAdapter(const PubSubAdapterConfig& config);

  [[nodiscard]] std::size_t group_count() const override;
  [[nodiscard]] std::size_t node_count() const override;
  [[nodiscard]] std::size_t pipeline_depth() const override;
  [[nodiscard]] std::uint64_t home_group(const Op& op) const override;
  /// Writes publish op.value under topic (op.key mod topics); reads fetch
  /// everything since this adapter's cursor and advance it on success.
  ServeOutcome serve(const Op& op, std::uint64_t entry_group,
                     std::span<const sim::BlockedSet> blocked,
                     support::Rng& rng) override;
  EpochOutcome run_epoch(support::Rng& rng) override;
  void set_fault_hook(sim::DeliveryHook* hook) override;

 private:
  PubSubAdapterConfig config_;
  apps::KaryGroupedOverlay overlay_;
  apps::RobustStore store_;
  apps::PubSub pubsub_;
  std::vector<std::uint64_t> cursors_;  ///< per-topic subscriber position
  adversary::RandomDos epoch_adversary_;
};

struct AnonymAdapterConfig {
  std::size_t size = 1024;
  double group_c = 1.0;
  /// User id space; workload keys/values map onto it modulo `users`.
  std::uint64_t users = 4096;
  double epoch_blocked_fraction = 0.0;
  int epoch_lateness = 2;
  std::uint64_t seed = 3;
};

class AnonymAdapter final : public AppAdapter {
 public:
  explicit AnonymAdapter(const AnonymAdapterConfig& config);

  [[nodiscard]] std::size_t group_count() const override;
  [[nodiscard]] std::size_t node_count() const override;
  [[nodiscard]] std::size_t pipeline_depth() const override;
  [[nodiscard]] std::uint64_t home_group(const Op& op) const override;
  /// Every op (read or write alike) is one user-to-user message: from user
  /// (op.value mod users) to user (op.key mod users); ok = delivered and
  /// replied.
  ServeOutcome serve(const Op& op, std::uint64_t entry_group,
                     std::span<const sim::BlockedSet> blocked,
                     support::Rng& rng) override;
  EpochOutcome run_epoch(support::Rng& rng) override;

 private:
  AnonymAdapterConfig config_;
  dos::DosOverlay overlay_;
  adversary::RandomDos epoch_adversary_;
};

}  // namespace reconfnet::workload
