// Key distributions for the open-loop workload engine (DESIGN.md §12).
//
// KeyDist draws keys from a Zipfian or uniform distribution over a fixed
// keyspace, YCSB-style: ranks are drawn by their popularity, then scrambled
// through a cycle-walking multiply/xorshift bijection so the popular keys
// are spread over the whole keyspace (and therefore over the whole DHT
// group space) instead of clustering at the low ids. The scramble is a true
// permutation of [0, keyspace) — no two ranks merge — so the uniform case
// stays exactly uniform per key. The Zipfian draw inverts a precomputed cumulative-weight
// table by binary search, which is exact for any theta (including theta >= 1,
// where the classic Gray-formula approximation breaks down), consumes one
// uniform per draw, and allocates nothing after construction.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace reconfnet::workload {

struct KeyDistConfig {
  /// Number of distinct keys; draws land in [0, keyspace).
  std::uint64_t keyspace = 100000;
  /// Zipfian skew: 0 = uniform, 0.99 = the YCSB default, >= 1 supported.
  double theta = 0.0;
  /// Scramble ranks over the keyspace (YCSB-style) so popularity is not
  /// correlated with key value. Disable to make rank r map to key r, which
  /// tests use to assert the distribution shape directly.
  bool scramble = true;
};

class KeyDist {
 public:
  explicit KeyDist(const KeyDistConfig& config);

  /// Draws one key in [0, keyspace). Allocation-free after construction.
  [[nodiscard]] std::uint64_t next(support::Rng& rng) noexcept {
    return key_of_rank(next_rank(rng));
  }

  /// Draws one popularity rank in [0, keyspace); rank 0 is the hottest.
  [[nodiscard]] std::uint64_t next_rank(support::Rng& rng) noexcept;

  /// The key a rank maps to (identity unless scrambling is on).
  [[nodiscard]] std::uint64_t key_of_rank(std::uint64_t rank) const noexcept;

  /// Expected fraction of draws hitting the given rank; tests compare the
  /// empirical histogram against this.
  [[nodiscard]] double expected_fraction(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t keyspace() const { return config_.keyspace; }
  [[nodiscard]] const KeyDistConfig& config() const { return config_; }

 private:
  KeyDistConfig config_;
  /// Cumulative Zipf weights, cum_[r] = sum_{i<=r} (i+1)^-theta; empty for
  /// the uniform case (theta == 0), where below() is exact and cheaper.
  std::vector<double> cum_;
  /// Scramble domain: mask_ = 2^ceil(log2 keyspace) - 1; shift_ feeds the
  /// xorshift half-round. Precomputed so key_of_rank stays branch-light.
  std::uint64_t mask_ = 0;
  int shift_ = 1;
};

}  // namespace reconfnet::workload
