#include "transport/node_protocol.hpp"

#include <algorithm>

#include "apps/dht/robust_store.hpp"

namespace reconfnet::transport {
namespace {

using Core = sampling::HypercubeSamplerCore;

/// Greedy bit-fixing next hop: flip the lowest bit where `cur` and `home`
/// differ (the k-ary overlay's digit fixing with k = 2).
std::uint64_t next_hop(std::uint64_t cur, std::uint64_t home) {
  const std::uint64_t diff = cur ^ home;
  return cur ^ (diff & (~diff + 1));
}

}  // namespace

NodeProtocol::NodeProtocol(sim::NodeId self, dos::GroupTable initial,
                           Config config)
    : self_(self), config_(std::move(config)), table_(std::move(initial)) {
  if (config_.epochs <= 0) {
    mode_ = Mode::kDone;
    metrics_.finished = true;
    epoch_rounds_ = 1;
    return;
  }
  begin_attempt(0);
}

void NodeProtocol::begin_attempt(sim::Round start_round) {
  epoch_start_ = start_round;
  supernode_ = table_.supernode_of(self_);
  ++metrics_.attempts;

  // Schedule derivation, identical to dos::run_node_level_epoch.
  const std::size_t n = table_.size();
  const int d = table_.dimension();
  const auto estimate = sampling::SizeEstimate::from_true_size(
      n, config_.size_estimate_slack);
  auto sampling_config = config_.sampling;
  const double needed_c =
      static_cast<double>(table_.max_group_size() + 1) /
      static_cast<double>(estimate.log_n_estimate());
  sampling_config.c = std::max(sampling_config.c, needed_c);
  sampling_config.beta = std::min(sampling_config.beta, sampling_config.c);
  schedule_ = sampling::hypercube_schedule(estimate, d, sampling_config);
  primitive_rounds_ = 2 * schedule_.iterations + 1;
  epoch_rounds_ = 2 * primitive_rounds_ + d + 6;

  // The epoch master stream: the first attempt of epoch 0 uses the run seed
  // directly (node_sim parity — a fresh Rng(seed) handed to
  // run_node_level_epoch); retries and later epochs remix so an aborted
  // attempt's stragglers can never collide with the retry's draws.
  std::uint64_t master_seed = config_.seed;
  if (epoch_ != 0 || attempt_ != 0) {
    std::uint64_t remix =
        config_.seed ^
        (static_cast<std::uint64_t>(epoch_) * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(attempt_) + 1) * 0xD1B54A32D192ED03ULL;
    master_seed = support::splitmix64(remix);
  }
  support::Rng master(master_seed);

  // Replay node_sim's global split order (Rng::split mutates the parent, so
  // every node must walk the full x-major, id-ascending loop and keep only
  // its own two streams for the states to agree across processes).
  support::Rng my_init{0};
  for (std::uint64_t x = 0; x < table_.supernodes(); ++x) {
    for (const sim::NodeId id : table_.group(x)) {
      auto init_rng = master.split(0xA000 + x);
      auto node_rng = master.split(0xB0000 + id);
      if (id == self_) {
        my_init = init_rng;
        rng_ = node_rng;
      }
    }
  }
  Core core(d, supernode_, schedule_);
  core.init(my_init);
  state_.emplace(Snap{std::move(core), 0});

  doomed_ = false;
  fresh_group_.clear();
  have_fresh_ = false;
  own_new_group_.clear();
  own_new_group_known_ = false;
  neighbor_groups_seen_.clear();
  gathered_.clear();
  gather_conflict_ = false;
  vote_complete_ = false;
  veto_seen_ = false;
}

bool NodeProtocol::on_round(sim::Round round,
                            std::span<const sim::Envelope<Message>> inbox,
                            Outbox& out,
                            std::span<const sim::NodeId> dead) {
  if (mode_ == Mode::kDone) return false;
  current_round_ = round;
  ++metrics_.rounds_total;
  if (mode_ == Mode::kEpochs) check_doomed(dead);

  accepted_.clear();
  for (const auto& envelope : inbox) {
    if (envelope.payload.kind == MsgKind::kHeartbeat) continue;
    ++metrics_.frames_received;
    metrics_.bits_received += 8ull * encoded_bytes(envelope.payload);
    if (!current_tag(envelope.payload)) {
      ++metrics_.stale_frames;
      continue;
    }
    accepted_.push_back(&envelope);
  }

  if (mode_ == Mode::kEpochs && round - epoch_start_ >= epoch_rounds_) {
    // A resync jump carried us past the commit boundary: the decision is
    // gone, so fall back to the old table and restart the attempt here.
    advance_epoch(/*committed=*/false, round);
  }

  if (mode_ == Mode::kSmoke) {
    smoke_round(round, out);
  } else if (mode_ == Mode::kEpochs) {
    const std::int64_t r = round - epoch_start_;
    const int two_p = 2 * primitive_rounds_;
    const int d = table_.dimension();
    if (r < two_p) {
      if (r % 2 == 0) {
        sampler_sim_round(static_cast<int>(r / 2) + 1, out);
      } else {
        sampler_sync_round(out);
      }
    } else if (r == two_p) {
      reorg_round_a(out);
    } else if (r == two_p + 1) {
      reorg_round_b(out);
    } else if (r == two_p + 2) {
      reorg_round_c(out);
    } else if (r == two_p + 3) {
      reorg_round_d();
    } else if (r < two_p + 4 + d) {
      allgather_round(static_cast<int>(r - (two_p + 4)), out);
    } else if (r == two_p + 4 + d) {
      vote_round(out);
    } else {
      commit_round(round);
    }
  }

  return !metrics_.finished;
}

// --- sampler phase ----------------------------------------------------------

void NodeProtocol::sampler_sim_round(int seq, Outbox& out) {
  const int d = table_.dimension();
  // Resynchronize from the freshest state seen (own or broadcast), then
  // apply this primitive round's deduplicated supernode messages.
  const SamplerState* best = nullptr;
  super_dedup_.clear();
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kStateBroadcast &&
        msg.state.blocks.size() == static_cast<std::size_t>(d)) {
      const std::int32_t best_seq =
          best != nullptr ? best->seq
                          : static_cast<std::int32_t>(state_->seq);
      if (msg.state.seq > best_seq) best = &msg.state;
    } else if (msg.kind == MsgKind::kSuper && msg.super.seq == seq - 1) {
      super_dedup_.emplace(std::make_pair(msg.super.src, msg.super.index),
                           msg.super);
    }
  }
  if (best != nullptr && best->seq > state_->seq) {
    ++metrics_.resyncs;
    *state_ = rebuild(*best, supernode_);
  }
  if (state_->seq != seq - 1) return;  // still stale: sit out

  super_scratch_.clear();
  super_scratch_.reserve(super_dedup_.size());
  for (auto& [key, msg] : super_dedup_) super_scratch_.push_back(msg);
  auto [next, outbox] = advance(*state_, super_scratch_);

  // The candidate goes to the whole group (self included); our own copy is
  // adopted — or outvoted — in the synchronization round, exactly as in
  // node_sim.
  Message msg;
  msg.kind = MsgKind::kCandidate;
  msg.supernode = supernode_;
  msg.state = freeze(next);
  msg.outbox = std::move(outbox);
  for (const sim::NodeId member : table_.group(supernode_)) {
    emit(out, member, msg);
  }
}

void NodeProtocol::sampler_sync_round(Outbox& out) {
  const int d = table_.dimension();
  const Message* winner = nullptr;
  sim::NodeId winner_from = sim::kNoNode;
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind != MsgKind::kCandidate ||
        msg.state.blocks.size() != static_cast<std::size_t>(d)) {
      continue;
    }
    const bool better =
        winner == nullptr || msg.state.seq > winner->state.seq ||
        (msg.state.seq == winner->state.seq && envelope->from < winner_from);
    if (better) {
      winner = &msg;
      winner_from = envelope->from;
    }
  }
  if (winner == nullptr) return;  // group silent this step

  if (state_->seq < winner->state.seq &&
      state_->seq != winner->state.seq - 1) {
    ++metrics_.resyncs;
  }
  *state_ = rebuild(winner->state, supernode_);

  // Forward the supernode's outgoing messages to every member of each target
  // group, and rebroadcast the adopted state to our own group.
  for (const SuperMsg& super : winner->outbox) {
    if (super.dest >= table_.supernodes()) continue;
    Message msg;
    msg.kind = MsgKind::kSuper;
    msg.super = super;
    for (const sim::NodeId target : table_.group(super.dest)) {
      emit(out, target, msg);
    }
  }
  Message broadcast;
  broadcast.kind = MsgKind::kStateBroadcast;
  broadcast.supernode = supernode_;
  broadcast.state = winner->state;
  for (const sim::NodeId member : table_.group(supernode_)) {
    emit(out, member, broadcast);
  }
}

// --- reorganization (Lemma 15) ----------------------------------------------

void NodeProtocol::reorg_round_a(Outbox& out) {
  if (state_->seq != primitive_rounds_) return;
  const auto& samples = state_->core.samples();
  const auto& members = table_.group(supernode_);
  if (samples.size() < members.size()) {
    ++metrics_.sample_shortages;
    return;
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    Message msg;
    msg.kind = MsgKind::kAssign;
    msg.assigned = members[i];
    msg.supernode = samples[i];
    for (const sim::NodeId target : table_.group(samples[i])) {
      emit(out, target, msg);
    }
  }
}

void NodeProtocol::reorg_round_b(Outbox& out) {
  std::set<sim::NodeId> assigned;
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kAssign && msg.supernode == supernode_) {
      assigned.insert(msg.assigned);
    }
  }
  fresh_group_.assign(assigned.begin(), assigned.end());
  have_fresh_ = true;

  Message msg;
  msg.kind = MsgKind::kNewGroup;
  msg.supernode = supernode_;
  msg.group = fresh_group_;
  for (const sim::NodeId member : fresh_group_) emit(out, member, msg);
  for (int bit = 0; bit < table_.dimension(); ++bit) {
    const std::uint64_t y = supernode_ ^ (std::uint64_t{1} << bit);
    for (const sim::NodeId member : table_.group(y)) emit(out, member, msg);
  }
}

void NodeProtocol::reorg_round_c(Outbox& out) {
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind != MsgKind::kNewGroup) continue;
    // New-member role: this is my new group iff it lists me.
    if (std::binary_search(msg.group.begin(), msg.group.end(), self_)) {
      own_new_group_ = msg.group;
      own_new_supernode_ = msg.supernode;
      own_new_group_known_ = true;
    }
    // Old-member role: forward neighbor groups to my supernode's new members.
    if (msg.supernode != supernode_ && have_fresh_) {
      Message forward;
      forward.kind = MsgKind::kNeighborGroup;
      forward.supernode = msg.supernode;
      forward.group = msg.group;
      for (const sim::NodeId member : fresh_group_) {
        emit(out, member, forward);
      }
    }
  }
}

void NodeProtocol::reorg_round_d() {
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kNeighborGroup) {
      neighbor_groups_seen_.insert(msg.supernode);
    }
  }
}

// --- table all-gather, vote, commit -----------------------------------------

void NodeProtocol::merge_table(const std::vector<TableEntry>& fragment) {
  for (const TableEntry& entry : fragment) {
    auto [it, inserted] = gathered_.try_emplace(entry.supernode,
                                                entry.members);
    if (!inserted && it->second != entry.members) gather_conflict_ = true;
  }
}

bool NodeProtocol::table_complete() const {
  if (gather_conflict_ || gathered_.size() != table_.supernodes()) {
    return false;
  }
  std::set<sim::NodeId> seen;
  for (const auto& [x, members] : gathered_) {
    if (x >= table_.supernodes() || members.empty()) return false;
    for (const sim::NodeId id : members) {
      if (!seen.insert(id).second) return false;
    }
  }
  return seen.size() == table_.size();
}

void NodeProtocol::allgather_round(int dim, Outbox& out) {
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kTableFrag) merge_table(msg.table);
  }
  if (dim == 0 && have_fresh_) {
    merge_table({TableEntry{supernode_, fresh_group_}});
  }
  if (gathered_.empty()) return;

  Message msg;
  msg.kind = MsgKind::kTableFrag;
  msg.supernode = supernode_;
  msg.table.reserve(gathered_.size());
  for (const auto& [x, members] : gathered_) {
    msg.table.push_back(TableEntry{x, members});
  }
  const std::uint64_t partner =
      supernode_ ^ (std::uint64_t{1} << static_cast<unsigned>(dim));
  for (const sim::NodeId member : table_.group(partner)) {
    emit(out, member, msg);
  }
}

void NodeProtocol::vote_round(Outbox& out) {
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kTableFrag) merge_table(msg.table);
  }
  vote_complete_ = !doomed_ && table_complete();

  Message msg;
  msg.kind = MsgKind::kCommitVote;
  msg.supernode = supernode_;
  msg.complete = vote_complete_;
  for (const sim::NodeId member : table_.group(supernode_)) {
    emit(out, member, msg);
  }
}

void NodeProtocol::commit_round(sim::Round round) {
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kCommitVote && !msg.complete) veto_seen_ = true;
  }
  const bool commit = vote_complete_ && !veto_seen_;
  if (commit) {
    std::vector<std::vector<sim::NodeId>> groups;
    groups.reserve(gathered_.size());
    for (const auto& [x, members] : gathered_) groups.push_back(members);
    table_ = dos::GroupTable(table_.dimension(), std::move(groups));
    // Lemma 15 view check: we learned our own new group and all d of its
    // neighbor groups through rounds C/D (not just through the all-gather).
    bool knowledge = own_new_group_known_;
    for (int bit = 0; knowledge && bit < table_.dimension(); ++bit) {
      const std::uint64_t y =
          own_new_supernode_ ^ (std::uint64_t{1} << bit);
      knowledge = neighbor_groups_seen_.count(y) > 0;
    }
    if (knowledge) ++metrics_.knowledge_epochs;
  }
  advance_epoch(commit, round + 1);
}

void NodeProtocol::advance_epoch(bool committed, sim::Round next_start) {
  if (committed) {
    ++metrics_.epochs_completed;
    ++epoch_;
    attempt_ = 0;
  } else {
    ++metrics_.fallbacks;
    if (doomed_) ++metrics_.doomed_attempts;
    ++attempt_;
    if (attempt_ >= config_.max_attempts) {
      ++metrics_.epochs_failed;
      ++epoch_;
      attempt_ = 0;
    }
  }
  if (epoch_ >= config_.epochs) {
    if (config_.dht_smoke) {
      mode_ = Mode::kSmoke;
      smoke_start_ = next_start;
    } else {
      mode_ = Mode::kDone;
      metrics_.finished = true;
    }
    return;
  }
  begin_attempt(next_start);
}

void NodeProtocol::check_doomed(std::span<const sim::NodeId> dead) {
  if (doomed_ || dead.empty()) return;
  for (std::uint64_t x = 0; x < table_.supernodes(); ++x) {
    bool alive = false;
    for (const sim::NodeId id : table_.group(x)) {
      if (!std::binary_search(dead.begin(), dead.end(), id)) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      doomed_ = true;
      return;
    }
  }
}

// --- DHT smoke phase --------------------------------------------------------

void NodeProtocol::smoke_round(sim::Round round, Outbox& out) {
  const int d = table_.dimension();
  const std::int64_t r = round - smoke_start_;
  const std::uint64_t cur = table_.supernode_of(self_);
  if (r <= 0) {
    // Every node looks up its own id as the key.
    const std::uint64_t home = apps::RobustStore::hypercube_home(self_, d);
    if (cur == home) {
      metrics_.lookup_ok = true;
      return;
    }
    Message msg;
    msg.kind = MsgKind::kLookup;
    msg.key = self_;
    msg.origin = self_;
    msg.supernode = home;
    for (const sim::NodeId member : table_.group(next_hop(cur, home))) {
      emit(out, member, msg);
    }
    return;
  }
  for (const auto* envelope : accepted_) {
    const Message& msg = envelope->payload;
    if (msg.kind == MsgKind::kLookup) {
      if (msg.supernode >= table_.supernodes()) continue;
      if (!lookups_seen_.insert(msg.origin).second) continue;
      if (cur == msg.supernode) {
        Message reply;
        reply.kind = MsgKind::kLookupReply;
        reply.key = msg.key;
        reply.origin = msg.origin;
        emit(out, msg.origin, reply);
      } else {
        Message forward = msg;
        for (const sim::NodeId member :
             table_.group(next_hop(cur, msg.supernode))) {
          emit(out, member, forward);
        }
      }
    } else if (msg.kind == MsgKind::kLookupReply && msg.origin == self_) {
      metrics_.lookup_ok = true;
    }
  }
  // Worst case: d forwarding hops plus the reply hop, all in by r = d + 1.
  if (r >= d + 1) {
    mode_ = Mode::kDone;
    metrics_.finished = true;
  }
}

// --- sampler state plumbing -------------------------------------------------

NodeProtocol::Snap NodeProtocol::rebuild(const SamplerState& state,
                                         std::uint64_t supernode) const {
  Core core(table_.dimension(), supernode, schedule_);
  core.restore_blocks(state.blocks);
  return Snap{std::move(core), state.seq};
}

SamplerState NodeProtocol::freeze(const Snap& snap) const {
  SamplerState state;
  state.seq = snap.seq;
  state.blocks.reserve(static_cast<std::size_t>(table_.dimension()));
  for (int j = 1; j <= table_.dimension(); ++j) {
    state.blocks.push_back(snap.core.block(j));
  }
  return state;
}

std::pair<NodeProtocol::Snap, std::vector<SuperMsg>> NodeProtocol::advance(
    const Snap& prev, const std::vector<SuperMsg>& incoming) {
  // Mirror of dos/node_sim.cpp advance(): odd seq = request phase, even seq
  // = response phase, identical call order so the rng streams line up.
  Snap next{prev.core, prev.seq + 1};
  std::vector<SuperMsg> outbox;
  const int seq = next.seq;
  const std::uint64_t self = next.core.self();
  std::uint32_t index = 0;
  if (seq % 2 == 1) {
    for (const SuperMsg& msg : incoming) {
      if (msg.is_request) continue;
      Core::Response response;
      response.vertex = msg.resp_vertex;
      response.j = msg.resp_j;
      response.ok = msg.resp_ok;
      next.core.accept(response, rng_);
    }
    const int iteration = (seq + 1) / 2;
    if (iteration <= schedule_.iterations) {
      for (auto& [dest, request] : next.core.make_requests(iteration, rng_)) {
        SuperMsg out;
        out.src = self;
        out.dest = dest;
        out.seq = seq;
        out.index = index++;
        out.is_request = true;
        out.req_requester = request.requester;
        out.req_j = request.j;
        outbox.push_back(out);
      }
    }
  } else {
    const int iteration = seq / 2;
    for (const SuperMsg& msg : incoming) {
      if (!msg.is_request) continue;
      Core::Request request;
      request.requester = msg.req_requester;
      request.j = msg.req_j;
      const auto response = next.core.serve(request, iteration, rng_);
      SuperMsg out;
      out.src = self;
      out.dest = msg.req_requester;
      out.seq = seq;
      out.index = index++;
      out.resp_vertex = response.vertex;
      out.resp_j = response.j;
      out.resp_ok = response.ok;
      outbox.push_back(out);
    }
    next.core.discard_consumed(iteration);
  }
  return {std::move(next), std::move(outbox)};
}

// --- framing helpers --------------------------------------------------------

void NodeProtocol::emit(Outbox& out, sim::NodeId to, Message msg) {
  msg.round = current_round_;
  msg.epoch = epoch_;
  msg.attempt = attempt_;
  ++metrics_.frames_sent;
  metrics_.bits_sent += 8ull * encoded_bytes(msg);
  out.emplace_back(to, std::move(msg));
}

bool NodeProtocol::current_tag(const Message& msg) const {
  return msg.epoch == epoch_ && msg.attempt == attempt_;
}

std::vector<sim::NodeId> NodeProtocol::peers() const {
  // Every node in the table, not just the routing neighborhood: the bus is
  // globally synchronous, so the live pacer must hear from EVERY live node
  // before it may leave a round. Tracking only group+neighbors lets the
  // pacer advance while a cross-neighborhood frame (all-gather table, reorg
  // assignment into a fresh group, forwarded supernode traffic) is still in
  // flight — the frame then lands one round late and is dropped, silently
  // diverging from the in-process reference.
  std::vector<sim::NodeId> out;
  out.reserve(table_.size());
  for (std::uint64_t x = 0; x < table_.supernodes(); ++x) {
    for (const sim::NodeId id : table_.group(x)) {
      if (id != self_) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace reconfnet::transport
