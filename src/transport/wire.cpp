#include "transport/wire.hpp"

#include <cstring>

namespace reconfnet::transport {
namespace {

// --- primitive little-endian writers/readers --------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() { return take(1) ? bytes_[pos_ - 1] : 0; }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | (static_cast<std::uint32_t>(bytes_[pos_ - 2 + i]) << (8 * i)));
    }
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

 private:
  bool take(std::size_t count) {
    if (!ok_ || bytes_.size() - pos_ < count) {
      ok_ = false;
      return false;
    }
    pos_ += count;
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- kind-specific body sizes and codecs ------------------------------------

std::size_t state_bytes(const SamplerState& state) {
  std::size_t total = 4 + 1;  // seq + block count
  for (const auto& block : state.blocks) total += 4 + block.size() * 8;
  return total;
}

void write_state(Writer& w, const SamplerState& state) {
  w.i32(state.seq);
  w.u8(static_cast<std::uint8_t>(state.blocks.size()));
  for (const auto& block : state.blocks) {
    w.u32(static_cast<std::uint32_t>(block.size()));
    for (const std::uint64_t v : block) w.u64(v);
  }
}

bool read_state(Reader& r, SamplerState& state) {
  state.seq = r.i32();
  const std::size_t blocks = r.u8();
  // Recycle outer and inner capacity: shrink without deallocating, grow on
  // demand.
  if (state.blocks.size() > blocks) state.blocks.resize(blocks);
  while (state.blocks.size() < blocks) state.blocks.emplace_back();
  for (auto& block : state.blocks) {
    const std::size_t count = r.u32();
    if (!r.ok() || count > r.remaining() / 8) return false;
    block.clear();
    block.reserve(count);
    for (std::size_t i = 0; i < count; ++i) block.push_back(r.u64());
  }
  return r.ok();
}

void write_super(Writer& w, const SuperMsg& super) {
  w.u64(super.src);
  w.u64(super.dest);
  w.i32(super.seq);
  w.u32(super.index);
  w.u8(super.is_request ? 1 : 0);
  w.u64(super.req_requester);
  w.i32(super.req_j);
  w.u64(super.resp_vertex);
  w.i32(super.resp_j);
  w.u8(super.resp_ok ? 1 : 0);
}

bool read_super(Reader& r, SuperMsg& super) {
  super.src = r.u64();
  super.dest = r.u64();
  super.seq = r.i32();
  super.index = r.u32();
  super.is_request = r.u8() != 0;
  super.req_requester = r.u64();
  super.req_j = r.i32();
  super.resp_vertex = r.u64();
  super.resp_j = r.i32();
  super.resp_ok = r.u8() != 0;
  return r.ok();
}

void write_ids(Writer& w, const std::vector<sim::NodeId>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const sim::NodeId id : ids) w.u64(id);
}

bool read_ids(Reader& r, std::vector<sim::NodeId>& ids) {
  const std::size_t count = r.u32();
  if (!r.ok() || count > r.remaining() / 8) return false;
  ids.clear();
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(r.u64());
  return r.ok();
}

std::size_t body_bytes(const Message& msg) {
  switch (msg.kind) {
    case MsgKind::kHeartbeat:
      return 8;  // epoch_start
    case MsgKind::kCandidate: {
      std::size_t total = 8 + state_bytes(msg.state) + 4;
      total += msg.outbox.size() * kSuperMsgBytes;
      return total;
    }
    case MsgKind::kStateBroadcast:
      return 8 + state_bytes(msg.state);
    case MsgKind::kSuper:
      return kSuperMsgBytes;
    case MsgKind::kAssign:
      return 8 + 8;  // supernode + assigned
    case MsgKind::kNewGroup:
    case MsgKind::kNeighborGroup:
      return 8 + 4 + msg.group.size() * 8;
    case MsgKind::kTableFrag: {
      std::size_t total = 4;
      for (const auto& entry : msg.table) total += 8 + 4 + entry.members.size() * 8;
      return total;
    }
    case MsgKind::kCommitVote:
      return 8 + 1;  // supernode + complete bit
    case MsgKind::kLookup:
      return 8 + 8 + 8;  // key + origin + home supernode
    case MsgKind::kLookupReply:
      return 8 + 8;  // key + origin
  }
  return 0;
}

}  // namespace

void Message::clear() {
  kind = MsgKind::kHeartbeat;
  round = 0;
  epoch = 0;
  attempt = 0;
  epoch_start = 0;
  supernode = 0;
  state.seq = 0;
  for (auto& block : state.blocks) block.clear();
  state.blocks.clear();
  outbox.clear();
  super = SuperMsg{};
  assigned = sim::kNoNode;
  group.clear();
  table.clear();
  complete = false;
  key = 0;
  origin = sim::kNoNode;
}

std::size_t encoded_bytes(const Message& msg) {
  return kFrameHeaderBytes + body_bytes(msg);
}

void encode(const Message& msg, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(encoded_bytes(msg));
  Writer w(out);
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.i64(msg.round);
  w.i64(msg.epoch);
  w.i32(msg.attempt);
  w.u32(static_cast<std::uint32_t>(body_bytes(msg)));
  switch (msg.kind) {
    case MsgKind::kHeartbeat:
      w.i64(msg.epoch_start);
      break;
    case MsgKind::kCandidate:
      w.u64(msg.supernode);
      write_state(w, msg.state);
      w.u32(static_cast<std::uint32_t>(msg.outbox.size()));
      for (const auto& super : msg.outbox) write_super(w, super);
      break;
    case MsgKind::kStateBroadcast:
      w.u64(msg.supernode);
      write_state(w, msg.state);
      break;
    case MsgKind::kSuper:
      write_super(w, msg.super);
      break;
    case MsgKind::kAssign:
      w.u64(msg.supernode);
      w.u64(msg.assigned);
      break;
    case MsgKind::kNewGroup:
    case MsgKind::kNeighborGroup:
      w.u64(msg.supernode);
      write_ids(w, msg.group);
      break;
    case MsgKind::kTableFrag:
      w.u32(static_cast<std::uint32_t>(msg.table.size()));
      for (const auto& entry : msg.table) {
        w.u64(entry.supernode);
        write_ids(w, entry.members);
      }
      break;
    case MsgKind::kCommitVote:
      w.u64(msg.supernode);
      w.u8(msg.complete ? 1 : 0);
      break;
    case MsgKind::kLookup:
      w.u64(msg.key);
      w.u64(msg.origin);
      w.u64(msg.supernode);
      break;
    case MsgKind::kLookupReply:
      w.u64(msg.key);
      w.u64(msg.origin);
      break;
  }
}

bool decode(std::span<const std::uint8_t> bytes, Message& msg) {
  msg.clear();
  Reader r(bytes);
  if (r.u16() != kWireMagic) return false;
  if (r.u8() != kWireVersion) return false;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(MsgKind::kLookupReply)) return false;
  msg.kind = static_cast<MsgKind>(kind);
  msg.round = r.i64();
  msg.epoch = r.i64();
  msg.attempt = r.i32();
  const std::size_t body = r.u32();
  if (!r.ok() || body != r.remaining()) return false;
  switch (msg.kind) {
    case MsgKind::kHeartbeat:
      msg.epoch_start = r.i64();
      break;
    case MsgKind::kCandidate: {
      msg.supernode = r.u64();
      if (!read_state(r, msg.state)) return false;
      const std::size_t count = r.u32();
      if (!r.ok() || count > r.remaining() / kSuperMsgBytes) return false;
      msg.outbox.resize(count);
      for (auto& super : msg.outbox) {
        if (!read_super(r, super)) return false;
      }
      break;
    }
    case MsgKind::kStateBroadcast:
      msg.supernode = r.u64();
      if (!read_state(r, msg.state)) return false;
      break;
    case MsgKind::kSuper:
      if (!read_super(r, msg.super)) return false;
      break;
    case MsgKind::kAssign:
      msg.supernode = r.u64();
      msg.assigned = r.u64();
      break;
    case MsgKind::kNewGroup:
    case MsgKind::kNeighborGroup:
      msg.supernode = r.u64();
      if (!read_ids(r, msg.group)) return false;
      break;
    case MsgKind::kTableFrag: {
      const std::size_t count = r.u32();
      if (!r.ok() || count > r.remaining() / 12) return false;
      msg.table.resize(count);
      for (auto& entry : msg.table) {
        entry.supernode = r.u64();
        if (!read_ids(r, entry.members)) return false;
      }
      break;
    }
    case MsgKind::kCommitVote:
      msg.supernode = r.u64();
      msg.complete = r.u8() != 0;
      break;
    case MsgKind::kLookup:
      msg.key = r.u64();
      msg.origin = r.u64();
      msg.supernode = r.u64();
      break;
    case MsgKind::kLookupReply:
      msg.key = r.u64();
      msg.origin = r.u64();
      break;
  }
  return r.ok() && r.remaining() == 0;
}

}  // namespace reconfnet::transport
