// In-process transport backend: sim::Bus delivery semantics behind the
// Transport seam (DESIGN.md §15).
//
// The hub owns one Bus<encoded frame> shared by every endpoint; each send
// runs through the wire codec and the FaultPlan-driven PacketMangler — the
// same sender-side seam the UDP backend interposes — so crash and partition
// windows are round-for-round identical across the two backends. Heartbeats
// are metered by the protocol but not transmitted here: the lockstep driver
// needs no liveness signal.
//
// InprocDeployment is the lockstep driver on top: n NodeProtocol instances,
// one bus round per protocol round, crashed nodes skipped (and their
// protocol state reset at restart — a rebooted process starts from the
// initial configuration and must rejoin via the state broadcasts). This is
// the reference run the live UDP deployment is validated against, and —
// with an empty fault plan — it reproduces dos::run_node_level_epoch's
// reorganized tables exactly (tests/transport_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dos/group_table.hpp"
#include "fault/plan.hpp"
#include "sim/bus.hpp"
#include "sim/metrics.hpp"
#include "sim/types.hpp"
#include "transport/mangler.hpp"
#include "transport/node_protocol.hpp"
#include "transport/transport.hpp"

namespace reconfnet::transport {

/// One encoded frame on the in-process bus: the exact bytes UdpTransport
/// would put in a datagram (registered in tools/protocheck/protocol.toml).
struct Frame {
  std::vector<std::uint8_t> bytes;
};

/// Shared state of one in-process deployment: the bus, the work meter and
/// the packet mangler all endpoints route through.
class InprocHub {
 private:
  // State precedes the methods: the protocol-conformance checker
  // (tools/protocheck) attributes send/inbox/step sites to the nearest
  // preceding Bus binding.
  sim::WorkMeter meter_;
  sim::Bus<Frame> bus_;
  PacketMangler mangler_;

 public:
  InprocHub(fault::FaultPlan plan, std::uint64_t fault_salt)
      : bus_(&meter_), mangler_(std::move(plan), fault_salt) {}

  [[nodiscard]] PacketMangler& mangler() { return mangler_; }
  [[nodiscard]] const sim::WorkMeter& meter() const { return meter_; }
  [[nodiscard]] sim::Round round() const { return bus_.round(); }

  /// Ships one encoded frame, charged at its exact byte length.
  void send(sim::NodeId from, sim::NodeId to,
            const std::vector<std::uint8_t>& bytes) {
    bus_.send(from, to, Frame{bytes}, 8ull * bytes.size());
  }

  /// Frames delivered to `node` for the current round.
  [[nodiscard]] std::span<const sim::Envelope<Frame>> inbox(sim::NodeId node) {
    return bus_.inbox(node);
  }

  /// Advances the round boundary (no DoS blocking on the transport path).
  void step() { bus_.step(); }
};

/// One node's endpoint on the hub.
class InprocTransport final : public Transport {
 public:
  struct Counters {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t decode_failures = 0;
  };

  InprocTransport(InprocHub* hub, sim::NodeId self)
      : hub_(hub), self_(self) {}

  void send(sim::NodeId to, const Message& msg) override;
  void poll(std::vector<sim::Envelope<Message>>& out) override;
  void advance_round(sim::Round round) override { (void)round; }

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  InprocHub* hub_;
  sim::NodeId self_;
  Counters counters_;
  std::vector<std::uint8_t> encode_scratch_;
};

/// Lockstep driver: the whole Section 5 deployment in one process.
struct InprocDeploymentConfig {
  int nodes = 64;
  int dimension = 3;
  std::uint64_t table_seed = 1;  ///< seeds GroupTable::random
  NodeProtocol::Config protocol{};
  fault::FaultPlan plan{};  ///< scripted crashes / id_below partitions / loss
  std::uint64_t fault_salt = 0x7261ull;
  sim::Round max_rounds = 4096;  ///< hard cap: a wedge fails, never hangs
};

class InprocDeployment {
 public:
  struct Report {
    sim::Round rounds = 0;
    int finished = 0;        ///< protocols that completed all epochs
    int crashed_forever = 0; ///< crash-stop nodes (excluded from wedging)
    bool all_live_finished = false;  ///< no live node hit the round cap
  };

  explicit InprocDeployment(InprocDeploymentConfig config);

  /// Runs rounds until every live node finished (or the cap strikes).
  Report run();

  [[nodiscard]] const NodeProtocol& node(sim::NodeId id) const {
    return *protocols_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const dos::GroupTable& initial_table() const {
    return *initial_table_;
  }
  [[nodiscard]] const InprocHub& hub() const { return hub_; }

 private:
  InprocDeploymentConfig config_;
  InprocHub hub_;
  std::unique_ptr<dos::GroupTable> initial_table_;
  std::vector<std::unique_ptr<NodeProtocol>> protocols_;
  std::vector<std::unique_ptr<InprocTransport>> endpoints_;
};

}  // namespace reconfnet::transport
