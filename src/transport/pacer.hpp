// Deadline-driven round pacing for the live transport (DESIGN.md §15).
//
// The simulator advances rounds in global lockstep; a live deployment cannot.
// The RoundPacer gives each node bounded asynchrony instead: a round lasts at
// most `round_budget_us`, but advances early once every tracked peer has been
// heard at (or past) the current round. Peers that repeatedly miss the
// deadline are suspected and then evicted (missed-ack/heartbeat liveness);
// peers heard far *ahead* of us mean we are the straggler, and once they are
// past the resync horizon the pacer orders a resync jump instead of grinding
// forward one round at a time.
//
// The pacer is a pure state machine over (frames heard, now_us): no sockets,
// no wall clock — tests drive it with a FakeClock (satellite coverage in
// tests/pacer_test.cpp), the live runtime with MonotonicClock.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::transport {

struct PacerConfig {
  std::int64_t round_budget_us = 20'000;  ///< deadline per round
  std::int64_t startup_grace_us = 2'000'000;  ///< extra budget for round 0
  int resync_horizon = 8;   ///< rounds ahead that trigger a resync jump
  int suspect_after = 3;    ///< consecutive missed deadlines -> suspect
  int evict_after = 10;     ///< consecutive missed deadlines -> evict
};

class RoundPacer {
 public:
  /// What to do now: keep waiting, or advance (normally or by resync jump).
  struct Tick {
    bool advance = false;
    sim::Round next_round = 0;
    bool resync = false;  ///< next_round jumped past current + 1
  };

  struct Counters {
    std::uint64_t deadline_advances = 0;  ///< rounds ended by the deadline
    std::uint64_t early_advances = 0;     ///< rounds ended by full quorum
    std::uint64_t resyncs = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejoins = 0;  ///< evictions undone by a fresh announcement
  };

  RoundPacer(PacerConfig config, std::int64_t now_us);

  /// Replaces the tracked peer set (initial groups, or after an epoch
  /// reconfigures the topology). Liveness state of retained peers survives;
  /// new peers start fresh and unsuspected.
  void set_peers(std::span<const sim::NodeId> peers);

  /// Records that `peer` announced `peer_round` as COMPLETED (its reliable
  /// sends for that round are all acked, so everything it sent us is already
  /// staged here). Advance quorum, miss accounting and resync detection all
  /// run on these completion announcements. An evicted peer announcing a
  /// current round (>= round - 1) rejoins: only live nodes announce, so a
  /// fresh announcement proves the eviction was a starvation artifact.
  void note_frame(sim::NodeId peer, sim::Round peer_round);

  /// Decides whether to advance from the current round at time `now_us`.
  /// When it returns advance, the caller runs the protocol round and then
  /// calls begin_round(next_round, now). `early_ok` gates the quorum path:
  /// the runtime passes false while its own sends are still unacked, so a
  /// node never leaves a round before its frames provably landed — only the
  /// deadline (the give-up path that mirrors the simulator's permanent
  /// drop) and the resync jump may fire then.
  [[nodiscard]] Tick tick(std::int64_t now_us, bool early_ok = true);

  /// Starts `round`, arming its deadline.
  void begin_round(sim::Round round, std::int64_t now_us);

  [[nodiscard]] sim::Round round() const { return round_; }
  [[nodiscard]] bool suspected(sim::NodeId peer) const;
  [[nodiscard]] bool evicted(sim::NodeId peer) const;
  /// Evicted peers, ascending by id.
  [[nodiscard]] std::vector<sim::NodeId> evicted_peers() const;
  /// True iff `members` contains at least one tracked peer and every tracked
  /// one is evicted — the group-silence trigger for the protocol's epoch
  /// abort. Untracked members (ourselves, far groups) are skipped, so a group
  /// we track nobody of never reads as silent.
  [[nodiscard]] bool group_silent(std::span<const sim::NodeId> members) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Peer {
    sim::NodeId id = sim::kNoNode;
    sim::Round last_heard = -1;  ///< highest completed round announced
    int misses = 0;  ///< consecutive deadlines spent > 1 round behind
    bool evicted = false;
  };

  [[nodiscard]] const Peer* find(sim::NodeId id) const;
  [[nodiscard]] Peer* find(sim::NodeId id);

  PacerConfig config_;
  std::vector<Peer> peers_;  ///< sorted by id
  sim::Round round_ = 0;
  std::int64_t deadline_us_ = 0;
  Counters counters_;
};

}  // namespace reconfnet::transport
