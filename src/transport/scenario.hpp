// Named churn/DoS scenario plans for transport deployments (DESIGN.md §15).
//
// A deployment — in-process or live — is driven by a small vocabulary of
// scripted plans, so the bench, the tests and tools/deploy_local.sh all mean
// the same thing by "kill2,partition1". Every plan is pure in (nodes,
// epoch_rounds): crash rounds and partition windows are fixed functions of
// the deployment size and the first epoch's length, which every process
// derives identically from the shared initial table. Only scripted crashes
// and id-threshold partitions are used — the fault families whose schedules
// both FaultInjector and PacketMangler evaluate without consuming a random
// stream — so the same spec produces the same fault windows on every
// backend and in every process.
//
// Vocabulary (combine with ',' or '+'):
//   none        no faults
//   kill2       crash-stop nodes n/3 and 2n/3 early in epoch 1
//   partition1  id-threshold cut (below n/2) over sampler rounds [2, 8)
//               of epoch 0, healing well before the reorganization
//   loss5       5% i.i.d. datagram loss (live transport retransmits;
//               in-process runs treat each loss as a permanent drop)
#pragma once

#include <string>
#include <string_view>

#include "fault/plan.hpp"

namespace reconfnet::transport {

/// Parses a plan spec into a FaultPlan. `nodes` is the deployment size,
/// `epoch_rounds` the length of one epoch-0 attempt (NodeProtocol::
/// epoch_rounds() right after construction). Throws std::invalid_argument
/// on an unknown token.
[[nodiscard]] fault::FaultPlan parse_plan(std::string_view spec, int nodes,
                                          int epoch_rounds);

/// Canonical display form of a spec: tokens in input order joined by '+'
/// ("kill2,partition1" -> "kill2+partition1", "" -> "none"). Used as the
/// bench group label so in-process baselines and live harvests share keys.
[[nodiscard]] std::string canonical_plan_name(std::string_view spec);

}  // namespace reconfnet::transport
