#include "transport/inproc.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace reconfnet::transport {

void InprocTransport::send(sim::NodeId to, const Message& msg) {
  // Heartbeats carry no protocol content and the lockstep driver needs no
  // liveness signal; the protocol meters them, the hub skips them.
  if (msg.kind == MsgKind::kHeartbeat) return;
  if (hub_->mangler().drop(self_, to, hub_->round(), /*attempt=*/0)) return;
  encode(msg, encode_scratch_);
  ++counters_.datagrams_sent;
  hub_->send(self_, to, encode_scratch_);
}

void InprocTransport::poll(std::vector<sim::Envelope<Message>>& out) {
  for (const auto& envelope : hub_->inbox(self_)) {
    sim::Envelope<Message> frame;
    frame.from = envelope.from;
    frame.to = self_;
    if (!decode(envelope.payload.bytes, frame.payload)) {
      ++counters_.decode_failures;
      continue;
    }
    ++counters_.datagrams_received;
    out.push_back(std::move(frame));
  }
}

InprocDeployment::InprocDeployment(InprocDeploymentConfig config)
    : config_(config), hub_(config.plan, config.fault_salt) {
  std::vector<sim::NodeId> ids;
  ids.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    ids.push_back(static_cast<sim::NodeId>(i));
  }
  support::Rng table_rng(config_.table_seed);
  initial_table_ = std::make_unique<dos::GroupTable>(
      dos::GroupTable::random(config_.dimension, ids, table_rng));
  protocols_.reserve(ids.size());
  endpoints_.reserve(ids.size());
  for (const sim::NodeId id : ids) {
    protocols_.push_back(std::make_unique<NodeProtocol>(
        id, *initial_table_, config_.protocol));
    endpoints_.push_back(std::make_unique<InprocTransport>(&hub_, id));
  }
}

InprocDeployment::Report InprocDeployment::run() {
  Report report;
  const auto n = static_cast<std::size_t>(config_.nodes);
  std::vector<sim::NodeId> dead;  // crash-stop nodes, sorted
  std::vector<sim::Envelope<Message>> inbox;
  NodeProtocol::Outbox outbox;

  for (sim::Round round = 0; round < config_.max_rounds; ++round) {
    // Crash-stop nodes are dead for good; nodes inside a (crash, restart)
    // window sit the rounds out and reboot with a fresh protocol instance —
    // initial configuration, no memory — once the window closes.
    dead.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<sim::NodeId>(i);
      for (const fault::CrashEvent& event : config_.plan.crashes) {
        if (event.node == id && event.restart < 0 && round >= event.at) {
          dead.push_back(id);
          break;
        }
      }
    }
    bool all_live_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<sim::NodeId>(i);
      if (hub_.mangler().is_crashed(id, round)) continue;
      if (round > 0 && hub_.mangler().is_crashed(id, round - 1)) {
        protocols_[i] = std::make_unique<NodeProtocol>(
            id, *initial_table_, config_.protocol);
      }
      inbox.clear();
      endpoints_[i]->poll(inbox);
      outbox.clear();
      const bool running =
          protocols_[i]->on_round(round, inbox, outbox, dead);
      for (auto& [to, msg] : outbox) endpoints_[i]->send(to, msg);
      if (running) all_live_done = false;
    }
    hub_.step();
    report.rounds = round + 1;
    if (all_live_done) {
      report.all_live_finished = true;
      break;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<sim::NodeId>(i);
    if (hub_.mangler().is_crashed(id, report.rounds)) {
      bool forever = false;
      for (const fault::CrashEvent& event : config_.plan.crashes) {
        if (event.node == id && event.restart < 0) forever = true;
      }
      if (forever) {
        ++report.crashed_forever;
        continue;
      }
    }
    if (protocols_[i]->finished()) ++report.finished;
  }
  return report;
}

}  // namespace reconfnet::transport
