// FaultPlan-driven packet mangler for the live transport (DESIGN.md §15).
//
// The in-process simulator injects faults through sim::DeliveryHook
// (fault::FaultInjector); a live deployment has no central bus to hook, so
// the mangler interposes at each process's socket seam instead. Every
// decision is a pure splitmix64 hash of (salt, endpoints, round, try) — no
// stream state — so all N processes agree on the schedule without
// coordination, and the in-process run of the same plan (via FaultInjector,
// whose scripted crash/partition queries are equally pure) sees the same
// crash and partition windows round for round.
//
// Scope: scripted crashes, partitions, and i.i.d. loss. The stateful fault
// families (burst channels, delay queues, inbox reordering) stay
// simulator-only — a real UDP path already reorders and delays on its own.
#pragma once

#include <cstdint>

#include "fault/plan.hpp"
#include "sim/types.hpp"

namespace reconfnet::transport {

/// Decides, at the sender, whether a datagram crosses the (simulated) wire.
class PacketMangler {
 public:
  struct Counters {
    std::uint64_t offered = 0;
    std::uint64_t crash_drops = 0;
    std::uint64_t partition_drops = 0;
    std::uint64_t lost = 0;
  };

  /// `salt` seeds the pure hash draws; all processes of one deployment must
  /// pass the same value (the deploy scripts derive it from the run seed).
  PacketMangler(fault::FaultPlan plan, std::uint64_t salt);

  /// True iff the datagram from -> to, sent in sender-round `round` on its
  /// `attempt`-th transmission (0 = first send, retransmits count up), should
  /// be dropped. Mirrors the injector's rule: a crashed sender sends
  /// nothing, a receiver down in the next round loses the datagram, a
  /// partition cut eats everything crossing it, and i.i.d. loss draws a
  /// fresh (hashed) coin per transmission so retransmits can get through.
  [[nodiscard]] bool drop(sim::NodeId from, sim::NodeId to, sim::Round round,
                          std::uint32_t attempt);

  /// True iff `node` is down at round `tick` under the plan's scripted
  /// crashes. Pure in (node, tick).
  [[nodiscard]] bool is_crashed(sim::NodeId node, sim::Round tick) const;

  /// True iff a partition separates `a` from `b` at round `tick`.
  [[nodiscard]] bool partitioned(sim::NodeId a, sim::NodeId b,
                                 sim::Round tick) const;

  [[nodiscard]] const fault::FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  [[nodiscard]] bool side_a(sim::NodeId node,
                            const fault::PartitionEvent& event) const;
  [[nodiscard]] double hash_uniform(std::uint64_t salt, std::uint64_t a,
                                    std::uint64_t b) const;

  fault::FaultPlan plan_;
  std::uint64_t salt_;
  Counters counters_;
};

}  // namespace reconfnet::transport
