#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace reconfnet::transport {
namespace {

constexpr std::size_t kMaxDatagram = 65536;

sockaddr_in peer_address(std::uint16_t base_port, sim::NodeId id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<std::uint16_t>(base_port + static_cast<int>(id)));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(UdpConfig config) : config_(config) {
  links_.reserve(static_cast<std::size_t>(config_.nodes));
  heard_.assign(static_cast<std::size_t>(config_.nodes), -1);
  for (int i = 0; i < config_.nodes; ++i) {
    links_.push_back(std::make_unique<ReliableLink>(
        config_.link, config_.self, config_.incarnation));
  }
  recv_scratch_.resize(kMaxDatagram);
}

UdpTransport::~UdpTransport() { close(); }

bool UdpTransport::open() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) return false;
  // Deep buffers: a process descheduled for tens of milliseconds (n
  // processes per core) must not shed the burst that arrived meanwhile —
  // every datagram lost here costs a retransmission round-trip. Best
  // effort: the kernel clamps to net.core.{r,w}mem_max silently.
  const int kSocketBufBytes = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &kSocketBufBytes,
               sizeof(kSocketBufBytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &kSocketBufBytes,
               sizeof(kSocketBufBytes));
  sockaddr_in addr = peer_address(config_.base_port, config_.self);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close();
    return false;
  }
  return true;
}

void UdpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpTransport::send(sim::NodeId to, const Message& msg) {
  if (to == config_.self) {
    // Loopback to ourselves without touching the socket: stage directly.
    sim::Envelope<Message> frame;
    frame.from = config_.self;
    frame.to = config_.self;
    frame.payload = msg;
    staged_[msg.round].push_back(std::move(frame));
    return;
  }
  if (to >= static_cast<sim::NodeId>(config_.nodes)) return;
  encode(msg, encode_scratch_);
  if (msg.kind == MsgKind::kHeartbeat) {
    // Fire-and-forget: one link header, no channel state.
    dgram_scratch_.clear();
    dgram_scratch_.resize(kLinkHeaderBytes + encode_scratch_.size());
    LinkHeader header;
    header.op = LinkOp::kUnreliable;
    header.from = config_.self;
    header.incarnation = config_.incarnation;
    header.seq = 0;
    encode_link_header(header, dgram_scratch_.data());
    std::memcpy(dgram_scratch_.data() + kLinkHeaderBytes,
                encode_scratch_.data(), encode_scratch_.size());
    transmit(to, dgram_scratch_, /*attempt=*/0, msg.round);
    return;
  }
  // Reliable frames transmit inline, BEFORE the round's trailing heartbeat
  // hits the wire — loopback preserves per-pair datagram order, so a peer
  // whose pacer advances on our heartbeat has already received the data
  // frames; tick() then only handles retransmissions. The frame's round
  // rides along as the link tag so every (re)transmission's fault-plan
  // decision is pure in the ORIGINAL send round — a partition-dropped frame
  // stays dropped, exactly like the in-process injector.
  ReliableLink& link = *links_[static_cast<std::size_t>(to)];
  link.stage(encode_scratch_, now_us_, msg.round);
  link.for_due(now_us_,
               [&](std::span<const std::uint8_t> bytes, std::uint32_t attempt,
                   std::int64_t send_round) {
                 transmit(to, bytes, attempt, send_round);
               });
}

void UdpTransport::poll(std::vector<sim::Envelope<Message>>& out) {
  // Bus contract: a frame sent in round r is delivered in round r+1's inbox
  // or never. Only the immediately preceding round's stage is released;
  // anything older missed its window (we advanced before it landed) and is
  // dropped as late rather than injected into the wrong round.
  while (!staged_.empty() && staged_.begin()->first <= round_ - 1) {
    auto& frames = staged_.begin()->second;
    if (staged_.begin()->first == round_ - 1) {
      // reconfnet-hotcheck: allow(RNH404) out is the protocol's recycled inbox; frames per round are O(log n), not per-datagram
      for (auto& frame : frames) out.push_back(std::move(frame));
    } else {
      counters_.late_frames += frames.size();
    }
    // reconfnet-hotcheck: allow(RNH403) one stage release per round, keyed by sparse sender rounds — not a per-datagram walk
    staged_.erase(staged_.begin());
  }
}

void UdpTransport::advance_round(sim::Round round) { round_ = round; }

void UdpTransport::pump(std::int64_t now_us) {
  now_us_ = now_us;
  if (fd_ < 0) return;
  for (;;) {
    const ssize_t got = ::recvfrom(fd_, recv_scratch_.data(),
                                   recv_scratch_.size(), 0, nullptr, nullptr);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      break;
    }
    (void)on_datagram(
        std::span<const std::uint8_t>(recv_scratch_.data(),
                                      static_cast<std::size_t>(got)),
        now_us);
  }
}

bool UdpTransport::on_datagram(std::span<const std::uint8_t> bytes,
                               std::int64_t now_us) {
  (void)now_us;
  LinkHeader header;
  if (!decode_link_header(bytes, header)) {
    ++counters_.decode_failures;
    return false;
  }
  if (header.from >= static_cast<sim::NodeId>(config_.nodes) ||
      header.from == config_.self) {
    ++counters_.decode_failures;
    return false;
  }
  ++counters_.datagrams_received;
  const auto peer = static_cast<std::size_t>(header.from);
  const auto payload = bytes.subspan(kLinkHeaderBytes);

  if (header.op == LinkOp::kAck) {
    links_[peer]->on_ack(header.seq, header.incarnation);
    return true;
  }
  if (header.op == LinkOp::kReliable &&
      !links_[peer]->on_data(header.seq, header.incarnation)) {
    return true;  // duplicate or stale incarnation; already counted
  }
  if (!decode(payload, decode_scratch_)) {
    ++counters_.decode_failures;
    return false;
  }
  if (decode_scratch_.kind == MsgKind::kHeartbeat) {
    // A heartbeat announces the sender COMPLETED its round (all its
    // reliable sends acked) — only these drive the pacer, so hearing round
    // r from a peer proves its round-r frames are already staged here.
    // Liveness only — no staging, no allocation (the hot path).
    heard_[peer] = std::max(heard_[peer], decode_scratch_.round);
    ++counters_.heartbeats_received;
    return true;
  }
  if (decode_scratch_.round < round_ - 1) {
    ++counters_.late_frames;
    return true;
  }
  sim::Envelope<Message> frame;
  frame.from = header.from;
  frame.to = config_.self;
  frame.payload = std::move(decode_scratch_);
  decode_scratch_.clear();
  // reconfnet-hotcheck: allow(RNH403) protocol frames only — heartbeats (the per-datagram hot path) returned above, allocation-free
  staged_[frame.payload.round].push_back(std::move(frame));
  return true;
}

void UdpTransport::tick(std::int64_t now_us) {
  now_us_ = now_us;
  for (int i = 0; i < config_.nodes; ++i) {
    if (i == static_cast<int>(config_.self)) continue;
    const auto to = static_cast<sim::NodeId>(i);
    ReliableLink& link = *links_[static_cast<std::size_t>(i)];
    link.drain_acks([&](std::uint32_t seq) { send_ack(to, seq); });
    link.for_due(now_us,
                 [&](std::span<const std::uint8_t> bytes,
                     std::uint32_t attempt, std::int64_t send_round) {
                   transmit(to, bytes, attempt, send_round);
                 });
  }
}

void UdpTransport::cancel_stale(sim::Round round) {
  for (int i = 0; i < config_.nodes; ++i) {
    if (i == static_cast<int>(config_.self)) continue;
    links_[static_cast<std::size_t>(i)]->cancel_stale(round);
  }
}

sim::Round UdpTransport::round_heard(sim::NodeId peer) const {
  const auto index = static_cast<std::size_t>(peer);
  return index < heard_.size() ? heard_[index] : -1;
}

ReliableLink::Counters UdpTransport::link_totals() const {
  ReliableLink::Counters total;
  for (int i = 0; i < config_.nodes; ++i) {
    if (i == static_cast<int>(config_.self)) continue;
    const auto& c = links_[static_cast<std::size_t>(i)]->counters();
    total.staged += c.staged;
    total.retransmits += c.retransmits;
    total.acked += c.acked;
    total.abandoned += c.abandoned;
    total.canceled += c.canceled;
    total.delivered += c.delivered;
    total.duplicates += c.duplicates;
    total.stale_incarnation += c.stale_incarnation;
  }
  return total;
}

void UdpTransport::transmit(sim::NodeId to,
                            std::span<const std::uint8_t> bytes,
                            std::uint32_t attempt, sim::Round send_round) {
  if (config_.mangler != nullptr &&
      config_.mangler->drop(config_.self, to, send_round, attempt)) {
    ++counters_.mangled;
    return;
  }
  if (fd_ < 0) return;
  const sockaddr_in addr = peer_address(config_.base_port, to);
  const ssize_t sent =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) {
    ++counters_.send_errors;
    return;
  }
  ++counters_.datagrams_sent;
}

void UdpTransport::send_ack(sim::NodeId to, std::uint32_t seq) {
  std::uint8_t buffer[kLinkHeaderBytes];
  LinkHeader header;
  header.op = LinkOp::kAck;
  header.from = config_.self;
  header.incarnation =
      links_[static_cast<std::size_t>(to)]->peer_incarnation();
  header.seq = seq;
  encode_link_header(header, buffer);
  ++counters_.acks_sent;
  transmit(to, std::span<const std::uint8_t>(buffer, sizeof(buffer)),
           /*attempt=*/0, round_);
}

}  // namespace reconfnet::transport
