// Per-peer reliable datagram channel for the UDP transport (DESIGN.md §15).
//
// UDP loses, duplicates and reorders; the protocol frames (everything except
// heartbeats) need at-most-once delivery. Each (local node, peer) pair gets
// one ReliableLink holding both halves:
//
//   * sender half: stages full datagrams under fresh sequence numbers,
//     retransmits on a capped binary-backoff timer until acked, and — after
//     max_retries — abandons the send *loudly* (typed counter, surfaced in
//     the node metrics) instead of blocking the round loop,
//   * receiver half: acks every reliable datagram and deduplicates via a
//     delivered floor plus an above-floor set, so retransmit-after-ack-loss
//     never delivers twice.
//
// Incarnations make restarts safe: a rebooted process bumps its incarnation,
// the receiver resets its dedup state on the first higher-incarnation
// datagram, and stale acks or data from the previous life are ignored — the
// live analog of fault::ReliableChannel's reset quarantine.
//
// The class is socket-free and clock-free (timestamps are passed in), so
// tests drive it directly; the UDP transport owns the sockets.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::transport {

// Link-layer datagram header, pinned by tools/protocheck/protocol.toml:
// magic(2) + version(1) + op(1) + from(8) + incarnation(4) + seq(4).
inline constexpr std::uint16_t kLinkMagic = 0x4C52;  // "RL"
inline constexpr std::uint8_t kLinkVersion = 1;
inline constexpr std::size_t kLinkHeaderBytes = 20;

enum class LinkOp : std::uint8_t {
  kUnreliable = 0,  ///< fire-and-forget payload (heartbeats)
  kReliable = 1,    ///< payload needing an ack
  kAck = 2,         ///< ack for `seq` (no payload)
};

struct LinkHeader {
  LinkOp op = LinkOp::kUnreliable;
  sim::NodeId from = sim::kNoNode;
  std::uint32_t incarnation = 0;
  std::uint32_t seq = 0;
};

/// Writes the 20-byte header at `out` (must have room).
void encode_link_header(const LinkHeader& header, std::uint8_t* out);
/// Parses a header; false on short input, bad magic or version.
[[nodiscard]] bool decode_link_header(std::span<const std::uint8_t> bytes,
                                      LinkHeader& header);

struct LinkConfig {
  std::int64_t initial_timeout_us = 40'000;
  std::int64_t backoff_cap_us = 640'000;
  int max_retries = 10;  ///< transmissions before abandoning (>= 1)
};

class ReliableLink {
 public:
  struct Counters {
    std::uint64_t staged = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acked = 0;
    std::uint64_t abandoned = 0;      ///< gave up after max_retries
    std::uint64_t canceled = 0;       ///< dropped by cancel_stale()
    std::uint64_t delivered = 0;      ///< fresh incoming reliable datagrams
    std::uint64_t duplicates = 0;     ///< deduplicated incoming datagrams
    std::uint64_t stale_incarnation = 0;  ///< old-life data or acks dropped
  };

  ReliableLink(LinkConfig config, sim::NodeId self,
               std::uint32_t incarnation)
      : config_(config), self_(self), incarnation_(incarnation) {}

  /// Sender half: wraps `payload` in a reliable-data header under a fresh
  /// sequence number and stages it for (re)transmission. The first
  /// transmission happens at the next for_due() call. `tag` rides along
  /// untouched and is handed back on every transmission attempt — the UDP
  /// transport stores the frame's protocol round there so fault-plan drop
  /// decisions stay pure in the frame's ORIGINAL round (a retransmission of
  /// a partition-dropped frame is dropped again, exactly like the
  /// in-process injector's permanent drop).
  std::uint32_t stage(std::span<const std::uint8_t> payload,
                      std::int64_t now_us, std::int64_t tag = 0);

  /// Sender half: invokes fn(bytes, attempt, tag) for every staged datagram
  /// due at `now_us` (attempt 0 = first transmission) and re-arms its
  /// backoff. Datagrams exceeding max_retries are abandoned and counted
  /// instead.
  template <typename Fn>
  void for_due(std::int64_t now_us, Fn&& fn) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      Pending& entry = it->second;
      if (now_us < entry.due_us) {
        ++it;
        continue;
      }
      if (entry.attempts >= config_.max_retries) {
        ++counters_.abandoned;
        it = pending_.erase(it);
        continue;
      }
      fn(std::span<const std::uint8_t>(entry.datagram),
         static_cast<std::uint32_t>(entry.attempts), entry.tag);
      if (entry.attempts > 0) ++counters_.retransmits;
      ++entry.attempts;
      entry.due_us = now_us + entry.timeout_us;
      entry.timeout_us = std::min(entry.timeout_us * 2,
                                  config_.backoff_cap_us);
      ++it;
    }
  }

  /// Sender half: an ack for `seq` arrived from the peer.
  void on_ack(std::uint32_t seq, std::uint32_t incarnation);

  /// Sender half: drops every pending datagram whose tag is below
  /// `before_tag`. The runtime calls this when the pacer forces a round
  /// advance: a frame that could not be delivered inside its round is dead
  /// weight (the receiver would reject it as late), so giving it up mirrors
  /// the simulator's permanent synchronous drop. Returns the number dropped.
  std::size_t cancel_stale(std::int64_t before_tag);

  /// Receiver half: a reliable datagram (seq, incarnation) arrived from the
  /// peer. Returns true iff it is fresh and should be delivered; an ack is
  /// queued either way (unless the incarnation is stale).
  [[nodiscard]] bool on_data(std::uint32_t seq, std::uint32_t incarnation);

  /// Receiver half: invokes fn(seq) for every queued ack and clears the
  /// queue. The caller sends the ack datagrams.
  template <typename Fn>
  void drain_acks(Fn&& fn) {
    for (const std::uint32_t seq : ack_queue_) fn(seq);
    ack_queue_.clear();
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] std::uint32_t peer_incarnation() const {
    return peer_incarnation_;
  }

 private:
  struct Pending {
    std::vector<std::uint8_t> datagram;  ///< header + payload, ready to send
    std::int64_t due_us = 0;
    std::int64_t timeout_us = 0;
    std::int64_t tag = 0;  ///< caller context (the frame's protocol round)
    int attempts = 0;
  };

  LinkConfig config_;
  sim::NodeId self_;
  std::uint32_t incarnation_;

  // Sender half.
  std::uint32_t next_seq_ = 1;
  std::map<std::uint32_t, Pending> pending_;

  // Receiver half.
  std::uint32_t peer_incarnation_ = 0;
  std::uint32_t floor_ = 0;  ///< every seq <= floor_ was delivered
  std::set<std::uint32_t> above_floor_;
  std::vector<std::uint32_t> ack_queue_;

  Counters counters_;
};

}  // namespace reconfnet::transport
